//! Umbrella crate of the RAGO reproduction.
//!
//! Re-exports every workspace crate under one roof so examples, integration
//! tests, and downstream users can depend on a single package:
//!
//! * [`schema`] — the RAGSchema workload abstraction (§3 of the paper);
//! * [`hardware`] — XPU / CPU / cluster models (Table 2, §4);
//! * [`vectordb`] — the IVF-PQ vector-search substrate;
//! * [`cache`] — deterministic prefix-KV and retrieval-result cache
//!   simulators (capacity in tokens / entries, LRU/LFU/size-aware
//!   eviction), driven by popularity-skewed content identity from
//!   [`workloads`];
//! * [`accel_sim`] — the operator-roofline inference cost model (§4(a));
//! * [`retrieval_sim`] — the ScaNN-style retrieval cost model (§4(b));
//! * [`serving_sim`] — discrete-event serving simulation (§5.3, §6.1),
//!   including the request-level engine with continuous batching and SLO
//!   metrics, the fleet-level cluster simulation (replicas behind a
//!   router), and the reactive fleet autoscaler for time-varying traffic;
//! * [`telemetry`] — the zero-cost-when-off tracing layer: statically
//!   dispatched recorders, span/gauge/decision/profile events, Perfetto
//!   (Chrome trace) and JSONL exporters, and trace summaries;
//! * [`core`] — the RAGO optimizer itself (§6), with static and dynamic
//!   (request-level) schedule evaluation, fleet evaluation, multi-tenant
//!   time-varying evaluation, and SLO-driven capacity planning (single
//!   rates and rate profiles);
//! * [`workloads`] — case-study presets, arrival processes (stationary and
//!   diurnal/spike/piecewise), multi-tenant workload mixes, and request
//!   generators.
//!
//! # Quickstart
//!
//! ```
//! use rago::core::{Rago, SearchOptions};
//! use rago::hardware::ClusterSpec;
//! use rago::schema::presets;
//!
//! let schema = presets::case1_hyperscale(presets::LlmSize::B8, 1);
//! let rago = Rago::new(schema, ClusterSpec::paper_default());
//! let pareto = rago.optimize(&SearchOptions::fast())?;
//! println!("frontier points: {}", pareto.len());
//! # Ok::<(), rago::core::RagoError>(())
//! ```

pub use rago_accel_sim as accel_sim;
pub use rago_cache as cache;
pub use rago_core as core;
pub use rago_hardware as hardware;
pub use rago_retrieval_sim as retrieval_sim;
pub use rago_schema as schema;
pub use rago_serving_sim as serving_sim;
pub use rago_telemetry as telemetry;
pub use rago_vectordb as vectordb;
pub use rago_workloads as workloads;
