//! Offline stand-in for `criterion`.
//!
//! The build environment cannot reach crates.io, so the workspace ships this
//! minimal wall-clock benchmarking harness with the same calling convention
//! as the real crate: `criterion_group!` / `criterion_main!`,
//! [`Criterion::bench_function`], [`Bencher::iter`], and [`black_box`].
//!
//! Each `bench_function` runs one warm-up pass, then `sample_size` timed
//! samples, and prints the per-iteration minimum / mean / maximum. There is
//! no statistical analysis, HTML report, or baseline comparison. Set
//! `RAGO_BENCH_QUICK=1` to clamp sample counts for CI smoke runs.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// The benchmark driver: holds configuration and runs registered functions.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Self { sample_size: 20 }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Times `f` (via the [`Bencher`] it receives) and prints a one-line
    /// summary.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        // Quick mode: RAGO_BENCH_QUICK set to anything except empty or "0".
        let quick = std::env::var("RAGO_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0");
        let samples = if quick {
            self.sample_size.min(3)
        } else {
            self.sample_size
        };
        // Warm-up pass (not recorded).
        let mut bencher = Bencher {
            elapsed: Duration::ZERO,
            iters: 0,
        };
        f(&mut bencher);

        let mut per_iter: Vec<f64> = Vec::with_capacity(samples);
        for _ in 0..samples {
            let mut bencher = Bencher {
                elapsed: Duration::ZERO,
                iters: 0,
            };
            f(&mut bencher);
            if bencher.iters > 0 {
                per_iter.push(bencher.elapsed.as_secs_f64() / bencher.iters as f64);
            }
        }
        per_iter.sort_by(f64::total_cmp);
        let (min, max) = match (per_iter.first(), per_iter.last()) {
            (Some(&a), Some(&b)) => (a, b),
            _ => (0.0, 0.0),
        };
        let mean = per_iter.iter().sum::<f64>() / per_iter.len().max(1) as f64;
        println!(
            "{name:<40} time: [{} {} {}]",
            fmt_time(min),
            fmt_time(mean),
            fmt_time(max)
        );
        self
    }
}

/// Times one benchmark routine.
#[derive(Debug)]
pub struct Bencher {
    elapsed: Duration,
    iters: u64,
}

impl Bencher {
    /// Runs `routine` once per sample, accumulating its wall-clock time.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        black_box(routine());
        self.elapsed += start.elapsed();
        self.iters += 1;
    }
}

fn fmt_time(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} µs", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

/// Declares a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench `main` entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_and_reports() {
        let mut c = Criterion::default().sample_size(2);
        let mut runs = 0u32;
        c.bench_function("noop", |b| {
            runs += 1;
            b.iter(|| black_box(1 + 1))
        });
        // 1 warm-up + 2 samples.
        assert_eq!(runs, 3);
    }
}
