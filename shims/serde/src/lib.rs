//! Offline stand-in for `serde`.
//!
//! The build environment cannot reach crates.io, so the workspace provides
//! this minimal local substitute. It exposes the two names the codebase
//! imports — the `Serialize` / `Deserialize` traits and the derive macros of
//! the same names — with the derives expanding to nothing. Nothing in the
//! workspace performs actual serialization; the annotations are kept so the
//! type definitions stay source-compatible with the real serde, which can be
//! swapped back in by pointing the workspace dependency at crates.io.

pub use serde_derive::{Deserialize, Serialize};

/// Marker trait mirroring `serde::Serialize` (no methods in the shim).
pub trait Serialize {}

/// Marker trait mirroring `serde::Deserialize` (no methods, no lifetime
/// parameter in the shim — the workspace never bounds on it).
pub trait Deserialize {}
