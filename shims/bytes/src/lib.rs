//! Offline stand-in for the `bytes` crate.
//!
//! Provides the [`Bytes`] type with the slice of behavior the workspace
//! uses: construction from a `Vec<u8>`, cheap clones (shared `Arc` storage),
//! and deref to `&[u8]`.

use std::ops::Deref;
use std::sync::Arc;

/// An immutable, cheaply cloneable byte buffer.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash)]
pub struct Bytes {
    data: Arc<[u8]>,
}

impl Bytes {
    /// Creates an empty buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of bytes in the buffer.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the buffer is empty.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Copies the bytes out into an owned `Vec`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.data.to_vec()
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Self { data: v.into() }
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Self { data: v.into() }
    }
}

impl Deref for Bytes {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.data
    }
}

impl AsRef<[u8]> for Bytes {
    fn as_ref(&self) -> &[u8] {
        &self.data
    }
}

#[cfg(test)]
mod tests {
    use super::Bytes;

    #[test]
    fn roundtrip_and_clone_share_storage() {
        let b = Bytes::from(vec![1u8, 2, 3]);
        assert_eq!(b.len(), 3);
        assert_eq!(&b[..], &[1, 2, 3]);
        let c = b.clone();
        assert_eq!(c.to_vec(), vec![1, 2, 3]);
        assert!(!c.is_empty());
        assert_eq!(Bytes::new().len(), 0);
    }
}
