//! Offline stand-in for `rayon`.
//!
//! The build environment cannot reach crates.io, so the workspace ships this
//! minimal data-parallelism shim exposing the rayon calling convention the
//! optimizer uses:
//!
//! ```text
//! iterator.par_bridge()
//!     .fold(make_accumulator, |acc, item| ...)
//!     .reduce(make_accumulator, |a, b| ...)
//! ```
//!
//! Work distribution is a chunked pull over a mutex-guarded source iterator:
//! each worker thread locks the iterator, takes a small chunk of items,
//! folds them into its thread-local accumulator, and repeats until the
//! source is exhausted; `reduce` then merges the per-thread accumulators on
//! the calling thread. Peak memory is `O(threads × chunk)` items plus the
//! accumulators — the source is never materialized.
//!
//! The chunk size adapts to the source's `size_hint`: a short source (e.g.
//! a fleet of a few dozen replica simulations) is split into roughly
//! `2 × threads` chunks so every worker gets work, while an unsized or long
//! source falls back to a fixed chunk that amortizes lock traffic.
//!
//! Unlike real rayon there is no work stealing, no global thread pool
//! (threads are scoped per call), and `fold(..)` is not itself a lazy
//! parallel iterator: it must be finished with `reduce(..)`. The subset is
//! call-compatible with real rayon so the real crate can be swapped back in
//! from the workspace manifest.

use std::sync::Mutex;

/// Items pulled from the shared iterator per lock acquisition. Large enough
/// to amortize lock traffic for microsecond-scale work items, small enough
/// to keep the tail balanced across workers.
const CHUNK: usize = 64;

/// Number of worker threads a parallel call will use.
pub fn current_num_threads() -> usize {
    match std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
    {
        Some(n) if n >= 1 => n,
        _ => std::thread::available_parallelism().map_or(1, |n| n.get()),
    }
}

pub mod iter {
    //! Parallel iterator adapters.

    use super::{current_num_threads, Mutex, CHUNK};

    /// Bridges a sequential iterator into the parallel API, mirroring
    /// `rayon::iter::ParallelBridge`.
    pub trait ParallelBridge: Iterator + Sized {
        /// Wraps the iterator for parallel consumption.
        fn par_bridge(self) -> IterBridge<Self>;
    }

    impl<I: Iterator + Send> ParallelBridge for I
    where
        I::Item: Send,
    {
        fn par_bridge(self) -> IterBridge<Self> {
            IterBridge { iter: self }
        }
    }

    /// A sequential iterator scheduled for parallel consumption.
    pub struct IterBridge<I> {
        iter: I,
    }

    impl<I: Iterator + Send> IterBridge<I>
    where
        I::Item: Send,
    {
        /// Folds items into per-thread accumulators created by `identity`.
        /// Finish with [`Fold::reduce`].
        pub fn fold<T, ID, F>(self, identity: ID, fold_op: F) -> Fold<I, ID, F>
        where
            T: Send,
            ID: Fn() -> T + Sync,
            F: Fn(T, I::Item) -> T + Sync,
        {
            Fold {
                iter: self.iter,
                identity,
                fold_op,
            }
        }
    }

    /// A pending parallel fold; consumed by [`Fold::reduce`].
    pub struct Fold<I, ID, F> {
        iter: I,
        identity: ID,
        fold_op: F,
    }

    impl<I, ID, F> Fold<I, ID, F> {
        /// Runs the fold across worker threads and merges the per-thread
        /// accumulators with `reduce_op`.
        pub fn reduce<T, ID2, R>(self, identity: ID2, reduce_op: R) -> T
        where
            I: Iterator + Send,
            I::Item: Send,
            T: Send,
            ID: Fn() -> T + Sync,
            F: Fn(T, I::Item) -> T + Sync,
            ID2: Fn() -> T,
            R: Fn(T, T) -> T,
        {
            let threads = current_num_threads();
            // A fixed 64-item chunk starves workers when the whole source is
            // shorter than one chunk (a fleet rarely has more than a few
            // dozen replicas): split a sized source into ~2 chunks per
            // thread instead, so every worker pulls something.
            let remaining = self.iter.size_hint().0;
            let chunk_size = if remaining == 0 {
                CHUNK
            } else {
                remaining.div_ceil(threads * 2).clamp(1, CHUNK)
            };
            let source = Mutex::new(self.iter);
            let fold_op = &self.fold_op;
            let make_acc = &self.identity;

            let accumulators: Vec<T> = std::thread::scope(|scope| {
                let handles: Vec<_> = (0..threads)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut acc = make_acc();
                            let mut chunk: Vec<I::Item> = Vec::with_capacity(chunk_size);
                            loop {
                                {
                                    let mut it = source.lock().expect("source iterator poisoned");
                                    chunk.extend(it.by_ref().take(chunk_size));
                                }
                                if chunk.is_empty() {
                                    return acc;
                                }
                                for item in chunk.drain(..) {
                                    acc = fold_op(acc, item);
                                }
                            }
                        })
                    })
                    .collect();
                handles
                    .into_iter()
                    .map(|h| h.join().expect("parallel fold worker panicked"))
                    .collect()
            });

            accumulators.into_iter().fold(identity(), reduce_op)
        }
    }
}

pub mod prelude {
    //! Glob-import surface, mirroring `rayon::prelude`.

    pub use crate::iter::ParallelBridge;
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn fold_reduce_sums_like_sequential() {
        let total: u64 = (0u64..10_000)
            .par_bridge()
            .fold(|| 0u64, |acc, x| acc + x)
            .reduce(|| 0, |a, b| a + b);
        assert_eq!(total, 10_000 * 9_999 / 2);
    }

    #[test]
    fn empty_source_yields_identity() {
        let total: u64 = std::iter::empty::<u64>()
            .par_bridge()
            .fold(|| 7u64, |acc, _| acc)
            .reduce(|| 7, |a, b| a.min(b));
        assert_eq!(total, 7);
    }

    #[test]
    fn short_sized_sources_are_split_across_workers() {
        // 8 items over however many threads: every item must still be
        // consumed exactly once even when the adaptive chunk is smaller
        // than the fixed 64-item chunk.
        let seen: Vec<u32> = (0u32..8)
            .par_bridge()
            .fold(Vec::new, |mut acc, x| {
                acc.push(x);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        let mut seen = seen;
        seen.sort_unstable();
        assert_eq!(seen, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn every_item_is_consumed_exactly_once() {
        let n = 100_000u64;
        let seen: Vec<u64> = (0..n)
            .par_bridge()
            .fold(Vec::new, |mut acc, x| {
                acc.push(x);
                acc
            })
            .reduce(Vec::new, |mut a, mut b| {
                a.append(&mut b);
                a
            });
        let mut seen = seen;
        seen.sort_unstable();
        assert_eq!(seen.len() as u64, n);
        assert!(seen.iter().enumerate().all(|(i, &x)| i as u64 == x));
    }
}
