//! Offline stand-in for the `rand` crate.
//!
//! The build environment cannot reach crates.io, so the workspace ships this
//! minimal, dependency-free substitute covering exactly the API surface the
//! codebase uses: [`rngs::StdRng`] + [`SeedableRng::seed_from_u64`],
//! [`Rng::gen_range`] over integer and float ranges, [`Rng::gen`], and
//! [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++ seeded via
//! SplitMix64 — deterministic for a given seed and statistically strong
//! enough for the simulators' sampling needs. Streams differ from upstream
//! `StdRng` (ChaCha12), which is fine: the codebase only relies on
//! *determinism per seed*, never on a specific stream.

/// Low-level generator interface: a source of uniform `u64`s.
pub trait RngCore {
    /// Returns the next 64 uniformly distributed random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable construction, mirroring `rand::SeedableRng`.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed (deterministic).
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, mirroring `rand::Rng`.
pub trait Rng: RngCore + Sized {
    /// Samples uniformly from `range` (half-open or inclusive).
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_from(self)
    }

    /// Samples a value of `T` from its standard distribution
    /// (`[0, 1)` for floats, a fair coin for `bool`, uniform bits for ints).
    fn gen<T: Standard>(&mut self) -> T {
        T::standard(self)
    }
}

impl<R: RngCore + Sized> Rng for R {}

/// Types samplable by [`Rng::gen`].
pub trait Standard: Sized {
    /// Draws one value from the type's standard distribution.
    fn standard<R: RngCore>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        // 53 uniform bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        // 24 uniform bits in [0, 1).
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn standard<R: RngCore>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

/// Ranges samplable by [`Rng::gen_range`], mirroring
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Samples one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore>(self, rng: &mut R) -> T;
}

/// Multiply-shift bounded sampling: uniform in `[0, span)` without modulo
/// bias worth caring about at simulator scale.
fn bounded<R: RngCore>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let span = (self.end - self.start) as u64;
                self.start + bounded(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let span = (hi - lo) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                lo + bounded(rng, span + 1) as $t
            }
        }
    )*};
}

impl_int_range!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from empty range");
                let u = <$t as Standard>::standard(rng);
                self.start + u * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample from empty range");
                let u = <$t as Standard>::standard(rng);
                lo + u * (hi - lo)
            }
        }
    )*};
}

impl_float_range!(f32, f64);

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (not upstream's
    /// ChaCha12 — see the crate docs).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut sm = seed;
            let mut next = || {
                sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = sm;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                z ^ (z >> 31)
            };
            Self {
                state: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }
}

/// Sequence helpers, mirroring `rand::seq`.
pub mod seq {
    use super::{Rng, RngCore};

    /// Slice shuffling, mirroring `rand::seq::SliceRandom`.
    pub trait SliceRandom {
        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn determinism_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen_range(0.25..0.75);
            assert!((0.25..0.75).contains(&x));
            let y = rng.gen_range(3u32..=9);
            assert!((3..=9).contains(&y));
            let z = rng.gen_range(0usize..5);
            assert!(z < 5);
        }
    }

    #[test]
    fn uniform_mean_is_sane() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle left the slice untouched");
    }
}
