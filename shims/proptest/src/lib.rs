//! Offline stand-in for `proptest`.
//!
//! The build environment cannot reach crates.io, so the workspace ships this
//! minimal property-testing harness with the same surface syntax as the real
//! crate: the [`proptest!`] macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(n))]` header),
//! range/`any`/`Just`/`prop_oneof!`/tuple/`prop::collection::vec` strategies,
//! and the `prop_assert!` / `prop_assert_eq!` / `prop_assume!` assertion
//! macros.
//!
//! Differences from the real proptest, by design:
//!
//! * **No shrinking.** A failing case reports its inputs and panics; it does
//!   not search for a minimal counterexample.
//! * **Deterministic seeding.** Each test's RNG is seeded from a hash of its
//!   module path and name, so runs are reproducible without a persistence
//!   file.
//! * **Rejection budget.** `prop_assume!` rejections retry up to 10× the
//!   configured case count before the test stops early (never a failure).

pub mod test_runner {
    //! Test-case plumbing: configuration, RNG, and case outcomes.

    use rand::rngs::StdRng;
    use rand::{RngCore, SeedableRng};

    /// Subset of proptest's run configuration: the number of passing cases
    /// required.
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of accepted (non-rejected) cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// The RNG driving strategy sampling (xoshiro256++ from the workspace
    /// `rand` shim).
    #[derive(Debug, Clone)]
    pub struct TestRng(StdRng);

    impl TestRng {
        /// Creates an RNG seeded deterministically from `name` (FNV-1a).
        pub fn deterministic(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            Self(StdRng::seed_from_u64(h))
        }
    }

    impl RngCore for TestRng {
        fn next_u64(&mut self) -> u64 {
            self.0.next_u64()
        }
    }

    /// Outcome of one generated case's body.
    #[derive(Debug)]
    pub enum TestCaseError {
        /// The case's assumptions did not hold; try another input.
        Reject(String),
        /// An assertion failed.
        Fail(String),
    }

    impl TestCaseError {
        /// A rejection (from `prop_assume!`).
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }

        /// A failure (from `prop_assert!`-family macros).
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }
    }
}

pub mod strategy {
    //! Value-generation strategies.

    use crate::test_runner::TestRng;
    use rand::Rng;

    /// A generator of values of type [`Strategy::Value`].
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Samples one value.
        fn sample_value(&self, rng: &mut TestRng) -> Self::Value;
    }

    /// Strategy producing a constant.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn sample_value(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// A boxed sampler: one arm of a [`Union`].
    pub type Sampler<T> = Box<dyn Fn(&mut TestRng) -> T>;

    /// Uniform choice between boxed alternatives (backs [`prop_oneof!`]).
    ///
    /// [`prop_oneof!`]: crate::prop_oneof
    pub struct Union<T> {
        options: Vec<Sampler<T>>,
    }

    impl<T> Union<T> {
        /// Builds a union over the given samplers (at least one).
        pub fn new(options: Vec<Sampler<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut TestRng) -> T {
            let i = rng.gen_range(0..self.options.len());
            (self.options[i])(rng)
        }
    }

    macro_rules! impl_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(self.start..self.end)
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;

                fn sample_value(&self, rng: &mut TestRng) -> $t {
                    rng.gen_range(*self.start()..=*self.end())
                }
            }
        )*};
    }

    impl_range_strategy!(u8, u16, u32, u64, usize, f32, f64);

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);

                #[allow(non_snake_case)]
                fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample_value(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            (**self).sample_value(rng)
        }
    }
}

pub mod arbitrary {
    //! The `any::<T>()` strategy family.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;
    use std::marker::PhantomData;

    /// Types with a canonical whole-domain strategy.
    pub trait Arbitrary: Sized {
        /// Samples one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> Self {
            rng.gen()
        }
    }

    macro_rules! impl_arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }

    impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    /// Strategy returned by [`any`].
    #[derive(Debug, Clone, Copy)]
    pub struct Any<T>(PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn sample_value(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The canonical strategy for `T` (`any::<bool>()`, …).
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(PhantomData)
    }
}

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use rand::Rng;

    /// Strategy for `Vec<T>` with a length drawn from a range.
    pub struct VecStrategy<S> {
        element: S,
        min_len: usize,
        max_len: usize,
    }

    /// A `Vec` strategy with length in `len` and elements from `element`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            element,
            min_len: len.start,
            max_len: len.end - 1,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn sample_value(&self, rng: &mut TestRng) -> Self::Value {
            let len = rng.gen_range(self.min_len..=self.max_len);
            (0..len).map(|_| self.element.sample_value(rng)).collect()
        }
    }
}

/// Namespace mirror so `prop::collection::vec(..)` works from the prelude.
pub mod prop {
    pub use crate::collection;
    pub use crate::strategy;
}

pub mod prelude {
    //! Everything a `proptest!` caller needs.

    pub use crate::arbitrary::any;
    pub use crate::prop;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assume, prop_oneof, proptest};
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running the body over generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::proptest!(@impl $cfg; $($rest)*);
    };
    (@impl $cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::ProptestConfig = $cfg;
            let mut rng = $crate::test_runner::TestRng::deterministic(
                concat!(module_path!(), "::", stringify!($name)),
            );
            let mut accepted: u32 = 0;
            let mut attempts: u32 = 0;
            let max_attempts = config.cases.saturating_mul(10).max(10);
            while accepted < config.cases && attempts < max_attempts {
                attempts += 1;
                $(let $arg = $crate::strategy::Strategy::sample_value(&($strat), &mut rng);)*
                let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                    (|| {
                        $body
                        #[allow(unreachable_code)]
                        ::std::result::Result::Ok(())
                    })();
                match outcome {
                    ::std::result::Result::Ok(()) => accepted += 1,
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Reject(_)) => {}
                    ::std::result::Result::Err($crate::test_runner::TestCaseError::Fail(msg)) => {
                        panic!(
                            "property `{}` failed after {} cases: {}\ninputs:{}",
                            stringify!($name),
                            accepted,
                            msg,
                            ::std::string::String::new()
                                $(+ &format!(" {} = {:?};", stringify!($arg), $arg))*,
                        );
                    }
                }
            }
        }
    )*};
    ($($rest:tt)*) => {
        $crate::proptest!(@impl $crate::test_runner::ProptestConfig::default(); $($rest)*);
    };
}

/// Uniform choice between strategies yielding the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(::std::vec![
            $(::std::boxed::Box::new(move |rng: &mut $crate::test_runner::TestRng| {
                $crate::strategy::Strategy::sample_value(&($strat), rng)
            }) as ::std::boxed::Box<dyn Fn(&mut $crate::test_runner::TestRng) -> _>),+
        ])
    };
}

/// Asserts a condition inside a property body (fails the case, not the
/// process, so inputs can be reported).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)));
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}` (left: `{:?}`, right: `{:?}`)",
            stringify!($left),
            stringify!($right),
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let left = $left;
        let right = $right;
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{}` == `{}` (left: `{:?}`, right: `{:?}`): {}",
            stringify!($left),
            stringify!($right),
            left,
            right,
            format!($($fmt)*)
        );
    }};
}

/// Rejects the current case when its assumptions do not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                concat!("assumption failed: ", stringify!($cond)),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_and_tuples_work(
            x in 1u32..100,
            pair in (0u32..10, 0u32..10),
            flag in any::<bool>(),
            v in prop::collection::vec(0u64..5, 0..20),
        ) {
            let (a, b) = pair;
            prop_assert!((1..100).contains(&x));
            prop_assert!(a < 10 && b < 10);
            let _exercised: bool = flag;
            prop_assert!(v.len() < 20);
            prop_assert!(v.iter().all(|&e| e < 5));
        }

        #[test]
        fn oneof_and_assume_work(
            pick in prop_oneof![Just(1u32), Just(2u32), Just(3u32)],
            n in 0u32..50,
        ) {
            prop_assume!(n != 13);
            prop_assert!((1u32..=3).contains(&pick));
            prop_assert_eq!(n + pick - pick, n);
        }
    }

    #[test]
    #[should_panic(expected = "inputs")]
    fn failures_report_inputs() {
        proptest! {
            fn inner(x in 0u32..10) {
                prop_assert!(x > 100, "x was {}", x);
            }
        }
        inner();
    }
}
