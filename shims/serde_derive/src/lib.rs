//! Offline stand-in for `serde_derive`.
//!
//! The build environment has no access to crates.io, so this workspace ships
//! a minimal local substitute. The derives accept the same attribute grammar
//! as the real crate (`#[serde(...)]` helper attributes are declared so they
//! parse) but expand to nothing: the workspace never serializes through serde
//! — the derives exist so type definitions can keep the upstream-compatible
//! `#[derive(Serialize, Deserialize)]` annotations. Swapping in the real
//! serde is a one-line change in the workspace manifest.

use proc_macro::TokenStream;

/// No-op `Serialize` derive.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `Deserialize` derive.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
