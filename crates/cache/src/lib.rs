//! Deterministic cache simulators for RAG serving: prefix-KV reuse and
//! retrieval-result reuse.
//!
//! Real RAG traffic is popularity-skewed: many requests instantiate the same
//! prompt template (system prompt + few-shot examples) and many ask about
//! the same hot documents. Two caches exploit that skew:
//!
//! * a [`PrefixKvCache`] holds the KV state of shared prompt prefixes,
//!   **capacity measured in tokens**. A hit means the prefill of a request
//!   only has to process the *uncached suffix* — the dominant prefill-cost
//!   lever vLLM's PagedAttention demonstrated for production serving;
//! * a [`RetrievalResultCache`] memoizes retrieval results by query/document
//!   key, **capacity measured in entries**. A hit short-circuits the
//!   retrieve and rerank stages of the pipeline entirely.
//!
//! Both are *simulators*: they model occupancy, eviction, and hit/miss
//! accounting exactly, deterministically, and cheaply, so the discrete-event
//! serving engine in `rago-serving-sim` can consult them at event time (the
//! replay API is just [`PrefixKvCache::access`] /
//! [`RetrievalResultCache::access`], called in event order). No payloads are
//! stored — only sizes and bookkeeping.
//!
//! Determinism: recency is a logical access sequence number, not wall-clock
//! time (simultaneous events in a discrete-event simulation are ordered by
//! their deterministic processing order, and the caches inherit exactly that
//! order). Eviction tie-breaks are total, so two replays of the same access
//! sequence produce bit-identical states and counters.
//!
//! A zero-capacity cache is the *disabled* degenerate case: every access is
//! a miss, nothing is ever inserted, and — because the serving engine charges
//! full prefill cost on a miss — a zero-capacity run is bit-identical to a
//! cache-less one (pinned by equivalence tests in `rago-serving-sim` and
//! `rago-core`).
//!
//! # Examples
//!
//! ```
//! use rago_cache::{EvictionPolicy, PrefixKvCache, PrefixKvCacheConfig};
//!
//! let mut cache = PrefixKvCache::new(PrefixKvCacheConfig::new(1024, EvictionPolicy::Lru));
//! let miss = cache.access(7, 512);
//! assert!(!miss.hit && miss.inserted);
//! let hit = cache.access(7, 512);
//! assert!(hit.hit);
//! assert_eq!(hit.hit_tokens, 512);
//! assert_eq!(cache.counters().hit_rate(), 0.5);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod prefix;
pub mod retrieval;

pub use prefix::{PrefixKvCache, PrefixKvCacheConfig, PrefixLookup};
pub use retrieval::{RetrievalCacheConfig, RetrievalLookup, RetrievalResultCache};

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// The replacement policy of a cache simulator.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum EvictionPolicy {
    /// Evict the least-recently-used entry.
    #[default]
    Lru,
    /// Evict the least-frequently-used entry; ties evict the least recent.
    Lfu,
    /// Evict the *largest* entry first (frees the most capacity with the
    /// fewest evictions), ties evict the least recent. For unit-size entries
    /// (the retrieval-result cache) this degenerates to LRU.
    SizeAware,
}

impl std::fmt::Display for EvictionPolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            EvictionPolicy::Lru => "lru",
            EvictionPolicy::Lfu => "lfu",
            EvictionPolicy::SizeAware => "size-aware",
        })
    }
}

/// Hit/miss/eviction accounting of one cache (or one slice of a run).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CacheCounters {
    /// Accesses performed.
    pub lookups: u64,
    /// Accesses that found their key resident.
    pub hits: u64,
    /// Entries inserted on misses.
    pub insertions: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
    /// Sum of tokens served from cache across all hits (prefix-KV cache
    /// only; zero for the retrieval-result cache, whose hits save whole
    /// pipeline stages rather than tokens).
    pub tokens_saved: u64,
}

impl CacheCounters {
    /// Accesses that missed.
    pub fn misses(&self) -> u64 {
        self.lookups - self.hits
    }

    /// Hits over lookups (zero when nothing was looked up).
    pub fn hit_rate(&self) -> f64 {
        if self.lookups == 0 {
            return 0.0;
        }
        self.hits as f64 / self.lookups as f64
    }

    /// Adds `other`'s counts into `self` (merging replica- or class-level
    /// slices into fleet totals).
    pub fn absorb(&mut self, other: &CacheCounters) {
        self.lookups += other.lookups;
        self.hits += other.hits;
        self.insertions += other.insertions;
        self.evictions += other.evictions;
        self.tokens_saved += other.tokens_saved;
    }
}

/// The cache configuration of one serving deployment: which caches exist and
/// how big they are. `None` halves are absent entirely (not even looked up),
/// and [`CacheConfig::disabled`] — the default — is the exact cache-less
/// serving stack.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct CacheConfig {
    /// Prefix-KV cache of the main LLM's prefill stage, or `None`.
    pub prefix: Option<PrefixKvCacheConfig>,
    /// Retrieval-result cache short-circuiting retrieve + rerank, or `None`.
    pub retrieval: Option<RetrievalCacheConfig>,
}

impl CacheConfig {
    /// No caches at all — bit-identical to the cache-less serving stack.
    pub fn disabled() -> Self {
        Self::default()
    }

    /// Whether any cache half is configured (a zero-capacity half still
    /// counts as configured: it looks up and misses).
    pub fn is_enabled(&self) -> bool {
        self.prefix.is_some() || self.retrieval.is_some()
    }
}

/// One resident entry of a [`Core`] cache.
#[derive(Debug, Clone, Copy)]
struct Entry {
    /// Occupied capacity units (tokens for the prefix cache, 1 for the
    /// retrieval cache).
    size: u64,
    /// Accesses that touched this entry.
    freq: u64,
    /// Logical sequence number of the last touch (unique per access).
    last_used: u64,
}

/// The shared occupancy/eviction machinery behind both cache types: a keyed
/// set of sized entries under a capacity, with deterministic victim
/// selection. Kept internal; the public types fix the capacity unit and the
/// lookup result shape.
#[derive(Debug, Clone)]
struct Core {
    policy: EvictionPolicy,
    capacity: u64,
    used: u64,
    seq: u64,
    entries: BTreeMap<u64, Entry>,
}

/// Outcome of one [`Core::access`].
#[derive(Debug, Clone, Copy)]
struct CoreLookup {
    hit: bool,
    /// Units already resident for the key at access time (≤ requested size).
    hit_size: u64,
    evictions: u32,
    inserted: bool,
}

impl Core {
    fn new(capacity: u64, policy: EvictionPolicy) -> Self {
        Self {
            policy,
            capacity,
            used: 0,
            seq: 0,
            entries: BTreeMap::new(),
        }
    }

    fn contains(&self, key: u64) -> bool {
        self.entries.contains_key(&key)
    }

    /// Looks up `key`, touching it on a hit and inserting it (size capped at
    /// the capacity, evicting victims as needed) on a miss. A hit whose
    /// requested `size` exceeds the resident entry grows the entry — the
    /// newly computed suffix becomes cached too. A zero-capacity core never
    /// inserts.
    fn access(&mut self, key: u64, size: u64) -> CoreLookup {
        self.seq += 1;
        let seq = self.seq;
        let resident = self.entries.get_mut(&key).map(|entry| {
            entry.freq += 1;
            entry.last_used = seq;
            entry.size
        });
        if let Some(old_size) = resident {
            let hit_size = old_size.min(size);
            let mut evictions = 0;
            let grown = size.min(self.capacity);
            if grown > old_size {
                evictions = self.make_room(grown - old_size, Some(key));
                self.used += grown - old_size;
                self.entries
                    .get_mut(&key)
                    .expect("a hit entry stays resident through growth")
                    .size = grown;
            }
            return CoreLookup {
                hit: true,
                hit_size,
                evictions,
                inserted: false,
            };
        }
        // Miss. An entry larger than the whole cache (or any entry, for a
        // zero-capacity cache) is not insertable.
        if size > self.capacity || self.capacity == 0 || size == 0 {
            return CoreLookup {
                hit: false,
                hit_size: 0,
                evictions: 0,
                inserted: false,
            };
        }
        let evictions = self.make_room(size, None);
        self.entries.insert(
            key,
            Entry {
                size,
                freq: 1,
                last_used: seq,
            },
        );
        self.used += size;
        CoreLookup {
            hit: false,
            hit_size: 0,
            evictions,
            inserted: true,
        }
    }

    /// Evicts victims (never `exclude`) until `extra` more units fit.
    /// Callers guarantee fitting is possible. Returns the eviction count.
    fn make_room(&mut self, extra: u64, exclude: Option<u64>) -> u32 {
        let mut evictions = 0;
        while self.used + extra > self.capacity {
            let victim = self
                .victim(exclude)
                .expect("make_room is only called when evicting others suffices");
            let gone = self
                .entries
                .remove(&victim)
                .expect("victim came from the entry set");
            self.used -= gone.size;
            evictions += 1;
        }
        evictions
    }

    /// The next eviction victim under the policy, or `None` when no entry
    /// other than `exclude` is resident. Tie-breaks are total (ending on the
    /// unique `last_used` sequence number), so victim selection — and thus
    /// the whole cache state — is deterministic.
    fn victim(&self, exclude: Option<u64>) -> Option<u64> {
        self.entries
            .iter()
            .filter(|(k, _)| Some(**k) != exclude)
            .min_by_key(|(_, e)| match self.policy {
                EvictionPolicy::Lru => (0, 0, e.last_used),
                EvictionPolicy::Lfu => (e.freq, 0, e.last_used),
                // Largest first: invert the size into the ordering key.
                EvictionPolicy::SizeAware => (0, u64::MAX - e.size, e.last_used),
            })
            .map(|(k, _)| *k)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_hit_rate_and_absorb() {
        let mut a = CacheCounters {
            lookups: 4,
            hits: 3,
            insertions: 1,
            evictions: 0,
            tokens_saved: 96,
        };
        assert_eq!(a.misses(), 1);
        assert!((a.hit_rate() - 0.75).abs() < 1e-12);
        let b = CacheCounters {
            lookups: 4,
            hits: 1,
            insertions: 2,
            evictions: 1,
            tokens_saved: 32,
        };
        a.absorb(&b);
        assert_eq!(a.lookups, 8);
        assert_eq!(a.hits, 4);
        assert_eq!(a.tokens_saved, 128);
        assert_eq!(CacheCounters::default().hit_rate(), 0.0);
    }

    #[test]
    fn disabled_config_has_no_halves() {
        let cfg = CacheConfig::disabled();
        assert!(!cfg.is_enabled());
        assert!(cfg.prefix.is_none() && cfg.retrieval.is_none());
    }

    #[test]
    fn lru_evicts_the_least_recent() {
        let mut core = Core::new(3, EvictionPolicy::Lru);
        core.access(1, 1);
        core.access(2, 1);
        core.access(3, 1);
        core.access(1, 1); // touch 1; LRU is now 2
        let out = core.access(4, 1);
        assert_eq!(out.evictions, 1);
        assert!(core.contains(1) && core.contains(3) && core.contains(4));
        assert!(!core.contains(2));
    }

    #[test]
    fn lfu_keeps_the_hot_entry() {
        let mut core = Core::new(2, EvictionPolicy::Lfu);
        core.access(1, 1);
        core.access(1, 1);
        core.access(1, 1); // freq 3
        core.access(2, 1); // freq 1, more recent
        core.access(3, 1); // must evict 2, not 1
        assert!(core.contains(1) && core.contains(3));
        assert!(!core.contains(2));
    }

    #[test]
    fn size_aware_evicts_the_largest() {
        let mut core = Core::new(10, EvictionPolicy::SizeAware);
        core.access(1, 6);
        core.access(2, 3);
        let out = core.access(3, 5); // needs 4 free: evicts the 6-unit entry
        assert_eq!(out.evictions, 1);
        assert!(!core.contains(1));
        assert!(core.contains(2) && core.contains(3));
    }

    #[test]
    fn zero_capacity_never_inserts() {
        let mut core = Core::new(0, EvictionPolicy::Lru);
        for key in 0..10 {
            let out = core.access(key, 1);
            assert!(!out.hit && !out.inserted);
            assert_eq!(out.evictions, 0);
        }
        assert_eq!(core.used, 0);
        assert!(core.entries.is_empty());
    }

    #[test]
    fn oversized_entries_are_not_insertable() {
        let mut core = Core::new(4, EvictionPolicy::Lru);
        let out = core.access(1, 5);
        assert!(!out.inserted);
        assert!(!core.contains(1));
        // A fitting entry still inserts afterwards.
        assert!(core.access(2, 4).inserted);
    }

    #[test]
    fn hits_grow_entries_to_the_larger_request() {
        let mut core = Core::new(8, EvictionPolicy::Lru);
        core.access(1, 3);
        let out = core.access(1, 6);
        assert!(out.hit);
        assert_eq!(out.hit_size, 3); // only the resident part was served
        assert_eq!(core.used, 6); // the suffix is now cached too
        let again = core.access(1, 6);
        assert_eq!(again.hit_size, 6);
    }

    #[test]
    fn deterministic_replay() {
        let run = || {
            let mut core = Core::new(5, EvictionPolicy::Lfu);
            let keys = [1u64, 2, 3, 1, 4, 2, 5, 1, 6, 3, 2, 7];
            let mut log = Vec::new();
            for (i, &k) in keys.iter().enumerate() {
                let out = core.access(k, 1 + (i as u64 % 3));
                log.push((out.hit, out.hit_size, out.evictions, out.inserted));
            }
            (log, core.used)
        };
        assert_eq!(run(), run());
    }
}
