//! The retrieval-result cache: memoized retrieval outcomes, capacity in
//! entries.

use crate::{CacheCounters, Core, EvictionPolicy};
use serde::{Deserialize, Serialize};

/// Configuration of a [`RetrievalResultCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RetrievalCacheConfig {
    /// Distinct retrieval results the cache can hold. Zero disables the
    /// cache (every access misses and nothing is ever inserted).
    pub capacity_entries: u64,
    /// Replacement policy ([`EvictionPolicy::SizeAware`] degenerates to LRU
    /// here — every entry has unit size).
    pub policy: EvictionPolicy,
}

impl RetrievalCacheConfig {
    /// Creates a configuration.
    pub fn new(capacity_entries: u64, policy: EvictionPolicy) -> Self {
        Self {
            capacity_entries,
            policy,
        }
    }
}

/// Outcome of one retrieval-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetrievalLookup {
    /// Whether the document key was resident — a hit lets the serving
    /// pipeline skip its retrieve and rerank stages for this request.
    pub hit: bool,
    /// Entries evicted to make room during this access.
    pub evictions: u32,
    /// Whether the access inserted a new entry.
    pub inserted: bool,
}

/// A deterministic retrieval-result cache simulator: a memo of "this query
/// key's retrieval + rerank already ran". The first access to a key misses
/// and inserts it — an in-flight retrieval counts as present, the same
/// admission-on-access convention request coalescing gives a production
/// memo — and subsequent accesses hit until the key is evicted.
///
/// # Examples
///
/// ```
/// use rago_cache::{EvictionPolicy, RetrievalCacheConfig, RetrievalResultCache};
///
/// let mut cache = RetrievalResultCache::new(RetrievalCacheConfig::new(2, EvictionPolicy::Lru));
/// assert!(!cache.access(10).hit);
/// assert!(cache.access(10).hit);
/// cache.access(11);
/// cache.access(12); // evicts 10, the least recently touched key
/// assert!(!cache.contains(10));
/// assert_eq!(cache.counters().insertions, 3);
/// ```
#[derive(Debug, Clone)]
pub struct RetrievalResultCache {
    config: RetrievalCacheConfig,
    core: Core,
    counters: CacheCounters,
}

impl RetrievalResultCache {
    /// Creates an empty (cold) cache.
    pub fn new(config: RetrievalCacheConfig) -> Self {
        Self {
            config,
            core: Core::new(config.capacity_entries, config.policy),
            counters: CacheCounters::default(),
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &RetrievalCacheConfig {
        &self.config
    }

    /// Accesses the cache for `doc_key`: a hit means the retrieval result is
    /// already known and the pipeline's retrieve + rerank stages can be
    /// skipped; a miss inserts the key (evicting under the policy).
    pub fn access(&mut self, doc_key: u64) -> RetrievalLookup {
        let out = self.core.access(doc_key, 1);
        let lookup = RetrievalLookup {
            hit: out.hit,
            evictions: out.evictions,
            inserted: out.inserted,
        };
        self.counters.lookups += 1;
        self.counters.hits += u64::from(lookup.hit);
        self.counters.insertions += u64::from(lookup.inserted);
        self.counters.evictions += u64::from(lookup.evictions);
        lookup
    }

    /// Whether `doc_key` is currently resident (no counter side effects).
    pub fn contains(&self, doc_key: u64) -> bool {
        self.core.contains(doc_key)
    }

    /// Lifetime hit/miss/eviction counters (`tokens_saved` stays zero —
    /// retrieval hits save stages, not tokens).
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// Resident entries.
    pub fn len(&self) -> usize {
        self.core.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.core.entries.is_empty()
    }

    /// Replays a whole access sequence of document keys against a fresh
    /// cache of `config` and returns the final counters.
    pub fn replay(
        config: RetrievalCacheConfig,
        accesses: impl IntoIterator<Item = u64>,
    ) -> CacheCounters {
        let mut cache = RetrievalResultCache::new(config);
        for key in accesses {
            cache.access(key);
        }
        cache.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn first_access_misses_then_hits() {
        let mut cache =
            RetrievalResultCache::new(RetrievalCacheConfig::new(8, EvictionPolicy::Lru));
        assert!(!cache.access(1).hit);
        assert!(cache.access(1).hit);
        assert!(cache.access(1).hit);
        let c = cache.counters();
        assert_eq!((c.lookups, c.hits, c.insertions), (3, 2, 1));
        assert_eq!(c.tokens_saved, 0);
    }

    #[test]
    fn capacity_bounds_residency() {
        let mut cache =
            RetrievalResultCache::new(RetrievalCacheConfig::new(2, EvictionPolicy::Lru));
        cache.access(1);
        cache.access(2);
        cache.access(3); // evicts 1
        assert!(!cache.contains(1));
        assert!(cache.contains(2) && cache.contains(3));
        assert_eq!(cache.len(), 2);
        assert_eq!(cache.counters().evictions, 1);
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let mut cache =
            RetrievalResultCache::new(RetrievalCacheConfig::new(0, EvictionPolicy::Lru));
        for _ in 0..4 {
            assert!(!cache.access(7).hit);
        }
        assert!(cache.is_empty());
        assert_eq!(cache.counters().insertions, 0);
    }

    #[test]
    fn size_aware_degenerates_to_lru_on_unit_entries() {
        let seq = [1u64, 2, 3, 1, 4, 2, 5, 1, 3];
        let lru =
            RetrievalResultCache::replay(RetrievalCacheConfig::new(3, EvictionPolicy::Lru), seq);
        let sa = RetrievalResultCache::replay(
            RetrievalCacheConfig::new(3, EvictionPolicy::SizeAware),
            seq,
        );
        assert_eq!(lru, sa);
    }

    #[test]
    fn lfu_protects_the_hot_key() {
        let mut cache =
            RetrievalResultCache::new(RetrievalCacheConfig::new(2, EvictionPolicy::Lfu));
        cache.access(1);
        cache.access(1);
        cache.access(1);
        cache.access(2);
        cache.access(3); // evicts 2 (freq 1) not 1 (freq 3)
        assert!(cache.contains(1) && cache.contains(3));
        assert!(!cache.contains(2));
    }
}
