//! The prefix-KV cache: shared prompt prefixes, capacity in tokens.

use crate::{CacheCounters, Core, EvictionPolicy};
use serde::{Deserialize, Serialize};

/// Configuration of a [`PrefixKvCache`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PrefixKvCacheConfig {
    /// Total KV tokens the cache can hold. Zero disables the cache (every
    /// access misses and nothing is ever inserted).
    pub capacity_tokens: u64,
    /// Replacement policy.
    pub policy: EvictionPolicy,
}

impl PrefixKvCacheConfig {
    /// Creates a configuration.
    pub fn new(capacity_tokens: u64, policy: EvictionPolicy) -> Self {
        Self {
            capacity_tokens,
            policy,
        }
    }
}

/// Outcome of one prefix-cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PrefixLookup {
    /// Whether the prefix id was resident.
    pub hit: bool,
    /// Tokens of the requested shared prefix already cached (zero on a
    /// miss; at most the requested token count). Prefill only has to
    /// process the remaining suffix.
    pub hit_tokens: u32,
    /// Entries evicted to make room during this access.
    pub evictions: u32,
    /// Whether the access inserted a new entry.
    pub inserted: bool,
}

/// A deterministic prefix-KV cache simulator. See the crate docs for the
/// model; [`PrefixKvCache::access`] is the replay API the serving engine
/// calls at event time, in event order.
///
/// # Examples
///
/// ```
/// use rago_cache::{EvictionPolicy, PrefixKvCache, PrefixKvCacheConfig};
///
/// let mut cache = PrefixKvCache::new(PrefixKvCacheConfig::new(512, EvictionPolicy::Lru));
/// assert!(!cache.access(1, 256).hit);
/// assert!(!cache.access(2, 256).hit);
/// // Capacity is full; a third template evicts the least-recent one.
/// let third = cache.access(3, 256);
/// assert!(third.inserted && third.evictions == 1);
/// assert!(!cache.contains(1));
/// assert_eq!(cache.used_tokens(), 512);
/// ```
#[derive(Debug, Clone)]
pub struct PrefixKvCache {
    config: PrefixKvCacheConfig,
    core: Core,
    counters: CacheCounters,
}

impl PrefixKvCache {
    /// Creates an empty (cold) cache.
    pub fn new(config: PrefixKvCacheConfig) -> Self {
        Self {
            config,
            core: Core::new(config.capacity_tokens, config.policy),
            counters: CacheCounters::default(),
        }
    }

    /// The configuration the cache was built with.
    pub fn config(&self) -> &PrefixKvCacheConfig {
        &self.config
    }

    /// Accesses the cache for `prefix_id`, whose shared template spans
    /// `tokens` KV tokens. On a hit, up to `tokens` resident tokens are
    /// served (the caller charges prefill only for the remainder) and an
    /// entry shorter than `tokens` grows — the freshly computed suffix is
    /// cached too. On a miss the entry is inserted (evicting under the
    /// policy) unless it cannot fit at all. Zero-token or zero-capacity
    /// accesses are pure misses.
    pub fn access(&mut self, prefix_id: u64, tokens: u32) -> PrefixLookup {
        let out = self.core.access(prefix_id, u64::from(tokens));
        let lookup = PrefixLookup {
            hit: out.hit,
            hit_tokens: out.hit_size.min(u64::from(tokens)) as u32,
            evictions: out.evictions,
            inserted: out.inserted,
        };
        self.counters.lookups += 1;
        self.counters.hits += u64::from(lookup.hit);
        self.counters.insertions += u64::from(lookup.inserted);
        self.counters.evictions += u64::from(lookup.evictions);
        self.counters.tokens_saved += u64::from(lookup.hit_tokens);
        lookup
    }

    /// Whether `prefix_id` is currently resident (no counter side effects —
    /// this is what cache-affinity routing probes).
    pub fn contains(&self, prefix_id: u64) -> bool {
        self.core.contains(prefix_id)
    }

    /// Lifetime hit/miss/eviction counters.
    pub fn counters(&self) -> &CacheCounters {
        &self.counters
    }

    /// KV tokens currently resident.
    pub fn used_tokens(&self) -> u64 {
        self.core.used
    }

    /// Resident entries (distinct prefix ids).
    pub fn len(&self) -> usize {
        self.core.entries.len()
    }

    /// Whether the cache holds no entries.
    pub fn is_empty(&self) -> bool {
        self.core.entries.is_empty()
    }

    /// Replays a whole access sequence of `(prefix_id, tokens)` pairs
    /// against a fresh cache of `config` and returns the final counters —
    /// the offline analysis twin of calling [`PrefixKvCache::access`] from a
    /// discrete-event loop.
    pub fn replay(
        config: PrefixKvCacheConfig,
        accesses: impl IntoIterator<Item = (u64, u32)>,
    ) -> CacheCounters {
        let mut cache = PrefixKvCache::new(config);
        for (id, tokens) in accesses {
            cache.access(id, tokens);
        }
        cache.counters
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(tokens: u64, policy: EvictionPolicy) -> PrefixKvCacheConfig {
        PrefixKvCacheConfig::new(tokens, policy)
    }

    #[test]
    fn hit_serves_resident_tokens_only() {
        let mut cache = PrefixKvCache::new(cfg(1000, EvictionPolicy::Lru));
        cache.access(5, 300);
        let hit = cache.access(5, 400);
        assert!(hit.hit);
        assert_eq!(hit.hit_tokens, 300);
        // The suffix got cached on the way through.
        assert_eq!(cache.access(5, 400).hit_tokens, 400);
        assert_eq!(cache.used_tokens(), 400);
    }

    #[test]
    fn counters_track_the_access_stream() {
        let mut cache = PrefixKvCache::new(cfg(600, EvictionPolicy::Lru));
        cache.access(1, 300);
        cache.access(2, 300);
        cache.access(1, 300); // hit
        cache.access(3, 300); // evicts 2
        let c = cache.counters();
        assert_eq!(c.lookups, 4);
        assert_eq!(c.hits, 1);
        assert_eq!(c.insertions, 3);
        assert_eq!(c.evictions, 1);
        assert_eq!(c.tokens_saved, 300);
        assert_eq!(c.misses(), 3);
    }

    #[test]
    fn zero_capacity_is_disabled() {
        let mut cache = PrefixKvCache::new(cfg(0, EvictionPolicy::Lfu));
        for _ in 0..5 {
            let out = cache.access(9, 100);
            assert!(!out.hit && !out.inserted);
            assert_eq!(out.hit_tokens, 0);
        }
        assert_eq!(cache.counters().hits, 0);
        assert!(cache.is_empty());
    }

    #[test]
    fn replay_matches_incremental_access() {
        let accesses: Vec<(u64, u32)> = (0..200u64)
            .map(|i| (i % 7, 100 + (i as u32 % 3) * 50))
            .collect();
        let replayed = PrefixKvCache::replay(cfg(500, EvictionPolicy::Lfu), accesses.clone());
        let mut cache = PrefixKvCache::new(cfg(500, EvictionPolicy::Lfu));
        for (id, tokens) in accesses {
            cache.access(id, tokens);
        }
        assert_eq!(replayed, *cache.counters());
    }

    #[test]
    fn skewed_streams_hit_more_than_uniform_ones() {
        // The whole point of the subsystem: popularity skew ⇒ hit rate.
        let capacity = cfg(1000, EvictionPolicy::Lru);
        let skewed: Vec<(u64, u32)> = (0..300u64).map(|i| (i % 3, 250)).collect();
        let uniform: Vec<(u64, u32)> = (0..300u64).map(|i| (i % 30, 250)).collect();
        let hot = PrefixKvCache::replay(capacity, skewed);
        let cold = PrefixKvCache::replay(capacity, uniform);
        assert!(hot.hit_rate() > 0.9, "skewed hit rate {}", hot.hit_rate());
        assert!(hot.hit_rate() > cold.hit_rate());
    }
}
