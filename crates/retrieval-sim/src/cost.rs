//! Result type of the retrieval cost evaluation.

use rago_hardware::OperatorCost;
use serde::{Deserialize, Serialize};

/// Cost of executing one batch of retrieval query vectors against the
/// (possibly sharded) database.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievalCost {
    /// Latency of completing the whole query batch, in seconds.
    pub latency_s: f64,
    /// Steady-state throughput in query vectors per second across the
    /// allocated servers when batches are issued back to back.
    pub throughput_qps: f64,
    /// Bytes of database content scanned per query vector (across all
    /// shards and all tree levels).
    pub scanned_bytes_per_query: f64,
    /// Number of CPU servers the database is sharded across.
    pub num_servers: u32,
    /// Number of query vectors in the batch that was costed.
    pub query_batch: u32,
    /// Per-level scan operator breakdown for one query on one shard.
    pub operators: Vec<OperatorCost>,
}

impl RetrievalCost {
    /// Throughput expressed in *retrievals* per second, where one retrieval
    /// issues `queries_per_retrieval` query vectors.
    pub fn retrievals_per_second(&self, queries_per_retrieval: u32) -> f64 {
        self.throughput_qps / f64::from(queries_per_retrieval.max(1))
    }

    /// Latency of one retrieval (the batch latency — all query vectors of the
    /// batch complete together).
    pub fn retrieval_latency_s(&self) -> f64 {
        self.latency_s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn retrievals_per_second_divides_by_query_count() {
        let c = RetrievalCost {
            latency_s: 0.01,
            throughput_qps: 100.0,
            scanned_bytes_per_query: 1e9,
            num_servers: 4,
            query_batch: 8,
            operators: vec![],
        };
        assert_eq!(c.retrievals_per_second(4), 25.0);
        assert_eq!(c.retrievals_per_second(0), 100.0); // clamped to 1
        assert_eq!(c.retrieval_latency_s(), 0.01);
    }
}
