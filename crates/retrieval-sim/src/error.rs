//! Error type for the retrieval cost model.

use std::error::Error;
use std::fmt;

/// Error raised when a retrieval configuration cannot be evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum RetrievalSimError {
    /// The requested configuration is invalid (zero batch, zero servers, …).
    InvalidConfig {
        /// Why the configuration was rejected.
        reason: String,
    },
    /// The sharded database does not fit in the allocated servers' DRAM.
    OutOfMemory {
        /// Bytes required by the quantized database.
        required_bytes: f64,
        /// Bytes of DRAM available across the allocated servers.
        available_bytes: f64,
    },
}

impl fmt::Display for RetrievalSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RetrievalSimError::InvalidConfig { reason } => {
                write!(f, "invalid retrieval configuration: {reason}")
            }
            RetrievalSimError::OutOfMemory {
                required_bytes,
                available_bytes,
            } => write!(
                f,
                "database does not fit in host memory: needs {:.2} GB, servers provide {:.2} GB",
                required_bytes / 1e9,
                available_bytes / 1e9
            ),
        }
    }
}

impl Error for RetrievalSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RetrievalSimError::OutOfMemory {
            required_bytes: 6.1e12,
            available_bytes: 3.0e12,
        };
        assert!(e.to_string().contains("6100.00 GB"));
        let e = RetrievalSimError::InvalidConfig {
            reason: "zero servers".into(),
        };
        assert!(e.to_string().contains("zero servers"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RetrievalSimError>();
    }
}
