//! Calibration of the retrieval cost model against the in-workspace PQ
//! implementation.
//!
//! The paper populates its retrieval model by benchmarking ScaNN's PQ-code
//! scanning throughput on real CPUs (18 GB/s per core on EPYC 7R13). We do
//! the same against [`rago_vectordb::ProductQuantizer::scan`]: measure how
//! many bytes of PQ codes one thread scans per second, and produce a
//! [`CpuServerSpec`] with that measured constant. Our scalar Rust scanner is
//! slower than ScaNN's SIMD kernels, which only shifts absolute retrieval
//! latencies — the bottleneck *structure* studied in the paper is preserved.

use rago_hardware::CpuServerSpec;
use rago_vectordb::{ProductQuantizer, SyntheticDataset};
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Result of a scan-throughput calibration run.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CalibrationReport {
    /// Measured single-thread PQ-code scan throughput in GB/s.
    pub scan_throughput_per_core_gbps: f64,
    /// Number of code bytes scanned during the measurement.
    pub bytes_scanned: f64,
    /// Wall-clock seconds the measurement took.
    pub elapsed_s: f64,
}

impl CalibrationReport {
    /// Produces a CPU-server spec identical to `base` but with the measured
    /// per-core scan throughput.
    pub fn apply_to(&self, base: &CpuServerSpec) -> CpuServerSpec {
        CpuServerSpec {
            scan_throughput_per_core_gbps: self.scan_throughput_per_core_gbps,
            ..base.clone()
        }
    }
}

/// Measures the single-thread ADC scan throughput of this workspace's PQ
/// implementation on a synthetic database of `num_vectors` 768-dimensional
/// vectors quantized to 96 bytes per vector (the paper's code size), repeating
/// the scan until at least `min_duration_s` of work has been timed.
///
/// The codebooks use 4 bits per code so that calibration stays fast even in
/// debug builds; the scanned byte count — which is what the throughput
/// constant measures — is identical to the 8-bit configuration.
///
/// # Panics
///
/// Panics if `num_vectors` is smaller than 256 (enough vectors to train the
/// codebooks and produce a scan long enough to time).
pub fn calibrate_scan_throughput(num_vectors: usize, min_duration_s: f64) -> CalibrationReport {
    assert!(
        num_vectors >= 256,
        "need at least 256 vectors to train the PQ codebooks"
    );
    let dim = 768;
    let subspaces = 96;
    let data = SyntheticDataset::clustered(num_vectors, dim, 32, 0xCA11B).vectors;
    let pq = ProductQuantizer::train(dim, subspaces, 4, &data[..num_vectors.min(512)], 7)
        .expect("PQ training on the calibration dataset always succeeds");
    let codes = pq.encode_batch(&data);
    let query = data[0].clone();
    let table = pq.build_lookup_table(&query);

    let mut bytes_scanned = 0.0f64;
    let start = Instant::now();
    let mut elapsed = 0.0;
    while elapsed < min_duration_s {
        let hits = pq.scan(&table, &codes, None, 10);
        std::hint::black_box(&hits);
        bytes_scanned += codes.len() as f64;
        elapsed = start.elapsed().as_secs_f64();
    }
    CalibrationReport {
        scan_throughput_per_core_gbps: bytes_scanned / elapsed / 1e9,
        bytes_scanned,
        elapsed_s: elapsed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn calibration_produces_a_positive_rate() {
        let report = calibrate_scan_throughput(2_000, 0.05);
        assert!(report.scan_throughput_per_core_gbps > 0.0);
        assert!(report.bytes_scanned > 0.0);
        assert!(report.elapsed_s >= 0.05);
        // A scalar scanner should land somewhere between 10 MB/s and 50 GB/s.
        assert!(report.scan_throughput_per_core_gbps < 50.0);
        assert!(report.scan_throughput_per_core_gbps > 0.01);
    }

    #[test]
    fn report_applies_to_a_server_spec() {
        let report = CalibrationReport {
            scan_throughput_per_core_gbps: 2.5,
            bytes_scanned: 1e9,
            elapsed_s: 0.4,
        };
        let spec = report.apply_to(&CpuServerSpec::epyc_milan());
        assert_eq!(spec.scan_throughput_per_core_gbps, 2.5);
        assert_eq!(spec.cores, 96);
    }

    #[test]
    #[should_panic(expected = "256")]
    fn tiny_calibration_sets_are_rejected() {
        let _ = calibrate_scan_throughput(100, 0.01);
    }
}
