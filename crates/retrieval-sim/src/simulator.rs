//! The retrieval cost simulator.

use crate::cost::RetrievalCost;
use crate::error::RetrievalSimError;
use rago_hardware::{CpuServerSpec, OperatorCost, OperatorKind};
use rago_schema::{RetrievalConfig, SearchMode};
use serde::{Deserialize, Serialize};

/// Bytes per full-precision vector element (f32), used to cost centroid scans
/// and brute-force search.
const FLOAT_BYTES: f64 = 4.0;

/// Fixed per-query software overhead (request handling, priority-queue
/// maintenance, result aggregation), in seconds.
const PER_QUERY_OVERHEAD_S: f64 = 2e-4;

/// Evaluates the cost of vector-search retrievals on CPU host servers using
/// the ScaNN performance model of the paper (§4(b)).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RetrievalSimulator {
    /// Host server specification (cores, DRAM bandwidth, per-core scan rate).
    pub cpu: CpuServerSpec,
}

impl RetrievalSimulator {
    /// Creates a simulator over the paper's default EPYC-Milan host.
    pub fn new(cpu: CpuServerSpec) -> Self {
        Self { cpu }
    }

    /// Checks that the quantized database fits in the DRAM of `num_servers`
    /// hosts (leaving 20 % headroom for the index and the OS).
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalSimError::OutOfMemory`] when it does not fit.
    pub fn check_capacity(
        &self,
        config: &RetrievalConfig,
        num_servers: u32,
    ) -> Result<(), RetrievalSimError> {
        let available = self.cpu.dram_capacity_bytes() * f64::from(num_servers) * 0.8;
        let required = config.database_bytes();
        if required > available {
            return Err(RetrievalSimError::OutOfMemory {
                required_bytes: required,
                available_bytes: available,
            });
        }
        Ok(())
    }

    /// Minimum number of servers (power of two) able to hold the database.
    pub fn min_servers(&self, config: &RetrievalConfig) -> u32 {
        let per_server = self.cpu.dram_capacity_bytes() * 0.8;
        let mut servers = 1u32;
        while f64::from(servers) * per_server < config.database_bytes() && servers < u32::MAX / 2 {
            servers *= 2;
        }
        servers
    }

    /// Costs one batch of `query_batch` query vectors against the database
    /// sharded over `num_servers` servers.
    ///
    /// # Errors
    ///
    /// Returns [`RetrievalSimError::InvalidConfig`] for a zero batch or zero
    /// servers, and [`RetrievalSimError::OutOfMemory`] when the database does
    /// not fit on the allocated servers.
    pub fn retrieval_cost(
        &self,
        config: &RetrievalConfig,
        query_batch: u32,
        num_servers: u32,
    ) -> Result<RetrievalCost, RetrievalSimError> {
        if query_batch == 0 {
            return Err(RetrievalSimError::InvalidConfig {
                reason: "query batch must be at least 1".into(),
            });
        }
        if num_servers == 0 {
            return Err(RetrievalSimError::InvalidConfig {
                reason: "at least one retrieval server is required".into(),
            });
        }
        config
            .validate()
            .map_err(|e| RetrievalSimError::InvalidConfig {
                reason: e.to_string(),
            })?;
        self.check_capacity(config, num_servers)?;

        // Per-level bytes scanned by ONE query on ONE shard.
        let per_level_bytes = self.per_level_scan_bytes(config, num_servers);
        let scanned_bytes_per_query_total: f64 =
            per_level_bytes.iter().sum::<f64>() * f64::from(num_servers);

        // ScaNN parallelizes a batch with one thread per query; a shard
        // processes the whole batch at the roofline of min(batch, cores)
        // threads, capped by DRAM bandwidth.
        let cores_used = query_batch.min(self.cpu.cores);
        let roofline = self.cpu.scan_roofline_with_cores(cores_used);
        let batch = f64::from(query_batch);

        let mut operators = Vec::with_capacity(per_level_bytes.len() + 1);
        for (level, &bytes) in per_level_bytes.iter().enumerate() {
            let batch_bytes = bytes * batch;
            operators.push(OperatorCost::from_roofline(
                format!("level{}_scan", level + 1),
                OperatorKind::Scan,
                &roofline,
                batch_bytes,
                batch_bytes,
            ));
        }
        operators.push(OperatorCost::fixed(
            "query_overhead",
            OperatorKind::Other,
            PER_QUERY_OVERHEAD_S * (batch / f64::from(cores_used)).ceil(),
        ));

        // All shards work in parallel on the same queries; the batch latency
        // is the per-shard latency (shards are balanced).
        let latency = OperatorCost::total_seconds(&operators);

        // Steady-state throughput at this batch size: batches are issued back
        // to back, and every shard must process every query, so the system
        // throughput equals the per-shard batch rate (never exceeding the
        // full-socket roofline captured by `max_throughput_qps`).
        let throughput_qps = batch / latency.max(1e-12);

        Ok(RetrievalCost {
            latency_s: latency,
            throughput_qps,
            scanned_bytes_per_query: scanned_bytes_per_query_total,
            num_servers,
            query_batch,
            operators,
        })
    }

    /// The highest steady-state query throughput achievable on `num_servers`
    /// (queries per second), independent of batch size.
    pub fn max_throughput_qps(&self, config: &RetrievalConfig, num_servers: u32) -> f64 {
        let per_level = self.per_level_scan_bytes(config, num_servers);
        let per_query_shard_bytes: f64 = per_level.iter().sum();
        if per_query_shard_bytes <= 0.0 {
            return f64::INFINITY;
        }
        let r = self.cpu.scan_roofline();
        r.compute.min(r.memory_bandwidth) / per_query_shard_bytes
    }

    /// Bytes scanned per query on one shard, by tree level (leaf last).
    fn per_level_scan_bytes(&self, config: &RetrievalConfig, num_servers: u32) -> Vec<f64> {
        let shard = f64::from(num_servers.max(1));
        match config.mode {
            SearchMode::BruteForce => {
                // Full-precision exhaustive scan of the shard.
                vec![config.num_vectors as f64 * f64::from(config.dim) * FLOAT_BYTES / shard]
            }
            SearchMode::IvfPq { tree_levels } => {
                let levels = tree_levels.max(1);
                let n = config.num_vectors as f64 / shard;
                // Invariant (unwrap audit): `tree_fanout` returns `Some`
                // for every `IvfPq` config by construction — `None` is the
                // brute-force arm, which this match arm cannot see. The old
                // `unwrap_or(1.0)` silently degraded the cost model to a
                // flat tree if that invariant ever broke; fail loudly
                // instead.
                let fanout = config
                    .tree_fanout()
                    .expect("IvfPq search mode always has a tree fanout");
                let mut bytes = Vec::with_capacity(levels as usize);
                // Intermediate levels store full-precision centroids; the
                // query scans every node of level 1 and a narrowing subset of
                // deeper levels, ending with `scan_fraction` of the leaves.
                for level in 1..=levels {
                    let nodes_at_level = (n / fanout.powi((levels - level) as i32)).max(1.0);
                    let is_leaf = level == levels;
                    let scanned_nodes = if is_leaf {
                        n * config.scan_fraction
                    } else if level == 1 {
                        nodes_at_level
                    } else {
                        // Deeper internal levels: scan the children of the
                        // selected parents, at least one fanout's worth and at
                        // most the scan fraction of that level.
                        (nodes_at_level * config.scan_fraction).max(fanout)
                    };
                    let bytes_per_node = if is_leaf {
                        f64::from(config.bytes_per_vector)
                    } else {
                        f64::from(config.dim) * FLOAT_BYTES
                    };
                    bytes.push(scanned_nodes.min(nodes_at_level) * bytes_per_node);
                }
                bytes
            }
        }
    }
}

impl Default for RetrievalSimulator {
    fn default() -> Self {
        RetrievalSimulator::new(CpuServerSpec::epyc_milan())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> RetrievalSimulator {
        RetrievalSimulator::default()
    }

    #[test]
    fn hyperscale_database_needs_many_servers() {
        let s = sim();
        let cfg = RetrievalConfig::hyperscale_64b();
        // 6.1 TB over 384 GB/server with 20% headroom → 16+ servers, power of 2 → 32.
        let min = s.min_servers(&cfg);
        assert!(min >= 16, "min_servers = {min}");
        assert!(s.check_capacity(&cfg, min).is_ok());
        assert!(s.check_capacity(&cfg, 4).is_err());
    }

    #[test]
    fn leaf_scan_dominates_hyperscale_retrieval() {
        let s = sim();
        let cfg = RetrievalConfig::hyperscale_64b();
        let cost = s.retrieval_cost(&cfg, 1, 32).unwrap();
        let leaf = cost
            .operators
            .iter()
            .find(|o| o.name == "level3_scan")
            .expect("three-level tree has a leaf scan");
        let total_scan: f64 = cost
            .operators
            .iter()
            .filter(|o| o.kind == OperatorKind::Scan)
            .map(|o| o.seconds)
            .sum();
        assert!(leaf.seconds / total_scan > 0.9);
        // The leaf level scans ~0.1% of the 6.1 TB database across shards.
        assert!(
            (cost.scanned_bytes_per_query - 6.32e9).abs() < 0.5e9,
            "scanned {:.3e}",
            cost.scanned_bytes_per_query
        );
    }

    #[test]
    fn latency_is_flat_below_core_count_then_grows() {
        // ScaNN uses one thread per query: below ~16 queries the batch latency
        // stays near the single-query latency (Fig. 19a observation), and at
        // very large batches it grows roughly linearly.
        let s = sim();
        let cfg = RetrievalConfig::hyperscale_64b();
        let l1 = s.retrieval_cost(&cfg, 1, 32).unwrap().latency_s;
        let l8 = s.retrieval_cost(&cfg, 8, 32).unwrap().latency_s;
        let l256 = s.retrieval_cost(&cfg, 256, 32).unwrap().latency_s;
        assert!((l8 / l1) < 1.5, "l8/l1 = {}", l8 / l1);
        assert!(l256 > l8 * 4.0, "l256/l8 = {}", l256 / l8);
    }

    #[test]
    fn throughput_saturates_at_memory_bandwidth() {
        let s = sim();
        let cfg = RetrievalConfig::hyperscale_64b();
        let max = s.max_throughput_qps(&cfg, 32);
        // 368 GB/s effective per server / (6.144 GB / 32 shards) ≈ 1.9K QPS.
        assert!((1_000.0..4_000.0).contains(&max), "max qps {max}");
        // Larger shard counts reduce per-shard bytes and raise throughput.
        assert!(s.max_throughput_qps(&cfg, 64) > max);
    }

    #[test]
    fn scan_fraction_controls_cost_linearly() {
        let s = sim();
        let base = RetrievalConfig::hyperscale_64b();
        let heavy = base.clone().with_scan_fraction(0.01);
        let light = base.clone().with_scan_fraction(0.0001);
        let c_base = s.retrieval_cost(&base, 16, 32).unwrap();
        let c_heavy = s.retrieval_cost(&heavy, 16, 32).unwrap();
        let c_light = s.retrieval_cost(&light, 16, 32).unwrap();
        assert!(c_heavy.latency_s > c_base.latency_s * 5.0);
        assert!(c_light.latency_s < c_base.latency_s * 0.5);
    }

    #[test]
    fn brute_force_small_database_is_cheap() {
        // Case II: 1M-token context → ~7.8K vectors of 768 f32 dims ≈ 24 MB.
        let s = sim();
        let cfg = RetrievalConfig::long_context(1_000_000, 128, 768);
        let cost = s.retrieval_cost(&cfg, 1, 1).unwrap();
        assert!(cost.latency_s < 5e-3, "latency {}", cost.latency_s);
        let hyper = s
            .retrieval_cost(&RetrievalConfig::hyperscale_64b(), 1, 32)
            .unwrap();
        assert!(cost.latency_s < hyper.latency_s / 5.0);
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let s = sim();
        let cfg = RetrievalConfig::hyperscale_64b();
        assert!(matches!(
            s.retrieval_cost(&cfg, 0, 32),
            Err(RetrievalSimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            s.retrieval_cost(&cfg, 1, 0),
            Err(RetrievalSimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            s.retrieval_cost(&cfg, 1, 2),
            Err(RetrievalSimError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn more_servers_reduce_latency() {
        let s = sim();
        let cfg = RetrievalConfig::hyperscale_64b();
        let l32 = s.retrieval_cost(&cfg, 64, 32).unwrap().latency_s;
        let l64 = s.retrieval_cost(&cfg, 64, 64).unwrap().latency_s;
        assert!(l64 < l32);
    }
}
