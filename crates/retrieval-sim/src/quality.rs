//! Retrieval-quality (recall) estimation as a function of the scanned
//! database fraction.
//!
//! The paper tunes the scanned fraction `P_scan` by measuring recall on
//! sample queries and choosing the smallest fraction meeting the quality
//! target (§3.3); 0.1 % is reported to exceed 90 % recall on billion-scale
//! datasets. We provide a simple saturating model of that relationship so the
//! sensitivity sweeps (Fig. 7b) can annotate scan fractions with approximate
//! recall. The constants are fit so that recall(0.1 %) ≈ 0.9 and
//! recall(1 %) ≈ 0.99 on a well-clustered corpus.

/// Estimated recall@k of an IVF search that scans `scan_fraction` of the
/// database, for a corpus whose clustering quality is summarised by
/// `clustering_sharpness` (1.0 = the paper's default corpus behaviour; larger
/// is easier, smaller is harder).
///
/// The estimate follows a saturating exponential in the log of the scanned
/// fraction and is clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `scan_fraction` is not in `(0, 1]` or the sharpness is not
/// positive.
///
/// # Examples
///
/// ```
/// use rago_retrieval_sim::recall_estimate;
/// let r_default = recall_estimate(0.001, 1.0);
/// assert!(r_default > 0.85 && r_default < 0.95);
/// assert!(recall_estimate(0.01, 1.0) > r_default);
/// ```
pub fn recall_estimate(scan_fraction: f64, clustering_sharpness: f64) -> f64 {
    assert!(
        scan_fraction > 0.0 && scan_fraction <= 1.0,
        "scan_fraction must be in (0, 1]"
    );
    assert!(
        clustering_sharpness > 0.0,
        "clustering_sharpness must be positive"
    );
    // recall = 1 - exp(-a * (p / p0)^b): with p0 = 0.1% and the constants
    // below, recall(0.01%) ~ 0.54, recall(0.1%) ~ 0.90, recall(1%) ~ 0.997.
    let p0 = 1e-3;
    let a = 2.3 * clustering_sharpness;
    let b = 0.45;
    let recall = 1.0 - (-a * (scan_fraction / p0).powf(b)).exp();
    recall.clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_corpus_hits_paper_anchor_points() {
        assert!(recall_estimate(0.001, 1.0) >= 0.88);
        assert!(recall_estimate(0.01, 1.0) >= 0.98);
        assert!(recall_estimate(0.0001, 1.0) < 0.7);
    }

    #[test]
    fn recall_is_monotone_in_scan_fraction() {
        let fractions = [1e-4, 3e-4, 1e-3, 3e-3, 1e-2, 1e-1, 1.0];
        for w in fractions.windows(2) {
            assert!(recall_estimate(w[1], 1.0) >= recall_estimate(w[0], 1.0));
        }
    }

    #[test]
    fn harder_datasets_need_more_scanning() {
        // The paper notes the same configuration can give >90% recall on one
        // dataset and <50% on another; sharpness models that spread.
        assert!(recall_estimate(0.001, 0.25) < 0.5);
        assert!(recall_estimate(0.001, 2.0) > 0.97);
    }

    #[test]
    fn full_scan_approaches_perfect_recall() {
        assert!(recall_estimate(1.0, 1.0) > 0.999);
    }

    #[test]
    #[should_panic(expected = "scan_fraction")]
    fn zero_fraction_panics() {
        let _ = recall_estimate(0.0, 1.0);
    }
}
