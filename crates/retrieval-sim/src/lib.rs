//! ScaNN-style retrieval performance model for the RAGO reproduction.
//!
//! Implements the retrieval half of the paper's analytical cost model
//! (§4(b)): a query descends a multi-level tree index, executing a vector
//! *scan operator* at each level; each scan is costed with a roofline over the
//! host CPU's per-core PQ-scanning throughput and its memory bandwidth. ScaNN
//! assigns one thread per query, so small query batches cannot use the whole
//! socket; large databases are sharded across servers and every query is
//! processed by all shards.
//!
//! Two search modes are covered, matching [`rago_schema::SearchMode`]:
//! tree-based IVF-PQ search over quantized codes (Case I/III/IV's 64-billion
//! vector corpus) and brute-force full-precision search (Case II's tiny
//! per-request databases).
//!
//! The per-core scan-throughput constant defaults to the paper's calibrated
//! 18 GB/s but can be re-derived from this workspace's own PQ implementation
//! via [`calibrate::calibrate_scan_throughput`].
//!
//! # Examples
//!
//! ```
//! use rago_retrieval_sim::RetrievalSimulator;
//! use rago_schema::RetrievalConfig;
//!
//! let sim = RetrievalSimulator::default();
//! let cfg = RetrievalConfig::hyperscale_64b();
//! // One retrieval query, database sharded over 32 servers.
//! let cost = sim.retrieval_cost(&cfg, 1, 32)?;
//! assert!(cost.latency_s > 0.0);
//! assert!(cost.throughput_qps > 0.0);
//! # Ok::<(), rago_retrieval_sim::RetrievalSimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod calibrate;
pub mod cost;
pub mod error;
pub mod quality;
pub mod simulator;

pub use calibrate::{calibrate_scan_throughput, CalibrationReport};
pub use cost::RetrievalCost;
pub use error::RetrievalSimError;
pub use quality::recall_estimate;
pub use simulator::RetrievalSimulator;
