//! Fleet-level acceptance bench: attainment versus replica count, router
//! policy comparison, and a capacity-planning cross-check, written to
//! `BENCH_fleet.json` at the workspace root.
//!
//! Three studies over the case-1 (hyperscale retrieval) best-QPS/chip
//! schedule:
//!
//! 1. **Scaling** — SLO attainment across a shared offered-rate grid for
//!    fleets of 1..N replicas under least-outstanding routing, with the
//!    sustained-throughput knee per fleet size. Acceptance: the 2-replica
//!    knee is strictly above the 1-replica knee.
//! 2. **Routing** — every `RouterPolicy` at one fixed (replicas, rate)
//!    point: attainment, goodput, TTFT tail, and load imbalance.
//! 3. **Capacity planning** — `plan_capacity`'s binary search must agree
//!    with an exhaustive linear scan over the same replica grid.
//!
//! Set `RAGO_BENCH_QUICK=1` for a CI-friendly quick mode (smaller grid and
//! traces, same JSON shape). The bench asserts its acceptance criteria and
//! refuses to write JSON containing non-finite numbers, so CI can gate on
//! the file's presence and NaN-freeness.

use criterion::{criterion_group, criterion_main, Criterion};
use rago_core::{CapacityOptions, Rago, SearchOptions};
use rago_schema::presets::{self, LlmSize};
use rago_schema::{FleetConfig, RouterPolicy, SequenceProfile, SloTarget};
use rago_serving_sim::engine::sustained_throughput_knee;
use rago_workloads::{ArrivalProcess, TraceSpec};

struct ScalePoint {
    rate_rps: f64,
    attainment: f64,
    goodput_rps: f64,
}

struct ScaleSeries {
    replicas: u32,
    points: Vec<ScalePoint>,
    knee_rps: Option<f64>,
}

struct PolicyRow {
    policy: RouterPolicy,
    attainment: f64,
    goodput_rps: f64,
    ttft_p99_s: f64,
    imbalance_cv: f64,
    max_over_mean: f64,
}

/// Generates a Poisson trace spanning roughly `duration_s` of traffic at
/// `rate_rps`. Scaling the request count with the rate (instead of fixing
/// it) is what makes overload visible: a fixed-size trace at a high rate is
/// just a short burst the system drains within the SLO, whereas a
/// fixed-duration trace lets queueing accumulate at every overloaded rate.
fn trace_at(rate_rps: f64, duration_s: f64, profile: SequenceProfile) -> rago_workloads::Trace {
    TraceSpec {
        num_requests: (rate_rps * duration_s).ceil().max(1.0) as usize,
        profile,
        arrival: ArrivalProcess::Poisson { rate_rps },
        length_jitter: 0.2,
        seed: 17,
    }
    .generate()
}

fn fmt_policy(p: RouterPolicy) -> String {
    p.to_string()
}

fn bench_fleet_json(_c: &mut Criterion) {
    let quick = rago_bench::quick_mode();
    let slo = SloTarget::paper_default();
    let duration_s = if quick { 4.0 } else { 8.0 };
    let profile = SequenceProfile::paper_default().with_decode_tokens(64);

    let rago = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        rago_bench::default_cluster(),
    );
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("static search succeeds");
    let best = frontier
        .max_qps_per_chip()
        .expect("non-empty frontier")
        .clone();
    let static_qps = best.performance.qps.max(1e-9);

    // Study 1: attainment vs replica count on a shared absolute rate grid
    // (so knees are directly comparable across fleet sizes).
    let fractions: &[f64] = if quick {
        &[0.5, 1.0, 1.5, 2.0, 3.0]
    } else {
        &[0.25, 0.5, 0.75, 1.0, 1.25, 1.5, 2.0, 2.5, 3.0, 4.0]
    };
    let replica_counts: &[u32] = if quick { &[1, 2] } else { &[1, 2, 3, 4] };
    let mut series = Vec::new();
    for &replicas in replica_counts {
        let fleet = FleetConfig::new(replicas, RouterPolicy::LeastOutstanding);
        let mut points = Vec::new();
        for &f in fractions {
            let rate = f * static_qps;
            let eval = rago
                .evaluate_fleet(
                    &best.schedule,
                    &fleet,
                    &trace_at(rate, duration_s, profile),
                    &slo,
                )
                .expect("fleet evaluation succeeds");
            points.push(ScalePoint {
                rate_rps: rate,
                attainment: eval.attainment,
                goodput_rps: eval.goodput_rps,
            });
        }
        let knee_rps = sustained_throughput_knee(
            &points
                .iter()
                .map(|p| (p.rate_rps, p.attainment))
                .collect::<Vec<_>>(),
            &slo,
        );
        series.push(ScaleSeries {
            replicas,
            points,
            knee_rps,
        });
    }

    // Acceptance: a 2-replica fleet under least-outstanding routing
    // sustains strictly higher SLO-attaining QPS than 1 replica.
    let knee_1 = series[0].knee_rps.expect("1-replica fleet has a knee");
    let knee_2 = series[1].knee_rps.expect("2-replica fleet has a knee");
    assert!(
        knee_2 > knee_1,
        "2-replica knee {knee_2:.2} rps must beat the 1-replica knee {knee_1:.2} rps"
    );

    // Study 2: router policies at a fixed operating point — enough load
    // that routing matters (beyond one replica's knee, below the fleet's).
    let policy_replicas: u32 = if quick { 2 } else { 3 };
    let policy_rate = 0.8 * f64::from(policy_replicas) * static_qps;
    let policy_trace = trace_at(policy_rate, duration_s, profile);
    let mut policy_rows = Vec::new();
    for policy in RouterPolicy::ALL {
        let eval = rago
            .evaluate_fleet(
                &best.schedule,
                &FleetConfig::new(policy_replicas, policy),
                &policy_trace,
                &slo,
            )
            .expect("fleet evaluation succeeds");
        policy_rows.push(PolicyRow {
            policy,
            attainment: eval.attainment,
            goodput_rps: eval.goodput_rps,
            ttft_p99_s: eval.report.merged.metrics.ttft.p99_s,
            imbalance_cv: eval.report.imbalance.coefficient_of_variation,
            max_over_mean: eval.report.imbalance.max_over_mean,
        });
    }

    // Study 3: plan_capacity vs an exhaustive linear scan over the same
    // replica grid, trace, and router.
    let target_qps = 2.0 * static_qps;
    let capacity = CapacityOptions {
        max_replicas: if quick { 4 } else { 6 },
        num_requests: (target_qps * duration_s).ceil() as usize,
        profile,
        ..CapacityOptions::default()
    };
    let plan = rago
        .plan_capacity(&best.schedule, &slo, target_qps, &capacity)
        .expect("the target rate is plannable within the replica bound");
    let scan_trace = TraceSpec {
        num_requests: capacity.num_requests,
        profile: capacity.profile,
        arrival: ArrivalProcess::Poisson {
            rate_rps: target_qps,
        },
        length_jitter: capacity.length_jitter,
        seed: capacity.seed,
    }
    .generate();
    let linear_scan = (1..=capacity.max_replicas)
        .find(|&n| {
            rago.evaluate_fleet(
                &best.schedule,
                &FleetConfig::new(n, capacity.router),
                &scan_trace,
                &slo,
            )
            .expect("fleet evaluation succeeds")
            .meets_slo
        })
        .expect("some count within the bound meets the SLO");
    assert_eq!(
        plan.replicas, linear_scan,
        "binary search disagrees with the exhaustive scan"
    );

    let json = render_json(
        &slo,
        &best.schedule.describe(),
        static_qps,
        duration_s,
        &series,
        policy_replicas,
        policy_rate,
        &policy_rows,
        target_qps,
        plan.replicas,
        linear_scan,
        plan.attainment,
        plan.total_xpus,
        knee_1,
        knee_2,
    );
    assert!(
        !json.to_ascii_lowercase().contains("nan") && !json.contains("inf"),
        "refusing to write non-finite fleet metrics"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_fleet.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    slo: &SloTarget,
    schedule: &str,
    static_qps: f64,
    trace_duration_s: f64,
    series: &[ScaleSeries],
    policy_replicas: u32,
    policy_rate: f64,
    policy_rows: &[PolicyRow],
    target_qps: f64,
    planned_replicas: u32,
    linear_scan_replicas: u32,
    plan_attainment: f64,
    plan_total_xpus: u32,
    knee_1: f64,
    knee_2: f64,
) -> String {
    let series_json = series
        .iter()
        .map(|s| {
            let points = s
                .points
                .iter()
                .map(|p| {
                    format!(
                        "        {{\"rate_rps\": {:.3}, \"attainment\": {:.4}, \
                         \"goodput_rps\": {:.3}}}",
                        p.rate_rps, p.attainment, p.goodput_rps
                    )
                })
                .collect::<Vec<_>>()
                .join(",\n");
            format!(
                "    {{\"replicas\": {}, \"knee_rps\": {}, \"points\": [\n{}\n    ]}}",
                s.replicas,
                s.knee_rps
                    .map(|k| format!("{k:.3}"))
                    .unwrap_or_else(|| "null".into()),
                points
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    let policies_json = policy_rows
        .iter()
        .map(|r| {
            format!(
                "      {{\"policy\": \"{}\", \"attainment\": {:.4}, \"goodput_rps\": {:.3}, \
                 \"ttft_p99_s\": {:.6}, \"imbalance_cv\": {:.4}, \"max_over_mean\": {:.4}}}",
                fmt_policy(r.policy),
                r.attainment,
                r.goodput_rps,
                r.ttft_p99_s,
                r.imbalance_cv,
                r.max_over_mean
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"bench\": \"fleet_scaling/cluster\",\n  \"trace_duration_s\": {trace_duration_s:.1},\n  \
         \"slo\": {{\"ttft_s\": {:.3}, \"tpot_s\": {:.3}, \"attainment\": {:.2}}},\n  \
         \"schedule\": \"{schedule}\",\n  \"static_qps\": {static_qps:.3},\n  \
         \"attainment_vs_replicas\": [\n{series_json}\n  ],\n  \
         \"router_comparison\": {{\n    \"replicas\": {policy_replicas}, \"rate_rps\": {policy_rate:.3},\n    \"policies\": [\n{policies_json}\n    ]\n  }},\n  \
         \"capacity_plan\": {{\"target_qps\": {target_qps:.3}, \"planned_replicas\": {planned_replicas}, \
         \"linear_scan_replicas\": {linear_scan_replicas}, \"agrees\": {}, \
         \"attainment\": {plan_attainment:.4}, \"total_xpus\": {plan_total_xpus}}},\n  \
         \"acceptance\": {{\"knee_1_replica_rps\": {knee_1:.3}, \"knee_2_replicas_rps\": {knee_2:.3}, \
         \"two_replicas_beat_one\": {}}}\n}}\n",
        slo.ttft_s,
        slo.tpot_s,
        slo.attainment,
        planned_replicas == linear_scan_replicas,
        knee_2 > knee_1,
    )
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_fleet_json
}
criterion_main!(benches);
