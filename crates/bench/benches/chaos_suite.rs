//! Chaos acceptance bench: predictive-versus-reactive scaling and
//! crash-at-peak degradation under admission control, written to
//! `BENCH_chaos.json` at the workspace root.
//!
//! Three runs over the same optimized schedule:
//!
//! * **Reactive** — an [`AutoscalerPolicy`] follows a diurnal-shaped
//!   piecewise rate profile by watching queue depth, paying the warm-up
//!   lag at every ramp.
//! * **Predictive** — the *same* profile is handed to
//!   `plan_capacity_profile`, its per-interval replica schedule becomes a
//!   feed-forward [`ScalingPlan`] (`scaling_plan_from_profile`, led by the
//!   warm-up time), and the fleet executes it open-loop.
//! * **Crash at peak** — a three-priority tenant mix on a static fleet
//!   loses one replica at the traffic peak with admission control on, and
//!   is compared against the identical run without the fault.
//!
//! Acceptance (asserted, and gated by CI on the JSON flags):
//!
//! * `predictive_beats_reactive` — the predictive run serves the profile
//!   at no worse offered attainment than the reactive run for no more
//!   chip-hours.
//! * `degradation_proportional` — the highest-priority class's attainment
//!   drop under the crash stays below the fleet share of the lost replica.
//! * `matches_baseline` — with no faults and no admission the chaos
//!   engine's report is bit-identical to the time-varying evaluation.
//!
//! Set `RAGO_BENCH_QUICK=1` for the CI-friendly quick mode (shorter
//! profile, same JSON shape). The bench refuses to write non-finite
//! numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use rago_core::faulted::{scaling_plan_from_profile, FaultScenario, FaultedEvaluation};
use rago_core::{CapacityOptions, Rago, SearchOptions};
use rago_schema::presets::{self, LlmSize};
use rago_schema::{FleetConfig, RouterPolicy, SequenceProfile, SloTarget};
use rago_serving_sim::autoscaler::AutoscalerPolicy;
use rago_serving_sim::faults::{
    AdmissionConfig, FaultEvent, FaultSchedule, PredictivePolicy, ScaleDriver,
};
use rago_workloads::{ArrivalProcess, MixTraceSpec, RateSegment, RequestClass, WorkloadMix};

/// Discretizes one diurnal cycle (trough → peak → trough) into piecewise
/// segments, so the trace generator and the capacity planner see the same
/// profile.
fn diurnal_segments(base_rps: f64, peak_rps: f64, period_s: f64, n: usize) -> Vec<RateSegment> {
    let dt = period_s / n as f64;
    (0..n)
        .map(|i| {
            let mid = (i as f64 + 0.5) * dt;
            let phase = (2.0 * std::f64::consts::PI * mid / period_s).cos();
            RateSegment {
                rate_rps: base_rps + (peak_rps - base_rps) * (1.0 - phase) / 2.0,
                duration_s: dt,
            }
        })
        .collect()
}

fn class_rows(eval: &FaultedEvaluation) -> String {
    eval.per_class
        .iter()
        .map(|c| {
            format!(
                "      {{\"class\": {}, \"name\": \"{}\", \"priority\": {}, \"offered\": {}, \
                 \"completed\": {}, \"shed\": {}, \"attainment\": {:.4}, \"meets_slo\": {}}}",
                c.class,
                c.name,
                c.priority,
                c.offered,
                c.completed,
                c.shed,
                c.attainment,
                c.meets_slo
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn bench_chaos_json(_c: &mut Criterion) {
    let quick = rago_bench::quick_mode();
    let rago = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        rago_bench::default_cluster(),
    );
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("static search succeeds");
    let best = frontier
        .max_qps_per_chip()
        .expect("non-empty frontier")
        .clone();
    let static_qps = best.performance.qps.max(1e-9);

    // ---- Runs A/B: reactive vs predictive on the same known profile ----
    let slo = SloTarget::new(2.0, 0.1);
    let profile_def = SequenceProfile::paper_default().with_decode_tokens(32);
    let mix = WorkloadMix::single("all", profile_def, 0.1, slo);
    let period_s = if quick { 16.0 } else { 32.0 };
    let base_rps = 0.3 * static_qps;
    let peak_rps = 2.2 * static_qps;
    let segments = diurnal_segments(base_rps, peak_rps, period_s, 8);
    let mean_rps = segments.iter().map(|s| s.rate_rps).sum::<f64>() / segments.len() as f64;
    let num_requests = (mean_rps * period_s).ceil() as usize;
    let trace = MixTraceSpec {
        num_requests,
        mix: mix.clone(),
        arrival: ArrivalProcess::PiecewiseRate {
            segments: segments.clone(),
        },
        seed: 29,
    }
    .generate();

    let sizing_duration_s = if quick { 4.0 } else { 6.0 };
    let capacity = CapacityOptions {
        max_replicas: 6,
        num_requests: (peak_rps * sizing_duration_s).ceil() as usize,
        profile: profile_def,
        ..CapacityOptions::default()
    };
    let capacity_profile = rago
        .plan_capacity_profile(&best.schedule, &slo, &segments, &capacity)
        .expect("the profile is plannable within the replica bound");
    let max_replicas = capacity_profile.peak_replicas.max(1);
    let warmup_s = 0.5;

    let reactive_policy = AutoscalerPolicy::new(1, max_replicas)
        .with_evaluation_interval(0.25)
        .with_scale_out_queue_depth(2.0)
        .with_scale_in_outstanding(10.0)
        .with_cooldown(1.0)
        .with_warmup(warmup_s);
    let reactive = rago
        .evaluate_fleet_faulted(
            &best.schedule,
            RouterPolicy::LeastOutstanding,
            &mix,
            &trace,
            &FaultScenario::new(ScaleDriver::Reactive(reactive_policy)),
        )
        .expect("reactive run succeeds");

    // Feed the planner's replica schedule forward, led by the warm-up so
    // capacity lands *before* each rate change.
    let plan = scaling_plan_from_profile(&capacity_profile, warmup_s);
    let plan_steps = plan.steps.len();
    let predictive = rago
        .evaluate_fleet_faulted(
            &best.schedule,
            RouterPolicy::LeastOutstanding,
            &mix,
            &trace,
            &FaultScenario::new(ScaleDriver::Predictive(PredictivePolicy::new(
                plan, warmup_s,
            ))),
        )
        .expect("predictive run succeeds");

    let predictive_beats_reactive = predictive.attainment >= reactive.attainment
        && predictive.chip_seconds <= reactive.chip_seconds;
    assert!(
        predictive_beats_reactive,
        "predictive (attainment {:.4}, {:.1} chip-s) lost to reactive (attainment {:.4}, {:.1} chip-s)",
        predictive.attainment, predictive.chip_seconds, reactive.attainment, reactive.chip_seconds
    );

    // ---- Baseline pin: faultless chaos run == time-varying evaluation ----
    let baseline = rago
        .evaluate_fleet_timevarying(
            &best.schedule,
            &FleetConfig::new(max_replicas, RouterPolicy::LeastOutstanding),
            &mix,
            &trace,
            Some(&reactive_policy),
        )
        .expect("baseline evaluation succeeds");
    let matches_baseline = reactive.chaos.fleet == baseline.report
        && reactive.replica_seconds == baseline.replica_seconds;
    assert!(
        matches_baseline,
        "faultless chaos run diverged from the time-varying baseline"
    );

    // ---- Run C: crash at the peak, three priorities, admission on ----
    let crash_mix = WorkloadMix::new(vec![
        RequestClass::new(
            "batch",
            1.0,
            SequenceProfile::paper_default().with_decode_tokens(128),
            0.1,
            SloTarget::new(10.0, 0.2),
        ),
        RequestClass::new(
            "search",
            2.0,
            SequenceProfile::paper_default().with_decode_tokens(48),
            0.1,
            SloTarget::new(4.0, 0.1),
        )
        .with_priority(1),
        RequestClass::new(
            "chat",
            3.0,
            SequenceProfile::paper_default().with_decode_tokens(32),
            0.1,
            SloTarget::new(2.0, 0.05),
        )
        .with_priority(2),
    ]);
    let crash_trace = MixTraceSpec {
        num_requests,
        mix: crash_mix.clone(),
        arrival: ArrivalProcess::Diurnal {
            base_rps,
            peak_rps,
            period_s,
        },
        seed: 31,
    }
    .generate();
    let crash_replicas = max_replicas.max(2);
    let crash_at_s = period_s / 2.0; // the diurnal peak
    let healthy = rago
        .evaluate_fleet_faulted(
            &best.schedule,
            RouterPolicy::LeastOutstanding,
            &crash_mix,
            &crash_trace,
            &FaultScenario::new(ScaleDriver::Static {
                replicas: crash_replicas,
            }),
        )
        .expect("healthy run succeeds");
    let crash_scenario = FaultScenario::new(ScaleDriver::Static {
        replicas: crash_replicas,
    })
    .with_faults(FaultSchedule::new(vec![FaultEvent::Crash {
        replica: 0,
        at_s: crash_at_s,
        restart_delay_s: period_s / 8.0,
    }]))
    .with_admission(AdmissionConfig::new(4.0, 24.0))
    .with_recovery_slo(crash_mix.classes[2].slo)
    .with_recovery_window(period_s / 32.0);
    let crashed = rago
        .evaluate_fleet_faulted(
            &best.schedule,
            RouterPolicy::LeastOutstanding,
            &crash_mix,
            &crash_trace,
            &crash_scenario,
        )
        .expect("crash run succeeds");
    assert_eq!(crashed.chaos.fault.disruptions.len(), 1);

    let top_drop = (healthy.per_class[2].attainment - crashed.per_class[2].attainment).max(0.0);
    let fleet_share = 1.0 / f64::from(crash_replicas);
    let degradation_proportional = top_drop < fleet_share;
    assert!(
        degradation_proportional,
        "chat dropped {top_drop:.4}, worse than the lost replica's share {fleet_share:.4}"
    );

    let recovery_row = crashed.recovery.first().map_or_else(
        || "null".to_string(),
        |r| {
            format!(
                "{{\"reattainment_s\": {}, \"dip_area\": {:.4}}}",
                r.reattainment_s
                    .map_or_else(|| "null".to_string(), |t| format!("{t:.4}")),
                r.dip_area
            )
        },
    );

    let json = format!(
        "{{\n  \"bench\": \"chaos_suite\",\n  \
         \"schedule\": \"{}\",\n  \"static_qps\": {static_qps:.3},\n  \
         \"profile\": {{\"base_rps\": {base_rps:.3}, \"peak_rps\": {peak_rps:.3}, \
         \"period_s\": {period_s:.1}, \"segments\": {}, \"num_requests\": {num_requests}}},\n  \
         \"reactive\": {{\"attainment\": {:.4}, \"chip_hours\": {:.4}, \
         \"peak_provisioned\": {}, \"shed\": {}, \"failed\": {}}},\n  \
         \"predictive\": {{\"attainment\": {:.4}, \"chip_hours\": {:.4}, \
         \"peak_provisioned\": {}, \"plan_steps\": {plan_steps}}},\n  \
         \"crash\": {{\n    \"replicas\": {crash_replicas}, \"crash_at_s\": {crash_at_s:.1}, \
         \"restart_delay_s\": {:.1},\n    \
         \"injected\": {}, \"completed\": {}, \"shed\": {}, \"failed\": {}, \"retried\": {},\n    \
         \"recovery\": {recovery_row},\n    \
         \"top_class_drop\": {top_drop:.4}, \"fleet_share\": {fleet_share:.4},\n    \
         \"healthy_per_class\": [\n{}\n    ],\n    \"faulted_per_class\": [\n{}\n    ]\n  }},\n  \
         \"acceptance\": {{\"predictive_beats_reactive\": {predictive_beats_reactive}, \
         \"degradation_proportional\": {degradation_proportional}, \
         \"matches_baseline\": {matches_baseline}}}\n}}\n",
        best.schedule.describe(),
        segments.len(),
        reactive.attainment,
        reactive.chip_hours(),
        reactive.scaling.peak_provisioned,
        reactive.chaos.fault.shed,
        reactive.chaos.fault.failed,
        predictive.attainment,
        predictive.chip_hours(),
        predictive.scaling.peak_provisioned,
        period_s / 8.0,
        crashed.chaos.fault.injected,
        crashed.chaos.fault.completed,
        crashed.chaos.fault.shed,
        crashed.chaos.fault.failed,
        crashed.chaos.fault.retried,
        class_rows(&healthy),
        class_rows(&crashed),
    );
    // Case-sensitive on purpose: Rust formats non-finite floats as "NaN"
    // and "inf".
    assert!(
        !json.contains("NaN") && !json.contains("inf"),
        "refusing to write non-finite chaos metrics"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_chaos.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_chaos_json
}
criterion_main!(benches);
