//! Anytime-quality bench of the stochastic schedule search: on a grid far
//! too large to enumerate comfortably (≥100k candidates, heterogeneous
//! placements), how quickly does [`rago_core::SearchMode::Stochastic`]
//! reach ≥99 % of the exhaustive frontier's hypervolume?
//!
//! Writes `BENCH_search.json` at the workspace root with the space size,
//! the exhaustive wall-clock + frontier, the stochastic time-to-0.99-HV,
//! and two CI-gated flags:
//!
//! - `recovers_exhaustive_small_grid`: on the paper's case-1 grid the
//!   stochastic search (given budget to exhaust it) returns the exhaustive
//!   Pareto frontier bit-identically;
//! - `beats_exhaustive_time_to_frontier`: on the large grid the stochastic
//!   search reached the 0.99-hypervolume frontier in less wall-clock time
//!   than the exhaustive enumeration took.
//!
//! `RAGO_BENCH_QUICK=1` shrinks the stochastic budget (same grid, same
//! JSON shape) for CI smoke runs.

use criterion::{criterion_group, criterion_main, Criterion};
use rago_core::{Rago, SearchOptions, StochasticConfig};
use rago_hardware::ClusterSpec;
use rago_schema::presets::{self, LlmSize};
use rago_schema::RagSchema;
use std::time::Instant;

/// The large heterogeneous grid: case 4 (rewriter + reranker) has four
/// pre-decode stages, so its placement count — and with it the candidate
/// space — explodes combinatorially.
fn large_grid() -> SearchOptions {
    SearchOptions {
        xpu_steps: vec![1, 2, 4, 8, 16, 32, 64],
        server_steps: vec![32, 64],
        predecode_batch_steps: vec![1, 8, 32, 128],
        decode_batch_steps: vec![64, 512],
        iterative_batch_steps: vec![8],
        placements: None,
    }
}

fn large_schema() -> RagSchema {
    presets::case4_rewriter_reranker(LlmSize::B8)
}

fn fraction_reached(
    report: &rago_core::StochasticSearchReport,
    target_hv: f64,
    ttft_ref: f64,
) -> Option<&rago_core::AnytimeSample> {
    report
        .timeline
        .iter()
        .find(|s| s.frontier.hypervolume(ttft_ref, 0.0) >= target_hv)
}

fn headline(_c: &mut Criterion) {
    let cluster = ClusterSpec::paper_default();
    let options = large_grid();
    let quick = rago_bench::quick_mode();

    // -- Small-grid recovery flag: the paper case-1 grid, exhausted. --
    let small = Rago::new(presets::case1_hyperscale(LlmSize::B8, 1), cluster.clone());
    let small_options = SearchOptions::paper_default();
    let small_exhaustive = small
        .optimize(&small_options)
        .expect("case1 search succeeds");
    let small_report = small
        .optimize_stochastic(
            &small_options,
            &StochasticConfig::default().with_seed(17).with_budget(8192),
        )
        .expect("small-grid stochastic search succeeds");
    let recovers_exhaustive_small_grid =
        small_report.exhausted && small_report.frontier.points == small_exhaustive.points;

    // -- Large grid: exhaustive timing (cold memo cache). --
    let exhaustive_rago = Rago::new(large_schema(), cluster.clone());
    let space_size = exhaustive_rago.schedule_space(&options).size();
    assert!(
        space_size >= 100_000,
        "the bench grid shrank below 100k candidates ({space_size})"
    );
    let start = Instant::now();
    let exhaustive = exhaustive_rago
        .optimize(&options)
        .expect("case4 search succeeds");
    let exhaustive_seconds = start.elapsed().as_secs_f64();
    let ttft_ref = 2.0
        * exhaustive
            .points
            .iter()
            .map(|p| p.performance.ttft_s)
            .fold(0.0f64, f64::max);
    let exhaustive_hv = exhaustive.hypervolume(ttft_ref, 0.0);

    // -- Large grid: stochastic anytime run (fresh memo cache). --
    let stochastic_rago = Rago::new(large_schema(), cluster);
    let budget = if quick { 6_000 } else { 40_000 };
    let config = StochasticConfig::default()
        .with_seed(0x5EED)
        .with_budget(budget);
    let report = stochastic_rago
        .optimize_stochastic(&options, &config)
        .expect("case4 stochastic search succeeds");
    let target_hv = 0.99 * exhaustive_hv;
    let reached = fraction_reached(&report, target_hv, ttft_ref);
    let seconds_to_99 = reached.map(|s| s.elapsed_s);
    let evaluations_to_99 = reached.map(|s| s.evaluations);
    let final_hv_fraction = report.frontier.hypervolume(ttft_ref, 0.0) / exhaustive_hv;
    let beats_exhaustive_time_to_frontier = seconds_to_99.is_some_and(|s| s < exhaustive_seconds);

    let json = format!(
        "{{\n  \"bench\": \"search_anytime/case4_rewriter_reranker\",\n  \"space_size\": {space_size},\n  \"threads\": {},\n  \"quick_mode\": {quick},\n  \"exhaustive\": {{\n    \"seconds\": {exhaustive_seconds:.6},\n    \"evaluated_schedules\": {},\n    \"frontier_len\": {},\n    \"hypervolume\": {exhaustive_hv:.6}\n  }},\n  \"stochastic\": {{\n    \"budget\": {budget},\n    \"evaluations\": {},\n    \"feasible_evaluations\": {},\n    \"rounds\": {},\n    \"seconds_total\": {:.6},\n    \"seconds_to_99pct_hv\": {},\n    \"evaluations_to_99pct_hv\": {},\n    \"frontier_len\": {},\n    \"final_hv_fraction\": {final_hv_fraction:.6}\n  }},\n  \"recovers_exhaustive_small_grid\": {recovers_exhaustive_small_grid},\n  \"beats_exhaustive_time_to_frontier\": {beats_exhaustive_time_to_frontier}\n}}\n",
        rayon::current_num_threads(),
        exhaustive.evaluated_schedules,
        exhaustive.len(),
        report.evaluations,
        report.feasible_evaluations,
        report.rounds,
        report.elapsed_s,
        seconds_to_99.map_or("null".into(), |s| format!("{s:.6}")),
        evaluations_to_99.map_or("null".into(), |e| e.to_string()),
        report.frontier.len(),
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_search.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
    println!(
        "search_anytime: {space_size} candidates; exhaustive {exhaustive_seconds:.2}s; \
         stochastic hit 99% HV at {} (exhaustive frontier recovered on small grid: \
         {recovers_exhaustive_small_grid})",
        seconds_to_99.map_or("never".into(), |s| format!("{s:.2}s")),
    );
}

/// Steady-state throughput entries for the two search modes on the paper's
/// small grid (where both complete in milliseconds).
fn bench_modes(c: &mut Criterion) {
    let rago = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        ClusterSpec::paper_default(),
    );
    let options = SearchOptions::paper_default();
    c.bench_function("search_case1_paper_grid_exhaustive", |b| {
        b.iter(|| rago.optimize(&options).unwrap())
    });
    let config = StochasticConfig::default().with_seed(1).with_budget(2048);
    c.bench_function("search_case1_paper_grid_stochastic_2k", |b| {
        b.iter(|| rago.optimize_stochastic(&options, &config).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = headline, bench_modes
}
criterion_main!(benches);
