//! Criterion benches of the vector-search substrate (exact kNN, PQ scanning,
//! IVF-PQ search) — the operations whose measured throughput calibrates the
//! retrieval cost model.

use criterion::{criterion_group, criterion_main, Criterion};
use rago_vectordb::{FlatIndex, IvfPqIndex, IvfPqParams, ProductQuantizer, SyntheticDataset};
use std::hint::black_box;

fn bench_flat_search(c: &mut Criterion) {
    let data = SyntheticDataset::clustered(20_000, 96, 32, 1);
    let index = FlatIndex::build(96, data.vectors.clone()).unwrap();
    let query = data.vectors[7].clone();
    c.bench_function("flat_knn_20k_x96_top10", |b| {
        b.iter(|| index.search(black_box(&query), 10))
    });
}

fn bench_pq_scan(c: &mut Criterion) {
    let data = SyntheticDataset::clustered(20_000, 96, 32, 2);
    let pq = ProductQuantizer::train(96, 12, 4, &data.vectors[..2_000], 3).unwrap();
    let codes = pq.encode_batch(&data.vectors);
    let query = data.vectors[11].clone();
    let table = pq.build_lookup_table(&query);
    c.bench_function("pq_adc_scan_20k_codes", |b| {
        b.iter(|| pq.scan(black_box(&table), black_box(&codes), None, 10))
    });
    c.bench_function("pq_encode_one_vector", |b| {
        b.iter(|| pq.encode(black_box(&data.vectors[42])))
    });
}

fn bench_ivf_search(c: &mut Criterion) {
    let data = SyntheticDataset::clustered(20_000, 64, 64, 4);
    let params = IvfPqParams {
        num_lists: 128,
        num_subspaces: 8,
        bits_per_code: 4,
        training_sample: 3_000,
    };
    let index = IvfPqIndex::train(64, &data.vectors, params, 5).unwrap();
    let query = data.vectors[99].clone();
    for nprobe in [4usize, 16] {
        c.bench_function(&format!("ivfpq_search_20k_nprobe{nprobe}"), |b| {
            b.iter(|| index.search(black_box(&query), 10, nprobe))
        });
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_flat_search, bench_pq_scan, bench_ivf_search
}
criterion_main!(benches);
