//! Multi-tenant, time-varying acceptance bench: a reactive autoscaler
//! versus static peak provisioning on a diurnal two-tenant trace, written
//! to `BENCH_tenant.json` at the workspace root.
//!
//! The scenario: an interactive chat tenant (tight SLO, short decodes,
//! 3× the traffic) shares the fleet with a long-form report tenant (loose
//! SLO, 4× the decode length). Arrivals follow one diurnal cycle whose
//! peak is ~7× the trough. Two provisioning strategies serve the identical
//! trace with the identical schedule and router:
//!
//! * **Static** — the fleet `plan_capacity` sizes for the *peak* rate,
//!   held for the whole run (what a fixed deployment must do to survive
//!   the evening).
//! * **Autoscaled** — a reactive policy starting at one replica, scaling
//!   out on queue depth with a warm-up delay and scaling in after a
//!   cooldown, capped at the static plan's size.
//!
//! Acceptance (asserted, and gated by CI on the JSON): the autoscaler
//! serves the trace at **no worse SLO attainment** than the static plan
//! while paying **fewer chip-hours**. The JSON also carries the per-tenant
//! goodput ranking of the autoscaled run.
//!
//! Set `RAGO_BENCH_QUICK=1` for the CI-friendly quick mode (one shorter
//! cycle, same JSON shape). The bench refuses to write non-finite numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use rago_core::timevarying::TimeVaryingEvaluation;
use rago_core::{CapacityOptions, Rago, SearchOptions};
use rago_schema::presets::{self, LlmSize};
use rago_schema::{FleetConfig, RouterPolicy, SequenceProfile, SloTarget};
use rago_serving_sim::autoscaler::AutoscalerPolicy;
use rago_workloads::{ArrivalProcess, MixTraceSpec, RequestClass, WorkloadMix};

fn class_rows(eval: &TimeVaryingEvaluation) -> String {
    eval.per_class
        .iter()
        .map(|c| {
            format!(
                "      {{\"class\": {}, \"name\": \"{}\", \"requests\": {}, \
                 \"attainment\": {:.4}, \"goodput_rps\": {:.3}, \"meets_slo\": {}}}",
                c.class, c.name, c.requests, c.attainment, c.goodput_rps, c.meets_slo
            )
        })
        .collect::<Vec<_>>()
        .join(",\n")
}

fn bench_tenant_json(_c: &mut Criterion) {
    let quick = rago_bench::quick_mode();
    let rago = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        rago_bench::default_cluster(),
    );
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("static search succeeds");
    let best = frontier
        .max_qps_per_chip()
        .expect("non-empty frontier")
        .clone();
    let static_qps = best.performance.qps.max(1e-9);

    // Two tenants with their own SLOs and length profiles.
    let mix = WorkloadMix::new(vec![
        RequestClass::new(
            "chat",
            3.0,
            SequenceProfile::paper_default().with_decode_tokens(32),
            0.1,
            SloTarget::new(2.0, 0.05),
        ),
        RequestClass::new(
            "report",
            1.0,
            SequenceProfile::paper_default().with_decode_tokens(128),
            0.1,
            SloTarget::new(10.0, 0.2),
        ),
    ]);

    // One diurnal cycle: trough at 0.3× the single-replica static QPS,
    // peak at 2.2× — a fleet question at the peak, near-idle at the trough.
    let period_s = if quick { 16.0 } else { 32.0 };
    let base_rps = 0.3 * static_qps;
    let peak_rps = 2.2 * static_qps;
    let mean_rps = 0.5 * (base_rps + peak_rps);
    let num_requests = (mean_rps * period_s).ceil() as usize;
    let trace = MixTraceSpec {
        num_requests,
        mix: mix.clone(),
        arrival: ArrivalProcess::Diurnal {
            base_rps,
            peak_rps,
            period_s,
        },
        seed: 29,
    }
    .generate();

    // Static provisioning sizes for the peak with the strictest tenant's
    // SLO (the chat tenant dominates the mix). The sizing trace must span
    // several seconds of *sustained* peak traffic — a fixed request count
    // would be a sub-second burst the fleet drains within the SLO, sizing
    // every fleet to one replica.
    let sizing_duration_s = if quick { 4.0 } else { 6.0 };
    let capacity = CapacityOptions {
        max_replicas: 6,
        num_requests: (peak_rps * sizing_duration_s).ceil() as usize,
        profile: SequenceProfile::paper_default().with_decode_tokens(48),
        ..CapacityOptions::default()
    };
    let peak_plan = rago
        .plan_capacity(&best.schedule, &mix.classes[0].slo, peak_rps, &capacity)
        .expect("the peak rate is plannable within the replica bound");
    let static_replicas = peak_plan.replicas;
    let fleet = FleetConfig::new(static_replicas, RouterPolicy::LeastOutstanding);

    let fixed = rago
        .evaluate_fleet_timevarying(&best.schedule, &fleet, &mix, &trace, None)
        .expect("static evaluation succeeds");

    // The reactive policy: start at one replica and follow the cycle,
    // capped at the static plan's size (capacity beyond the peak plan buys
    // nothing at this SLO and would only burn chips). Scale-in watches
    // mean outstanding work — at the trough a replica of this schedule
    // holds only a handful of requests, so a threshold of 10 sheds the
    // night-time replica quickly without thrashing the peak.
    let policy = AutoscalerPolicy::new(1, static_replicas)
        .with_evaluation_interval(0.25)
        .with_scale_out_queue_depth(2.0)
        .with_scale_in_outstanding(10.0)
        .with_cooldown(1.0)
        .with_warmup(0.5);
    let elastic = rago
        .evaluate_fleet_timevarying(&best.schedule, &fleet, &mix, &trace, Some(&policy))
        .expect("autoscaled evaluation succeeds");
    let scaling = elastic
        .scaling
        .as_ref()
        .expect("autoscaled run has history");

    // Acceptance: no worse attainment, strictly fewer chip-hours.
    assert!(
        elastic.attainment >= fixed.attainment,
        "autoscaler attainment {:.4} fell below static {:.4}",
        elastic.attainment,
        fixed.attainment
    );
    assert!(
        elastic.chip_seconds < fixed.chip_seconds,
        "autoscaler paid {:.1} chip-seconds vs static {:.1}",
        elastic.chip_seconds,
        fixed.chip_seconds
    );
    assert!(scaling.peak_provisioned > 1, "the peak never scaled out");

    let ranking = elastic
        .tenants_by_goodput()
        .iter()
        .map(|c| format!("\"{}\"", c.name))
        .collect::<Vec<_>>()
        .join(", ");
    let events_out = scaling
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.action,
                rago_serving_sim::autoscaler::ScalingAction::ScaleOut
            )
        })
        .count();
    let json = format!(
        "{{\n  \"bench\": \"tenant_mix/autoscale\",\n  \
         \"schedule\": \"{}\",\n  \"static_qps\": {static_qps:.3},\n  \
         \"diurnal\": {{\"base_rps\": {base_rps:.3}, \"peak_rps\": {peak_rps:.3}, \
         \"period_s\": {period_s:.1}, \"num_requests\": {num_requests}}},\n  \
         \"static\": {{\n    \"replicas\": {static_replicas},\n    \"attainment\": {:.4},\n    \
         \"chip_hours\": {:.4},\n    \"per_class\": [\n{}\n    ]\n  }},\n  \
         \"autoscaled\": {{\n    \"min_replicas\": 1, \"max_replicas\": {static_replicas},\n    \
         \"peak_provisioned\": {},\n    \"mean_provisioned\": {:.3},\n    \
         \"scale_out_events\": {events_out}, \"scale_in_events\": {},\n    \
         \"attainment\": {:.4},\n    \"chip_hours\": {:.4},\n    \"per_class\": [\n{}\n    ]\n  }},\n  \
         \"tenants_by_goodput\": [{ranking}],\n  \
         \"acceptance\": {{\"attainment_no_worse\": {}, \"fewer_chip_hours\": {}, \
         \"chip_hours_saved_fraction\": {:.4}}}\n}}\n",
        best.schedule.describe(),
        fixed.attainment,
        fixed.chip_hours(),
        class_rows(&fixed),
        scaling.peak_provisioned,
        scaling.mean_provisioned,
        scaling.events.len() - events_out,
        elastic.attainment,
        elastic.chip_hours(),
        class_rows(&elastic),
        elastic.attainment >= fixed.attainment,
        elastic.chip_seconds < fixed.chip_seconds,
        1.0 - elastic.chip_seconds / fixed.chip_seconds,
    );
    // Case-sensitive on purpose: Rust formats non-finite floats as "NaN"
    // and "inf", while the word "tenants" itself contains "nan".
    assert!(
        !json.contains("NaN") && !json.contains("inf"),
        "refusing to write non-finite tenant metrics"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_tenant.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_tenant_json
}
criterion_main!(benches);
