//! Criterion benches of the RAGO schedule search (Algorithm 1) at different
//! grid granularities.

use criterion::{criterion_group, criterion_main, Criterion};
use rago_core::{Rago, SearchOptions};
use rago_hardware::ClusterSpec;
use rago_schema::presets::{self, LlmSize};

fn bench_search(c: &mut Criterion) {
    let cluster = ClusterSpec::paper_default();

    let case1 = Rago::new(presets::case1_hyperscale(LlmSize::B8, 1), cluster.clone());
    c.bench_function("optimize_case1_fast_grid", |b| {
        b.iter(|| case1.optimize(&SearchOptions::fast()).unwrap())
    });

    let case4 = Rago::new(presets::case4_rewriter_reranker(LlmSize::B70), cluster.clone());
    let medium = SearchOptions {
        xpu_steps: vec![4, 16, 64],
        server_steps: vec![32],
        predecode_batch_steps: vec![1, 8, 64],
        decode_batch_steps: vec![128, 512],
        iterative_batch_steps: vec![8],
        placements: None,
    };
    c.bench_function("optimize_case4_medium_grid", |b| {
        b.iter(|| case4.optimize(&medium).unwrap())
    });

    let case2 = Rago::new(
        presets::case2_long_context(LlmSize::B70, 1_000_000),
        cluster,
    );
    c.bench_function("enumerate_schedules_case2", |b| {
        b.iter(|| case2.enumerate_schedules(&medium))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_search
}
criterion_main!(benches);
