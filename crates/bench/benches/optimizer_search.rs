//! Benches of the RAGO schedule search (Algorithm 1) at different grid
//! granularities, plus the headline comparison of the streaming / parallel /
//! memoized search against the serial unmemoized reference on the paper's
//! default grid.
//!
//! The headline comparison also writes `BENCH_optimizer.json` at the
//! workspace root (schedules/sec for each path and the speedup), so future
//! changes can track the search-throughput trajectory. Set
//! `RAGO_BENCH_QUICK=1` for a CI-friendly quick mode (fewer samples, same
//! JSON).

use criterion::{criterion_group, criterion_main, Criterion};
use rago_core::{Rago, SearchOptions};
use rago_hardware::ClusterSpec;
use rago_schema::presets::{self, LlmSize};
use std::time::Instant;

fn bench_search(c: &mut Criterion) {
    let cluster = ClusterSpec::paper_default();

    let case1 = Rago::new(presets::case1_hyperscale(LlmSize::B8, 1), cluster.clone());
    c.bench_function("optimize_case1_fast_grid", |b| {
        b.iter(|| case1.optimize(&SearchOptions::fast()).unwrap())
    });

    let case4 = Rago::new(
        presets::case4_rewriter_reranker(LlmSize::B70),
        cluster.clone(),
    );
    let medium = SearchOptions {
        xpu_steps: vec![4, 16, 64],
        server_steps: vec![32],
        predecode_batch_steps: vec![1, 8, 64],
        decode_batch_steps: vec![128, 512],
        iterative_batch_steps: vec![8],
        placements: None,
    };
    c.bench_function("optimize_case4_medium_grid", |b| {
        b.iter(|| case4.optimize(&medium).unwrap())
    });

    let case2 = Rago::new(
        presets::case2_long_context(LlmSize::B70, 1_000_000),
        cluster,
    );
    c.bench_function("enumerate_schedules_case2", |b| {
        b.iter(|| case2.enumerate_schedules(&medium))
    });
}

/// One timed run of a search path: wall-clock seconds and candidate
/// throughput over the full enumerated grid.
struct PathTiming {
    seconds: f64,
    schedules_per_sec: f64,
    evaluated_schedules: usize,
    frontier_len: usize,
}

fn time_path<F: Fn() -> rago_core::ParetoFrontier>(
    grid_candidates: usize,
    runs: usize,
    run: F,
) -> PathTiming {
    let mut best = f64::INFINITY;
    let mut frontier = run(); // warm-up (also primes any memo cache)
    for _ in 0..runs {
        let start = Instant::now();
        frontier = run();
        best = best.min(start.elapsed().as_secs_f64());
    }
    PathTiming {
        seconds: best,
        schedules_per_sec: grid_candidates as f64 / best,
        evaluated_schedules: frontier.evaluated_schedules,
        frontier_len: frontier.len(),
    }
}

fn json_path_entry(name: &str, t: &PathTiming) -> String {
    format!(
        "  \"{name}\": {{\n    \"seconds\": {:.6},\n    \"schedules_per_sec\": {:.1},\n    \"evaluated_schedules\": {},\n    \"frontier_len\": {}\n  }}",
        t.seconds, t.schedules_per_sec, t.evaluated_schedules, t.frontier_len
    )
}

/// The acceptance benchmark: `optimize(paper_default)` on the case-1
/// hyperscale preset — streaming + parallel + memoized — against the serial
/// unmemoized path the optimizer used to be.
fn bench_paper_grid_speedup(c: &mut Criterion) {
    let options = SearchOptions::paper_default();
    let cluster = ClusterSpec::paper_default();
    let schema = presets::case1_hyperscale(LlmSize::B8, 1);

    let optimized = Rago::new(schema.clone(), cluster.clone());
    let baseline = Rago::new(schema, cluster).with_memoization(false);
    let grid_candidates = optimized.schedule_iter(&options).count();
    let runs = if rago_bench::quick_mode() { 1 } else { 3 };

    let parallel_memoized = time_path(grid_candidates, runs, || {
        optimized.optimize(&options).expect("case1 search succeeds")
    });
    let serial_memoized = time_path(grid_candidates, runs, || {
        optimized
            .optimize_serial(&options)
            .expect("case1 search succeeds")
    });
    let serial_unmemoized = time_path(grid_candidates, runs, || {
        baseline
            .optimize_serial(&options)
            .expect("case1 search succeeds")
    });

    let speedup = serial_unmemoized.seconds / parallel_memoized.seconds;
    let json = format!(
        "{{\n  \"bench\": \"optimizer_search/paper_grid_case1_hyperscale\",\n  \"grid_candidates\": {grid_candidates},\n  \"threads\": {},\n  \"distinct_stage_profiles\": {},\n{},\n{},\n{},\n  \"speedup_vs_serial_unmemoized\": {:.2}\n}}\n",
        rayon::current_num_threads(),
        optimized.profiler().cached_profiles(),
        json_path_entry("parallel_memoized", &parallel_memoized),
        json_path_entry("serial_memoized", &serial_memoized),
        json_path_entry("serial_unmemoized", &serial_unmemoized),
        speedup,
    );
    // The bench runs with the package as CWD; the JSON belongs at the
    // workspace root next to the other tracked reports.
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_optimizer.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
    println!(
        "paper grid case1: {grid_candidates} candidates; parallel+memoized {:.1} sched/s vs serial unmemoized {:.1} sched/s => {speedup:.1}x",
        parallel_memoized.schedules_per_sec, serial_unmemoized.schedules_per_sec
    );

    // Also expose both paths as regular bench entries.
    c.bench_function("optimize_case1_paper_grid_parallel_memoized", |b| {
        b.iter(|| optimized.optimize(&options).unwrap())
    });
    c.bench_function("optimize_case1_paper_grid_serial_unmemoized", |b| {
        b.iter(|| baseline.optimize_serial(&options).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_search, bench_paper_grid_speedup
}
criterion_main!(benches);
