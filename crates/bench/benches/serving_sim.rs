//! Criterion benches of the discrete-event serving simulator.

use criterion::{criterion_group, criterion_main, Criterion};
use rago_serving_sim::iterative::{IterativeDecodeParams, IterativeDecodeSim};
use rago_serving_sim::microbatch::simulate_pipelined_burst;

fn bench_iterative_decode(c: &mut Criterion) {
    for (decode_batch, iterative_batch) in [(64u32, 16u32), (256, 64)] {
        let params = IterativeDecodeParams {
            decode_batch,
            iterative_batch,
            decode_len: 256,
            retrievals_per_sequence: 4,
            step_latency_s: 5e-3,
            retrieval_prefix_latency_s: 0.05,
            seed: 1,
        };
        c.bench_function(
            &format!("iterative_decode_d{decode_batch}_i{iterative_batch}"),
            |b| b.iter(|| IterativeDecodeSim::new(params).run()),
        );
    }
}

fn bench_microbatch_pipeline(c: &mut Criterion) {
    let s1 = |b: u32| 0.001 + 0.002 * f64::from(b);
    let s2 = |b: u32| 0.003 + 0.001 * f64::from(b);
    let s3 = |b: u32| 0.010 + 0.004 * f64::from(b);
    let stages: Vec<&dyn Fn(u32) -> f64> = vec![&s1, &s2, &s3];
    c.bench_function("microbatch_pipeline_burst32_mb4", |b| {
        b.iter(|| simulate_pipelined_burst(&stages, 32, 4))
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_iterative_decode, bench_microbatch_pipeline
}
criterion_main!(benches);
