//! Million-request DES stress bench: events/sec and retained memory of the
//! optimized engine versus the vendored pre-optimization loop, written to
//! `BENCH_scale.json` at the workspace root.
//!
//! One synthetic open-loop workload (deterministic arrivals at a fixed
//! rate, two pre-decode stages, continuous-batching decode) is replayed at
//! increasing request tiers:
//!
//! * **100k** — always run; the CI smoke tier (`RAGO_BENCH_QUICK=1`).
//! * **1M** — full mode; the acceptance tier: the streaming engine must
//!   process events at least 5x faster than the vendored baseline.
//! * **10M** — full mode, streaming-only (an exact run would retain tens of
//!   millions of timeline allocations for no extra information).
//!
//! At every tier that runs both engines, the bench asserts the optimized
//! exact run reproduces the baseline's timelines **bit for bit** — speed
//! must not buy drift. Where exact and streaming both run, every reported
//! percentile must agree within one histogram bucket width. A separate
//! equality study pins serial-versus-parallel replica advancement (fleet
//! and autoscaler, exact and streaming) to identical reports with
//! `RAYON_NUM_THREADS` forced above one.
//!
//! The JSON refuses to serialize non-finite numbers, so CI can gate on the
//! file's presence, NaN-freeness, and the equality flags being `true`.

use criterion::{criterion_group, criterion_main, Criterion};
use rago_bench::baseline::run_baseline;
use rago_schema::{HistogramSpec, RouterPolicy};
use rago_serving_sim::autoscaler::{AutoscaleEngine, AutoscalerPolicy};
use rago_serving_sim::cluster::ClusterEngine;
use rago_serving_sim::engine::{
    DecodeSpec, EngineRequest, LatencyStats, LatencyTable, PipelineSpec, ServingEngine,
    ServingReport, StageSpec,
};
use rago_serving_sim::{MetricsMode, StreamingConfig};
use std::time::Instant;

/// Offered rate of the open-loop workload, just under the pipeline's
/// bottleneck (the prefix stage) so queues stay bounded and the event count
/// scales linearly with the tier.
const RATE_RPS: f64 = 1000.0;

/// The stress pipeline: hyperscale-retrieval shape (retrieval + prefix +
/// decode) with latency tables cheap enough that the bench measures the
/// event loop, not the cost model.
fn stress_spec() -> PipelineSpec {
    PipelineSpec::new(
        vec![
            StageSpec::new(
                "retrieval",
                0,
                16,
                LatencyTable::from_fn(16, |b| 0.002 + 0.0002 * f64::from(b)),
            ),
            StageSpec::new(
                "prefix",
                1,
                16,
                LatencyTable::from_fn(16, |b| 0.005 + 0.0005 * f64::from(b)),
            ),
        ],
        DecodeSpec::new(
            128,
            LatencyTable::from_fn(128, |b| 0.001 + 0.00002 * f64::from(b)),
        ),
    )
}

/// Deterministic open-loop arrivals: request `i` arrives at `i / rate`,
/// with a small repeating spread of decode lengths. No RNG — every tier is
/// exactly reproducible, and the 10M tier costs no generation entropy.
fn open_loop_requests(n: u64, rate_rps: f64) -> Vec<EngineRequest> {
    (0..n)
        .map(|i| EngineRequest {
            id: i,
            arrival_s: i as f64 / rate_rps,
            prefix_tokens: 0,
            decode_tokens: 8 + (i % 5) as u32,
            class: 0,
            identity: None,
        })
        .collect()
}

struct EngineFigures {
    wall_s: f64,
    events_per_s: f64,
    retained_bytes: usize,
}

struct TierResult {
    requests: u64,
    events: u64,
    baseline: Option<EngineFigures>,
    exact: Option<EngineFigures>,
    streaming: EngineFigures,
    baseline_matches_exact: Option<bool>,
    percentile_delta_within_bucket: Option<bool>,
}

fn figures(wall_s: f64, events: u64, retained_bytes: usize) -> EngineFigures {
    EngineFigures {
        wall_s,
        events_per_s: events as f64 / wall_s.max(1e-9),
        retained_bytes,
    }
}

/// Largest absolute difference between the streaming and exact reports over
/// the percentile fields the histogram estimates (means and maxima are
/// exact in both modes and compared for bit-equality instead).
fn max_percentile_delta(streaming: &ServingReport, exact: &ServingReport) -> f64 {
    let pairs = [
        (&streaming.metrics.ttft, &exact.metrics.ttft),
        (&streaming.metrics.tpot, &exact.metrics.tpot),
        (&streaming.metrics.latency, &exact.metrics.latency),
    ];
    pairs
        .iter()
        .flat_map(|(s, e)| {
            [
                (s.p50_s - e.p50_s).abs(),
                (s.p95_s - e.p95_s).abs(),
                (s.p99_s - e.p99_s).abs(),
            ]
        })
        .fold(0.0_f64, f64::max)
}

/// Runs one tier through baseline / exact / streaming as requested and
/// cross-checks the runs against each other.
///
/// Engine construction (validation + sort) happens outside every timer, and
/// an untimed streaming warmup run precedes the measurements: on hosts with
/// expensive first-touch paging (lazily materialized VM memory), the first
/// pass over a tier's working set pays microseconds per page, which would
/// otherwise be billed to whichever engine happens to run first. Combined
/// with the allocator retention configured in `bench_scale_json`, the timed
/// runs then measure the simulation loops, not the host's memory plumbing.
fn run_tier(spec: &PipelineSpec, n: u64, with_baseline: bool, with_exact: bool) -> TierResult {
    let requests = open_loop_requests(n, RATE_RPS);
    let streaming_mode = MetricsMode::Streaming(StreamingConfig::new(HistogramSpec::default()));
    let engine = ServingEngine::new(spec.clone(), requests.clone());

    std::hint::black_box(engine.run_with_mode(&streaming_mode));

    let t0 = Instant::now();
    let streaming_report = engine.run_with_mode(&streaming_mode);
    let streaming_wall = t0.elapsed().as_secs_f64();
    let events = streaming_report.metrics.events_processed;
    let streaming = figures(streaming_wall, events, streaming_report.retained_bytes());

    let exact_report = with_exact.then(|| {
        let t0 = Instant::now();
        let report = engine.run();
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(
            report.metrics.events_processed, events,
            "exact and streaming runs must apply the same events"
        );
        (figures(wall, events, report.retained_bytes()), report)
    });

    let baseline = with_baseline.then(|| {
        // The baseline's wall time includes the old metrics path — cloning
        // each distribution out of the timelines and sorting it — because
        // that is what the pre-optimization `run()` paid.
        let t0 = Instant::now();
        let run = run_baseline(spec, &requests);
        for samples in [
            run.timelines.iter().map(|t| t.ttft_s()).collect::<Vec<_>>(),
            run.timelines.iter().map(|t| t.tpot_s()).collect(),
            run.timelines.iter().map(|t| t.latency_s()).collect(),
            run.timelines.iter().map(|t| t.queueing_s).collect(),
            run.timelines.iter().map(|t| t.service_s()).collect(),
        ] {
            std::hint::black_box(LatencyStats::from_samples(&samples));
        }
        let wall = t0.elapsed().as_secs_f64();
        assert_eq!(
            run.events, events,
            "the vendored loop must apply the same events as the optimized engine"
        );
        (figures(wall, run.events, 0), run)
    });

    let baseline_matches_exact = match (&baseline, &exact_report) {
        (Some((_, base)), Some((_, exact))) => {
            assert_eq!(
                base.timelines, exact.timelines,
                "vendored baseline diverged from the optimized exact engine at n={n}"
            );
            Some(true)
        }
        _ => None,
    };

    let percentile_delta_within_bucket = exact_report.as_ref().map(|(_, exact)| {
        let delta = max_percentile_delta(&streaming_report, exact);
        let width = HistogramSpec::default().bucket_width_s;
        assert!(
            delta <= width * (1.0 + 1e-9),
            "streaming percentile strayed {delta} beyond one bucket width {width} at n={n}"
        );
        // Maxima are tracked exactly by the streaming sink; means agree up
        // to summation order (the exact path sums sorted samples, the sink
        // sums in arrival order).
        assert!(
            (exact.metrics.ttft.mean_s - streaming_report.metrics.ttft.mean_s).abs()
                <= 1e-9 * exact.metrics.ttft.mean_s.abs().max(1.0)
        );
        assert_eq!(
            exact.metrics.ttft.max_s,
            streaming_report.metrics.ttft.max_s
        );
        assert_eq!(
            exact.metrics.makespan_s,
            streaming_report.metrics.makespan_s
        );
        true
    });

    TierResult {
        requests: n,
        events,
        baseline: baseline.map(|(f, _)| f),
        exact: exact_report.map(|(f, _)| f),
        streaming,
        baseline_matches_exact,
        percentile_delta_within_bucket,
    }
}

struct EqualityFlags {
    fleet_exact: bool,
    fleet_streaming: bool,
    autoscale_exact: bool,
    autoscale_streaming: bool,
}

/// Pins serial and parallel replica advancement to identical reports, with
/// the shim's thread count forced above one so the parallel path really
/// interleaves.
fn check_serial_parallel_equality(spec: &PipelineSpec) -> EqualityFlags {
    std::env::set_var("RAYON_NUM_THREADS", "4");
    let replicas = 4;
    let requests = open_loop_requests(50_000, 4.0 * RATE_RPS);
    let router = RouterPolicy::LeastOutstanding;
    let streaming_mode = MetricsMode::Streaming(StreamingConfig::new(HistogramSpec::default()));

    let serial = ClusterEngine::homogeneous(spec.clone(), replicas, router);
    let parallel =
        ClusterEngine::homogeneous(spec.clone(), replicas, router).with_parallel_advance(true);
    let fleet_exact = serial.run(requests.clone()) == parallel.run(requests.clone());
    let fleet_streaming = serial.run_with_mode(requests.clone(), &streaming_mode)
        == parallel.run_with_mode(requests.clone(), &streaming_mode);

    let policy = AutoscalerPolicy::new(1, replicas as u32)
        .with_evaluation_interval(0.5)
        .with_scale_out_queue_depth(8.0)
        .with_scale_in_outstanding(2.0)
        .with_cooldown(2.0);
    let serial = AutoscaleEngine::new(spec.clone(), router, policy);
    let parallel = AutoscaleEngine::new(spec.clone(), router, policy).with_parallel_advance(true);
    let autoscale_exact = serial.run(requests.clone()) == parallel.run(requests.clone());
    let autoscale_streaming = serial.run_with_mode(requests.clone(), &streaming_mode)
        == parallel.run_with_mode(requests, &streaming_mode);

    EqualityFlags {
        fleet_exact,
        fleet_streaming,
        autoscale_exact,
        autoscale_streaming,
    }
}

extern "C" {
    fn mallopt(param: i32, value: i32) -> i32;
}

/// glibc mallopt parameter: maximum number of mmap'd allocations.
const M_MMAP_MAX: i32 = -4;
/// glibc mallopt parameter: heap trim threshold.
const M_TRIM_THRESHOLD: i32 = -1;

fn bench_scale_json(_c: &mut Criterion) {
    // Keep freed memory inside the process: no mmap for large blocks (their
    // pages would be returned to the OS on free and re-faulted by the next
    // tier) and no heap trimming. The warmup pass in `run_tier` then really
    // warms — on hosts with lazily materialized memory, re-faulting pages
    // costs microseconds each and would drown the event-loop measurement.
    unsafe {
        mallopt(M_MMAP_MAX, 0);
        mallopt(M_TRIM_THRESHOLD, i32::MAX);
    }
    let quick = rago_bench::quick_mode();
    let spec = stress_spec();

    // Tier plan: (requests, run baseline, run exact). The 10M tier is
    // streaming-only — its exact twin would retain tens of millions of
    // timeline allocations without adding information the 1M tier lacks.
    let plan: &[(u64, bool, bool)] = if quick {
        &[(100_000, true, true)]
    } else {
        &[
            (100_000, true, true),
            (1_000_000, true, true),
            (10_000_000, false, false),
        ]
    };
    let tiers: Vec<TierResult> = plan
        .iter()
        .map(|&(n, with_baseline, with_exact)| {
            let tier = run_tier(&spec, n, with_baseline, with_exact);
            println!(
                "tier {n}: {} events, streaming {:.2}M ev/s",
                tier.events,
                tier.streaming.events_per_s / 1e6
            );
            tier
        })
        .collect();

    let equality = check_serial_parallel_equality(&spec);
    assert!(equality.fleet_exact, "parallel fleet advance diverged");
    assert!(
        equality.fleet_streaming,
        "parallel streaming fleet advance diverged"
    );
    assert!(
        equality.autoscale_exact,
        "parallel autoscale advance diverged"
    );
    assert!(
        equality.autoscale_streaming,
        "parallel streaming autoscale advance diverged"
    );

    // Acceptance 1 (full mode): streaming events/sec at the 1M tier beats
    // the vendored baseline by at least 5x.
    const SPEEDUP_TARGET: f64 = 5.0;
    let speedup_at_1m = tiers
        .iter()
        .find(|t| t.requests == 1_000_000)
        .and_then(|t| {
            t.baseline
                .as_ref()
                .map(|b| t.streaming.events_per_s / b.events_per_s)
        });
    if let Some(speedup) = speedup_at_1m {
        assert!(
            speedup >= SPEEDUP_TARGET,
            "streaming engine reached only {speedup:.2}x the baseline at 1M requests \
             (target {SPEEDUP_TARGET}x)"
        );
    }

    // Acceptance 2: streaming retained memory is sub-linear in the tier
    // size — the histogram state must not grow with the request count.
    let first = tiers.first().expect("at least one tier");
    let last = tiers.last().expect("at least one tier");
    let retained_growth =
        last.streaming.retained_bytes as f64 / first.streaming.retained_bytes.max(1) as f64;
    let request_growth = last.requests as f64 / first.requests as f64;
    assert!(
        retained_growth <= request_growth.sqrt().max(2.0),
        "streaming retained bytes grew {retained_growth:.1}x over a {request_growth:.0}x \
         request increase — not sub-linear"
    );

    let json = render_json(
        quick,
        &tiers,
        &equality,
        speedup_at_1m,
        SPEEDUP_TARGET,
        retained_growth,
    );
    assert!(
        !json.to_ascii_lowercase().contains("nan") && !json.contains("inf"),
        "refusing to write non-finite scale metrics"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_scale.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

fn fmt_opt_bool(v: Option<bool>) -> String {
    v.map_or_else(|| "null".into(), |b| b.to_string())
}

fn fmt_engine(f: Option<&EngineFigures>) -> String {
    f.map_or_else(
        || "null".into(),
        |f| {
            format!(
                "{{\"wall_s\": {:.4}, \"events_per_s\": {:.0}, \"retained_bytes\": {}}}",
                f.wall_s, f.events_per_s, f.retained_bytes
            )
        },
    )
}

fn render_json(
    quick: bool,
    tiers: &[TierResult],
    equality: &EqualityFlags,
    speedup_at_1m: Option<f64>,
    speedup_target: f64,
    retained_growth: f64,
) -> String {
    let tiers_json = tiers
        .iter()
        .map(|t| {
            let speedup = t
                .baseline
                .as_ref()
                .map(|b| t.streaming.events_per_s / b.events_per_s);
            format!(
                "    {{\"requests\": {}, \"events\": {},\n      \"baseline\": {},\n      \
                 \"exact\": {},\n      \"streaming\": {},\n      \
                 \"speedup_streaming_vs_baseline\": {},\n      \
                 \"baseline_matches_exact\": {},\n      \
                 \"percentile_delta_within_bucket\": {}}}",
                t.requests,
                t.events,
                fmt_engine(t.baseline.as_ref()),
                fmt_engine(t.exact.as_ref()),
                fmt_engine(Some(&t.streaming)),
                speedup.map_or_else(|| "null".into(), |s| format!("{s:.2}")),
                fmt_opt_bool(t.baseline_matches_exact),
                fmt_opt_bool(t.percentile_delta_within_bucket),
            )
        })
        .collect::<Vec<_>>()
        .join(",\n");
    format!(
        "{{\n  \"bench\": \"scale_stress/des\",\n  \"quick\": {quick},\n  \
         \"rate_rps\": {RATE_RPS:.0},\n  \
         \"histogram_bucket_width_s\": {},\n  \"tiers\": [\n{tiers_json}\n  ],\n  \
         \"serial_parallel_equality\": {{\"fleet_exact\": {}, \"fleet_streaming\": {}, \
         \"autoscale_exact\": {}, \"autoscale_streaming\": {}}},\n  \
         \"acceptance\": {{\"speedup_streaming_vs_baseline_1m\": {}, \
         \"speedup_target\": {speedup_target:.1}, \"meets_speedup\": {}, \
         \"streaming_retained_growth\": {retained_growth:.2}, \
         \"sublinear_retained_growth\": true}}\n}}\n",
        HistogramSpec::default().bucket_width_s,
        equality.fleet_exact,
        equality.fleet_streaming,
        equality.autoscale_exact,
        equality.autoscale_streaming,
        speedup_at_1m.map_or_else(|| "null".into(), |s| format!("{s:.2}")),
        speedup_at_1m.map_or_else(|| "null".into(), |s| (s >= speedup_target).to_string()),
    )
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scale_json
}
criterion_main!(benches);
