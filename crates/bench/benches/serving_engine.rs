//! Benches of the request-level discrete-event serving engine, plus the
//! system-level acceptance run: for two paper case-study workloads, drive
//! Poisson and burst request streams through the best static schedule and
//! record TTFT/TPOT percentiles, SLO attainment, and the sustained-throughput
//! knee into `BENCH_serving.json` at the workspace root.
//!
//! Set `RAGO_BENCH_QUICK=1` for a CI-friendly quick mode (fewer requests and
//! sweep points, same JSON shape).

use criterion::{criterion_group, criterion_main, Criterion};
use rago_core::{Rago, SearchOptions};
use rago_schema::presets::{self, LlmSize};
use rago_schema::{RagSchema, SequenceProfile, SloTarget};
use rago_serving_sim::engine::sustained_throughput_knee;
use rago_workloads::{ArrivalProcess, TraceSpec};

/// One rate point of a Poisson sweep.
struct RatePoint {
    rate_rps: f64,
    attainment: f64,
    goodput_rps: f64,
    ttft_p50_s: f64,
    ttft_p95_s: f64,
    ttft_p99_s: f64,
    tpot_p50_s: f64,
    tpot_p95_s: f64,
    tpot_p99_s: f64,
}

fn fmt_rate_point(p: &RatePoint) -> String {
    format!(
        "        {{\"rate_rps\": {:.3}, \"attainment\": {:.4}, \"goodput_rps\": {:.3}, \
         \"ttft_p50_s\": {:.6}, \"ttft_p95_s\": {:.6}, \"ttft_p99_s\": {:.6}, \
         \"tpot_p50_s\": {:.6}, \"tpot_p95_s\": {:.6}, \"tpot_p99_s\": {:.6}}}",
        p.rate_rps,
        p.attainment,
        p.goodput_rps,
        p.ttft_p50_s,
        p.ttft_p95_s,
        p.ttft_p99_s,
        p.tpot_p50_s,
        p.tpot_p95_s,
        p.tpot_p99_s,
    )
}

/// Runs one workload's acceptance study and renders its JSON object.
fn workload_entry(name: &str, schema: RagSchema, slo: &SloTarget, num_requests: usize) -> String {
    let rago = Rago::new(schema, rago_bench::default_cluster());
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("static search succeeds");
    let best = frontier
        .max_qps_per_chip()
        .expect("non-empty frontier")
        .clone();
    let static_qps = best.performance.qps.max(1e-9);
    let profile = SequenceProfile::paper_default().with_decode_tokens(64);

    // Poisson sweep: offered load as fractions of the static steady-state
    // QPS, bracketing the knee.
    let fractions: &[f64] = if rago_bench::quick_mode() {
        &[0.25, 0.75, 2.0]
    } else {
        &[0.25, 0.5, 0.75, 0.9, 1.0, 1.25, 1.5, 2.0]
    };
    let mut points = Vec::new();
    for &f in fractions {
        let rate = f * static_qps;
        let trace = TraceSpec {
            num_requests,
            profile,
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            length_jitter: 0.2,
            seed: 17,
        }
        .generate();
        let eval = rago
            .evaluate_dynamic(&best.schedule, &trace, slo)
            .expect("dynamic evaluation succeeds");
        let m = &eval.report.metrics;
        points.push(RatePoint {
            rate_rps: rate,
            attainment: eval.attainment,
            goodput_rps: eval.goodput_rps,
            ttft_p50_s: m.ttft.p50_s,
            ttft_p95_s: m.ttft.p95_s,
            ttft_p99_s: m.ttft.p99_s,
            tpot_p50_s: m.tpot.p50_s,
            tpot_p95_s: m.tpot.p95_s,
            tpot_p99_s: m.tpot.p99_s,
        });
    }
    let knee = sustained_throughput_knee(
        &points
            .iter()
            .map(|p| (p.rate_rps, p.attainment))
            .collect::<Vec<_>>(),
        slo,
    );

    // Burst arrivals: batches of requests landing together, the regime of
    // the paper's micro-batching study (Figure 19).
    let burst_size = 32u32;
    let period_s = f64::from(burst_size) / (0.5 * static_qps);
    let burst_trace = TraceSpec {
        num_requests,
        profile,
        arrival: ArrivalProcess::Bursts {
            burst_size,
            period_s,
        },
        length_jitter: 0.2,
        seed: 17,
    }
    .generate();
    let burst_eval = rago
        .evaluate_dynamic(&best.schedule, &burst_trace, slo)
        .expect("dynamic evaluation succeeds");
    let bm = &burst_eval.report.metrics;

    format!(
        "    \"{name}\": {{\n      \"schedule\": \"{}\",\n      \"static_qps\": {:.3},\n      \
         \"static_ttft_s\": {:.6},\n      \"poisson\": {{\n        \"knee_rps\": {},\n        \"points\": [\n{}\n        ]\n      }},\n      \
         \"burst\": {{\"burst_size\": {burst_size}, \"period_s\": {:.4}, \"attainment\": {:.4}, \
         \"ttft_p50_s\": {:.6}, \"ttft_p95_s\": {:.6}, \"ttft_p99_s\": {:.6}, \
         \"tpot_p50_s\": {:.6}, \"tpot_p95_s\": {:.6}, \"tpot_p99_s\": {:.6}, \
         \"queueing_mean_s\": {:.6}, \"service_mean_s\": {:.6}}}\n    }}",
        best.schedule.describe(),
        static_qps,
        best.performance.ttft_s,
        knee.map(|k| format!("{k:.3}")).unwrap_or_else(|| "null".into()),
        points
            .iter()
            .map(fmt_rate_point)
            .collect::<Vec<_>>()
            .join(",\n"),
        period_s,
        burst_eval.attainment,
        bm.ttft.p50_s,
        bm.ttft.p95_s,
        bm.ttft.p99_s,
        bm.tpot.p50_s,
        bm.tpot.p95_s,
        bm.tpot.p99_s,
        bm.queueing_mean_s,
        bm.service_mean_s,
    )
}

/// The acceptance run: Case I (hyperscale retrieval) and Case III (iterative
/// retrieval) under Poisson and burst arrivals, written to
/// `BENCH_serving.json`.
fn bench_acceptance_json(_c: &mut Criterion) {
    let slo = SloTarget::paper_default();
    let num_requests = if rago_bench::quick_mode() { 150 } else { 600 };
    let case1 = workload_entry(
        "case1_hyperscale_8b",
        presets::case1_hyperscale(LlmSize::B8, 1),
        &slo,
        num_requests,
    );
    let case3 = workload_entry(
        "case3_iterative_8b",
        presets::case3_iterative(LlmSize::B8, 4),
        &slo,
        num_requests,
    );
    let json = format!(
        "{{\n  \"bench\": \"serving_engine/request_level\",\n  \"requests_per_run\": {num_requests},\n  \
         \"slo\": {{\"ttft_s\": {:.3}, \"tpot_s\": {:.3}, \"attainment\": {:.2}}},\n  \
         \"workloads\": {{\n{case1},\n{case3}\n  }}\n}}\n",
        slo.ttft_s, slo.tpot_s, slo.attainment,
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_serving.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

/// Raw engine throughput: events per second on a saturated Poisson stream.
fn bench_engine_throughput(c: &mut Criterion) {
    let rago = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        rago_bench::default_cluster(),
    );
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("static search succeeds");
    let best = frontier
        .max_qps_per_chip()
        .expect("non-empty frontier")
        .clone();
    let slo = SloTarget::paper_default();
    let trace = TraceSpec {
        num_requests: 300,
        profile: SequenceProfile::paper_default().with_decode_tokens(64),
        arrival: ArrivalProcess::Poisson {
            rate_rps: 0.8 * best.performance.qps.max(1e-9),
        },
        length_jitter: 0.2,
        seed: 23,
    }
    .generate();
    c.bench_function("serving_engine_case1_poisson_300req", |b| {
        b.iter(|| rago.evaluate_dynamic(&best.schedule, &trace, &slo).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_acceptance_json, bench_engine_throughput
}
criterion_main!(benches);
