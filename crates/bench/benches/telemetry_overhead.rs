//! Telemetry acceptance bench: the tracing layer costs nothing when off
//! and stays cheap when on, written to `BENCH_telemetry.json` at the
//! workspace root.
//!
//! One seeded chaos scenario — the richest event mix in the repo
//! (spans, gauges, router/scaling/fault decisions, profile counters) —
//! is run three ways over the same request stream:
//!
//! * **untraced** — the plain `run()` path;
//! * **null-recorded** — `run_traced` with a [`NullRecorder`], the
//!   statically-dead hooks the untraced path actually compiles to;
//! * **live** — `run_traced` with a capturing [`TraceRecorder`] under a
//!   full-capture config (reported, not gated — capturing is allowed to
//!   cost something).
//!
//! Acceptance (asserted, and gated by CI on the JSON flags):
//!
//! * `disabled_is_bit_identical` — the untraced report equals the
//!   null-recorded report *and* the live-traced report (recording never
//!   perturbs the simulation), and a disabled config captures zero
//!   events.
//! * `overhead_under_2pct` — best-of-N wall time of the null-recorded
//!   run stays within 2% of the untraced run.
//! * `traces_parse` — the Chrome-trace and JSONL exports of the live run
//!   pass the strict JSON validators.
//!
//! Set `RAGO_BENCH_QUICK=1` for the CI-friendly quick mode (smaller
//! trace, same JSON shape). The bench refuses to write non-finite
//! numbers.

use std::time::Instant;

use criterion::{criterion_group, criterion_main, Criterion};
use rago_schema::{RouterPolicy, SequenceProfile};
use rago_serving_sim::engine::{DecodeSpec, EngineRequest, LatencyTable, PipelineSpec, StageSpec};
use rago_serving_sim::faults::{ChaosEngine, ChaosReport, FaultEvent, FaultSchedule, ScaleDriver};
use rago_telemetry::{
    export_chrome_trace, export_jsonl, validate_json, validate_jsonl, NullRecorder,
    TelemetryConfig, TraceRecorder,
};
use rago_workloads::{ArrivalProcess, TraceSpec};

fn pipeline() -> PipelineSpec {
    PipelineSpec::new(
        vec![
            StageSpec::new(
                "retrieval",
                0,
                16,
                LatencyTable::from_fn(16, |b| 0.02 + 1e-4 * f64::from(b)),
            ),
            StageSpec::new(
                "prefix",
                1,
                8,
                LatencyTable::from_fn(8, |b| 0.01 * f64::from(b)),
            ),
        ],
        DecodeSpec::new(
            32,
            LatencyTable::from_fn(32, |b| 2e-3 + 1e-5 * f64::from(b)),
        ),
    )
}

fn requests(num_requests: usize) -> Vec<EngineRequest> {
    TraceSpec {
        num_requests,
        profile: SequenceProfile::paper_default().with_decode_tokens(32),
        arrival: ArrivalProcess::Poisson { rate_rps: 120.0 },
        length_jitter: 0.2,
        seed: 7,
    }
    .generate()
    .requests
    .iter()
    .map(EngineRequest::from)
    .collect()
}

fn scenario(num_requests: usize) -> ChaosEngine {
    // Crash mid-stream so the traced path exercises requeue re-picks and
    // disruption events, not just the steady state.
    let crash_at_s = num_requests as f64 / 120.0 / 2.0;
    ChaosEngine::new(
        pipeline(),
        RouterPolicy::LeastOutstanding,
        ScaleDriver::Static { replicas: 3 },
    )
    .with_faults(FaultSchedule::new(vec![FaultEvent::Crash {
        replica: 0,
        at_s: crash_at_s,
        restart_delay_s: 1.0,
    }]))
}

/// One timed sample: `reps` back-to-back runs (so a sample is long
/// enough to dwarf timer and scheduler noise), returning the mean
/// per-run seconds and the last report.
fn sample<F: FnMut() -> ChaosReport>(reps: usize, run: &mut F) -> (f64, ChaosReport) {
    let start = Instant::now();
    let mut report = None;
    for _ in 0..reps {
        report = Some(run());
    }
    (
        start.elapsed().as_secs_f64() / reps as f64,
        report.expect("at least one rep"),
    )
}

fn bench_telemetry_json(_c: &mut Criterion) {
    let quick = rago_bench::quick_mode();
    let num_requests = if quick { 2_000 } else { 20_000 };
    let (trials, reps) = if quick { (7, 8) } else { (7, 2) };
    let reqs = requests(num_requests);
    let engine = scenario(num_requests);

    // ---- Timings: untraced vs null-recorded vs live capture ----
    // Samples are interleaved so slow drift (thermal, scheduler) hits
    // every variant equally; the best sample per variant is compared.
    let mut run_untraced = || engine.run(reqs.clone());
    let mut run_nullrec = || engine.run_traced(reqs.clone(), &mut NullRecorder);
    let live_engine = scenario(num_requests).with_telemetry(TelemetryConfig::full(0.25));
    let mut events_captured = 0usize;
    let mut run_live = || {
        let mut rec = TraceRecorder::new(TelemetryConfig::full(0.25));
        let report = live_engine.run_traced(reqs.clone(), &mut rec);
        events_captured = rec.len();
        report
    };
    // Warm-up: touch every path once before timing anything.
    let mut untraced = run_untraced();
    let mut nullrec = run_nullrec();
    let mut live = run_live();
    let (mut untraced_best_s, mut nullrec_best_s, mut live_best_s) =
        (f64::INFINITY, f64::INFINITY, f64::INFINITY);
    for _ in 0..trials {
        let (t, r) = sample(reps, &mut run_untraced);
        untraced_best_s = untraced_best_s.min(t);
        untraced = r;
        let (t, r) = sample(reps, &mut run_nullrec);
        nullrec_best_s = nullrec_best_s.min(t);
        nullrec = r;
        let (t, r) = sample(reps, &mut run_live);
        live_best_s = live_best_s.min(t);
        live = r;
    }

    // ---- Flag 1: disabled (and even live) recording is inert ----
    let disabled_is_bit_identical = untraced == nullrec && untraced == live && {
        let (report, rec) = engine.run_telemetry(reqs.clone());
        report == untraced && rec.is_empty()
    };
    assert!(
        disabled_is_bit_identical,
        "recording perturbed the simulation"
    );

    // ---- Flag 2: the null-recorded path costs nothing measurable ----
    let null_overhead = nullrec_best_s / untraced_best_s.max(1e-12) - 1.0;
    let overhead_under_2pct = null_overhead < 0.02;
    assert!(
        overhead_under_2pct,
        "NullRecorder overhead {:.2}% exceeds 2% (untraced {untraced_best_s:.4}s, \
         null-recorded {nullrec_best_s:.4}s)",
        null_overhead * 100.0
    );
    let live_overhead = live_best_s / untraced_best_s.max(1e-12) - 1.0;

    // ---- Flag 3: the exports are valid JSON / JSONL ----
    let (_, rec) = live_engine.run_telemetry(reqs.clone());
    let chrome = export_chrome_trace(rec.events());
    let jsonl = export_jsonl(rec.events());
    let traces_parse = validate_json(&chrome).is_ok() && validate_jsonl(&jsonl).is_ok();
    assert!(traces_parse, "exported traces failed JSON validation");
    assert_eq!(rec.len(), events_captured, "capture count is not stable");

    let events_per_request = events_captured as f64 / num_requests as f64;
    println!(
        "telemetry overhead over {num_requests} requests (best of {trials}): \
         untraced {untraced_best_s:.4}s, null-recorded {nullrec_best_s:.4}s \
         ({:+.2}%), live {live_best_s:.4}s ({:+.2}%, {events_captured} events, \
         {events_per_request:.1}/request)",
        null_overhead * 100.0,
        live_overhead * 100.0,
    );

    let json = format!(
        "{{\n  \"bench\": \"telemetry_overhead\",\n  \
         \"num_requests\": {num_requests},\n  \"trials\": {trials},\n  \
         \"untraced_best_s\": {untraced_best_s:.6},\n  \
         \"null_recorded_best_s\": {nullrec_best_s:.6},\n  \
         \"live_best_s\": {live_best_s:.6},\n  \
         \"null_overhead_frac\": {null_overhead:.6},\n  \
         \"live_overhead_frac\": {live_overhead:.6},\n  \
         \"events_captured\": {events_captured},\n  \
         \"events_per_request\": {events_per_request:.3},\n  \
         \"chrome_trace_bytes\": {},\n  \"jsonl_bytes\": {},\n  \
         \"acceptance\": {{\"disabled_is_bit_identical\": {disabled_is_bit_identical}, \
         \"overhead_under_2pct\": {overhead_under_2pct}, \
         \"traces_parse\": {traces_parse}}}\n}}\n",
        chrome.len(),
        jsonl.len(),
    );
    // Case-sensitive on purpose: Rust formats non-finite floats as "NaN"
    // and "inf".
    assert!(
        !json.contains("NaN") && !json.contains("inf"),
        "refusing to write non-finite telemetry metrics"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_telemetry.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_telemetry_json
}
criterion_main!(benches);
