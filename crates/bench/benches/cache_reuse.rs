//! Cache-reuse acceptance bench: the serving stack with prefix-KV and
//! retrieval-result caching versus the identical cache-less stack on a
//! popularity-skewed (Zipfian) two-tenant trace, written to
//! `BENCH_cache.json` at the workspace root.
//!
//! Three measurements, all on the same best-QPS/chip schedule:
//!
//! * **Knee sweep** — offered rate versus SLO attainment for one replica,
//!   cache-on versus cache-off, and the sustained-throughput knee of each
//!   sweep. Hits shed prefill and retrieval work, so the cached knee must
//!   be no lower — and is strictly higher whenever a cached stage is the
//!   bottleneck.
//! * **Capacity at the peak** — `plan_capacity` versus `plan_capacity_cached`
//!   at a rate above one replica's capacity: the DistServe-style
//!   equal-attainment-at-fewer-chips comparison (the cached plan also
//!   reports the hit rates it was sized under).
//! * **Routing** — a fleet at the same peak rate under cache-affinity,
//!   prefix-hash, and least-outstanding routing: affinity concentrates each
//!   template's KV state on one replica and must achieve at least the
//!   least-outstanding policy's prefix hit rate.
//!
//! Acceptance (asserted, and gated by CI on the JSON): the cached knee is
//! **no lower** than the cache-less knee, and caching **helps** — a
//! strictly higher knee or a strictly cheaper capacity plan. Set
//! `RAGO_BENCH_QUICK=1` for the CI-friendly quick mode (same JSON shape).
//! The bench refuses to write non-finite numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use rago_cache::{CacheConfig, EvictionPolicy, PrefixKvCacheConfig, RetrievalCacheConfig};
use rago_core::{CapacityOptions, Rago, SearchOptions};
use rago_schema::presets::{self, LlmSize};
use rago_schema::{FleetConfig, RouterPolicy, SequenceProfile, SloTarget};
use rago_serving_sim::engine::sustained_throughput_knee;
use rago_workloads::{
    ArrivalProcess, ContentSpec, MixTraceSpec, PopularityModel, RequestClass, Trace, WorkloadMix,
};

/// The two-tenant mix of the `tenant_mix` bench: an interactive chat tenant
/// (3× the traffic) and a long-form report tenant.
fn mix() -> WorkloadMix {
    WorkloadMix::new(vec![
        RequestClass::new(
            "chat",
            3.0,
            SequenceProfile::paper_default().with_decode_tokens(32),
            0.1,
            SloTarget::new(2.0, 0.05),
        ),
        RequestClass::new(
            "report",
            1.0,
            SequenceProfile::paper_default().with_decode_tokens(128),
            0.1,
            SloTarget::new(10.0, 0.2),
        ),
    ])
}

fn content() -> ContentSpec {
    ContentSpec {
        prefixes: PopularityModel::zipf(12, 1.0),
        shared_prefix_fraction: 0.8,
        docs: PopularityModel::zipf(48, 1.0),
        seed: 37,
    }
}

/// A Zipfian two-tenant trace at `rate` rps over `duration_s` seconds.
fn trace_at(rate: f64, duration_s: f64, seed: u64) -> Trace {
    let spec = MixTraceSpec {
        num_requests: (rate * duration_s).ceil().max(8.0) as usize,
        mix: mix(),
        arrival: ArrivalProcess::Poisson { rate_rps: rate },
        seed,
    };
    content().tag(&spec.generate())
}

fn bench_cache_json(_c: &mut Criterion) {
    let quick = rago_bench::quick_mode();
    let rago = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        rago_bench::default_cluster(),
    );
    let frontier = rago
        .optimize(&SearchOptions::fast())
        .expect("static search succeeds");
    let best = frontier
        .max_qps_per_chip()
        .expect("non-empty frontier")
        .clone();
    let static_qps = best.performance.qps.max(1e-9);
    let slo = SloTarget::new(1.0, 0.1);

    // Cache capacities sized to the content model: room for roughly half
    // the templates' KV state, and all hot retrieval keys.
    let mean_prefix = f64::from(SequenceProfile::paper_default().prefix_tokens());
    let cache = CacheConfig {
        prefix: Some(PrefixKvCacheConfig::new(
            (6.0 * mean_prefix) as u64,
            EvictionPolicy::Lru,
        )),
        retrieval: Some(RetrievalCacheConfig::new(48, EvictionPolicy::Lru)),
    };

    // --- Knee sweep: one replica, cache-on vs cache-off. ---------------
    let duration_s = if quick { 6.0 } else { 10.0 };
    let fractions: &[f64] = if quick {
        &[0.6, 1.0, 1.4, 1.8, 2.2]
    } else {
        &[0.5, 0.75, 1.0, 1.25, 1.5, 1.75, 2.0, 2.5]
    };
    let mut off_points = Vec::new();
    let mut on_points = Vec::new();
    let mut sweep_rows = Vec::new();
    for (i, frac) in fractions.iter().enumerate() {
        let rate = frac * static_qps;
        let trace = trace_at(rate, duration_s, 101 + i as u64);
        let off = rago
            .evaluate_dynamic(&best.schedule, &trace, &slo)
            .expect("cache-off evaluation succeeds");
        let on = rago
            .evaluate_cached(&best.schedule, &trace, &slo, &cache)
            .expect("cache-on evaluation succeeds");
        off_points.push((rate, off.attainment));
        on_points.push((rate, on.attainment));
        sweep_rows.push(format!(
            "    {{\"rate_rps\": {rate:.3}, \"attainment_off\": {:.4}, \"attainment_on\": {:.4}, \
             \"goodput_off_rps\": {:.3}, \"goodput_on_rps\": {:.3}, \
             \"prefix_hit_rate\": {:.4}, \"retrieval_hit_rate\": {:.4}}}",
            off.attainment,
            on.attainment,
            off.goodput_rps,
            on.goodput_rps,
            on.report.cache.prefix.hit_rate(),
            on.report.cache.retrieval.hit_rate(),
        ));
    }
    let knee_off = sustained_throughput_knee(&off_points, &slo);
    let knee_on = sustained_throughput_knee(&on_points, &slo);
    let knee_off_v = knee_off.unwrap_or(0.0);
    let knee_on_v = knee_on.unwrap_or(0.0);
    assert!(
        knee_on_v >= knee_off_v,
        "caching lowered the knee: {knee_on_v} vs {knee_off_v}"
    );

    // --- Capacity at the peak: equal attainment at fewer chips? --------
    let peak_rate = 2.0 * static_qps;
    let sizing_duration_s = if quick { 4.0 } else { 6.0 };
    let options = CapacityOptions {
        max_replicas: 6,
        num_requests: (peak_rate * sizing_duration_s).ceil() as usize,
        profile: SequenceProfile::paper_default().with_decode_tokens(48),
        ..CapacityOptions::default()
    };
    let plan_off = rago
        .plan_capacity(&best.schedule, &slo, peak_rate, &options)
        .expect("cache-off capacity plan succeeds");
    let plan_on = rago
        .plan_capacity_cached(
            &best.schedule,
            &slo,
            peak_rate,
            &options,
            &cache,
            &content(),
        )
        .expect("cache-on capacity plan succeeds");
    assert!(
        plan_on.plan.replicas <= plan_off.replicas,
        "caching increased the fleet: {} vs {}",
        plan_on.plan.replicas,
        plan_off.replicas
    );

    // Acceptance: caching must actually help somewhere — a strictly higher
    // knee, or the same SLO served by a strictly cheaper fleet.
    let knee_strictly_higher = knee_on_v > knee_off_v;
    let cheaper_fleet = plan_on.plan.total_xpus < plan_off.total_xpus;
    assert!(
        knee_strictly_higher || cheaper_fleet,
        "caching helped neither the knee ({knee_off_v} -> {knee_on_v}) nor the fleet \
         ({} -> {} XPUs)",
        plan_off.total_xpus,
        plan_on.plan.total_xpus
    );

    // --- Routing: affinity vs hash vs least-outstanding at the peak. ---
    let fleet_size = plan_off.replicas.max(2);
    let routing_trace = trace_at(peak_rate, duration_s, 211);
    let mut routing_rows = Vec::new();
    let mut hit_rate_of = |router: RouterPolicy| -> (f64, f64) {
        let eval = rago
            .evaluate_fleet_cached(
                &best.schedule,
                &FleetConfig::new(fleet_size, router),
                &routing_trace,
                &slo,
                &cache,
            )
            .expect("fleet evaluation succeeds");
        let hit_rate = eval.report.merged.cache.prefix.hit_rate();
        routing_rows.push(format!(
            "    {{\"router\": \"{router}\", \"prefix_hit_rate\": {hit_rate:.4}, \
             \"retrieval_hit_rate\": {:.4}, \"attainment\": {:.4}, \"goodput_rps\": {:.3}}}",
            eval.report.merged.cache.retrieval.hit_rate(),
            eval.attainment,
            eval.goodput_rps,
        ));
        (hit_rate, eval.attainment)
    };
    let (affinity_hits, _) = hit_rate_of(RouterPolicy::CacheAffinity);
    let (hash_hits, _) = hit_rate_of(RouterPolicy::PrefixHash);
    let (lo_hits, _) = hit_rate_of(RouterPolicy::LeastOutstanding);
    assert!(
        affinity_hits >= lo_hits,
        "cache-affinity hit rate {affinity_hits} fell below least-outstanding {lo_hits}"
    );

    let json = format!(
        "{{\n  \"bench\": \"cache_reuse/zipf_two_tenant\",\n  \
         \"schedule\": \"{}\",\n  \"static_qps\": {static_qps:.3},\n  \
         \"content\": {{\"prefix_templates\": 12, \"prefix_zipf_s\": 1.0, \
         \"shared_prefix_fraction\": 0.8, \"doc_keys\": 48, \"doc_zipf_s\": 1.0}},\n  \
         \"cache\": {{\"prefix_capacity_tokens\": {}, \"retrieval_capacity_entries\": 48}},\n  \
         \"sweep\": [\n{}\n  ],\n  \
         \"knee_off_rps\": {knee_off_v:.3},\n  \"knee_on_rps\": {knee_on_v:.3},\n  \
         \"capacity_at_peak\": {{\"target_qps\": {peak_rate:.3}, \
         \"replicas_off\": {}, \"replicas_on\": {}, \
         \"total_xpus_off\": {}, \"total_xpus_on\": {}, \
         \"prefix_hit_rate\": {:.4}, \"retrieval_hit_rate\": {:.4}, \
         \"prefix_tokens_saved\": {}}},\n  \
         \"routing\": [\n{}\n  ],\n  \
         \"affinity_vs_hash\": {{\"affinity_prefix_hit_rate\": {affinity_hits:.4}, \
         \"hash_prefix_hit_rate\": {hash_hits:.4}, \
         \"least_outstanding_prefix_hit_rate\": {lo_hits:.4}}},\n  \
         \"acceptance\": {{\"cache_on_knee_no_worse\": {}, \"cache_helps\": {}, \
         \"affinity_no_worse_than_least_outstanding\": {}}}\n}}\n",
        best.schedule.describe(),
        (6.0 * mean_prefix) as u64,
        sweep_rows.join(",\n"),
        plan_off.replicas,
        plan_on.plan.replicas,
        plan_off.total_xpus,
        plan_on.plan.total_xpus,
        plan_on.prefix_hit_rate,
        plan_on.retrieval_hit_rate,
        plan_on.prefix_tokens_saved,
        routing_rows.join(",\n"),
        knee_on_v >= knee_off_v,
        knee_strictly_higher || cheaper_fleet,
        affinity_hits >= lo_hits,
    );
    // Rust formats non-finite floats as "NaN" / "inf"; match the rendered
    // number forms (": inf") so the word "affinity" never false-positives.
    assert!(
        !json.contains("NaN") && !json.contains(": inf") && !json.contains(": -inf"),
        "refusing to write non-finite cache metrics"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_cache.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_cache_json
}
criterion_main!(benches);
