//! Criterion benches of the analytical cost models (the inner loop of the
//! optimizer's search).

use criterion::{criterion_group, criterion_main, Criterion};
use rago_accel_sim::{AcceleratorGroup, InferenceSimulator};
use rago_hardware::XpuSpec;
use rago_retrieval_sim::RetrievalSimulator;
use rago_schema::{ModelConfig, RetrievalConfig};
use std::hint::black_box;

fn bench_inference_models(c: &mut Criterion) {
    let sim = InferenceSimulator::new();
    let group = AcceleratorGroup::new(XpuSpec::default(), 16);
    let model = ModelConfig::llama3_70b();

    c.bench_function("prefix_cost_70b_b8", |b| {
        b.iter(|| {
            sim.best_prefix_cost(black_box(&model), black_box(512), black_box(8), &group)
                .unwrap()
        })
    });
    c.bench_function("decode_cost_70b_b128", |b| {
        b.iter(|| {
            sim.best_decode_cost(black_box(&model), 512, 256, black_box(128), &group)
                .unwrap()
        })
    });
    let encoder = ModelConfig::encoder_120m();
    c.bench_function("encoder_cost_1m_tokens", |b| {
        b.iter(|| {
            sim.encoder_cost(black_box(&encoder), 1_000_000, 128, 2, &group)
                .unwrap()
        })
    });
}

fn bench_retrieval_model(c: &mut Criterion) {
    let sim = RetrievalSimulator::default();
    let cfg = RetrievalConfig::hyperscale_64b();
    c.bench_function("retrieval_cost_64b_batch16", |b| {
        b.iter(|| sim.retrieval_cost(black_box(&cfg), 16, 32).unwrap())
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_inference_models, bench_retrieval_model
}
criterion_main!(benches);
