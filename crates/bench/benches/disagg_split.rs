//! Disaggregation acceptance bench: collocated versus prefill/decode-split
//! fleets across SLO tightness, written to `BENCH_disagg.json` at the
//! workspace root.
//!
//! One fixed case-1 schedule is driven at several offered rates under three
//! (TTFT, TPOT) SLO levels. At each (SLO, rate) point the bench reports the
//! best goodput-per-chip collocated fleet (1..=3 monolithic replicas, each
//! paying for prefill *and* decode chips) against the best disaggregated
//! split (prefill pool + decode pool, each paying only for its own chips,
//! linked by a 3D-torus KV handoff), plus the sustained-throughput knee of
//! the unit shapes (one collocated replica versus a 1+1 split).
//! A second sweep holds the winning split fixed and varies the
//! transfer link from free to a pathological 100 MB/s path, exposing the
//! handoff tax.
//!
//! Acceptance (asserted, and gated by CI on the JSON flags):
//!
//! * `disagg_beats_collocated_at_tight_slo` — at the tight SLO and the
//!   prefill-bound design rate, the best split beats the best collocated
//!   fleet on goodput per chip (the DistServe result).
//! * `transfer_cost_monotone` — goodput per chip never *improves* as the
//!   interconnect degrades from free to the slow link.
//!
//! Set `RAGO_BENCH_QUICK=1` for the CI-friendly quick mode (fewer rates,
//! shorter traces, same JSON shape). The bench refuses to write non-finite
//! numbers.

use criterion::{criterion_group, criterion_main, Criterion};
use rago_core::disagg::transfer_model_from_interconnect;
use rago_core::{BatchingPolicy, PlacementPlan, Rago, ResourceAllocation, Schedule};
use rago_hardware::InterconnectSpec;
use rago_schema::presets::{self, LlmSize};
use rago_schema::{FleetConfig, KvTransferModel, RouterPolicy, SequenceProfile, SloTarget, Stage};
use rago_serving_sim::engine::sustained_throughput_knee;
use rago_workloads::{ArrivalProcess, Trace, TraceSpec};

/// The empirically prefill-bound case-1 shape: one prefix accelerator group
/// and the decode XPUs sized equally, so a monolithic replica pays 16 chips
/// while the split prices each pool at 8.
fn schedule() -> Schedule {
    Schedule {
        placement: PlacementPlan {
            predecode_groups: vec![vec![Stage::Prefix]],
        },
        allocation: ResourceAllocation {
            group_xpus: vec![8],
            decode_xpus: 8,
            retrieval_servers: 32,
        },
        batching: BatchingPolicy::new(8, 64),
    }
}

/// Short decodes keep the workload prefill-bound: extra collocated
/// replicas buy mostly idle decode chips.
fn trace_at(rate_rps: f64, duration_s: f64) -> Trace {
    TraceSpec {
        num_requests: (rate_rps * duration_s).ceil().max(1.0) as usize,
        profile: SequenceProfile::paper_default().with_decode_tokens(4),
        arrival: ArrivalProcess::Poisson { rate_rps },
        length_jitter: 0.2,
        seed: 17,
    }
    .generate()
}

struct Best {
    label: String,
    goodput_per_chip: f64,
    attainment: f64,
}

fn bench_disagg_json(_c: &mut Criterion) {
    let quick = rago_bench::quick_mode();
    let schema = presets::case1_hyperscale(LlmSize::B8, 1);
    let torus = transfer_model_from_interconnect(&schema, &InterconnectSpec::torus_3d());
    let datacenter =
        transfer_model_from_interconnect(&schema, &InterconnectSpec::datacenter_network());
    let kv_bytes = schema.generative_llm.kv_cache_bytes_per_token();
    let rago = Rago::new(schema, rago_bench::default_cluster());
    let schedule = schedule();
    let chips_collocated = schedule.allocation.total_xpus();
    let chips_prefill: u32 = schedule.allocation.group_xpus.iter().sum();
    let chips_decode = schedule.allocation.decode_xpus;

    let rates: &[f64] = if quick {
        &[120.0, 160.0]
    } else {
        &[80.0, 120.0, 160.0, 200.0]
    };
    let duration_s = if quick { 15.0 / 16.0 } else { 15.0 / 8.0 };
    let tight_rate = 160.0;
    let splits: &[(u32, u32)] = &[(1, 1), (2, 1), (2, 2), (3, 1)];
    let slos = [
        ("tight", SloTarget::new(0.4, 0.05)),
        ("medium", SloTarget::new(0.8, 0.1)),
        ("loose", SloTarget::new(2.0, 0.2)),
    ];

    let mut disagg_beats_collocated_at_tight_slo = false;
    let mut slo_rows = Vec::new();
    for (slo_name, slo) in &slos {
        let mut point_rows = Vec::new();
        let mut collocated_points = Vec::new();
        let mut disagg_points = Vec::new();
        for &rate in rates {
            let trace = trace_at(rate, duration_s);

            // Best collocated fleet: n identical monolithic replicas, each
            // paying for the full schedule's chips.
            let mut collocated: Option<Best> = None;
            for n in 1..=3u32 {
                let eval = rago
                    .evaluate_fleet(
                        &schedule,
                        &FleetConfig::new(n, RouterPolicy::LeastOutstanding),
                        &trace,
                        slo,
                    )
                    .expect("collocated evaluation succeeds");
                let per_chip = eval.goodput_rps / f64::from(chips_collocated * n);
                if n == 1 {
                    collocated_points.push((rate, eval.attainment));
                }
                if collocated
                    .as_ref()
                    .map_or(true, |b| per_chip > b.goodput_per_chip)
                {
                    collocated = Some(Best {
                        label: format!("{n}x collocated"),
                        goodput_per_chip: per_chip,
                        attainment: eval.attainment,
                    });
                }
            }
            let collocated = collocated.expect("at least one collocated fleet evaluated");

            // Best split: each pool pays only for its own phase's chips.
            let mut disagg: Option<Best> = None;
            for &(p, d) in splits {
                let fleet =
                    FleetConfig::split(p, d, RouterPolicy::LeastOutstanding).with_transfer(torus);
                let eval = rago
                    .evaluate_fleet_disagg(&schedule, &fleet, &trace, slo)
                    .expect("disaggregated evaluation succeeds");
                if (p, d) == (1, 1) {
                    disagg_points.push((rate, eval.attainment));
                }
                if disagg
                    .as_ref()
                    .map_or(true, |b| eval.goodput_per_chip > b.goodput_per_chip)
                {
                    disagg = Some(Best {
                        label: format!("{p}p+{d}d"),
                        goodput_per_chip: eval.goodput_per_chip,
                        attainment: eval.attainment,
                    });
                }
            }
            let disagg = disagg.expect("at least one split evaluated");

            if *slo_name == "tight"
                && (rate - tight_rate).abs() < 1e-9
                && disagg.goodput_per_chip > collocated.goodput_per_chip
            {
                disagg_beats_collocated_at_tight_slo = true;
            }
            point_rows.push(format!(
                "        {{\"rate_rps\": {rate:.1}, \
                 \"collocated\": {{\"fleet\": \"{}\", \"goodput_per_chip\": {:.6}, \"attainment\": {:.4}}}, \
                 \"disagg\": {{\"fleet\": \"{}\", \"goodput_per_chip\": {:.6}, \"attainment\": {:.4}}}}}",
                collocated.label,
                collocated.goodput_per_chip,
                collocated.attainment,
                disagg.label,
                disagg.goodput_per_chip,
                disagg.attainment,
            ));
        }
        let knee = |points: &[(f64, f64)]| {
            sustained_throughput_knee(points, slo)
                .map_or_else(|| "null".to_string(), |k| format!("{k:.3}"))
        };
        slo_rows.push(format!(
            "    {{\"slo\": \"{slo_name}\", \"ttft_slo_s\": {:.2}, \"tpot_slo_s\": {:.2},\n      \
             \"knee_collocated_1x_rps\": {}, \"knee_disagg_1p1d_rps\": {},\n      \"points\": [\n{}\n    ]}}",
            slo.ttft_s,
            slo.tpot_s,
            knee(&collocated_points),
            knee(&disagg_points),
            point_rows.join(",\n"),
        ));
    }
    assert!(
        disagg_beats_collocated_at_tight_slo,
        "the best split did not beat the best collocated fleet per chip at the tight SLO"
    );

    // ---- Transfer-cost sensitivity at the tight SLO's design point ----
    let (tight_name, tight_slo) = &slos[0];
    assert_eq!(*tight_name, "tight");
    let trace = trace_at(tight_rate, duration_s);
    let links = [
        ("zero", KvTransferModel::zero()),
        ("torus_3d", torus),
        ("datacenter_network", datacenter),
        ("slow_100MBps", KvTransferModel::new(kv_bytes, 1e8, 1e-3)),
    ];
    let mut transfer_cost_monotone = true;
    let mut previous = f64::INFINITY;
    let mut link_rows = Vec::new();
    for (name, transfer) in &links {
        let fleet =
            FleetConfig::split(2, 1, RouterPolicy::LeastOutstanding).with_transfer(*transfer);
        let eval = rago
            .evaluate_fleet_disagg(&schedule, &fleet, &trace, tight_slo)
            .expect("sensitivity evaluation succeeds");
        let t = &eval.report.transfers;
        let mean_latency_s = t.latency_total_s / t.transfers.max(1) as f64;
        if eval.goodput_per_chip > previous + 1e-9 {
            transfer_cost_monotone = false;
        }
        previous = eval.goodput_per_chip;
        link_rows.push(format!(
            "    {{\"link\": \"{name}\", \"goodput_per_chip\": {:.6}, \"attainment\": {:.4}, \
             \"transfer_latency_mean_s\": {:.9}, \"transfer_latency_max_s\": {:.9}}}",
            eval.goodput_per_chip, eval.attainment, mean_latency_s, t.latency_max_s,
        ));
    }
    assert!(
        transfer_cost_monotone,
        "goodput per chip improved while the interconnect degraded"
    );

    let json = format!(
        "{{\n  \"bench\": \"disagg_split\",\n  \"schedule\": \"{}\",\n  \
         \"chips\": {{\"collocated_per_replica\": {chips_collocated}, \
         \"prefill_per_replica\": {chips_prefill}, \"decode_per_replica\": {chips_decode}}},\n  \
         \"trace\": {{\"decode_tokens\": 4, \"duration_s\": {duration_s:.4}, \"seed\": 17}},\n  \
         \"slo_sweep\": [\n{}\n  ],\n  \"transfer_sensitivity\": [\n{}\n  ],\n  \
         \"acceptance\": {{\"disagg_beats_collocated_at_tight_slo\": \
         {disagg_beats_collocated_at_tight_slo}, \
         \"transfer_cost_monotone\": {transfer_cost_monotone}}}\n}}\n",
        schedule.describe(),
        slo_rows.join(",\n"),
        link_rows.join(",\n"),
    );
    // Case-sensitive on purpose: Rust formats non-finite floats as "NaN"
    // and "inf".
    assert!(
        !json.contains("NaN") && !json.contains("inf"),
        "refusing to write non-finite disaggregation metrics"
    );
    let out = std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .join("BENCH_disagg.json");
    match std::fs::write(&out, &json) {
        Ok(()) => println!("wrote {}", out.display()),
        Err(e) => eprintln!("could not write {}: {e}", out.display()),
    }
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_disagg_json
}
criterion_main!(benches);
