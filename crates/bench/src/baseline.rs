//! Vendored copy of the serving engine's *pre-optimization* event loop, kept
//! as the speed reference for the `scale_stress` bench.
//!
//! This is the discrete-event core as it stood before the indexed event
//! queue and arena request state landed: a global `BinaryHeap` of boxed
//! event payloads (`Vec<usize>` member lists allocated per event), one
//! heap-allocated `ReqState` per request with growable stage vectors, and a
//! `BTreeSet` for the decode-resident set. It is deliberately *not* kept
//! API-compatible with the engine — it reimplements the loop against the
//! engine's public [`PipelineSpec`] types so the bench can drive both
//! engines from one spec and assert their timelines are bit-identical while
//! timing them separately.
//!
//! Scope: cache-less, non-iterative pipelines only (the tiers the scale
//! bench exercises). The event order is the engine's `(time, class, seq)`
//! rule with arrivals (class 0) before same-instant completions, and events
//! within `TIME_EPS` of the group head apply together before one dispatch
//! pass — byte-for-byte the semantics of the optimized loop, which is what
//! makes the bit-identity assertion meaningful.

use std::cmp::Reverse;
use std::collections::{BTreeSet, BinaryHeap, VecDeque};

use rago_serving_sim::engine::{EngineRequest, PipelineSpec, RequestTimeline};

/// Same-instant grouping tolerance, mirroring the engine's constant.
const TIME_EPS: f64 = 1e-12;

/// The outcome of one baseline run: the per-request timelines (injection
/// order) and the number of events the loop applied.
#[derive(Debug)]
pub struct BaselineRun {
    /// Per-request records, bit-identical to the optimized engine's exact
    /// report for the same spec and requests.
    pub timelines: Vec<RequestTimeline>,
    /// Events applied by the loop — the denominator of the bench's
    /// events-per-second figure, counted the same way the engine counts
    /// `events_processed`.
    pub events: u64,
}

/// Discrete events of the old loop. Member lists are heap-allocated per
/// event — the allocation churn the optimized engine's reusable buffers
/// removed.
#[derive(Debug)]
enum Ev {
    Arrival(usize),
    StageDone {
        resource: usize,
        stage: usize,
        members: Vec<usize>,
    },
    StepDone(Vec<usize>),
}

struct EventEntry {
    t: f64,
    class: u8,
    seq: u64,
    ev: Ev,
}

impl PartialEq for EventEntry {
    fn eq(&self, other: &Self) -> bool {
        self.t == other.t && self.class == other.class && self.seq == other.seq
    }
}
impl Eq for EventEntry {}
impl PartialOrd for EventEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for EventEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.t
            .total_cmp(&other.t)
            .then(self.class.cmp(&other.class))
            .then(self.seq.cmp(&other.seq))
    }
}

/// Per-request state, one growable struct per request.
#[derive(Debug, Clone)]
struct ReqState {
    queue_entry_s: f64,
    stage_starts_s: Vec<f64>,
    stage_ends_s: Vec<f64>,
    decode_join_s: f64,
    first_token_s: Option<f64>,
    completion_s: Option<f64>,
    queueing_s: f64,
    generated: u32,
}

/// The pre-optimization replica simulation.
struct OldSim {
    spec: PipelineSpec,
    requests: Vec<EngineRequest>,
    state: Vec<ReqState>,
    stage_queues: Vec<VecDeque<usize>>,
    resource_busy: Vec<bool>,
    resident: BTreeSet<usize>,
    admission: VecDeque<usize>,
    stepping: bool,
    completed: usize,
    heap: BinaryHeap<Reverse<EventEntry>>,
    seq: u64,
    events: u64,
}

impl OldSim {
    fn new(spec: PipelineSpec) -> Self {
        assert!(
            spec.iterative.is_none() && spec.cache.is_none(),
            "the vendored baseline covers cache-less, non-iterative pipelines only"
        );
        let num_stages = spec.stages.len();
        let num_resources = spec.num_resources();
        Self {
            spec,
            requests: Vec::new(),
            state: Vec::new(),
            stage_queues: vec![VecDeque::new(); num_stages],
            resource_busy: vec![false; num_resources],
            resident: BTreeSet::new(),
            admission: VecDeque::new(),
            stepping: false,
            completed: 0,
            heap: BinaryHeap::new(),
            seq: 0,
            events: 0,
        }
    }

    fn inject(&mut self, req: EngineRequest) {
        assert!(
            req.arrival_s.is_finite() && req.arrival_s >= 0.0,
            "arrival times must be finite and non-negative"
        );
        assert!(
            req.decode_tokens > 0,
            "every request must generate at least one token"
        );
        let num_stages = self.spec.stages.len();
        self.state.push(ReqState {
            queue_entry_s: 0.0,
            stage_starts_s: Vec::with_capacity(num_stages),
            stage_ends_s: Vec::with_capacity(num_stages),
            decode_join_s: 0.0,
            first_token_s: None,
            completion_s: None,
            queueing_s: 0.0,
            generated: 0,
        });
        let idx = self.requests.len();
        self.requests.push(req);
        self.push_event(req.arrival_s, Ev::Arrival(idx));
    }

    fn push_event(&mut self, t: f64, ev: Ev) {
        let seq = self.seq;
        self.seq += 1;
        let class = u8::from(!matches!(ev, Ev::Arrival(_)));
        self.heap.push(Reverse(EventEntry { t, class, seq, ev }));
    }

    fn run_to_completion(&mut self) {
        while self.process_group() {}
        assert_eq!(
            self.completed,
            self.requests.len(),
            "baseline loop drained with unfinished requests"
        );
    }

    /// Pops one event group — every event within the timestamp tolerance of
    /// the head — applies it, then runs a single dispatch pass.
    fn process_group(&mut self) -> bool {
        let Some(Reverse(head)) = self.heap.pop() else {
            return false;
        };
        let mut now = head.t;
        self.apply(head.t, head.ev);
        while let Some(Reverse(next)) = self.heap.peek() {
            if next.t <= now + TIME_EPS {
                let Reverse(e) = self.heap.pop().expect("peeked");
                now = now.max(e.t);
                self.apply(e.t, e.ev);
            } else {
                break;
            }
        }
        self.dispatch_stages(now);
        self.decode_tick(now);
        true
    }

    fn apply(&mut self, t: f64, ev: Ev) {
        self.events += 1;
        match ev {
            Ev::Arrival(r) => {
                self.state[r].queue_entry_s = t;
                if self.spec.stages.is_empty() {
                    self.admission.push_back(r);
                } else {
                    self.stage_queues[0].push_back(r);
                }
            }
            Ev::StageDone {
                resource,
                stage,
                members,
            } => {
                self.resource_busy[resource] = false;
                let last_stage = stage + 1 == self.spec.stages.len();
                for r in members {
                    self.state[r].stage_ends_s.push(t);
                    self.state[r].queue_entry_s = t;
                    if last_stage {
                        // The main prefix emits the first output token.
                        self.state[r].first_token_s = Some(t);
                        self.admission.push_back(r);
                    } else {
                        self.stage_queues[stage + 1].push_back(r);
                    }
                }
            }
            Ev::StepDone(members) => {
                self.stepping = false;
                for r in members {
                    let tokens = self.requests[r].decode_tokens;
                    let st = &mut self.state[r];
                    st.generated += 1;
                    if st.first_token_s.is_none() {
                        st.first_token_s = Some(t);
                    }
                    if st.generated >= tokens {
                        st.completion_s = Some(t);
                        self.resident.remove(&r);
                        self.completed += 1;
                    }
                }
            }
        }
    }

    /// Work-conserving micro-batch dispatch: every free resource takes up
    /// to `batch` requests from its latest non-empty stage queue.
    fn dispatch_stages(&mut self, now: f64) {
        for resource in 0..self.resource_busy.len() {
            if self.resource_busy[resource] {
                continue;
            }
            let Some(stage) = (0..self.spec.stages.len()).rev().find(|&s| {
                self.spec.stages[s].resource == resource && !self.stage_queues[s].is_empty()
            }) else {
                continue;
            };
            let cap = self.spec.stages[stage].batch as usize;
            let take = self.stage_queues[stage].len().min(cap);
            let members: Vec<usize> = self.stage_queues[stage].drain(..take).collect();
            for &r in &members {
                self.state[r].stage_starts_s.push(now);
                self.state[r].queueing_s += now - self.state[r].queue_entry_s;
            }
            let latency = self.spec.stages[stage].latency.latency(take as u32);
            self.resource_busy[resource] = true;
            self.push_event(
                now + latency,
                Ev::StageDone {
                    resource,
                    stage,
                    members,
                },
            );
        }
    }

    /// Decode bookkeeping at one instant: admit into free slots, then start
    /// the next step over the resident set.
    fn decode_tick(&mut self, now: f64) {
        while self.resident.len() < self.spec.decode.max_batch as usize {
            let Some(r) = self.admission.pop_front() else {
                break;
            };
            self.state[r].decode_join_s = now;
            self.state[r].queueing_s += now - self.state[r].queue_entry_s;
            self.resident.insert(r);
        }
        if !self.stepping && !self.resident.is_empty() {
            let members: Vec<usize> = self.resident.iter().copied().collect();
            let fill = members.len() as u32;
            let dur = self.spec.decode.step_latency.latency(fill);
            self.stepping = true;
            self.push_event(now + dur, Ev::StepDone(members));
        }
    }

    fn finish(self) -> Vec<RequestTimeline> {
        self.requests
            .iter()
            .zip(self.state.iter())
            .map(|(req, st)| RequestTimeline {
                id: req.id,
                arrival_s: req.arrival_s,
                stage_starts_s: st.stage_starts_s.clone(),
                stage_ends_s: st.stage_ends_s.clone(),
                class: req.class,
                decode_join_s: st.decode_join_s,
                first_token_s: st
                    .first_token_s
                    .expect("every request emits a first token before the loop finishes"),
                completion_s: st
                    .completion_s
                    .expect("every request completes before the loop finishes"),
                queueing_s: st.queueing_s,
                decode_tokens: req.decode_tokens,
            })
            .collect()
    }
}

/// Runs `requests` (non-decreasing arrival order) through the
/// pre-optimization loop and returns the finished timelines plus the event
/// count.
///
/// # Panics
///
/// Panics if the spec carries caches or iterative retrieval (out of the
/// baseline's scope), or any request has a non-finite/negative arrival or
/// zero decode tokens.
pub fn run_baseline(spec: &PipelineSpec, requests: &[EngineRequest]) -> BaselineRun {
    let mut sim = OldSim::new(spec.clone());
    for req in requests {
        sim.inject(*req);
    }
    sim.run_to_completion();
    let events = sim.events;
    BaselineRun {
        timelines: sim.finish(),
        events,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rago_serving_sim::engine::{DecodeSpec, LatencyTable, ServingEngine, StageSpec};

    fn two_stage_spec() -> PipelineSpec {
        PipelineSpec::new(
            vec![
                StageSpec::new(
                    "retrieval",
                    0,
                    8,
                    LatencyTable::from_fn(8, |b| 0.004 + 0.001 * f64::from(b)),
                ),
                StageSpec::new(
                    "prefix",
                    1,
                    4,
                    LatencyTable::from_fn(4, |b| 0.010 + 0.002 * f64::from(b)),
                ),
            ],
            DecodeSpec::new(
                16,
                LatencyTable::from_fn(16, |b| 0.002 + 0.0001 * f64::from(b)),
            ),
        )
    }

    fn poissonish_requests(n: u64) -> Vec<EngineRequest> {
        (0..n)
            .map(|i| EngineRequest {
                id: i,
                arrival_s: i as f64 * 0.003,
                prefix_tokens: 0,
                decode_tokens: 8 + (i % 5) as u32,
                identity: None,
                class: 0,
            })
            .collect()
    }

    /// The vendored loop reproduces the optimized engine's exact timelines
    /// bit for bit — the property the scale bench asserts at every tier.
    #[test]
    fn baseline_matches_optimized_engine_bit_for_bit() {
        let spec = two_stage_spec();
        let requests = poissonish_requests(300);
        let baseline = run_baseline(&spec, &requests);
        let report = ServingEngine::new(spec, requests).run();
        assert_eq!(baseline.timelines, report.timelines);
        assert_eq!(baseline.events, report.metrics.events_processed);
    }

    #[test]
    #[should_panic(expected = "cache-less, non-iterative")]
    fn iterative_specs_are_rejected() {
        use rago_serving_sim::engine::IterativeSpec;
        let spec = two_stage_spec().with_iterative(IterativeSpec {
            retrievals_per_sequence: 1,
            iterative_batch: 4,
            retrieval_prefix_latency_s: 0.01,
            seed: 1,
        });
        run_baseline(&spec, &poissonish_requests(4));
    }
}
