//! Shared helpers for the figure/table regeneration binaries and the
//! Criterion benches of the RAGO reproduction.
//!
//! Every binary in `src/bin/` regenerates one table or figure of the paper's
//! evaluation, printing the same rows or series the paper reports (see
//! `EXPERIMENTS.md` at the workspace root for the mapping and the recorded
//! results). The helpers here keep the binaries small: common clusters,
//! search options, and fixed-width table printing.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;

use rago_core::SearchOptions;
use rago_hardware::ClusterSpec;

/// The cluster used by all figure binaries: the paper's default 32-server /
/// 128-XPU deployment.
pub fn default_cluster() -> ClusterSpec {
    ClusterSpec::paper_default()
}

/// Search options for the optimizer-driven figures. `quick` is used when the
/// `RAGO_BENCH_QUICK` environment variable is set (CI smoke runs); otherwise a
/// heavier grid closer to the paper's powers-of-two search is used.
pub fn figure_search_options() -> SearchOptions {
    if quick_mode() {
        SearchOptions::fast()
    } else {
        SearchOptions {
            xpu_steps: vec![1, 2, 4, 8, 16, 32, 64, 96, 128],
            server_steps: vec![32, 64],
            predecode_batch_steps: vec![1, 2, 4, 8, 16, 32, 64, 128],
            decode_batch_steps: vec![64, 128, 256, 512, 1024],
            iterative_batch_steps: vec![1, 4, 16, 64],
            placements: None,
        }
    }
}

/// Whether quick (coarse-grid) mode is enabled via `RAGO_BENCH_QUICK`
/// (set to anything except empty or `0`).
pub fn quick_mode() -> bool {
    std::env::var("RAGO_BENCH_QUICK").is_ok_and(|v| !v.is_empty() && v != "0")
}

/// Prints a header row followed by a separator, with every column
/// right-aligned to `width` characters.
pub fn print_header(columns: &[&str], width: usize) {
    let row: Vec<String> = columns.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", row.join(" "));
    println!("{}", "-".repeat((width + 1) * columns.len()));
}

/// Prints one data row with every cell right-aligned to `width` characters.
pub fn print_row(cells: &[String], width: usize) {
    let row: Vec<String> = cells.iter().map(|c| format!("{c:>width$}")).collect();
    println!("{}", row.join(" "));
}

/// Formats a float with the given number of decimal places, using scientific
/// notation for very small or very large magnitudes.
pub fn fmt_f(value: f64, decimals: usize) -> String {
    if value != 0.0 && (value.abs() < 1e-3 || value.abs() >= 1e6) {
        format!("{value:.decimals$e}")
    } else {
        format!("{value:.decimals$}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_cluster_is_the_paper_setup() {
        assert_eq!(default_cluster().total_xpus(), 128);
    }

    #[test]
    fn fmt_f_switches_to_scientific() {
        assert_eq!(fmt_f(0.5, 2), "0.50");
        assert!(fmt_f(1e-6, 2).contains('e'));
        assert!(fmt_f(2.5e7, 1).contains('e'));
        assert_eq!(fmt_f(0.0, 1), "0.0");
    }

    #[test]
    fn search_options_depend_on_quick_mode() {
        // Can't mutate the environment safely in tests; just exercise both
        // helpers for panic-freedom.
        let _ = figure_search_options();
        let _ = quick_mode();
    }
}
