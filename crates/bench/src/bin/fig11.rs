//! Figure 11: Case IV — time breakdown with the query rewriter and reranker,
//! and the TTFT cost of the rewriter's autoregressive decoding.
//!
//! Run with: `cargo run --release -p rago-bench --bin fig11`

use rago_bench::{default_cluster, fmt_f, print_header, print_row};
use rago_core::{breakdown, StageProfiler};
use rago_schema::presets::{self, LlmSize};
use rago_schema::Stage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = default_cluster();

    println!("Figure 11: time x resource breakdown with rewriter + reranker\n");
    print_header(
        &[
            "LLM",
            "rw-prefix%",
            "rw-decode%",
            "retrieval%",
            "rerank%",
            "prefix%",
            "decode%",
        ],
        12,
    );
    for llm in [LlmSize::B8, LlmSize::B70] {
        let schema = presets::case4_rewriter_reranker(llm);
        let profiler = StageProfiler::new(schema, cluster.clone());
        let shares = breakdown::stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64])?;
        print_row(
            &[
                llm.to_string(),
                fmt_f(
                    breakdown::share_of(&shares, Stage::RewritePrefix) * 100.0,
                    1,
                ),
                fmt_f(
                    breakdown::share_of(&shares, Stage::RewriteDecode) * 100.0,
                    1,
                ),
                fmt_f(breakdown::share_of(&shares, Stage::Retrieval) * 100.0, 1),
                fmt_f(breakdown::share_of(&shares, Stage::Rerank) * 100.0, 1),
                fmt_f(breakdown::share_of(&shares, Stage::Prefix) * 100.0, 1),
                fmt_f(breakdown::share_of(&shares, Stage::Decode) * 100.0, 1),
            ],
            12,
        );
    }

    // TTFT impact of the rewriter (single request, generous resources).
    println!("\nTTFT impact of the rewriter (batch 1):");
    for llm in [LlmSize::B8, LlmSize::B70] {
        let ttft = |schema: rago_schema::RagSchema| -> f64 {
            let profiler = StageProfiler::new(schema, cluster.clone());
            profiler
                .schema()
                .pipeline()
                .into_iter()
                .filter(|s| s.affects_ttft())
                .map(|s| {
                    let resources = if s == Stage::Retrieval { 32 } else { 16 };
                    profiler.profile(s, resources, 1).unwrap().latency_s
                })
                .sum()
        };
        let with = ttft(presets::case4_rewriter_reranker(llm));
        let without = ttft(presets::case1_hyperscale(llm, 1));
        println!(
            "  {llm}: TTFT {:.1} ms with rewriter+reranker vs {:.1} ms without ({:.1}x; paper: 2.4x)",
            with * 1e3,
            without * 1e3,
            with / without
        );
    }
    println!("\nexpected shape: rewriter and reranker contribute little to the");
    println!("time x resource budget (QPS/chip), but the rewriter's autoregressive");
    println!("decode inflates TTFT noticeably.");
    Ok(())
}
