//! Figure 7: sensitivity of the retrieval time share in Case I to
//! (a) the XPU generation, (b) the scanned database fraction, and
//! (c) the prefix/decode sequence lengths.
//!
//! Run with: `cargo run --release -p rago-bench --bin fig07`

use rago_bench::{default_cluster, fmt_f, print_header, print_row};
use rago_core::{breakdown, StageProfiler};
use rago_hardware::{XpuGeneration, XpuSpec};
use rago_schema::presets::{self, LlmSize};
use rago_schema::Stage;

fn retrieval_share(schema: rago_schema::RagSchema, cluster: rago_hardware::ClusterSpec) -> f64 {
    let profiler = StageProfiler::new(schema, cluster);
    let shares = breakdown::stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64])
        .expect("breakdown always feasible on the default cluster");
    breakdown::share_of(&shares, Stage::Retrieval)
}

fn main() {
    // (a) XPU generation sweep.
    println!("Figure 7a: retrieval time share vs XPU generation\n");
    print_header(&["model", "XPU-A", "XPU-B", "XPU-C"], 12);
    for llm in [LlmSize::B1, LlmSize::B8, LlmSize::B70, LlmSize::B405] {
        let mut cells = vec![llm.to_string()];
        for gen in XpuGeneration::ALL {
            let cluster = default_cluster().with_xpu(XpuSpec::generation(gen));
            let share = retrieval_share(presets::case1_hyperscale(llm, 1), cluster);
            cells.push(fmt_f(share * 100.0, 1));
        }
        print_row(&cells, 12);
    }

    // (b) scanned-fraction sweep.
    println!("\nFigure 7b: retrieval time share vs scanned database fraction\n");
    print_header(&["model", "0.01%", "0.1%", "1.0%"], 12);
    for llm in [LlmSize::B1, LlmSize::B8, LlmSize::B70, LlmSize::B405] {
        let mut cells = vec![llm.to_string()];
        for scan in [0.0001f64, 0.001, 0.01] {
            let mut schema = presets::case1_hyperscale(llm, 1);
            schema.retrieval = schema.retrieval.map(|r| r.with_scan_fraction(scan));
            cells.push(fmt_f(retrieval_share(schema, default_cluster()) * 100.0, 1));
        }
        print_row(&cells, 12);
    }

    // (c) sequence-length heatmap for the 8B model.
    println!("\nFigure 7c: retrieval time share (%) vs prefix/decode lengths (8B model)\n");
    let prefixes = [128u32, 256, 512, 1024, 2048];
    let decodes = [128u32, 256, 512];
    let header: Vec<&str> = std::iter::once("dec\\pre")
        .chain(["128", "256", "512", "1024", "2048"])
        .collect();
    print_header(&header, 9);
    for &decode in &decodes {
        let mut cells = vec![decode.to_string()];
        for &prefix in &prefixes {
            let mut schema = presets::case1_hyperscale(LlmSize::B8, 1);
            schema.sequence = schema
                .sequence
                .with_prefix_tokens(prefix)
                .with_decode_tokens(decode);
            cells.push(fmt_f(retrieval_share(schema, default_cluster()) * 100.0, 1));
        }
        print_row(&cells, 9);
    }
    println!("\nexpected shape: share rises with better XPUs and larger scan fractions,");
    println!("and falls as prefix/decode lengths grow (paper: 86.3% at 128/128 down to ~31%).");
}
