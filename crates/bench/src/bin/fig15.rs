//! Figure 15: RAGO versus the LLM-system-extension baseline — QPS/chip vs
//! TTFT Pareto frontiers for Case II and Case IV.
//!
//! Run with: `cargo run --release -p rago-bench --bin fig15`

use rago_bench::{default_cluster, figure_search_options, fmt_f, print_header, print_row};
use rago_core::{BaselineSystem, ParetoFrontier, Rago};
use rago_schema::presets::{self, LlmSize};

fn print_frontier(label: &str, frontier: &ParetoFrontier) {
    println!("-- {label} ({} points) --", frontier.len());
    print_header(&["TTFT (s)", "QPS/chip"], 12);
    for p in frontier.iter() {
        print_row(
            &[
                fmt_f(p.performance.ttft_s, 3),
                fmt_f(p.performance.qps_per_chip, 3),
            ],
            12,
        );
    }
    println!();
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = default_cluster();
    let options = figure_search_options();

    let cases = [
        (
            "Case II (1M-token context, 70B)",
            presets::case2_long_context(LlmSize::B70, 1_000_000),
            128u32,
        ),
        (
            "Case IV (rewriter + reranker, 70B)",
            presets::case4_rewriter_reranker(LlmSize::B70),
            64u32,
        ),
    ];

    for (name, schema, baseline_xpus) in cases {
        println!("== Figure 15: {name} ==\n");
        let rago = Rago::new(schema.clone(), cluster.clone());
        let rago_frontier = rago.optimize(&options)?;
        print_frontier("RAGO", &rago_frontier);

        let baseline = BaselineSystem::new(schema, cluster.clone(), baseline_xpus);
        let baseline_frontier =
            baseline.optimize(&[1, 2, 4, 8, 16, 32, 64, 128], &[128, 256, 512, 1024])?;
        print_frontier("baseline (LLM-system extension)", &baseline_frontier);

        let speedup = rago_frontier
            .max_qps_per_chip()
            .unwrap()
            .performance
            .qps_per_chip
            / baseline_frontier
                .max_qps_per_chip()
                .unwrap()
                .performance
                .qps_per_chip;
        println!(
            "RAGO max QPS/chip improvement: {speedup:.2}x (paper: 1.7x for C-II, 1.5x for C-IV)\n"
        );
    }
    Ok(())
}
