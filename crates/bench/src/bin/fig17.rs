//! Figure 17: sensitivity to the task placement policy (collocated vs
//! disaggregated vs hybrid) in Cases II and IV.
//!
//! Run with: `cargo run --release -p rago-bench --bin fig17`

use rago_bench::{default_cluster, figure_search_options, fmt_f, print_header, print_row};
use rago_core::{PlacementPlan, Rago};
use rago_schema::presets::{self, LlmSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = default_cluster();
    let base_options = figure_search_options();

    let cases = [
        (
            "Case II (1M tokens, 70B)",
            presets::case2_long_context(LlmSize::B70, 1_000_000),
        ),
        (
            "Case IV (rewriter+reranker, 70B)",
            presets::case4_rewriter_reranker(LlmSize::B70),
        ),
    ];

    for (name, schema) in cases {
        println!("== Figure 17: {name} ==\n");
        let rago = Rago::new(schema.clone(), cluster.clone());

        let all = PlacementPlan::enumerate(&schema);
        let hybrid: Vec<PlacementPlan> = all
            .iter()
            .filter(|p| p.has_collocation() && p.num_groups() > 1)
            .cloned()
            .collect();
        let mut policies: Vec<(&str, Vec<PlacementPlan>)> = vec![
            ("collocated", vec![PlacementPlan::fully_collocated(&schema)]),
            (
                "disaggregated",
                vec![PlacementPlan::fully_disaggregated(&schema)],
            ),
        ];
        if !hybrid.is_empty() {
            policies.push(("hybrid", hybrid));
        }

        print_header(
            &["policy", "max QPS/chip", "TTFT@max (s)", "min TTFT (s)"],
            16,
        );
        for (label, placements) in policies {
            let opts = base_options.clone().with_placements(placements);
            let frontier = rago.optimize(&opts)?;
            let best = frontier.max_qps_per_chip().unwrap();
            let fastest = frontier.min_ttft().unwrap();
            print_row(
                &[
                    label.to_string(),
                    fmt_f(best.performance.qps_per_chip, 3),
                    fmt_f(best.performance.ttft_s, 3),
                    fmt_f(fastest.performance.ttft_s, 3),
                ],
                16,
            );
        }
        println!();
    }
    println!("expected shape: Case II is placement-insensitive (a few percent),");
    println!("Case IV favours hybrid/disaggregated placements by ~1.5x in QPS/chip.");
    Ok(())
}
