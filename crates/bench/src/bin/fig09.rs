//! Figure 9: Case III — TPOT under iterative retrievals as a function of the
//! decode batch size (9a) and of the iterative retrieval batch size (9b).
//!
//! Run with: `cargo run --release -p rago-bench --bin fig09`

use rago_accel_sim::{AcceleratorGroup, InferenceSimulator};
use rago_bench::{default_cluster, fmt_f, print_header, print_row};
use rago_retrieval_sim::RetrievalSimulator;
use rago_schema::presets::{self, LlmSize};
use rago_serving_sim::iterative::{IterativeDecodeParams, IterativeDecodeSim};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = default_cluster();
    let sim = InferenceSimulator::new();
    let retrieval = RetrievalSimulator::new(cluster.cpu.clone());
    let decode_group = AcceleratorGroup::new(cluster.xpu.clone(), 16);
    let prefix_group = AcceleratorGroup::new(cluster.xpu.clone(), 16);
    let schema = presets::case3_iterative(LlmSize::B70, 4);
    let cfg = schema.retrieval.as_ref().expect("case 3 retrieves");
    let model = &schema.generative_llm;
    let prefix_len = schema.main_prefix_tokens();
    let decode_len = schema.sequence.decode_tokens;

    // Shared helper: worst-case TPOT for one (decode batch, iterative batch,
    // retrieval frequency) combination.
    let tpot = |decode_batch: u32, iter_batch: u32, retrievals: u32| -> f64 {
        let decode = sim
            .best_decode_cost(model, prefix_len, decode_len, decode_batch, &decode_group)
            .expect("decode fits on 16 chips");
        let retrieval_cost = retrieval
            .retrieval_cost(cfg, iter_batch.max(1), 32)
            .expect("32 servers hold the database");
        let reprefix = sim
            .best_prefix_cost(model, prefix_len, iter_batch.max(1), &prefix_group)
            .expect("prefix fits on 16 chips");
        IterativeDecodeSim::new(IterativeDecodeParams {
            decode_batch,
            iterative_batch: iter_batch,
            decode_len,
            retrievals_per_sequence: retrievals.saturating_sub(1),
            step_latency_s: decode.step_latency_s,
            retrieval_prefix_latency_s: retrieval_cost.latency_s + reprefix.latency_s,
            seed: 9,
        })
        .run()
        .tpot_worst_s
    };

    println!("Figure 9a: TPOT (ms) vs decode batch size, 70B model, iterative batch = 16\n");
    let decode_batches = [1u32, 4, 16, 64, 256, 1024];
    let header: Vec<&str> = std::iter::once("retrievals")
        .chain(["b=1", "b=4", "b=16", "b=64", "b=256", "b=1024"])
        .collect();
    print_header(&header, 10);
    for retrievals in [1u32, 2, 4, 8] {
        let mut cells = vec![format!("{retrievals}")];
        for &b in &decode_batches {
            cells.push(fmt_f(tpot(b, 16, retrievals) * 1e3, 1));
        }
        print_row(&cells, 10);
    }

    println!("\nFigure 9b: TPOT (ms) vs iterative batch size, 70B model, 4 retrievals\n");
    let iter_batches = [1u32, 4, 16, 64];
    let header: Vec<&str> = std::iter::once("dec batch")
        .chain(["iter=1", "iter=4", "iter=16", "iter=64"])
        .collect();
    print_header(&header, 10);
    for decode_batch in [4u32, 16, 64, 256] {
        let mut cells = vec![decode_batch.to_string()];
        for &ib in &iter_batches {
            cells.push(fmt_f(tpot(decode_batch, ib, 4) * 1e3, 1));
        }
        print_row(&cells, 10);
    }
    println!("\nexpected shape: TPOT grows with retrieval frequency and decode batch;");
    println!("small decode batches prefer small iterative batches, large decode batches");
    println!("prefer larger iterative batches (the decode-batch-64 row has an interior optimum).");
    Ok(())
}
