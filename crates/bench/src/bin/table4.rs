//! Table 4: RAGO versus the baseline system schedules in Case II
//! (placement, allocation, batching, and the resulting TTFT / QPS per chip).
//!
//! Run with: `cargo run --release -p rago-bench --bin table4`

use rago_bench::{default_cluster, figure_search_options, fmt_f, print_header, print_row};
use rago_core::{BaselineSystem, ParetoPoint, Rago};
use rago_schema::presets::{self, LlmSize};

fn row_for(label: &str, point: &ParetoPoint) {
    let perf = &point.performance;
    let sched = &point.schedule;
    print_row(
        &[
            label.to_string(),
            fmt_f(perf.ttft_s, 2),
            fmt_f(perf.qps_per_chip, 2),
            sched.batching.predecode_batch.to_string(),
            sched.batching.decode_batch.to_string(),
            format!("{:?}", sched.allocation.group_xpus),
            sched.allocation.decode_xpus.to_string(),
            perf.total_xpus.to_string(),
        ],
        14,
    );
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = default_cluster();
    let schema = presets::case2_long_context(LlmSize::B70, 1_000_000);

    let rago = Rago::new(schema.clone(), cluster.clone());
    let frontier = rago.optimize(&figure_search_options())?;

    let baseline = BaselineSystem::new(schema, cluster, 128);
    let baseline_frontier =
        baseline.optimize(&[1, 2, 4, 8, 16, 32, 64, 128], &[128, 256, 512, 1024])?;

    println!("Table 4: RAGO vs baseline schedules in Case II (1M-token context, 70B)\n");
    print_header(
        &[
            "schedule",
            "TTFT (s)",
            "QPS/chip",
            "pre batch",
            "dec batch",
            "group XPUs",
            "dec XPUs",
            "total XPUs",
        ],
        14,
    );
    row_for("RAGO maxQPS", frontier.max_qps_per_chip().unwrap());
    row_for("RAGO minTTFT", frontier.min_ttft().unwrap());
    row_for("base maxQPS", baseline_frontier.max_qps_per_chip().unwrap());
    row_for("base minTTFT", baseline_frontier.min_ttft().unwrap());

    let speedup = frontier
        .max_qps_per_chip()
        .unwrap()
        .performance
        .qps_per_chip
        / baseline_frontier
            .max_qps_per_chip()
            .unwrap()
            .performance
            .qps_per_chip;
    println!("\nRAGO max-QPS/chip improvement over the baseline: {speedup:.2}x (paper: 1.7x)");
    println!(
        "RAGO placement for max QPS/chip: {}",
        frontier
            .max_qps_per_chip()
            .unwrap()
            .schedule
            .placement
            .describe()
    );
    Ok(())
}
