//! Table 2: performance specifications of the three XPU generations.
//!
//! Run with: `cargo run --release -p rago-bench --bin table2`

use rago_bench::{print_header, print_row};
use rago_hardware::{XpuGeneration, XpuSpec};

fn main() {
    println!("Table 2: XPU performance specifications\n");
    print_header(&["spec", "XPU-A", "XPU-B", "XPU-C"], 16);
    let specs: Vec<XpuSpec> = XpuGeneration::ALL
        .iter()
        .map(|g| XpuSpec::generation(*g))
        .collect();
    type SpecColumn = Box<dyn Fn(&XpuSpec) -> String>;
    let rows: Vec<(&str, SpecColumn)> = vec![
        (
            "TFLOPS",
            Box::new(|s: &XpuSpec| format!("{:.0}", s.peak_tflops)),
        ),
        (
            "HBM (GB)",
            Box::new(|s: &XpuSpec| format!("{:.0}", s.hbm_capacity_gib)),
        ),
        (
            "Mem BW (GB/s)",
            Box::new(|s: &XpuSpec| format!("{:.0}", s.hbm_bandwidth_gbps)),
        ),
        (
            "ICI BW (GB/s)",
            Box::new(|s: &XpuSpec| format!("{:.0}", s.interchip_bandwidth_gbps)),
        ),
    ];
    for (name, f) in rows {
        let cells: Vec<String> = std::iter::once(name.to_string())
            .chain(specs.iter().map(&f))
            .collect();
        print_row(&cells, 16);
    }
    println!("\n(XPU-C is the default accelerator used throughout the evaluation.)");
}
