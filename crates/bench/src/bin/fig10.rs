//! Figure 10: decode idleness caused purely by batching iterative retrieval
//! requests (retrieval + prefix latency set to zero).
//!
//! Run with: `cargo run --release -p rago-bench --bin fig10`

use rago_bench::{fmt_f, print_header, print_row};
use rago_serving_sim::iterative::{IterativeDecodeParams, IterativeDecodeSim};

fn main() {
    println!("Figure 10b: normalized decoding latency from batching-induced idleness");
    println!("(retrieval + prefix latency = 0, 4 retrievals per 256-token sequence)\n");

    let decode_batches = [4u32, 8, 16, 64, 128, 256];
    let iterative_batches = [256u32, 128, 64, 16, 8, 4, 2, 1];

    let header: Vec<String> = std::iter::once("iter\\dec".to_string())
        .chain(decode_batches.iter().map(|b| b.to_string()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_header(&header_refs, 8);

    for &iter_batch in &iterative_batches {
        let mut cells = vec![iter_batch.to_string()];
        for &decode_batch in &decode_batches {
            if iter_batch > decode_batch {
                // The batch can never fill; the paper leaves these cells empty.
                cells.push("-".to_string());
                continue;
            }
            let result = IterativeDecodeSim::new(IterativeDecodeParams {
                decode_batch,
                iterative_batch: iter_batch,
                decode_len: 256,
                retrievals_per_sequence: 4,
                step_latency_s: 1e-3,
                retrieval_prefix_latency_s: 0.0,
                seed: 17,
            })
            .run();
            cells.push(fmt_f(result.normalized_decode_latency, 2));
        }
        print_row(&cells, 8);
    }
    println!("\nexpected shape: ~1.0 along the bottom rows (tiny iterative batches),");
    println!("rising towards ~2-3x when the iterative batch matches the decode batch.");
}
