//! Figure 8: Case II (long-context processing) performance and time
//! breakdown across context lengths, plus the RAG vs long-context-LLM
//! comparison of §5.2.
//!
//! Run with: `cargo run --release -p rago-bench --bin fig08`

use rago_accel_sim::{AcceleratorGroup, InferenceSimulator};
use rago_bench::{default_cluster, figure_search_options, fmt_f, print_header, print_row};
use rago_core::{breakdown, Rago, StageProfiler};
use rago_schema::presets::{self, LlmSize};
use rago_schema::{ModelConfig, Stage};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = default_cluster();
    let options = figure_search_options();

    println!("Figure 8: long-context RAG with a 70B generator\n");
    print_header(
        &[
            "context",
            "max QPS/chip",
            "TTFT@max (s)",
            "encode%",
            "retrieval%",
            "prefix%",
            "decode%",
        ],
        13,
    );
    for ctx in [100_000u64, 1_000_000, 10_000_000] {
        let schema = presets::case2_long_context(LlmSize::B70, ctx);
        let rago = Rago::new(schema.clone(), cluster.clone());
        let frontier = rago.optimize(&options)?;
        let best = frontier.max_qps_per_chip().unwrap();
        let profiler = StageProfiler::new(schema, cluster.clone());
        let shares = breakdown::stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64])?;
        print_row(
            &[
                format!("{}K", ctx / 1_000),
                fmt_f(best.performance.qps_per_chip, 3),
                fmt_f(best.performance.ttft_s, 2),
                fmt_f(
                    breakdown::share_of(&shares, Stage::DatabaseEncode) * 100.0,
                    1,
                ),
                fmt_f(breakdown::share_of(&shares, Stage::Retrieval) * 100.0, 2),
                fmt_f(breakdown::share_of(&shares, Stage::Prefix) * 100.0, 1),
                fmt_f(breakdown::share_of(&shares, Stage::Decode) * 100.0, 1),
            ],
            13,
        );
    }

    // "No long context" reference: plain Case-I style 512-token prefix RAG.
    let reference = Rago::new(presets::case1_hyperscale(LlmSize::B70, 1), cluster.clone());
    let ref_best = reference.optimize(&options)?;
    println!(
        "\n'no long context' reference (512-token prefix RAG): max QPS/chip = {}",
        fmt_f(
            ref_best
                .max_qps_per_chip()
                .unwrap()
                .performance
                .qps_per_chip,
            3
        )
    );

    // RAG vs feeding the whole context to an efficient long-context LLM.
    println!("\nRAG vs long-context LLM (1M-token context, 70B):");
    let sim = InferenceSimulator::new();
    let group = AcceleratorGroup::new(cluster.xpu.clone(), 64);
    let model = ModelConfig::llama3_70b();
    let rag_prefix = sim.best_prefix_cost(&model, 512, 1, &group)?;
    let long_ctx = sim.long_context_prefix_cost(&model, 1_000_000, 1, &group, 4, 128)?;
    println!(
        "  TTFT speedup of RAG over long-context LLM: {:.0}x (paper: 2852.6x on its testbed)",
        long_ctx.latency_s / rag_prefix.latency_s
    );
    println!("\nexpected shape: encoding dominates and grows with context length;");
    println!("retrieval stays <1% because the per-request database is tiny.");
    Ok(())
}
