//! Figure 19: TTFT reduction from splitting a burst of requests into
//! micro-batches, for Cases I, II, and IV.
//!
//! Run with: `cargo run --release -p rago-bench --bin fig19`

use rago_bench::{default_cluster, fmt_f, print_header, print_row};
use rago_core::StageProfiler;
use rago_schema::presets::{self, LlmSize};
use rago_schema::{RagSchema, Stage};
use rago_serving_sim::microbatch::simulate_pipelined_burst;

/// Mean TTFT of a burst pushed through the pre-decode stages, split into
/// micro-batches of the given size. Stage latencies come from the analytical
/// profiler with fixed per-stage resources (16 XPUs / 32 retrieval servers).
fn mean_ttft(profiler: &StageProfiler, schema: &RagSchema, burst: u32, microbatch: u32) -> f64 {
    let stages: Vec<Stage> = schema
        .pipeline()
        .into_iter()
        .filter(|s| s.affects_ttft())
        .collect();
    let latency_fns: Vec<Box<dyn Fn(u32) -> f64>> = stages
        .iter()
        .map(|&stage| {
            let resources = if stage == Stage::Retrieval { 32 } else { 16 };
            let profiler = profiler.clone();
            Box::new(move |batch: u32| {
                profiler
                    .profile(stage, resources, batch.max(1))
                    .map(|p| p.latency_s)
                    .unwrap_or(f64::INFINITY)
            }) as Box<dyn Fn(u32) -> f64>
        })
        .collect();
    let refs: Vec<&dyn Fn(u32) -> f64> = latency_fns.iter().map(|f| f.as_ref()).collect();
    simulate_pipelined_burst(&refs, burst, microbatch).mean_completion_s
}

fn reduction_table(
    title: &str,
    rows: Vec<(String, RagSchema)>,
    bursts: &[u32],
    cluster: &rago_hardware::ClusterSpec,
) {
    println!("== {title} ==\n");
    let header: Vec<String> = std::iter::once("workload".to_string())
        .chain(bursts.iter().map(|b| format!("burst={b}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    print_header(&header_refs, 14);
    for (label, schema) in rows {
        let profiler = StageProfiler::new(schema.clone(), cluster.clone());
        let mut cells = vec![label];
        for &burst in bursts {
            let whole = mean_ttft(&profiler, &schema, burst, burst);
            let micro = mean_ttft(&profiler, &schema, burst, 2.max(burst / 8));
            let reduction = (1.0 - micro / whole).max(0.0) * 100.0;
            cells.push(fmt_f(reduction, 1));
        }
        print_row(&cells, 14);
    }
    println!();
}

fn main() {
    let cluster = default_cluster();
    let bursts = [2u32, 4, 8, 16, 32];

    reduction_table(
        "Figure 19a: TTFT reduction (%) — Case I (70B), queries per retrieval",
        [1u32, 2, 4, 8]
            .into_iter()
            .map(|q| {
                (
                    format!("{q} queries"),
                    presets::case1_hyperscale(LlmSize::B70, q),
                )
            })
            .collect(),
        &bursts,
        &cluster,
    );
    reduction_table(
        "Figure 19b: TTFT reduction (%) — Case II (70B), context length",
        [100_000u64, 1_000_000, 10_000_000]
            .into_iter()
            .map(|ctx| {
                (
                    format!("{}K tokens", ctx / 1_000),
                    presets::case2_long_context(LlmSize::B70, ctx),
                )
            })
            .collect(),
        &bursts,
        &cluster,
    );
    reduction_table(
        "Figure 19c: TTFT reduction (%) — Case IV, generator size",
        [LlmSize::B8, LlmSize::B70]
            .into_iter()
            .map(|llm| (llm.to_string(), presets::case4_rewriter_reranker(llm)))
            .collect(),
        &bursts,
        &cluster,
    );
    println!("expected shape: compute-heavy pipelines (Case II) benefit even at small bursts;");
    println!("Case I only benefits once the burst exceeds the retrieval latency floor (~16);");
    println!("Case IV sees moderate reductions limited by the rewriter's decode.");
}
