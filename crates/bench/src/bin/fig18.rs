//! Figure 18: sensitivity to resource allocation (Case II) — the spread in
//! achievable QPS/chip across allocation plans under collocated and
//! disaggregated placements.
//!
//! Run with: `cargo run --release -p rago-bench --bin fig18`

use rago_bench::{default_cluster, fmt_f, print_header, print_row, quick_mode};
use rago_core::{PlacementPlan, Rago, SearchOptions};
use rago_schema::presets::{self, LlmSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = default_cluster();
    let schema = presets::case2_long_context(LlmSize::B70, 1_000_000);
    let rago = Rago::new(schema.clone(), cluster);

    let opts = if quick_mode() {
        SearchOptions::fast()
    } else {
        SearchOptions {
            xpu_steps: vec![1, 2, 4, 8, 16, 32, 64],
            server_steps: vec![32],
            predecode_batch_steps: vec![1, 4, 16, 64],
            decode_batch_steps: vec![256, 1024],
            iterative_batch_steps: vec![8],
            placements: None,
        }
    };

    for (label, placement) in [
        ("collocated", PlacementPlan::fully_collocated(&schema)),
        ("disaggregated", PlacementPlan::fully_disaggregated(&schema)),
    ] {
        let restricted = opts.clone().with_placements(vec![placement]);
        let per_plan = rago.frontiers_by_plan(&restricted);
        let mut best_list: Vec<(String, f64, f64)> = per_plan
            .iter()
            .filter_map(|(_, alloc, frontier)| {
                frontier.max_qps_per_chip().map(|p| {
                    (
                        format!("{:?}+{}dec", alloc.group_xpus, alloc.decode_xpus),
                        p.performance.qps_per_chip,
                        p.performance.ttft_s,
                    )
                })
            })
            .collect();
        best_list.sort_by(|a, b| b.1.total_cmp(&a.1));

        println!("== Figure 18 ({label} placement): QPS/chip across allocation plans ==\n");
        print_header(&["allocation", "max QPS/chip", "TTFT@max (s)"], 20);
        for (alloc, qpc, ttft) in best_list.iter().take(8) {
            print_row(&[alloc.clone(), fmt_f(*qpc, 3), fmt_f(*ttft, 3)], 20);
        }
        if best_list.len() > 8 {
            println!("... ({} more plans)", best_list.len() - 8);
        }
        if let (Some(best), Some(worst)) = (best_list.first(), best_list.last()) {
            println!(
                "\nbest/worst allocation QPS/chip ratio: {:.1}x (paper: up to 52.5x collocated, 64.1x disaggregated)\n",
                best.1 / worst.1.max(1e-12)
            );
        }
    }
    println!("expected shape: a large spread between balanced and imbalanced allocations,");
    println!("larger for disaggregated placements than for collocated ones.");
    Ok(())
}
