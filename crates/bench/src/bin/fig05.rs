//! Figure 5: RAG with smaller models versus larger LLM-only systems
//! (QPS/chip vs TTFT Pareto frontiers).
//!
//! Run with: `cargo run --release -p rago-bench --bin fig05`

use rago_bench::{default_cluster, figure_search_options, fmt_f, print_header, print_row};
use rago_core::Rago;
use rago_schema::presets::{self, LlmSize};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = default_cluster();
    let options = figure_search_options();

    let systems = [
        ("RAG 1B", presets::case1_hyperscale(LlmSize::B1, 1)),
        ("RAG 8B", presets::case1_hyperscale(LlmSize::B8, 1)),
        ("LLM-only 8B", presets::llm_only(LlmSize::B8)),
        ("LLM-only 70B", presets::llm_only(LlmSize::B70)),
    ];

    println!("Figure 5: RAG vs LLM-only Pareto (QPS/chip vs TTFT)\n");
    let mut best = Vec::new();
    for (name, schema) in systems {
        let rago = Rago::new(schema, cluster.clone());
        let frontier = rago.optimize(&options)?;
        println!("-- {name} ({} points) --", frontier.len());
        print_header(&["TTFT (ms)", "QPS/chip"], 12);
        for p in frontier.iter() {
            print_row(
                &[
                    fmt_f(p.performance.ttft_s * 1e3, 1),
                    fmt_f(p.performance.qps_per_chip, 3),
                ],
                12,
            );
        }
        best.push((
            name,
            frontier
                .max_qps_per_chip()
                .unwrap()
                .performance
                .qps_per_chip,
        ));
        println!();
    }

    println!("max QPS/chip summary:");
    for (name, qpc) in &best {
        println!("  {name:<14} {qpc:.3}");
    }
    let rag8 = best.iter().find(|(n, _)| *n == "RAG 8B").unwrap().1;
    let llm70 = best.iter().find(|(n, _)| *n == "LLM-only 70B").unwrap().1;
    println!(
        "\nRAG 8B vs LLM-only 70B QPS/chip: {:.2}x (paper reports ~1.5x)",
        rag8 / llm70
    );
    Ok(())
}
