//! Figure 16: how different placement + allocation plans compose the overall
//! Pareto frontier (Cases II and IV).
//!
//! Run with: `cargo run --release -p rago-bench --bin fig16`

use rago_bench::{default_cluster, fmt_f, print_header, print_row, quick_mode};
use rago_core::{Rago, SearchOptions};
use rago_schema::presets::{self, LlmSize};

fn options() -> SearchOptions {
    if quick_mode() {
        SearchOptions::fast()
    } else {
        SearchOptions {
            xpu_steps: vec![1, 4, 16, 32, 64],
            server_steps: vec![32],
            predecode_batch_steps: vec![1, 4, 16, 64],
            decode_batch_steps: vec![128, 512],
            iterative_batch_steps: vec![8],
            placements: None,
        }
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = default_cluster();
    let cases = [
        (
            "Case II (1M tokens, 70B)",
            presets::case2_long_context(LlmSize::B70, 1_000_000),
        ),
        (
            "Case IV (rewriter+reranker, 70B)",
            presets::case4_rewriter_reranker(LlmSize::B70),
        ),
    ];

    for (name, schema) in cases {
        println!("== Figure 16: {name} ==\n");
        let rago = Rago::new(schema, cluster.clone());
        let opts = options();
        let per_plan = rago.frontiers_by_plan(&opts);
        let global = rago.optimize(&opts)?;

        println!(
            "{} distinct placement+allocation plans evaluated; top plans by max QPS/chip:\n",
            per_plan.len()
        );
        print_header(
            &[
                "placement",
                "group XPUs",
                "dec XPUs",
                "best QPS/chip",
                "TTFT@best (s)",
            ],
            22,
        );
        for (placement, allocation, frontier) in per_plan.iter().take(10) {
            let best = frontier
                .max_qps_per_chip()
                .expect("non-empty plan frontier");
            print_row(
                &[
                    placement.describe(),
                    format!("{:?}", allocation.group_xpus),
                    allocation.decode_xpus.to_string(),
                    fmt_f(best.performance.qps_per_chip, 3),
                    fmt_f(best.performance.ttft_s, 3),
                ],
                22,
            );
        }

        println!("\nglobal Pareto frontier (composed across plans):");
        print_header(&["TTFT (s)", "QPS/chip", "placement"], 22);
        for p in global.iter() {
            print_row(
                &[
                    fmt_f(p.performance.ttft_s, 3),
                    fmt_f(p.performance.qps_per_chip, 3),
                    p.schedule.placement.describe(),
                ],
                22,
            );
        }
        println!();
    }
    println!("expected shape: the global frontier is stitched from several different");
    println!("placement/allocation plans — no single plan dominates both objectives.");
    Ok(())
}
