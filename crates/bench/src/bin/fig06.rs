//! Figure 6: Case I performance and time breakdown for 8B / 70B generators
//! and 1–8 query vectors per retrieval.
//!
//! Run with: `cargo run --release -p rago-bench --bin fig06`

use rago_bench::{default_cluster, figure_search_options, fmt_f, print_header, print_row};
use rago_core::{breakdown, Rago, StageProfiler};
use rago_schema::presets::{self, LlmSize};
use rago_schema::Stage;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cluster = default_cluster();
    let options = figure_search_options();

    for llm in [LlmSize::B8, LlmSize::B70] {
        println!("== Figure 6 ({llm} generator) ==");
        print_header(
            &[
                "queries",
                "max QPS/chip",
                "TTFT@max (ms)",
                "retrieval%",
                "prefix%",
                "decode%",
            ],
            14,
        );
        for queries in [1u32, 2, 4, 8] {
            let schema = presets::case1_hyperscale(llm, queries);
            let rago = Rago::new(schema.clone(), cluster.clone());
            let frontier = rago.optimize(&options)?;
            let best = frontier.max_qps_per_chip().unwrap();

            let profiler = StageProfiler::new(schema, cluster.clone());
            let shares = breakdown::stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64])?;
            print_row(
                &[
                    queries.to_string(),
                    fmt_f(best.performance.qps_per_chip, 3),
                    fmt_f(best.performance.ttft_s * 1e3, 1),
                    fmt_f(breakdown::share_of(&shares, Stage::Retrieval) * 100.0, 1),
                    fmt_f(breakdown::share_of(&shares, Stage::Prefix) * 100.0, 1),
                    fmt_f(breakdown::share_of(&shares, Stage::Decode) * 100.0, 1),
                ],
                14,
            );
        }
        println!();
    }
    println!("expected shape: QPS/chip roughly halves per query doubling for the 8B model;");
    println!("the 70B model is inference bound until ~4-8 queries per retrieval.");
    Ok(())
}
