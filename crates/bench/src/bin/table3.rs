//! Table 3: RAGSchema of the workloads used in the four case studies.
//!
//! Run with: `cargo run --release -p rago-bench --bin table3`

use rago_bench::{print_header, print_row};
use rago_workloads::{case_study_sweeps, CaseStudy};

fn main() {
    println!("Table 3: RAGSchema of the case-study workloads\n");
    print_header(&["component", "Case 1", "Case 2", "Case 3", "Case 4"], 22);
    let defaults: Vec<_> = CaseStudy::ALL.iter().map(|c| c.default_schema()).collect();

    let row = |name: &str, f: &dyn Fn(&rago_schema::RagSchema) -> String| {
        let cells: Vec<String> = std::iter::once(name.to_string())
            .chain(defaults.iter().map(f))
            .collect();
        print_row(&cells, 22);
    };

    row("document encoder", &|s| {
        s.document_encoder
            .as_ref()
            .map(|m| format!("{:.0}M ({}-d)", m.params / 1e6, m.architecture.hidden_dim))
            .unwrap_or_else(|| "N/A".into())
    });
    row("database vectors", &|s| {
        s.retrieval
            .as_ref()
            .map(|r| {
                if r.num_vectors >= 1_000_000_000 {
                    format!("{}B", r.num_vectors / 1_000_000_000)
                } else {
                    format!("{}K", r.num_vectors / 1_000)
                }
            })
            .unwrap_or_else(|| "N/A".into())
    });
    row("retrieval frequency", &|s| {
        s.retrieval
            .as_ref()
            .map(|r| r.retrievals_per_sequence.to_string())
            .unwrap_or_else(|| "N/A".into())
    });
    row("queries per retrieval", &|s| {
        s.retrieval
            .as_ref()
            .map(|r| r.queries_per_retrieval.to_string())
            .unwrap_or_else(|| "N/A".into())
    });
    row("query rewriter", &|s| {
        s.query_rewriter
            .as_ref()
            .map(|m| format!("{:.0}B", m.params / 1e9))
            .unwrap_or_else(|| "N/A".into())
    });
    row("query reranker", &|s| {
        s.reranker
            .as_ref()
            .map(|m| format!("{:.0}M", m.params / 1e6))
            .unwrap_or_else(|| "N/A".into())
    });
    row("generative LLM", &|s| {
        format!("{:.0}B", s.generative_llm.params / 1e9)
    });

    println!("\nfull parameter sweeps per case:");
    for case in CaseStudy::ALL {
        println!(
            "  {case}: {} workload variants",
            case_study_sweeps(case).len()
        );
    }
}
