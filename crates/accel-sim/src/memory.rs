//! Accelerator-memory feasibility checks.
//!
//! The paper's resource-allocation step requires every component to have
//! enough accelerator memory for its weights (and, for decoders, the KV cache
//! of its running batch). This module estimates those requirements and checks
//! them against an [`AcceleratorGroup`]'s total HBM.

use crate::group::AcceleratorGroup;
use rago_schema::ModelConfig;
use serde::{Deserialize, Serialize};

/// Memory requirement estimator for serving a model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MemoryModel {
    /// Fraction of HBM reserved for activations, scratch space, and the
    /// runtime (not available to weights / KV cache).
    pub overhead_fraction: f64,
}

impl MemoryModel {
    /// Default memory model reserving 10 % of HBM for runtime overheads.
    pub fn new() -> Self {
        Self {
            overhead_fraction: 0.10,
        }
    }

    /// Bytes required to hold the model weights.
    pub fn weight_bytes(&self, model: &ModelConfig) -> f64 {
        model.weight_bytes()
    }

    /// Bytes required by the KV cache for `batch` sequences of up to
    /// `max_seq_len` tokens (zero for encoder models).
    pub fn kv_cache_bytes(&self, model: &ModelConfig, batch: u32, max_seq_len: u32) -> f64 {
        model.kv_cache_bytes_per_token() * f64::from(batch) * f64::from(max_seq_len)
    }

    /// Total bytes required to serve the model with the given batch and
    /// maximum sequence length.
    pub fn required_bytes(&self, model: &ModelConfig, batch: u32, max_seq_len: u32) -> f64 {
        self.weight_bytes(model) + self.kv_cache_bytes(model, batch, max_seq_len)
    }

    /// Usable HBM of a group after the overhead reservation.
    pub fn usable_bytes(&self, group: &AcceleratorGroup) -> f64 {
        group.total_hbm_bytes() * (1.0 - self.overhead_fraction)
    }

    /// Whether the model (weights + KV cache) fits on the group.
    pub fn fits(
        &self,
        model: &ModelConfig,
        batch: u32,
        max_seq_len: u32,
        group: &AcceleratorGroup,
    ) -> bool {
        self.required_bytes(model, batch, max_seq_len) <= self.usable_bytes(group)
    }

    /// The largest batch size (power of two) that fits on the group for the
    /// given maximum sequence length, or `None` if even batch 1 does not fit.
    pub fn max_batch(
        &self,
        model: &ModelConfig,
        max_seq_len: u32,
        group: &AcceleratorGroup,
    ) -> Option<u32> {
        if !self.fits(model, 1, max_seq_len, group) {
            return None;
        }
        let mut batch = 1u32;
        while batch < u32::MAX / 2 && self.fits(model, batch * 2, max_seq_len, group) {
            batch *= 2;
        }
        Some(batch)
    }
}

impl Default for MemoryModel {
    fn default() -> Self {
        MemoryModel::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rago_hardware::XpuSpec;

    #[test]
    fn seventy_b_does_not_fit_on_one_chip_but_fits_on_two() {
        // 70 GB of int8 weights vs 96 GiB per chip: fits on one chip without a
        // KV cache, but a large decode batch pushes it over.
        let mm = MemoryModel::new();
        let model = rago_schema::ModelConfig::llama3_70b();
        let one = AcceleratorGroup::new(XpuSpec::default(), 1);
        let two = AcceleratorGroup::new(XpuSpec::default(), 2);
        assert!(mm.fits(&model, 1, 768, &one));
        // Batch 1024 at 768-token contexts needs ~1024*768*KV bytes on top.
        assert!(!mm.fits(&model, 1024, 768, &one));
        assert!(
            mm.max_batch(&model, 768, &two).unwrap() >= mm.max_batch(&model, 768, &one).unwrap()
        );
    }

    #[test]
    fn four_hundred_five_b_needs_many_chips() {
        let mm = MemoryModel::new();
        let model = rago_schema::ModelConfig::llama3_405b();
        assert!(!mm.fits(
            &model,
            1,
            768,
            &AcceleratorGroup::new(XpuSpec::default(), 4)
        ));
        assert!(mm.fits(
            &model,
            1,
            768,
            &AcceleratorGroup::new(XpuSpec::default(), 8)
        ));
        assert!(mm
            .max_batch(&model, 768, &AcceleratorGroup::new(XpuSpec::default(), 4))
            .is_none());
    }

    #[test]
    fn kv_cache_scales_with_batch_and_length() {
        let mm = MemoryModel::new();
        let model = rago_schema::ModelConfig::llama3_8b();
        let a = mm.kv_cache_bytes(&model, 16, 512);
        let b = mm.kv_cache_bytes(&model, 32, 512);
        let c = mm.kv_cache_bytes(&model, 16, 1024);
        assert!((b / a - 2.0).abs() < 1e-9);
        assert!((c / a - 2.0).abs() < 1e-9);
    }

    #[test]
    fn encoder_needs_no_kv_cache() {
        let mm = MemoryModel::new();
        let enc = rago_schema::ModelConfig::encoder_120m();
        assert_eq!(mm.kv_cache_bytes(&enc, 128, 4096), 0.0);
        assert!(mm.fits(
            &enc,
            4096,
            128,
            &AcceleratorGroup::new(XpuSpec::default(), 1)
        ));
    }

    #[test]
    fn max_batch_is_monotone_in_chip_count() {
        let mm = MemoryModel::new();
        let model = rago_schema::ModelConfig::llama3_8b();
        let b1 = mm
            .max_batch(&model, 768, &AcceleratorGroup::new(XpuSpec::default(), 1))
            .unwrap();
        let b4 = mm
            .max_batch(&model, 768, &AcceleratorGroup::new(XpuSpec::default(), 4))
            .unwrap();
        assert!(b4 >= b1);
        assert!(b1 >= 1);
    }
}
