//! Accelerator groups: the set of chips assigned to one pipeline stage.

use crate::parallelism::ParallelismConfig;
use rago_hardware::{InterconnectSpec, XpuSpec};
use serde::{Deserialize, Serialize};

/// A group of identical XPU chips serving one (or several collocated)
/// inference stages, connected by the given interconnect.
///
/// # Examples
///
/// ```
/// use rago_accel_sim::AcceleratorGroup;
/// use rago_hardware::XpuSpec;
/// let group = AcceleratorGroup::new(XpuSpec::default(), 16);
/// assert_eq!(group.num_chips, 16);
/// assert!(group.total_hbm_bytes() > 1e12);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AcceleratorGroup {
    /// Per-chip specification.
    pub xpu: XpuSpec,
    /// Number of chips in the group.
    pub num_chips: u32,
    /// Chip-to-chip interconnect within the group.
    pub interconnect: InterconnectSpec,
}

impl AcceleratorGroup {
    /// Creates a group of `num_chips` chips of the given spec connected by the
    /// paper's default 3D-torus interconnect.
    ///
    /// # Panics
    ///
    /// Panics if `num_chips` is zero.
    pub fn new(xpu: XpuSpec, num_chips: u32) -> Self {
        assert!(
            num_chips >= 1,
            "an accelerator group needs at least one chip"
        );
        Self {
            xpu,
            num_chips,
            interconnect: InterconnectSpec::torus_3d(),
        }
    }

    /// Replaces the interconnect.
    pub fn with_interconnect(mut self, interconnect: InterconnectSpec) -> Self {
        self.interconnect = interconnect;
        self
    }

    /// Total HBM capacity of the group in bytes.
    pub fn total_hbm_bytes(&self) -> f64 {
        self.xpu.hbm_capacity_bytes() * f64::from(self.num_chips)
    }

    /// Parallelism strategies available on this group.
    pub fn parallelism_options(&self) -> Vec<ParallelismConfig> {
        ParallelismConfig::enumerate(self.num_chips)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_capacity_scales_with_chips() {
        let one = AcceleratorGroup::new(XpuSpec::default(), 1);
        let eight = AcceleratorGroup::new(XpuSpec::default(), 8);
        assert!((eight.total_hbm_bytes() / one.total_hbm_bytes() - 8.0).abs() < 1e-9);
    }

    #[test]
    fn parallelism_options_match_chip_count() {
        let group = AcceleratorGroup::new(XpuSpec::default(), 4);
        let opts = group.parallelism_options();
        assert!(opts.iter().all(|p| p.total_chips() == 4));
        assert_eq!(opts.len(), 3); // (1,4), (2,2), (4,1)
    }

    #[test]
    #[should_panic(expected = "at least one chip")]
    fn zero_chips_panics() {
        let _ = AcceleratorGroup::new(XpuSpec::default(), 0);
    }
}
