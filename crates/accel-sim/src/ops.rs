//! Construction of the per-layer operator graphs of a transformer forward
//! pass, costed under the roofline model.
//!
//! All functions build [`OperatorCost`] lists for **one transformer layer on
//! one tensor-parallel shard** (work and weight bytes divided by the
//! tensor-parallel degree), plus the all-reduce communication operators that
//! tensor parallelism requires. The simulator assembles full phases from
//! these building blocks.

use rago_hardware::{InterconnectSpec, OperatorCost, OperatorKind, Roofline};
use rago_schema::{LlmArchitecture, Quantization};

/// Bytes per activation element (bf16).
pub const ACTIVATION_BYTES: f64 = 2.0;

/// Inputs describing how many tokens a layer processes.
#[derive(Debug, Clone, Copy)]
pub struct TokenShape {
    /// Number of sequences processed together.
    pub batch: f64,
    /// Tokens processed per sequence in this pass (the full prompt for
    /// prefix/encoder, one for a decode step).
    pub new_tokens: f64,
    /// Tokens of context attended over (equals `new_tokens` for prefix and
    /// encoders; prompt + generated-so-far for decode steps).
    pub context_tokens: f64,
}

impl TokenShape {
    /// Shape of a prefix or encoder pass: every token attends over the whole
    /// (causal) prompt.
    pub fn prefix(batch: u32, seq_len: u32) -> Self {
        Self {
            batch: f64::from(batch),
            new_tokens: f64::from(seq_len),
            context_tokens: f64::from(seq_len),
        }
    }

    /// Shape of one decode step at the given context length.
    pub fn decode_step(batch: u32, context_tokens: f64) -> Self {
        Self {
            batch: f64::from(batch),
            new_tokens: 1.0,
            context_tokens,
        }
    }
}

/// Weight bytes of one transformer layer (attention + FFN projections) under
/// the given quantization.
pub fn layer_weight_bytes(arch: &LlmArchitecture, quant: Quantization) -> f64 {
    let h = f64::from(arch.hidden_dim);
    let kv_dim = f64::from(arch.head_dim()) * f64::from(arch.num_kv_heads);
    let ffn_mats = if arch.is_encoder { 2.0 } else { 3.0 };
    let attn = h * h + 2.0 * h * kv_dim + h * h;
    let ffn = ffn_mats * h * f64::from(arch.ffn_dim);
    (attn + ffn) * quant.bytes_per_param()
}

/// Builds the operator costs of one transformer layer on one tensor-parallel
/// shard of degree `tp`, evaluated on `roofline`. When `tp > 1`, the returned
/// list ends with the all-reduce communication operators priced on
/// `interconnect`.
///
/// `attention_context_override` allows the caller to cap the attended context
/// (used by the sliding-window layers of the long-context comparison model);
/// `None` attends over the full `shape.context_tokens`.
#[allow(clippy::too_many_arguments)]
pub fn layer_ops(
    arch: &LlmArchitecture,
    quant: Quantization,
    shape: TokenShape,
    tp: u32,
    roofline: &Roofline,
    interconnect: &InterconnectSpec,
    attention_context_override: Option<f64>,
) -> Vec<OperatorCost> {
    let tp_f = f64::from(tp.max(1));
    let h = f64::from(arch.hidden_dim);
    let head_dim = f64::from(arch.head_dim());
    let kv_dim = head_dim * f64::from(arch.num_kv_heads);
    let heads = f64::from(arch.num_heads);
    let ffn = f64::from(arch.ffn_dim);
    let ffn_mats = if arch.is_encoder { 2.0 } else { 3.0 };
    let bpp = quant.bytes_per_param();
    let b = shape.batch;
    let t_new = shape.new_tokens;
    let t_ctx = attention_context_override.unwrap_or(shape.context_tokens);
    let tokens = b * t_new;

    let mut ops = Vec::with_capacity(6);

    // QKV projection: hidden -> (hidden + 2 * kv_dim).
    let qkv_out = h + 2.0 * kv_dim;
    ops.push(OperatorCost::from_roofline(
        "qkv_proj",
        OperatorKind::MatMul,
        roofline,
        2.0 * tokens * h * qkv_out / tp_f,
        h * qkv_out * bpp / tp_f
            + tokens * h * ACTIVATION_BYTES
            + tokens * qkv_out * ACTIVATION_BYTES / tp_f,
    ));

    // Attention: scores (Q·K^T) and context (scores·V). Two matmuls, each
    // 2 * b * heads * t_new * t_ctx * head_dim FLOPs, heads sharded by tp.
    // Data: read the KV cache (decode) or K/V activations (prefix) plus Q.
    let attn_flops = 2.0 * 2.0 * b * (heads / tp_f) * t_new * t_ctx * head_dim;
    let kv_bytes = b * t_ctx * 2.0 * kv_dim * bpp / tp_f;
    let q_bytes = tokens * h * ACTIVATION_BYTES / tp_f;
    ops.push(OperatorCost::from_roofline(
        "attention",
        OperatorKind::Attention,
        roofline,
        attn_flops,
        kv_bytes + q_bytes,
    ));

    // Output projection: hidden -> hidden.
    ops.push(OperatorCost::from_roofline(
        "out_proj",
        OperatorKind::MatMul,
        roofline,
        2.0 * tokens * h * h / tp_f,
        h * h * bpp / tp_f + 2.0 * tokens * h * ACTIVATION_BYTES / tp_f,
    ));

    // FFN: gate/up/down (decoder, 3 mats) or up/down (encoder, 2 mats).
    ops.push(OperatorCost::from_roofline(
        "ffn",
        OperatorKind::MatMul,
        roofline,
        2.0 * tokens * h * ffn * ffn_mats / tp_f,
        ffn_mats * h * ffn * bpp / tp_f + tokens * (h + ffn) * ACTIVATION_BYTES / tp_f,
    ));

    // Norms, residuals, activation functions: elementwise over the tokens.
    ops.push(OperatorCost::from_roofline(
        "elementwise",
        OperatorKind::Elementwise,
        roofline,
        8.0 * tokens * h,
        4.0 * tokens * h * ACTIVATION_BYTES,
    ));

    // Tensor-parallel all-reduces: one after attention, one after the FFN,
    // each over the layer's activation output.
    if tp > 1 {
        let act_bytes = tokens * h * ACTIVATION_BYTES;
        let t_allreduce = interconnect.allreduce_time(act_bytes, tp);
        ops.push(OperatorCost::fixed(
            "tp_allreduce",
            OperatorKind::Communication,
            2.0 * t_allreduce,
        ));
    }

    ops
}

/// Builds the final language-model head (logits projection) for the tokens
/// that actually need logits (one per sequence in both prefix and decode).
pub fn lm_head_ops(
    arch: &LlmArchitecture,
    quant: Quantization,
    batch: f64,
    tp: u32,
    roofline: &Roofline,
) -> OperatorCost {
    let tp_f = f64::from(tp.max(1));
    let h = f64::from(arch.hidden_dim);
    let vocab = f64::from(arch.vocab_size);
    OperatorCost::from_roofline(
        "lm_head",
        OperatorKind::MatMul,
        roofline,
        2.0 * batch * h * vocab / tp_f,
        h * vocab * quant.bytes_per_param() / tp_f + batch * vocab * ACTIVATION_BYTES / tp_f,
    )
}

/// Sums the FLOPs recorded in a list of operator costs.
pub fn total_flops(ops: &[OperatorCost]) -> f64 {
    ops.iter()
        .filter(|o| o.kind != OperatorKind::Communication)
        .map(|o| o.work)
        .sum()
}

/// Fraction of the total operator time spent in memory-bound operators.
pub fn memory_bound_fraction(ops: &[OperatorCost]) -> f64 {
    let total = OperatorCost::total_seconds(ops);
    if total <= 0.0 {
        return 0.0;
    }
    let mem: f64 = ops
        .iter()
        .filter(|o| o.is_memory_bound)
        .map(|o| o.seconds)
        .sum();
    mem / total
}

#[cfg(test)]
mod tests {
    use super::*;
    use rago_schema::ModelConfig;

    fn setup() -> (LlmArchitecture, Roofline, InterconnectSpec) {
        let model = ModelConfig::llama3_8b();
        let xpu = rago_hardware::XpuSpec::default();
        (
            model.architecture,
            xpu.roofline(),
            InterconnectSpec::torus_3d(),
        )
    }

    #[test]
    fn prefix_layer_flops_match_2mh_rule() {
        // For a prefix over L tokens the per-layer matmul FLOPs should be
        // close to 2 * (layer params) * L * batch.
        let (arch, roofline, ici) = setup();
        let shape = TokenShape::prefix(4, 512);
        let ops = layer_ops(&arch, Quantization::Int8, shape, 1, &roofline, &ici, None);
        let matmul_flops: f64 = ops
            .iter()
            .filter(|o| o.kind == OperatorKind::MatMul)
            .map(|o| o.work)
            .sum();
        let layer_params = layer_weight_bytes(&arch, Quantization::Int8); // 1 byte per param
        let expected = 2.0 * layer_params * 512.0 * 4.0;
        let ratio = matmul_flops / expected;
        assert!((0.9..=1.1).contains(&ratio), "ratio {ratio}");
    }

    #[test]
    fn prefix_is_compute_bound_decode_is_memory_bound() {
        let (arch, roofline, ici) = setup();
        let prefix = layer_ops(
            &arch,
            Quantization::Int8,
            TokenShape::prefix(1, 512),
            1,
            &roofline,
            &ici,
            None,
        );
        let decode = layer_ops(
            &arch,
            Quantization::Int8,
            TokenShape::decode_step(1, 512.0),
            1,
            &roofline,
            &ici,
            None,
        );
        // The dominant matmul (FFN) should be compute bound in prefix and
        // memory bound (weight streaming) in decode.
        let prefix_ffn = prefix.iter().find(|o| o.name == "ffn").unwrap();
        let decode_ffn = decode.iter().find(|o| o.name == "ffn").unwrap();
        assert!(!prefix_ffn.is_memory_bound);
        assert!(decode_ffn.is_memory_bound);
        assert!(memory_bound_fraction(&decode) > memory_bound_fraction(&prefix));
    }

    #[test]
    fn tensor_parallelism_reduces_compute_time_and_adds_communication() {
        let (arch, roofline, ici) = setup();
        let shape = TokenShape::prefix(8, 512);
        let tp1 = layer_ops(&arch, Quantization::Int8, shape, 1, &roofline, &ici, None);
        let tp4 = layer_ops(&arch, Quantization::Int8, shape, 4, &roofline, &ici, None);
        assert!(tp1.iter().all(|o| o.kind != OperatorKind::Communication));
        assert!(tp4.iter().any(|o| o.kind == OperatorKind::Communication));
        let t1: f64 = tp1
            .iter()
            .filter(|o| o.kind != OperatorKind::Communication)
            .map(|o| o.seconds)
            .sum();
        let t4: f64 = tp4
            .iter()
            .filter(|o| o.kind != OperatorKind::Communication)
            .map(|o| o.seconds)
            .sum();
        assert!(t4 < t1);
        assert!(t4 > t1 / 5.0); // elementwise work is not sharded, so less than 4x
    }

    #[test]
    fn attention_cost_grows_with_context() {
        let (arch, roofline, ici) = setup();
        let short = layer_ops(
            &arch,
            Quantization::Int8,
            TokenShape::decode_step(16, 128.0),
            1,
            &roofline,
            &ici,
            None,
        );
        let long = layer_ops(
            &arch,
            Quantization::Int8,
            TokenShape::decode_step(16, 4096.0),
            1,
            &roofline,
            &ici,
            None,
        );
        let a_short = short
            .iter()
            .find(|o| o.name == "attention")
            .unwrap()
            .seconds;
        let a_long = long.iter().find(|o| o.name == "attention").unwrap().seconds;
        assert!(a_long > a_short * 8.0);
    }

    #[test]
    fn context_override_caps_attention() {
        let (arch, roofline, ici) = setup();
        let full = layer_ops(
            &arch,
            Quantization::Int8,
            TokenShape::prefix(1, 10_000),
            1,
            &roofline,
            &ici,
            None,
        );
        let windowed = layer_ops(
            &arch,
            Quantization::Int8,
            TokenShape::prefix(1, 10_000),
            1,
            &roofline,
            &ici,
            Some(128.0),
        );
        let a_full = full.iter().find(|o| o.name == "attention").unwrap().seconds;
        let a_win = windowed
            .iter()
            .find(|o| o.name == "attention")
            .unwrap()
            .seconds;
        assert!(a_win < a_full);
    }

    #[test]
    fn lm_head_scales_with_batch() {
        let (arch, roofline, _) = setup();
        let one = lm_head_ops(&arch, Quantization::Int8, 1.0, 1, &roofline);
        let many = lm_head_ops(&arch, Quantization::Int8, 64.0, 1, &roofline);
        assert!(many.work > one.work * 32.0);
    }

    #[test]
    fn total_flops_excludes_communication() {
        let (arch, roofline, ici) = setup();
        let ops = layer_ops(
            &arch,
            Quantization::Int8,
            TokenShape::prefix(2, 256),
            4,
            &roofline,
            &ici,
            None,
        );
        let with_comm: f64 = ops.iter().map(|o| o.work).sum();
        assert_eq!(total_flops(&ops), with_comm); // comm ops carry zero work
        assert!(total_flops(&ops) > 0.0);
    }
}
