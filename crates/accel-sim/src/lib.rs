//! Operator-level XPU inference performance simulator.
//!
//! This crate implements the inference half of the RAGO paper's analytical
//! cost model (§4(a), Figure 4): a model's forward pass is abstracted as a
//! sequence of operators, each costed with a roofline
//! (`max(flops / peak_compute, bytes / memory_bandwidth)`), plus inter-chip
//! communication costs (`size / network_bandwidth`) for tensor- and
//! pipeline-parallel execution.
//!
//! The public entry point is [`InferenceSimulator`], which evaluates:
//!
//! * [`InferenceSimulator::prefix_cost`] — prompt processing (prefix phase),
//! * [`InferenceSimulator::decode_cost`] — autoregressive token generation,
//! * [`InferenceSimulator::encoder_cost`] — bidirectional encoders (document
//!   encoder, reranker),
//! * [`InferenceSimulator::long_context_prefix_cost`] — the long-context
//!   LLM-only comparison point of §5.2,
//!
//! over a given [`AcceleratorGroup`] (XPU spec × chip count × parallelism).
//! Memory feasibility (weights + KV cache vs HBM) is checked by
//! [`memory::MemoryModel`].
//!
//! # Examples
//!
//! ```
//! use rago_accel_sim::{AcceleratorGroup, InferenceSimulator};
//! use rago_hardware::XpuSpec;
//! use rago_schema::ModelConfig;
//!
//! let sim = InferenceSimulator::default();
//! let group = AcceleratorGroup::new(XpuSpec::default(), 8);
//! let model = ModelConfig::llama3_8b();
//! // 512-token prompt, batch of 4.
//! let prefix = sim.best_prefix_cost(&model, 512, 4, &group)?;
//! assert!(prefix.latency_s > 0.0);
//! assert!(prefix.throughput_rps > 0.0);
//! # Ok::<(), rago_accel_sim::AccelSimError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod error;
pub mod group;
pub mod memory;
pub mod ops;
pub mod parallelism;
pub mod phases;
pub mod simulator;

pub use error::AccelSimError;
pub use group::AcceleratorGroup;
pub use memory::MemoryModel;
pub use parallelism::ParallelismConfig;
pub use phases::{DecodeCost, InferencePhaseCost};
pub use simulator::InferenceSimulator;
