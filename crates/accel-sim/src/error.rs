//! Error type for the inference simulator.

use std::error::Error;
use std::fmt;

/// Error raised when an inference configuration cannot be evaluated.
#[derive(Debug, Clone, PartialEq)]
pub enum AccelSimError {
    /// The model (plus KV cache) does not fit in the group's HBM under any
    /// evaluated parallelism strategy.
    OutOfMemory {
        /// Bytes required by weights and KV cache.
        required_bytes: f64,
        /// Bytes available across the accelerator group.
        available_bytes: f64,
    },
    /// The requested configuration is invalid (zero batch, zero tokens, …).
    InvalidConfig {
        /// Why the configuration was rejected.
        reason: String,
    },
}

impl fmt::Display for AccelSimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AccelSimError::OutOfMemory {
                required_bytes,
                available_bytes,
            } => write!(
                f,
                "model does not fit in accelerator memory: needs {:.2} GiB, group provides {:.2} GiB",
                required_bytes / (1024.0 * 1024.0 * 1024.0),
                available_bytes / (1024.0 * 1024.0 * 1024.0)
            ),
            AccelSimError::InvalidConfig { reason } => {
                write!(f, "invalid inference configuration: {reason}")
            }
        }
    }
}

impl Error for AccelSimError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_sizes() {
        let e = AccelSimError::OutOfMemory {
            required_bytes: 2.0 * 1024.0 * 1024.0 * 1024.0,
            available_bytes: 1024.0 * 1024.0 * 1024.0,
        };
        let msg = e.to_string();
        assert!(msg.contains("2.00 GiB"));
        assert!(msg.contains("1.00 GiB"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<AccelSimError>();
    }
}
