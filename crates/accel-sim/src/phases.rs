//! Result types of the per-phase inference cost evaluation.

use crate::parallelism::ParallelismConfig;
use rago_hardware::OperatorCost;
use serde::{Deserialize, Serialize};

/// Cost of one batched execution of a non-autoregressive inference phase
/// (prefix, encoder, reranker).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InferencePhaseCost {
    /// End-to-end latency of processing one batch, in seconds.
    pub latency_s: f64,
    /// Steady-state throughput in requests (sequences) per second when the
    /// phase is executed back-to-back on its accelerator group.
    pub throughput_rps: f64,
    /// The parallelism strategy that produced this cost.
    pub parallelism: ParallelismConfig,
    /// Total floating-point operations per batch.
    pub flops: f64,
    /// Fraction of execution time spent in memory-bound operators.
    pub memory_bound_fraction: f64,
    /// Per-operator breakdown of one batch (one representative layer is
    /// scaled to the full layer count).
    pub operators: Vec<OperatorCost>,
}

impl InferencePhaseCost {
    /// Throughput normalized by the number of chips in the serving group.
    pub fn throughput_per_chip(&self, num_chips: u32) -> f64 {
        self.throughput_rps / f64::from(num_chips.max(1))
    }
}

/// Cost of the autoregressive decode phase of a generative model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DecodeCost {
    /// Worst-case latency of one decode step for the whole batch (the paper's
    /// TPOT under continuous batching), in seconds.
    pub step_latency_s: f64,
    /// Latency to generate the full output sequence for a batch, in seconds.
    pub total_latency_s: f64,
    /// Steady-state throughput in sequences per second with continuous
    /// batching keeping the batch full.
    pub throughput_rps: f64,
    /// Tokens generated per second across the whole batch.
    pub tokens_per_second: f64,
    /// The parallelism strategy that produced this cost.
    pub parallelism: ParallelismConfig,
    /// Fraction of step time spent in memory-bound operators.
    pub memory_bound_fraction: f64,
    /// Per-operator breakdown of one decode step (one representative layer is
    /// scaled to the full layer count).
    pub operators: Vec<OperatorCost>,
}

impl DecodeCost {
    /// Throughput normalized by the number of chips in the serving group.
    pub fn throughput_per_chip(&self, num_chips: u32) -> f64 {
        self.throughput_rps / f64::from(num_chips.max(1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn per_chip_normalization() {
        let cost = InferencePhaseCost {
            latency_s: 0.1,
            throughput_rps: 40.0,
            parallelism: ParallelismConfig::single(),
            flops: 1e12,
            memory_bound_fraction: 0.2,
            operators: vec![],
        };
        assert_eq!(cost.throughput_per_chip(4), 10.0);
        assert_eq!(cost.throughput_per_chip(0), 40.0); // clamped to 1
        let d = DecodeCost {
            step_latency_s: 0.01,
            total_latency_s: 2.56,
            throughput_rps: 100.0,
            tokens_per_second: 25600.0,
            parallelism: ParallelismConfig::single(),
            memory_bound_fraction: 0.9,
            operators: vec![],
        };
        assert_eq!(d.throughput_per_chip(10), 10.0);
    }
}
