//! Parallelism strategies across the chips of an accelerator group.
//!
//! The paper's inference simulator evaluates a range of model-sharding
//! strategies: tensor parallelism (each operator is split across chips and an
//! all-reduce combines partial results), pipeline parallelism (layers are
//! divided into stages connected by activation transfers), and hybrids of the
//! two (Figure 4).

use serde::{Deserialize, Serialize};

/// A (tensor-parallel degree, pipeline-parallel degree) pair.
///
/// `tensor_parallel * pipeline_parallel` chips are used in total.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ParallelismConfig {
    /// Number of chips each operator is sharded across.
    pub tensor_parallel: u32,
    /// Number of pipeline stages the layers are divided into.
    pub pipeline_parallel: u32,
}

impl ParallelismConfig {
    /// A single-chip (no parallelism) configuration.
    pub fn single() -> Self {
        Self {
            tensor_parallel: 1,
            pipeline_parallel: 1,
        }
    }

    /// Creates a configuration; degrees must both be at least one.
    ///
    /// # Panics
    ///
    /// Panics if either degree is zero.
    pub fn new(tensor_parallel: u32, pipeline_parallel: u32) -> Self {
        assert!(tensor_parallel >= 1, "tensor_parallel must be >= 1");
        assert!(pipeline_parallel >= 1, "pipeline_parallel must be >= 1");
        Self {
            tensor_parallel,
            pipeline_parallel,
        }
    }

    /// Total number of chips used by this configuration.
    pub fn total_chips(&self) -> u32 {
        self.tensor_parallel * self.pipeline_parallel
    }

    /// Enumerates every (tp, pp) factorization of `num_chips` where both
    /// factors divide the chip count — the strategy space the simulator
    /// searches for each phase.
    pub fn enumerate(num_chips: u32) -> Vec<ParallelismConfig> {
        let mut configs = Vec::new();
        if num_chips == 0 {
            return configs;
        }
        for tp in 1..=num_chips {
            if num_chips % tp == 0 {
                configs.push(ParallelismConfig {
                    tensor_parallel: tp,
                    pipeline_parallel: num_chips / tp,
                });
            }
        }
        configs
    }
}

impl Default for ParallelismConfig {
    fn default() -> Self {
        ParallelismConfig::single()
    }
}

impl std::fmt::Display for ParallelismConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "tp{}-pp{}", self.tensor_parallel, self.pipeline_parallel)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn enumerate_covers_all_divisor_pairs() {
        let configs = ParallelismConfig::enumerate(8);
        assert_eq!(configs.len(), 4); // (1,8), (2,4), (4,2), (8,1)
        assert!(configs.iter().all(|c| c.total_chips() == 8));
        assert!(configs.contains(&ParallelismConfig::new(2, 4)));
    }

    #[test]
    fn enumerate_handles_primes_and_zero() {
        assert_eq!(ParallelismConfig::enumerate(7).len(), 2); // (1,7), (7,1)
        assert!(ParallelismConfig::enumerate(0).is_empty());
        assert_eq!(
            ParallelismConfig::enumerate(1),
            vec![ParallelismConfig::single()]
        );
    }

    #[test]
    fn display_format() {
        assert_eq!(ParallelismConfig::new(4, 2).to_string(), "tp4-pp2");
    }

    #[test]
    #[should_panic(expected = "tensor_parallel")]
    fn zero_degree_panics() {
        let _ = ParallelismConfig::new(0, 1);
    }
}
