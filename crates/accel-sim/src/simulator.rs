//! The inference simulator: assembles per-phase costs from the operator
//! graphs of [`crate::ops`] under a chosen parallelism strategy.

use crate::error::AccelSimError;
use crate::group::AcceleratorGroup;
use crate::memory::MemoryModel;
use crate::ops::{
    layer_ops, lm_head_ops, memory_bound_fraction, total_flops, TokenShape, ACTIVATION_BYTES,
};
use crate::parallelism::ParallelismConfig;
use crate::phases::{DecodeCost, InferencePhaseCost};
use rago_hardware::{OperatorCost, OperatorKind};
use rago_schema::ModelConfig;
use serde::{Deserialize, Serialize};

/// Evaluates inference phases (prefix, decode, encoder) on accelerator groups
/// using the paper's operator-roofline cost model.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct InferenceSimulator {
    /// Memory feasibility model.
    pub memory: MemoryModel,
}

impl InferenceSimulator {
    /// Creates a simulator with the default memory model.
    pub fn new() -> Self {
        Self {
            memory: MemoryModel::new(),
        }
    }

    // ------------------------------------------------------------------
    // Prefix phase
    // ------------------------------------------------------------------

    /// Cost of processing a `seq_len`-token prompt for a batch of `batch`
    /// requests under an explicit parallelism strategy.
    ///
    /// # Errors
    ///
    /// Returns [`AccelSimError::InvalidConfig`] for zero batch/length or a
    /// strategy that does not match the group size, and
    /// [`AccelSimError::OutOfMemory`] when weights plus the produced KV cache
    /// exceed the group's HBM.
    pub fn prefix_cost(
        &self,
        model: &ModelConfig,
        seq_len: u32,
        batch: u32,
        group: &AcceleratorGroup,
        parallelism: ParallelismConfig,
    ) -> Result<InferencePhaseCost, AccelSimError> {
        validate_shape(seq_len, batch)?;
        validate_parallelism(group, parallelism)?;
        self.check_memory(model, batch, seq_len, group)?;
        Ok(self.batched_phase_cost(
            model,
            TokenShape::prefix(batch, seq_len),
            f64::from(batch),
            group,
            parallelism,
            None,
        ))
    }

    /// The lowest-latency prefix cost across all parallelism strategies of the
    /// group.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`InferenceSimulator::prefix_cost`].
    pub fn best_prefix_cost(
        &self,
        model: &ModelConfig,
        seq_len: u32,
        batch: u32,
        group: &AcceleratorGroup,
    ) -> Result<InferencePhaseCost, AccelSimError> {
        validate_shape(seq_len, batch)?;
        self.check_memory(model, batch, seq_len, group)?;
        let best = group
            .parallelism_options()
            .into_iter()
            .map(|p| {
                self.batched_phase_cost(
                    model,
                    TokenShape::prefix(batch, seq_len),
                    f64::from(batch),
                    group,
                    p,
                    None,
                )
            })
            .min_by(|a, b| a.latency_s.total_cmp(&b.latency_s))
            .expect("a group always has at least one parallelism option");
        Ok(best)
    }

    // ------------------------------------------------------------------
    // Encoder phase (document encoder / reranker)
    // ------------------------------------------------------------------

    /// Cost of encoding `tokens_per_request` tokens per request, processed in
    /// independent chunks of `chunk_len` tokens (the paper chunks uploaded
    /// long contexts every 128 tokens), for a batch of `batch` requests.
    /// The best parallelism strategy is selected automatically.
    ///
    /// # Errors
    ///
    /// Returns [`AccelSimError::InvalidConfig`] for zero-sized inputs and
    /// [`AccelSimError::OutOfMemory`] when the encoder weights do not fit.
    pub fn encoder_cost(
        &self,
        model: &ModelConfig,
        tokens_per_request: u64,
        chunk_len: u32,
        batch: u32,
        group: &AcceleratorGroup,
    ) -> Result<InferencePhaseCost, AccelSimError> {
        if tokens_per_request == 0 {
            return Err(AccelSimError::InvalidConfig {
                reason: "tokens_per_request must be at least 1".into(),
            });
        }
        validate_shape(chunk_len, batch)?;
        self.check_memory(model, batch, chunk_len, group)?;
        let chunks_per_request = (tokens_per_request as f64 / f64::from(chunk_len))
            .ceil()
            .max(1.0);
        let shape = TokenShape {
            batch: f64::from(batch) * chunks_per_request,
            new_tokens: f64::from(chunk_len),
            context_tokens: f64::from(chunk_len),
        };
        let best = group
            .parallelism_options()
            .into_iter()
            .map(|p| self.batched_phase_cost(model, shape, f64::from(batch), group, p, None))
            .min_by(|a, b| a.latency_s.total_cmp(&b.latency_s))
            .expect("a group always has at least one parallelism option");
        Ok(best)
    }

    // ------------------------------------------------------------------
    // Decode phase
    // ------------------------------------------------------------------

    /// Cost of generating `decode_len` tokens after a `prefix_len`-token
    /// prompt for a batch of `batch` sequences under an explicit parallelism
    /// strategy.
    ///
    /// # Errors
    ///
    /// Returns [`AccelSimError::InvalidConfig`] for zero-sized inputs or a
    /// mismatched strategy, and [`AccelSimError::OutOfMemory`] when weights
    /// plus the full-context KV cache exceed the group's HBM.
    pub fn decode_cost(
        &self,
        model: &ModelConfig,
        prefix_len: u32,
        decode_len: u32,
        batch: u32,
        group: &AcceleratorGroup,
        parallelism: ParallelismConfig,
    ) -> Result<DecodeCost, AccelSimError> {
        validate_shape(decode_len, batch)?;
        validate_parallelism(group, parallelism)?;
        self.check_memory(model, batch, prefix_len + decode_len, group)?;
        Ok(self.decode_cost_unchecked(model, prefix_len, decode_len, batch, group, parallelism))
    }

    /// The highest-throughput decode cost across all parallelism strategies.
    ///
    /// # Errors
    ///
    /// Propagates the errors of [`InferenceSimulator::decode_cost`].
    pub fn best_decode_cost(
        &self,
        model: &ModelConfig,
        prefix_len: u32,
        decode_len: u32,
        batch: u32,
        group: &AcceleratorGroup,
    ) -> Result<DecodeCost, AccelSimError> {
        validate_shape(decode_len, batch)?;
        self.check_memory(model, batch, prefix_len + decode_len, group)?;
        let best = group
            .parallelism_options()
            .into_iter()
            .map(|p| self.decode_cost_unchecked(model, prefix_len, decode_len, batch, group, p))
            .max_by(|a, b| {
                a.throughput_rps
                    .total_cmp(&b.throughput_rps)
                    .then(b.step_latency_s.total_cmp(&a.step_latency_s))
            })
            .expect("a group always has at least one parallelism option");
        Ok(best)
    }

    // ------------------------------------------------------------------
    // Long-context LLM-only comparison (§5.2)
    // ------------------------------------------------------------------

    /// Cost of feeding the entire long context of `context_tokens` tokens to
    /// the generative model as a prompt (the "long-context LLM" alternative
    /// the paper compares RAG against). Models an efficient hybrid-attention
    /// design: one in every `global_every` layers applies global attention
    /// over all tokens, the remaining layers attend over a sliding window of
    /// `local_window` tokens.
    ///
    /// # Errors
    ///
    /// Returns [`AccelSimError::InvalidConfig`] for zero-sized inputs and
    /// [`AccelSimError::OutOfMemory`] when the full-context KV cache exceeds
    /// the group's HBM (which is precisely the paper's point about this
    /// baseline — give it a large group).
    pub fn long_context_prefix_cost(
        &self,
        model: &ModelConfig,
        context_tokens: u64,
        batch: u32,
        group: &AcceleratorGroup,
        global_every: u32,
        local_window: u32,
    ) -> Result<InferencePhaseCost, AccelSimError> {
        if context_tokens == 0 || global_every == 0 || local_window == 0 {
            return Err(AccelSimError::InvalidConfig {
                reason: "context, global_every and local_window must be non-zero".into(),
            });
        }
        validate_shape(1, batch)?;
        let ctx = u32::try_from(context_tokens.min(u64::from(u32::MAX))).unwrap_or(u32::MAX);
        self.check_memory(model, batch, ctx, group)?;

        let roofline = group.xpu.roofline();
        let arch = &model.architecture;
        let quant = model.quantization;
        // Pick the lowest-latency parallelism for this very large prefix.
        let mut best: Option<InferencePhaseCost> = None;
        for par in group.parallelism_options() {
            let shape = TokenShape {
                batch: f64::from(batch),
                new_tokens: context_tokens as f64,
                context_tokens: context_tokens as f64,
            };
            let global = layer_ops(
                arch,
                quant,
                shape,
                par.tensor_parallel,
                &roofline,
                &group.interconnect,
                None,
            );
            let local = layer_ops(
                arch,
                quant,
                shape,
                par.tensor_parallel,
                &roofline,
                &group.interconnect,
                Some(f64::from(local_window)),
            );
            let layers = f64::from(arch.num_layers);
            let n_global = (layers / f64::from(global_every)).ceil();
            let n_local = layers - n_global;
            let mut operators = scale_ops(&global, n_global);
            operators.extend(scale_ops(&local, n_local));
            operators.push(lm_head_ops(
                arch,
                quant,
                f64::from(batch),
                par.tensor_parallel,
                &roofline,
            ));
            add_pipeline_comm(&mut operators, &shape, arch, par, group);
            let latency = OperatorCost::total_seconds(&operators);
            let cost = InferencePhaseCost {
                latency_s: latency,
                throughput_rps: pipeline_throughput(
                    f64::from(batch),
                    latency,
                    par,
                    arch.num_layers,
                ),
                parallelism: par,
                flops: total_flops(&operators) * f64::from(par.tensor_parallel),
                memory_bound_fraction: memory_bound_fraction(&operators),
                operators,
            };
            if best
                .as_ref()
                .map(|b| cost.latency_s < b.latency_s)
                .unwrap_or(true)
            {
                best = Some(cost);
            }
        }
        Ok(best.expect("at least one parallelism option exists"))
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn check_memory(
        &self,
        model: &ModelConfig,
        batch: u32,
        max_seq_len: u32,
        group: &AcceleratorGroup,
    ) -> Result<(), AccelSimError> {
        if !self.memory.fits(model, batch, max_seq_len, group) {
            return Err(AccelSimError::OutOfMemory {
                required_bytes: self.memory.required_bytes(model, batch, max_seq_len),
                available_bytes: self.memory.usable_bytes(group),
            });
        }
        Ok(())
    }

    /// Generic cost of one batched forward pass over `shape`, reporting
    /// throughput in terms of `requests_per_batch` completed requests.
    fn batched_phase_cost(
        &self,
        model: &ModelConfig,
        shape: TokenShape,
        requests_per_batch: f64,
        group: &AcceleratorGroup,
        parallelism: ParallelismConfig,
        context_override: Option<f64>,
    ) -> InferencePhaseCost {
        let roofline = group.xpu.roofline();
        let arch = &model.architecture;
        let per_layer = layer_ops(
            arch,
            model.quantization,
            shape,
            parallelism.tensor_parallel,
            &roofline,
            &group.interconnect,
            context_override,
        );
        let mut operators = scale_ops(&per_layer, f64::from(arch.num_layers));
        if !arch.is_encoder {
            operators.push(lm_head_ops(
                arch,
                model.quantization,
                shape.batch,
                parallelism.tensor_parallel,
                &roofline,
            ));
        }
        add_pipeline_comm(&mut operators, &shape, arch, parallelism, group);
        let latency = OperatorCost::total_seconds(&operators);
        InferencePhaseCost {
            latency_s: latency,
            throughput_rps: pipeline_throughput(
                requests_per_batch,
                latency,
                parallelism,
                arch.num_layers,
            ),
            parallelism,
            // Per-shard work times the tensor-parallel degree approximates the
            // whole-model FLOP count (elementwise work is slightly overcounted).
            flops: total_flops(&operators) * f64::from(parallelism.tensor_parallel),
            memory_bound_fraction: memory_bound_fraction(&operators),
            operators,
        }
    }

    fn decode_cost_unchecked(
        &self,
        model: &ModelConfig,
        prefix_len: u32,
        decode_len: u32,
        batch: u32,
        group: &AcceleratorGroup,
        parallelism: ParallelismConfig,
    ) -> DecodeCost {
        let roofline = group.xpu.roofline();
        let arch = &model.architecture;
        // Continuous batching: sequences in the batch are at different
        // positions; cost one step at the average context length, report the
        // worst-case (full-length) TPOT per the paper's methodology.
        let avg_context = f64::from(prefix_len) + f64::from(decode_len) / 2.0;
        let shape = TokenShape::decode_step(batch, avg_context);
        let per_layer = layer_ops(
            arch,
            model.quantization,
            shape,
            parallelism.tensor_parallel,
            &roofline,
            &group.interconnect,
            None,
        );
        let mut operators = scale_ops(&per_layer, f64::from(arch.num_layers));
        operators.push(lm_head_ops(
            arch,
            model.quantization,
            f64::from(batch),
            parallelism.tensor_parallel,
            &roofline,
        ));
        add_pipeline_comm(&mut operators, &shape, arch, parallelism, group);
        let step = OperatorCost::total_seconds(&operators);
        let total = step * f64::from(decode_len);
        DecodeCost {
            step_latency_s: step,
            total_latency_s: total,
            throughput_rps: f64::from(batch) / total,
            tokens_per_second: f64::from(batch) / step,
            parallelism,
            memory_bound_fraction: memory_bound_fraction(&operators),
            operators,
        }
    }
}

impl Default for InferenceSimulator {
    fn default() -> Self {
        InferenceSimulator::new()
    }
}

fn validate_shape(tokens: u32, batch: u32) -> Result<(), AccelSimError> {
    if tokens == 0 {
        return Err(AccelSimError::InvalidConfig {
            reason: "sequence length must be at least 1 token".into(),
        });
    }
    if batch == 0 {
        return Err(AccelSimError::InvalidConfig {
            reason: "batch size must be at least 1".into(),
        });
    }
    Ok(())
}

fn validate_parallelism(
    group: &AcceleratorGroup,
    parallelism: ParallelismConfig,
) -> Result<(), AccelSimError> {
    if parallelism.total_chips() != group.num_chips {
        return Err(AccelSimError::InvalidConfig {
            reason: format!(
                "parallelism {} uses {} chips but the group has {}",
                parallelism,
                parallelism.total_chips(),
                group.num_chips
            ),
        });
    }
    Ok(())
}

/// Scales per-layer operators to `layers` layers (summing their time/work).
fn scale_ops(per_layer: &[OperatorCost], layers: f64) -> Vec<OperatorCost> {
    per_layer
        .iter()
        .map(|o| OperatorCost {
            name: o.name.clone(),
            kind: o.kind,
            work: o.work * layers,
            data_bytes: o.data_bytes * layers,
            seconds: o.seconds * layers,
            is_memory_bound: o.is_memory_bound,
        })
        .collect()
}

/// Adds the inter-stage activation transfers of pipeline parallelism.
fn add_pipeline_comm(
    operators: &mut Vec<OperatorCost>,
    shape: &TokenShape,
    arch: &rago_schema::LlmArchitecture,
    parallelism: ParallelismConfig,
    group: &AcceleratorGroup,
) {
    if parallelism.pipeline_parallel <= 1 {
        return;
    }
    let boundaries = f64::from(parallelism.pipeline_parallel - 1);
    let bytes = shape.batch * shape.new_tokens * f64::from(arch.hidden_dim) * ACTIVATION_BYTES
        / f64::from(parallelism.tensor_parallel);
    let per_boundary = group.interconnect.transfer_time(bytes);
    operators.push(OperatorCost::fixed(
        "pp_activation_transfer",
        OperatorKind::Communication,
        boundaries * per_boundary,
    ));
}

/// Steady-state throughput of a (possibly pipelined) phase: with `pp` stages
/// the pipeline overlaps batches, so the bottleneck interval is roughly the
/// per-stage time (`latency / pp`); without pipelining it is the latency.
fn pipeline_throughput(
    requests_per_batch: f64,
    latency_s: f64,
    par: ParallelismConfig,
    num_layers: u32,
) -> f64 {
    if latency_s <= 0.0 {
        return f64::INFINITY;
    }
    // With `pp` pipeline stages, successive batches overlap: at steady state a
    // batch completes roughly every `latency / pp` seconds (the bottleneck
    // stage interval). A stage holds at least one layer, so the overlap factor
    // can never exceed the layer count. Without pipelining a batch completes
    // every `latency`.
    let stages = f64::from(par.pipeline_parallel.clamp(1, num_layers.max(1)));
    requests_per_batch * stages / latency_s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rago_hardware::{XpuGeneration, XpuSpec};
    use rago_schema::ModelConfig;

    fn sim() -> InferenceSimulator {
        InferenceSimulator::new()
    }

    fn group(chips: u32) -> AcceleratorGroup {
        AcceleratorGroup::new(XpuSpec::default(), chips)
    }

    #[test]
    fn prefix_latency_scales_roughly_with_model_size() {
        let s = sim();
        let g = group(8);
        let small = s
            .best_prefix_cost(&ModelConfig::llama3_8b(), 512, 4, &g)
            .unwrap();
        let large = s
            .best_prefix_cost(&ModelConfig::llama3_70b(), 512, 4, &g)
            .unwrap();
        let ratio = large.latency_s / small.latency_s;
        assert!(
            (4.0..=14.0).contains(&ratio),
            "70B/8B prefix latency ratio {ratio}"
        );
    }

    #[test]
    fn prefix_flops_match_the_2ml_approximation() {
        // The paper approximates FLOPs_inference ≈ 2 * M * L.
        let s = sim();
        let g = group(4);
        let model = ModelConfig::llama3_8b();
        let cost = s.best_prefix_cost(&model, 512, 1, &g).unwrap();
        let expected = 2.0 * model.params * 512.0;
        let ratio = cost.flops / expected;
        assert!((0.7..=1.5).contains(&ratio), "flops ratio {ratio}");
    }

    #[test]
    fn decode_step_is_memory_bound_at_small_batch() {
        let s = sim();
        // On a single chip the batch-1 decode step is dominated by streaming
        // the weights: memory bound (§2 of the paper).
        let d = s
            .best_decode_cost(&ModelConfig::llama3_8b(), 512, 256, 1, &group(1))
            .unwrap();
        assert!(d.memory_bound_fraction > 0.5);
        // And tokens/s improves dramatically with batch (continuous batching).
        let d_big = s
            .best_decode_cost(&ModelConfig::llama3_8b(), 512, 256, 256, &group(1))
            .unwrap();
        assert!(d_big.tokens_per_second > d.tokens_per_second * 16.0);
    }

    #[test]
    fn decode_throughput_increases_with_batch_but_tpot_grows() {
        let s = sim();
        let g = group(8);
        let m = ModelConfig::llama3_70b();
        let small = s.best_decode_cost(&m, 512, 256, 4, &g).unwrap();
        let large = s.best_decode_cost(&m, 512, 256, 128, &g).unwrap();
        assert!(large.throughput_rps > small.throughput_rps);
        assert!(large.step_latency_s >= small.step_latency_s);
    }

    #[test]
    fn larger_groups_reduce_prefix_latency() {
        let s = sim();
        let m = ModelConfig::llama3_70b();
        let l1 = s.best_prefix_cost(&m, 512, 8, &group(1)).unwrap().latency_s;
        let l8 = s.best_prefix_cost(&m, 512, 8, &group(8)).unwrap().latency_s;
        let l32 = s
            .best_prefix_cost(&m, 512, 8, &group(32))
            .unwrap()
            .latency_s;
        assert!(l8 < l1);
        assert!(l32 < l8);
    }

    #[test]
    fn qps_per_chip_has_diminishing_returns() {
        // Throughput per chip should not increase when adding chips to a
        // fixed-size problem (communication and unsharded work bite).
        let s = sim();
        let m = ModelConfig::llama3_8b();
        let c2 = s.best_prefix_cost(&m, 512, 16, &group(2)).unwrap();
        let c16 = s.best_prefix_cost(&m, 512, 16, &group(16)).unwrap();
        assert!(c16.throughput_per_chip(16) <= c2.throughput_per_chip(2) * 1.05);
    }

    #[test]
    fn oom_is_reported() {
        let s = sim();
        let tiny = AcceleratorGroup::new(XpuSpec::generation(XpuGeneration::A), 1);
        let err = s
            .best_prefix_cost(&ModelConfig::llama3_70b(), 512, 1, &tiny)
            .unwrap_err();
        assert!(matches!(err, AccelSimError::OutOfMemory { .. }));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let s = sim();
        let g = group(4);
        let m = ModelConfig::llama3_8b();
        assert!(matches!(
            s.best_prefix_cost(&m, 0, 1, &g),
            Err(AccelSimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            s.best_prefix_cost(&m, 512, 0, &g),
            Err(AccelSimError::InvalidConfig { .. })
        ));
        assert!(matches!(
            s.prefix_cost(&m, 512, 1, &g, ParallelismConfig::new(3, 1)),
            Err(AccelSimError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn encoder_cost_scales_with_context_length() {
        let s = sim();
        let g = group(8);
        let enc = ModelConfig::encoder_120m();
        let c100k = s.encoder_cost(&enc, 100_000, 128, 2, &g).unwrap();
        let c1m = s.encoder_cost(&enc, 1_000_000, 128, 2, &g).unwrap();
        let ratio = c1m.latency_s / c100k.latency_s;
        assert!(
            (5.0..=15.0).contains(&ratio),
            "encoder scaling ratio {ratio}"
        );
    }

    #[test]
    fn encoder_dominates_generation_for_long_contexts() {
        // §5.2: even a 120M encoder over 1M tokens costs more than a 70B
        // prefix over 512 tokens.
        let s = sim();
        let g = group(16);
        let enc = s
            .encoder_cost(&ModelConfig::encoder_120m(), 1_000_000, 128, 1, &g)
            .unwrap();
        let prefix = s
            .best_prefix_cost(&ModelConfig::llama3_70b(), 512, 1, &g)
            .unwrap();
        assert!(enc.latency_s > prefix.latency_s);
    }

    #[test]
    fn rag_prefix_beats_long_context_llm_by_orders_of_magnitude() {
        // §5.2: with a 1M-token context, RAG (512-token prefix) achieves a
        // speedup of >100x in TTFT against even an efficient long-context LLM.
        let s = sim();
        let g = group(64);
        let m = ModelConfig::llama3_70b();
        let rag_prefix = s.best_prefix_cost(&m, 512, 1, &g).unwrap();
        let long_ctx = s
            .long_context_prefix_cost(&m, 1_000_000, 1, &g, 4, 128)
            .unwrap();
        let speedup = long_ctx.latency_s / rag_prefix.latency_s;
        assert!(speedup > 100.0, "long-context speedup only {speedup}");
    }

    #[test]
    fn explicit_parallelism_matches_enumerated_best() {
        let s = sim();
        let g = group(4);
        let m = ModelConfig::llama3_8b();
        let best = s.best_prefix_cost(&m, 512, 8, &g).unwrap();
        let explicit = s.prefix_cost(&m, 512, 8, &g, best.parallelism).unwrap();
        assert!((explicit.latency_s - best.latency_s).abs() < 1e-9);
    }
}
