//! Property-based tests for the inference cost model.

use proptest::prelude::*;
use rago_accel_sim::{AcceleratorGroup, InferenceSimulator, ParallelismConfig};
use rago_hardware::XpuSpec;
use rago_schema::ModelConfig;

fn group(chips: u32) -> AcceleratorGroup {
    AcceleratorGroup::new(XpuSpec::default(), chips)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Prefix latency is monotone in sequence length and batch size, and
    /// throughput never becomes negative.
    #[test]
    fn prefix_latency_is_monotone(
        seq in 16u32..2048,
        batch in 1u32..64,
        chips_pow in 0u32..4,
    ) {
        let sim = InferenceSimulator::new();
        let g = group(1 << chips_pow);
        let model = ModelConfig::llama3_8b();
        let base = sim.best_prefix_cost(&model, seq, batch, &g).unwrap();
        let longer = sim.best_prefix_cost(&model, seq * 2, batch, &g).unwrap();
        let bigger = sim.best_prefix_cost(&model, seq, batch + 1, &g).unwrap();
        prop_assert!(base.latency_s > 0.0);
        prop_assert!(base.throughput_rps > 0.0);
        prop_assert!(longer.latency_s >= base.latency_s);
        prop_assert!(bigger.latency_s >= base.latency_s);
    }

    /// Decode TPOT grows (weakly) with batch size while tokens/s grows too —
    /// the fundamental throughput/latency trade-off of continuous batching.
    #[test]
    fn decode_batching_tradeoff(
        batch_pow in 0u32..8,
        prefix in 64u32..1024,
    ) {
        let sim = InferenceSimulator::new();
        let g = group(8);
        let model = ModelConfig::llama3_8b();
        let small = sim.best_decode_cost(&model, prefix, 128, 1 << batch_pow, &g).unwrap();
        let large = sim.best_decode_cost(&model, prefix, 128, 2 << batch_pow, &g).unwrap();
        prop_assert!(large.step_latency_s >= small.step_latency_s * 0.999);
        prop_assert!(large.tokens_per_second >= small.tokens_per_second * 0.999);
    }

    /// For any legal explicit parallelism, the enumerated best prefix cost is
    /// never slower than that explicit choice.
    #[test]
    fn best_prefix_is_at_least_as_good_as_any_explicit_choice(
        tp_pow in 0u32..3,
        pp_pow in 0u32..3,
        batch in 1u32..32,
    ) {
        let sim = InferenceSimulator::new();
        let tp = 1u32 << tp_pow;
        let pp = 1u32 << pp_pow;
        let g = group(tp * pp);
        let model = ModelConfig::llama3_8b();
        let explicit = sim
            .prefix_cost(&model, 512, batch, &g, ParallelismConfig::new(tp, pp))
            .unwrap();
        let best = sim.best_prefix_cost(&model, 512, batch, &g).unwrap();
        prop_assert!(best.latency_s <= explicit.latency_s + 1e-12);
    }

    /// Encoder cost scales (at least) linearly with the number of tokens to
    /// encode, for any chunk size.
    #[test]
    fn encoder_cost_scales_with_tokens(
        tokens in 10_000u64..2_000_000,
        chunk in 32u32..512,
    ) {
        let sim = InferenceSimulator::new();
        let g = group(8);
        let enc = ModelConfig::encoder_120m();
        let one = sim.encoder_cost(&enc, tokens, chunk, 1, &g).unwrap();
        let four = sim.encoder_cost(&enc, tokens * 4, chunk, 1, &g).unwrap();
        prop_assert!(four.latency_s > one.latency_s * 3.0);
        prop_assert!(four.latency_s < one.latency_s * 6.0);
    }

    /// Memory feasibility: whenever best_decode_cost succeeds, the memory
    /// model agrees that weights plus KV cache fit on the group.
    #[test]
    fn successful_costs_fit_in_memory(
        batch_pow in 0u32..9,
        chips_pow in 0u32..4,
    ) {
        let sim = InferenceSimulator::new();
        let g = group(1 << chips_pow);
        let model = ModelConfig::llama3_70b();
        let batch = 1u32 << batch_pow;
        match sim.best_decode_cost(&model, 512, 256, batch, &g) {
            Ok(_) => prop_assert!(sim.memory.fits(&model, batch, 768, &g)),
            Err(_) => prop_assert!(!sim.memory.fits(&model, batch, 768, &g)),
        }
    }
}
