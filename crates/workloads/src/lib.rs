//! Workload generation for the RAGO reproduction.
//!
//! The paper characterizes serving behaviour with aggregate request
//! statistics (question/prefix/decode lengths, queries per retrieval, burst
//! sizes) drawn from QA and chatbot datasets. This crate turns those
//! statistics into concrete request streams:
//!
//! * [`RequestGenerator`] samples per-request token lengths around a
//!   [`rago_schema::SequenceProfile`];
//! * [`ArrivalProcess`] produces arrival timestamps — stationary (Poisson,
//!   bursty, instantaneous) or time-varying (piecewise-rate, diurnal,
//!   spike);
//! * [`TraceSpec`] bundles both into a reproducible request trace;
//! * [`WorkloadMix`] describes weighted multi-tenant request classes with
//!   per-class [`rago_schema::SloTarget`]s, and [`MixTraceSpec`] samples a
//!   class-tagged trace from one ([`Trace::merge_tagged`] composes tagged
//!   traces from independently generated parts);
//! * [`ContentSpec`] assigns *content identity* to a generated trace —
//!   shared-prefix/template ids and retrieval keys drawn from seeded
//!   Zipfian [`PopularityModel`]s — which is what the cache simulators in
//!   `rago-cache` key on (identity-free traces behave exactly as before);
//! * [`case_studies`] re-exports the paper's Table 3 presets together with
//!   the parameter sweeps used in the evaluation figures.
//!
//! # Examples
//!
//! ```
//! use rago_workloads::{ArrivalProcess, TraceSpec};
//! use rago_schema::SequenceProfile;
//!
//! let spec = TraceSpec {
//!     num_requests: 100,
//!     profile: SequenceProfile::paper_default(),
//!     arrival: ArrivalProcess::Poisson { rate_rps: 20.0 },
//!     length_jitter: 0.2,
//!     seed: 7,
//! };
//! let trace = spec.generate();
//! assert_eq!(trace.requests.len(), 100);
//! assert!(trace.requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod arrival;
pub mod case_studies;
pub mod content;
pub mod mix;
pub mod request;

pub use arrival::{ArrivalProcess, RateSegment};
pub use case_studies::{case_study_sweeps, CaseStudy};
pub use content::{ContentIdentity, ContentSpec, PopularityModel, PopularitySampler};
pub use mix::{MixTraceSpec, RequestClass, WorkloadMix};
pub use request::{Request, RequestGenerator, Trace, TraceSpec};
