//! Multi-tenant workload mixes: weighted request classes with per-class
//! sequence profiles and SLO targets.
//!
//! One [`crate::TraceSpec`] describes a homogeneous tenant. Real fleets
//! serve a *mix* — an interactive chatbot tenant with a tight TTFT target
//! sharing replicas with a long-form summarization tenant that tolerates
//! latency but decodes far more tokens. A [`WorkloadMix`] captures that as
//! weighted [`RequestClass`]es, and a [`MixTraceSpec`] samples one tagged
//! trace from it: arrivals come from any [`ArrivalProcess`] (including the
//! time-varying ones), each arrival draws a class by weight, and the
//! request's token lengths are sampled from that class's profile. Every
//! request carries its class tag ([`crate::Request::class`]) through the
//! serving simulation, so reports can score each tenant against its *own*
//! SLO.
//!
//! A one-class mix is bit-identical to the untagged path: it generates
//! exactly the trace `TraceSpec` with the same profile, jitter, and seed
//! would (the equivalence is property-tested in
//! `rago-serving-sim/tests/proptest_tenant.rs`).

use crate::arrival::ArrivalProcess;
use crate::request::{RequestGenerator, Trace};
use rago_schema::{SequenceProfile, SloTarget};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seed offset of the class-selection RNG stream, kept separate from the
/// arrival and length streams so tagging never perturbs them.
const CLASS_SEED_OFFSET: u64 = 0xC1A5_5EED;

/// One tenant class of a workload mix.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RequestClass {
    /// Human-readable tenant name (reports carry it alongside the class id).
    pub name: String,
    /// Relative sampling weight (need not be normalized; must be positive).
    pub weight: f64,
    /// Sequence-length profile requests of this class are sampled around.
    pub profile: SequenceProfile,
    /// Relative token-length jitter in `[0, 1)`.
    pub length_jitter: f64,
    /// The latency SLO this tenant is scored against.
    pub slo: SloTarget,
    /// Admission priority under load shedding: higher keeps traffic longer
    /// when the fleet is degraded (0 = best-effort, shed first). Ignored
    /// everywhere except the chaos/admission path in `rago-serving-sim`,
    /// so existing mixes (priority 0 throughout) behave exactly as before.
    #[serde(default)]
    pub priority: u32,
}

impl RequestClass {
    /// Creates a class with best-effort admission priority (0).
    pub fn new(
        name: impl Into<String>,
        weight: f64,
        profile: SequenceProfile,
        length_jitter: f64,
        slo: SloTarget,
    ) -> Self {
        Self {
            name: name.into(),
            weight,
            profile,
            length_jitter,
            slo,
            priority: 0,
        }
    }

    /// Sets the admission priority (higher = shed later).
    ///
    /// ```
    /// use rago_workloads::RequestClass;
    /// use rago_schema::{SequenceProfile, SloTarget};
    ///
    /// let premium = RequestClass::new(
    ///     "premium", 1.0, SequenceProfile::paper_default(), 0.1,
    ///     SloTarget::new(2.0, 0.05),
    /// )
    /// .with_priority(2);
    /// assert_eq!(premium.priority, 2);
    /// ```
    #[must_use]
    pub fn with_priority(mut self, priority: u32) -> Self {
        self.priority = priority;
        self
    }
}

/// A weighted set of tenant classes.
///
/// # Examples
///
/// ```
/// use rago_workloads::{RequestClass, WorkloadMix};
/// use rago_schema::{SequenceProfile, SloTarget};
///
/// let mix = WorkloadMix::new(vec![
///     RequestClass::new(
///         "chat", 3.0,
///         SequenceProfile::paper_default().with_decode_tokens(64),
///         0.1, SloTarget::new(2.0, 0.05),
///     ),
///     RequestClass::new(
///         "report", 1.0,
///         SequenceProfile::paper_default().with_decode_tokens(256),
///         0.1, SloTarget::new(10.0, 0.2),
///     ),
/// ]);
/// assert_eq!(mix.num_classes(), 2);
/// assert!((mix.weight_fraction(0) - 0.75).abs() < 1e-12);
/// assert_eq!(mix.slo_of(1).ttft_s, 10.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadMix {
    /// The classes; a request's `class` tag indexes into this vector.
    pub classes: Vec<RequestClass>,
}

impl WorkloadMix {
    /// Creates a mix.
    ///
    /// # Panics
    ///
    /// Panics if the mix has no classes, any weight is not positive and
    /// finite, or any jitter is outside `[0, 1)`.
    pub fn new(classes: Vec<RequestClass>) -> Self {
        assert!(
            !classes.is_empty(),
            "a workload mix needs at least one class"
        );
        for c in &classes {
            assert!(
                c.weight > 0.0 && c.weight.is_finite(),
                "class `{}` weight must be positive and finite",
                c.name
            );
            assert!(
                (0.0..1.0).contains(&c.length_jitter),
                "class `{}` length_jitter must be in [0, 1)",
                c.name
            );
        }
        Self { classes }
    }

    /// A mix with one class — the multi-tenant view of a homogeneous
    /// workload.
    pub fn single(
        name: impl Into<String>,
        profile: SequenceProfile,
        length_jitter: f64,
        slo: SloTarget,
    ) -> Self {
        Self::new(vec![RequestClass::new(
            name,
            1.0,
            profile,
            length_jitter,
            slo,
        )])
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.classes.len()
    }

    /// The SLO of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if the class id is out of range.
    pub fn slo_of(&self, class: u32) -> &SloTarget {
        &self.classes[class as usize].slo
    }

    /// Normalized weight of class `class`.
    ///
    /// # Panics
    ///
    /// Panics if the class id is out of range.
    pub fn weight_fraction(&self, class: u32) -> f64 {
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        self.classes[class as usize].weight / total
    }

    /// Samples one class index by weight.
    fn sample_class(&self, rng: &mut StdRng) -> u32 {
        let total: f64 = self.classes.iter().map(|c| c.weight).sum();
        let mut draw: f64 = rng.gen_range(0.0..total);
        for (i, c) in self.classes.iter().enumerate() {
            if draw < c.weight {
                return i as u32;
            }
            draw -= c.weight;
        }
        (self.classes.len() - 1) as u32
    }
}

/// A reproducible multi-tenant trace specification: the tagged analogue of
/// [`crate::TraceSpec`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MixTraceSpec {
    /// Number of requests to generate.
    pub num_requests: usize,
    /// The workload mix requests are drawn from.
    pub mix: WorkloadMix,
    /// Arrival process (stationary or time-varying).
    pub arrival: ArrivalProcess,
    /// RNG seed.
    pub seed: u64,
}

impl MixTraceSpec {
    /// Generates the tagged trace: arrivals from the arrival process, a
    /// class drawn per arrival by weight, and token lengths sampled from the
    /// drawn class's profile. Deterministic in the seed.
    ///
    /// The three RNG streams (arrivals, class selection, per-class lengths)
    /// are independent, and class selection is skipped entirely for a
    /// one-class mix — so a one-class `MixTraceSpec` generates **exactly**
    /// the trace of the `TraceSpec` with the same profile, jitter, arrival
    /// process, and seed, with every request tagged class 0.
    ///
    /// # Examples
    ///
    /// ```
    /// use rago_workloads::{ArrivalProcess, MixTraceSpec, RequestClass, WorkloadMix};
    /// use rago_schema::{SequenceProfile, SloTarget};
    ///
    /// let spec = MixTraceSpec {
    ///     num_requests: 40,
    ///     mix: WorkloadMix::new(vec![
    ///         RequestClass::new("a", 1.0, SequenceProfile::paper_default(), 0.0,
    ///                           SloTarget::paper_default()),
    ///         RequestClass::new("b", 1.0, SequenceProfile::paper_default(), 0.0,
    ///                           SloTarget::paper_default()),
    ///     ]),
    ///     arrival: ArrivalProcess::Poisson { rate_rps: 20.0 },
    ///     seed: 5,
    /// };
    /// let trace = spec.generate();
    /// assert_eq!(trace.requests.len(), 40);
    /// assert!(trace.requests.iter().any(|r| r.class == 0));
    /// assert!(trace.requests.iter().any(|r| r.class == 1));
    /// assert_eq!(spec.generate(), trace); // deterministic
    /// ```
    pub fn generate(&self) -> Trace {
        let mut arrival_rng = StdRng::seed_from_u64(self.seed);
        let arrivals = self.arrival.sample(self.num_requests, &mut arrival_rng);
        let mut class_rng = StdRng::seed_from_u64(self.seed.wrapping_add(CLASS_SEED_OFFSET));
        // One generator per class, each with its own stream, so adding a
        // class never perturbs another class's length draws.
        let mut generators: Vec<RequestGenerator> = self
            .mix
            .classes
            .iter()
            .enumerate()
            .map(|(i, c)| {
                RequestGenerator::new(
                    c.profile,
                    c.length_jitter,
                    self.seed.wrapping_add(1 + i as u64),
                )
            })
            .collect();
        let requests = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, t)| {
                let class = if self.mix.classes.len() == 1 {
                    0
                } else {
                    self.mix.sample_class(&mut class_rng)
                };
                let mut r = generators[class as usize].sample(i as u64, t);
                r.class = class;
                r
            })
            .collect();
        Trace { requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::request::TraceSpec;

    fn two_class_mix() -> WorkloadMix {
        WorkloadMix::new(vec![
            RequestClass::new(
                "chat",
                3.0,
                SequenceProfile::paper_default().with_decode_tokens(64),
                0.1,
                SloTarget::new(2.0, 0.05),
            ),
            RequestClass::new(
                "report",
                1.0,
                SequenceProfile::paper_default().with_decode_tokens(256),
                0.1,
                SloTarget::new(10.0, 0.2),
            ),
        ])
    }

    #[test]
    fn class_shares_track_the_weights() {
        let spec = MixTraceSpec {
            num_requests: 4_000,
            mix: two_class_mix(),
            arrival: ArrivalProcess::Poisson { rate_rps: 100.0 },
            seed: 9,
        };
        let trace = spec.generate();
        let chat = trace.requests.iter().filter(|r| r.class == 0).count() as f64
            / trace.requests.len() as f64;
        assert!((chat - 0.75).abs() < 0.03, "chat share {chat}");
        // Class profiles drive the lengths: the report class decodes ~4x.
        let mean = |class: u32| {
            let rs: Vec<f64> = trace
                .requests
                .iter()
                .filter(|r| r.class == class)
                .map(|r| f64::from(r.decode_tokens))
                .collect();
            rs.iter().sum::<f64>() / rs.len() as f64
        };
        assert!(mean(1) > 3.0 * mean(0), "{} vs {}", mean(1), mean(0));
    }

    #[test]
    fn one_class_mix_equals_the_untagged_trace_exactly() {
        let profile = SequenceProfile::paper_default().with_decode_tokens(48);
        let mix_trace = MixTraceSpec {
            num_requests: 300,
            mix: WorkloadMix::single("only", profile, 0.25, SloTarget::paper_default()),
            arrival: ArrivalProcess::Poisson { rate_rps: 40.0 },
            seed: 33,
        }
        .generate();
        let plain = TraceSpec {
            num_requests: 300,
            profile,
            arrival: ArrivalProcess::Poisson { rate_rps: 40.0 },
            length_jitter: 0.25,
            seed: 33,
        }
        .generate();
        assert_eq!(mix_trace, plain);
        assert!(mix_trace.requests.iter().all(|r| r.class == 0));
    }

    #[test]
    fn generation_is_deterministic_and_seed_sensitive() {
        let spec = MixTraceSpec {
            num_requests: 200,
            mix: two_class_mix(),
            arrival: ArrivalProcess::Diurnal {
                base_rps: 5.0,
                peak_rps: 50.0,
                period_s: 20.0,
            },
            seed: 4,
        };
        assert_eq!(spec.generate(), spec.generate());
        let other = MixTraceSpec {
            seed: 5,
            ..spec.clone()
        }
        .generate();
        assert_ne!(spec.generate(), other);
    }

    #[test]
    fn weight_fractions_normalize() {
        let mix = two_class_mix();
        assert!((mix.weight_fraction(0) + mix.weight_fraction(1) - 1.0).abs() < 1e-12);
        assert_eq!(mix.num_classes(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one class")]
    fn empty_mixes_are_rejected() {
        let _ = WorkloadMix::new(vec![]);
    }

    #[test]
    #[should_panic(expected = "weight must be positive")]
    fn non_positive_weights_are_rejected() {
        let _ = WorkloadMix::new(vec![RequestClass::new(
            "bad",
            0.0,
            SequenceProfile::paper_default(),
            0.0,
            SloTarget::paper_default(),
        )]);
    }
}
