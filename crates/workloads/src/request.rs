//! Request and trace generation.

use crate::arrival::ArrivalProcess;
use rago_schema::SequenceProfile;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// One synthetic serving request.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Request {
    /// Request identifier (position in the trace).
    pub id: u64,
    /// Arrival time in seconds from the start of the trace.
    pub arrival_s: f64,
    /// Question length in tokens.
    pub question_tokens: u32,
    /// Prompt length of the main LLM prefix (question + retrieved content).
    pub prefix_tokens: u32,
    /// Output (decode) length in tokens.
    pub decode_tokens: u32,
    /// Workload-class tag: index into the [`crate::WorkloadMix`] the request
    /// was sampled from (0 for single-class / untagged traces). Carried
    /// through the serving simulation so reports can break metrics and SLO
    /// attainment down per tenant class.
    pub class: u32,
    /// Content identity (shared-prefix template and retrieval key), or
    /// `None` for identity-free requests, which behave exactly as before
    /// caching existed. Assigned by [`crate::ContentSpec::tag`] and carried
    /// through every trace composition
    /// ([`Trace::split_round_robin`]/[`Trace::merge_tagged`]/
    /// [`Trace::with_arrival_offset`]).
    pub identity: Option<crate::ContentIdentity>,
}

/// A generated request trace.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trace {
    /// The requests, sorted by arrival time.
    pub requests: Vec<Request>,
}

impl Trace {
    /// Mean prefix length of the trace.
    pub fn mean_prefix_tokens(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(|r| f64::from(r.prefix_tokens))
            .sum::<f64>()
            / self.requests.len() as f64
    }

    /// Mean decode length of the trace.
    pub fn mean_decode_tokens(&self) -> f64 {
        if self.requests.is_empty() {
            return 0.0;
        }
        self.requests
            .iter()
            .map(|r| f64::from(r.decode_tokens))
            .sum::<f64>()
            / self.requests.len() as f64
    }

    /// Offered load in requests per second (requests divided by the span of
    /// arrival times; infinite for instantaneous traces).
    pub fn offered_load_rps(&self) -> f64 {
        let span = self.requests.last().map(|r| r.arrival_s).unwrap_or(0.0);
        if span <= 0.0 {
            return f64::INFINITY;
        }
        self.requests.len() as f64 / span
    }

    /// Splits the trace across `replicas` round-robin **without
    /// re-sampling**: the i-th request (in arrival order) goes to replica
    /// `i % replicas`, keeping its id, arrival time, and lengths. The union
    /// of the splits is exactly this trace, so per-replica evaluations stay
    /// comparable to the fleet-level run (a state-aware router in
    /// `rago-serving-sim::cluster` does this dynamically; this static split
    /// is the offline baseline).
    ///
    /// # Examples
    ///
    /// ```
    /// use rago_workloads::{ArrivalProcess, TraceSpec};
    /// use rago_schema::SequenceProfile;
    ///
    /// let trace = TraceSpec {
    ///     num_requests: 10,
    ///     profile: SequenceProfile::paper_default(),
    ///     arrival: ArrivalProcess::Poisson { rate_rps: 5.0 },
    ///     length_jitter: 0.1,
    ///     seed: 1,
    /// }
    /// .generate();
    /// let splits = trace.split_round_robin(3);
    /// assert_eq!(splits.iter().map(|t| t.requests.len()).sum::<usize>(), 10);
    /// // No re-sampling: request 4 is bit-identical wherever it lands.
    /// assert_eq!(splits[1].requests[1], trace.requests[4]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if `replicas` is zero.
    pub fn split_round_robin(&self, replicas: usize) -> Vec<Trace> {
        assert!(replicas > 0, "cannot split a trace across zero replicas");
        let mut splits = vec![
            Trace {
                requests: Vec::with_capacity(self.requests.len().div_ceil(replicas)),
            };
            replicas
        ];
        for (i, r) in self.requests.iter().enumerate() {
            splits[i % replicas].requests.push(*r);
        }
        splits
    }

    /// Merges class-tagged traces into one: every request of `parts[i].1`
    /// is re-tagged with class `parts[i].0`, the union is sorted by arrival
    /// time (stable — ties keep part order, then within-part order), and ids
    /// are re-assigned by merged position so the result is a well-formed
    /// trace with unique ids. Arrival times and token lengths are untouched,
    /// so the merged trace exercises exactly the union of the parts' work.
    ///
    /// This is how multi-tenant scenarios are composed from independently
    /// generated per-tenant traces (e.g. a steady tenant plus a spiky one).
    ///
    /// # Examples
    ///
    /// ```
    /// use rago_workloads::{ArrivalProcess, Trace, TraceSpec};
    /// use rago_schema::SequenceProfile;
    ///
    /// let spec = TraceSpec {
    ///     num_requests: 5,
    ///     profile: SequenceProfile::paper_default(),
    ///     arrival: ArrivalProcess::Poisson { rate_rps: 10.0 },
    ///     length_jitter: 0.0,
    ///     seed: 1,
    /// };
    /// let a = spec.clone().generate();
    /// let b = TraceSpec { seed: 2, ..spec }.generate();
    /// let merged = Trace::merge_tagged(&[(0, a), (7, b)]);
    /// assert_eq!(merged.requests.len(), 10);
    /// assert!(merged.requests.windows(2).all(|w| w[0].arrival_s <= w[1].arrival_s));
    /// assert_eq!(merged.requests.iter().filter(|r| r.class == 7).count(), 5);
    /// assert!(merged.requests.iter().enumerate().all(|(i, r)| r.id == i as u64));
    /// ```
    pub fn merge_tagged(parts: &[(u32, Trace)]) -> Trace {
        let total = parts.iter().map(|(_, t)| t.requests.len()).sum();
        let mut requests: Vec<Request> = Vec::with_capacity(total);
        for (class, part) in parts {
            requests.extend(part.requests.iter().map(|r| Request {
                class: *class,
                ..*r
            }));
        }
        // Stable sort keeps part order, then within-part order, on ties.
        requests.sort_by(|a, b| a.arrival_s.total_cmp(&b.arrival_s));
        for (i, r) in requests.iter_mut().enumerate() {
            r.id = i as u64;
        }
        Trace { requests }
    }

    /// Returns the same trace with every arrival shifted by `offset_s`
    /// seconds — e.g. a burst that lands late. Lengths and ids are
    /// untouched, so the shifted trace exercises exactly the same work.
    ///
    /// # Panics
    ///
    /// Panics if the offset is non-finite or would make any arrival
    /// negative.
    pub fn with_arrival_offset(&self, offset_s: f64) -> Trace {
        assert!(offset_s.is_finite(), "arrival offset must be finite");
        let requests: Vec<Request> = self
            .requests
            .iter()
            .map(|r| {
                let arrival_s = r.arrival_s + offset_s;
                assert!(
                    arrival_s >= 0.0,
                    "offset {offset_s} makes request {} arrive before time zero",
                    r.id
                );
                Request { arrival_s, ..*r }
            })
            .collect();
        Trace { requests }
    }
}

/// Generates per-request token lengths around a [`SequenceProfile`].
#[derive(Debug, Clone)]
pub struct RequestGenerator {
    profile: SequenceProfile,
    /// Relative jitter applied to every length (0.0 = deterministic lengths,
    /// 0.2 = lengths uniform in ±20 % of the profile value).
    length_jitter: f64,
    rng: StdRng,
}

impl RequestGenerator {
    /// Creates a generator with the given jitter and seed.
    ///
    /// # Panics
    ///
    /// Panics if `length_jitter` is not in `[0, 1)`.
    pub fn new(profile: SequenceProfile, length_jitter: f64, seed: u64) -> Self {
        assert!(
            (0.0..1.0).contains(&length_jitter),
            "length_jitter must be in [0, 1)"
        );
        Self {
            profile,
            length_jitter,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Samples one request with the given id and arrival time.
    pub fn sample(&mut self, id: u64, arrival_s: f64) -> Request {
        let question = self.jitter(self.profile.question_tokens);
        let prefix = self.jitter(self.profile.prefix_tokens());
        let decode = self.jitter(self.profile.decode_tokens);
        Request {
            id,
            arrival_s,
            question_tokens: question,
            prefix_tokens: prefix.max(question),
            decode_tokens: decode.max(1),
            class: 0,
            identity: None,
        }
    }

    fn jitter(&mut self, value: u32) -> u32 {
        if self.length_jitter == 0.0 || value == 0 {
            return value.max(1);
        }
        let v = f64::from(value);
        let low = v * (1.0 - self.length_jitter);
        let high = v * (1.0 + self.length_jitter);
        self.rng.gen_range(low..=high).round().max(1.0) as u32
    }
}

/// A reproducible trace specification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceSpec {
    /// Number of requests to generate.
    pub num_requests: usize,
    /// Length profile requests are sampled around.
    pub profile: SequenceProfile,
    /// Arrival process.
    pub arrival: ArrivalProcess,
    /// Relative length jitter in `[0, 1)`.
    pub length_jitter: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TraceSpec {
    /// Generates the trace: arrival timestamps from the arrival process,
    /// per-request lengths jittered around the profile, deterministic in the
    /// seed.
    ///
    /// # Examples
    ///
    /// ```
    /// use rago_workloads::{ArrivalProcess, TraceSpec};
    /// use rago_schema::SequenceProfile;
    ///
    /// let spec = TraceSpec {
    ///     num_requests: 10,
    ///     profile: SequenceProfile::paper_default(),
    ///     arrival: ArrivalProcess::Instantaneous,
    ///     length_jitter: 0.0,
    ///     seed: 1,
    /// };
    /// let trace = spec.generate();
    /// assert_eq!(trace.requests.len(), 10);
    /// assert!(trace.requests.iter().all(|r| r.arrival_s == 0.0));
    /// assert_eq!(spec.generate(), trace); // deterministic
    /// ```
    pub fn generate(&self) -> Trace {
        let mut arrival_rng = StdRng::seed_from_u64(self.seed);
        let arrivals = self.arrival.sample(self.num_requests, &mut arrival_rng);
        let mut generator =
            RequestGenerator::new(self.profile, self.length_jitter, self.seed.wrapping_add(1));
        let requests = arrivals
            .into_iter()
            .enumerate()
            .map(|(i, t)| generator.sample(i as u64, t))
            .collect();
        Trace { requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> TraceSpec {
        TraceSpec {
            num_requests: 500,
            profile: SequenceProfile::paper_default(),
            arrival: ArrivalProcess::Poisson { rate_rps: 100.0 },
            length_jitter: 0.2,
            seed: 3,
        }
    }

    #[test]
    fn trace_has_requested_size_and_sorted_arrivals() {
        let trace = spec().generate();
        assert_eq!(trace.requests.len(), 500);
        assert!(trace
            .requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
        assert!(trace.offered_load_rps() > 50.0);
    }

    #[test]
    fn mean_lengths_track_the_profile() {
        let trace = spec().generate();
        let profile = SequenceProfile::paper_default();
        let mean_prefix = trace.mean_prefix_tokens();
        let mean_decode = trace.mean_decode_tokens();
        assert!((mean_prefix - f64::from(profile.prefix_tokens())).abs() < 30.0);
        assert!((mean_decode - 256.0).abs() < 15.0);
    }

    #[test]
    fn zero_jitter_is_deterministic() {
        let spec = TraceSpec {
            length_jitter: 0.0,
            ..spec()
        };
        let trace = spec.generate();
        assert!(trace
            .requests
            .iter()
            .all(|r| r.prefix_tokens == SequenceProfile::paper_default().prefix_tokens()));
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        assert_eq!(spec().generate(), spec().generate());
        let other = TraceSpec { seed: 4, ..spec() }.generate();
        assert_ne!(spec().generate(), other);
    }

    #[test]
    fn empty_trace_edge_cases() {
        let trace = TraceSpec {
            num_requests: 0,
            ..spec()
        }
        .generate();
        assert!(trace.requests.is_empty());
        assert_eq!(trace.mean_prefix_tokens(), 0.0);
        assert_eq!(trace.mean_decode_tokens(), 0.0);
        assert!(trace.offered_load_rps().is_infinite());
    }

    #[test]
    #[should_panic(expected = "length_jitter")]
    fn invalid_jitter_panics() {
        let _ = RequestGenerator::new(SequenceProfile::paper_default(), 1.5, 0);
    }

    #[test]
    fn round_robin_split_conserves_every_request() {
        let trace = spec().generate();
        let splits = trace.split_round_robin(7);
        assert_eq!(splits.len(), 7);
        let mut merged: Vec<Request> = splits.iter().flat_map(|t| t.requests.clone()).collect();
        merged.sort_by_key(|r| r.id);
        assert_eq!(merged, trace.requests);
        // Splits stay sorted by arrival (the trace is arrival-sorted).
        for split in &splits {
            assert!(split
                .requests
                .windows(2)
                .all(|w| w[0].arrival_s <= w[1].arrival_s));
        }
        // Near-even counts: sizes differ by at most one.
        let sizes: Vec<usize> = splits.iter().map(|t| t.requests.len()).collect();
        let (min, max) = (sizes.iter().min().unwrap(), sizes.iter().max().unwrap());
        assert!(max - min <= 1);
    }

    #[test]
    fn arrival_offset_shifts_without_resampling() {
        let trace = spec().generate();
        let shifted = trace.with_arrival_offset(100.0);
        assert_eq!(shifted.requests.len(), trace.requests.len());
        for (a, b) in trace.requests.iter().zip(shifted.requests.iter()) {
            assert!((b.arrival_s - a.arrival_s - 100.0).abs() < 1e-12);
            assert_eq!(a.id, b.id);
            assert_eq!(a.prefix_tokens, b.prefix_tokens);
            assert_eq!(a.decode_tokens, b.decode_tokens);
        }
    }

    #[test]
    #[should_panic(expected = "zero replicas")]
    fn zero_replica_split_panics() {
        let _ = spec().generate().split_round_robin(0);
    }

    #[test]
    #[should_panic(expected = "before time zero")]
    fn negative_arrivals_from_offset_panic() {
        let _ = spec().generate().with_arrival_offset(-1e9);
    }
}
