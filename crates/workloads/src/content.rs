//! Content identity: which requests share prompt prefixes and retrieval
//! results, drawn from popularity-skewed (Zipfian) distributions.
//!
//! The trace generators in this crate describe *how much* work each request
//! carries (token lengths, arrivals). Caching needs to know *which* work is
//! shared: two requests instantiating the same prompt template can reuse
//! prefix-KV state, and two requests about the same hot document can reuse a
//! retrieval result. A [`ContentSpec`] assigns that identity to an existing
//! trace — a template id and a retrieval key per request, each drawn from
//! its own seeded [`PopularityModel`] — without touching arrivals, lengths,
//! ids, or class tags. Traces without identity (`Request::identity ==
//! None`) behave exactly as before everywhere in the stack.
//!
//! Popularity follows a Zipf law: the rank-`k` item (1-based) has weight
//! `1 / k^s`. `s = 0` is uniform; real template and query popularity is
//! typically `s ≈ 0.8–1.2` (the skew regimes where caching pays).

use crate::request::Trace;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Seed offset of the prefix-identity RNG stream. Independent from the
/// arrival, length, and class streams so tagging never perturbs them.
const PREFIX_SEED_OFFSET: u64 = 0xCAFE_5EED;

/// Seed offset of the document-key RNG stream.
const DOC_SEED_OFFSET: u64 = 0xD0C_5EED;

/// The content identity of one request: what it shares with other requests.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ContentIdentity {
    /// Shared-prefix/template id: requests with the same id instantiate the
    /// same prompt template and can reuse its prefix-KV state.
    pub prefix_id: u64,
    /// How many of the request's `prefix_tokens` belong to the shared
    /// template (the cacheable prefix; the rest is the per-request suffix).
    pub shared_prefix_tokens: u32,
    /// Retrieval key: requests with the same key retrieve (and rerank) the
    /// same result.
    pub doc_key: u64,
}

/// A Zipfian popularity distribution over `items` distinct items.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PopularityModel {
    /// Number of distinct items (templates or retrieval keys); at least 1.
    pub items: u32,
    /// Zipf exponent `s ≥ 0`: weight of rank `k` is `1 / k^s` (0 = uniform).
    pub exponent: f64,
}

impl PopularityModel {
    /// Creates a popularity model.
    ///
    /// # Panics
    ///
    /// Panics if `items` is zero or `exponent` is negative or non-finite.
    pub fn zipf(items: u32, exponent: f64) -> Self {
        assert!(items >= 1, "a popularity model needs at least one item");
        assert!(
            exponent >= 0.0 && exponent.is_finite(),
            "the Zipf exponent must be non-negative and finite"
        );
        Self { items, exponent }
    }

    /// The uniform special case (`s = 0`).
    pub fn uniform(items: u32) -> Self {
        Self::zipf(items, 0.0)
    }

    /// Builds the cumulative distribution used for sampling: `cdf[i]` is the
    /// probability of drawing an item of rank ≤ `i` (0-based, most popular
    /// first).
    fn cdf(&self) -> Vec<f64> {
        let mut cdf = Vec::with_capacity(self.items as usize);
        let mut acc = 0.0;
        for rank in 1..=self.items {
            acc += f64::from(rank).powf(-self.exponent);
            cdf.push(acc);
        }
        let total = *cdf.last().expect("at least one item");
        for p in &mut cdf {
            *p /= total;
        }
        cdf
    }

    /// Probability of the most popular item (rank 0) — how concentrated the
    /// distribution is.
    pub fn top_item_probability(&self) -> f64 {
        self.cdf()[0]
    }
}

/// A stateful sampler of one [`PopularityModel`], drawing item indices from
/// its own RNG stream (0 = most popular).
#[derive(Debug, Clone)]
pub struct PopularitySampler {
    cdf: Vec<f64>,
    rng: StdRng,
}

impl PopularitySampler {
    /// Creates a sampler with its own seeded stream.
    pub fn new(model: &PopularityModel, seed: u64) -> Self {
        Self {
            cdf: model.cdf(),
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws one item index in `0..items`, most popular = 0.
    pub fn sample(&mut self) -> u64 {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        self.cdf.partition_point(|&p| p < u) as u64
    }
}

/// Assigns content identity to the requests of a trace: a template id and a
/// retrieval key per request, drawn from two seeded Zipfian streams.
///
/// # Examples
///
/// ```
/// use rago_workloads::{ArrivalProcess, ContentSpec, PopularityModel, TraceSpec};
/// use rago_schema::SequenceProfile;
///
/// let trace = TraceSpec {
///     num_requests: 50,
///     profile: SequenceProfile::paper_default(),
///     arrival: ArrivalProcess::Poisson { rate_rps: 20.0 },
///     length_jitter: 0.1,
///     seed: 7,
/// }
/// .generate();
/// let content = ContentSpec {
///     prefixes: PopularityModel::zipf(8, 1.0),
///     shared_prefix_fraction: 0.75,
///     docs: PopularityModel::zipf(16, 1.0),
///     seed: 11,
/// };
/// let tagged = content.tag(&trace);
/// // Identity is added; everything else is untouched.
/// assert!(tagged.requests.iter().all(|r| r.identity.is_some()));
/// for (a, b) in trace.requests.iter().zip(tagged.requests.iter()) {
///     assert_eq!(a.arrival_s, b.arrival_s);
///     assert_eq!(a.prefix_tokens, b.prefix_tokens);
/// }
/// assert_eq!(content.tag(&trace), tagged); // deterministic
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ContentSpec {
    /// Popularity of the shared prompt templates.
    pub prefixes: PopularityModel,
    /// Fraction of each request's `prefix_tokens` covered by its shared
    /// template, in `[0, 1]` (the cacheable share of prefill work).
    pub shared_prefix_fraction: f64,
    /// Popularity of the retrieval keys.
    pub docs: PopularityModel,
    /// RNG seed. The template and key streams are derived independently, so
    /// changing one model never perturbs the other's draws.
    pub seed: u64,
}

impl ContentSpec {
    /// Returns `trace` with every request tagged with content identity
    /// drawn from the two popularity streams. Arrivals, token lengths, ids,
    /// and class tags are bit-identical to the input; only
    /// [`crate::Request::identity`] changes. Deterministic in the seed.
    ///
    /// # Panics
    ///
    /// Panics if `shared_prefix_fraction` is outside `[0, 1]`.
    pub fn tag(&self, trace: &Trace) -> Trace {
        assert!(
            (0.0..=1.0).contains(&self.shared_prefix_fraction),
            "shared_prefix_fraction must be in [0, 1]"
        );
        let mut prefix_sampler =
            PopularitySampler::new(&self.prefixes, self.seed.wrapping_add(PREFIX_SEED_OFFSET));
        let mut doc_sampler =
            PopularitySampler::new(&self.docs, self.seed.wrapping_add(DOC_SEED_OFFSET));
        let requests = trace
            .requests
            .iter()
            .map(|r| {
                let prefix_id = prefix_sampler.sample();
                let doc_key = doc_sampler.sample();
                let shared =
                    (self.shared_prefix_fraction * f64::from(r.prefix_tokens)).round() as u32;
                let mut tagged = *r;
                tagged.identity = Some(ContentIdentity {
                    prefix_id,
                    shared_prefix_tokens: shared.min(r.prefix_tokens),
                    doc_key,
                });
                tagged
            })
            .collect();
        Trace { requests }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::arrival::ArrivalProcess;
    use crate::request::TraceSpec;
    use rago_schema::SequenceProfile;

    fn base_trace() -> Trace {
        TraceSpec {
            num_requests: 2_000,
            profile: SequenceProfile::paper_default(),
            arrival: ArrivalProcess::Poisson { rate_rps: 100.0 },
            length_jitter: 0.2,
            seed: 3,
        }
        .generate()
    }

    fn spec() -> ContentSpec {
        ContentSpec {
            prefixes: PopularityModel::zipf(10, 1.0),
            shared_prefix_fraction: 0.8,
            docs: PopularityModel::zipf(50, 1.0),
            seed: 17,
        }
    }

    #[test]
    fn tagging_preserves_everything_but_identity() {
        let trace = base_trace();
        let tagged = spec().tag(&trace);
        assert_eq!(tagged.requests.len(), trace.requests.len());
        for (a, b) in trace.requests.iter().zip(tagged.requests.iter()) {
            assert_eq!(a.id, b.id);
            assert_eq!(a.arrival_s, b.arrival_s);
            assert_eq!(a.question_tokens, b.question_tokens);
            assert_eq!(a.prefix_tokens, b.prefix_tokens);
            assert_eq!(a.decode_tokens, b.decode_tokens);
            assert_eq!(a.class, b.class);
            assert!(a.identity.is_none());
            let id = b.identity.expect("tagged");
            assert!(id.prefix_id < 10);
            assert!(id.doc_key < 50);
            assert!(id.shared_prefix_tokens <= b.prefix_tokens);
        }
    }

    #[test]
    fn zipf_skew_concentrates_mass_on_low_ranks() {
        let trace = base_trace();
        let tagged = spec().tag(&trace);
        let n = tagged.requests.len() as f64;
        let share_of = |rank: u64| {
            tagged
                .requests
                .iter()
                .filter(|r| r.identity.expect("tagged").prefix_id == rank)
                .count() as f64
                / n
        };
        // Harmonic-sum shares for s=1 over 10 items: rank 0 ≈ 34 %,
        // rank 9 ≈ 3.4 %.
        assert!(share_of(0) > 0.27, "top share {}", share_of(0));
        assert!(share_of(0) > 4.0 * share_of(9));
        // Uniform tagging flattens it.
        let flat = ContentSpec {
            prefixes: PopularityModel::uniform(10),
            ..spec()
        }
        .tag(&trace);
        let flat_top = flat
            .requests
            .iter()
            .filter(|r| r.identity.expect("tagged").prefix_id == 0)
            .count() as f64
            / n;
        assert!(
            (flat_top - 0.1).abs() < 0.04,
            "uniform top share {flat_top}"
        );
    }

    #[test]
    fn streams_are_independent_and_deterministic() {
        let trace = base_trace();
        let a = spec().tag(&trace);
        assert_eq!(a, spec().tag(&trace));
        // Changing the doc model must not perturb the prefix draws.
        let other_docs = ContentSpec {
            docs: PopularityModel::zipf(7, 0.5),
            ..spec()
        }
        .tag(&trace);
        for (x, y) in a.requests.iter().zip(other_docs.requests.iter()) {
            assert_eq!(
                x.identity.expect("tagged").prefix_id,
                y.identity.expect("tagged").prefix_id
            );
        }
        // A different seed changes the draws.
        let reseeded = ContentSpec { seed: 18, ..spec() }.tag(&trace);
        assert_ne!(a, reseeded);
    }

    #[test]
    fn popularity_model_basics() {
        let m = PopularityModel::zipf(4, 1.0);
        // Weights 1, 1/2, 1/3, 1/4 → top share 12/25 = 0.48.
        assert!((m.top_item_probability() - 0.48).abs() < 1e-12);
        assert!((PopularityModel::uniform(4).top_item_probability() - 0.25).abs() < 1e-12);
        let mut sampler = PopularitySampler::new(&m, 1);
        for _ in 0..1_000 {
            assert!(sampler.sample() < 4);
        }
    }

    #[test]
    fn shared_fraction_bounds_are_enforced() {
        let trace = base_trace();
        let full = ContentSpec {
            shared_prefix_fraction: 1.0,
            ..spec()
        }
        .tag(&trace);
        assert!(full
            .requests
            .iter()
            .all(|r| r.identity.expect("tagged").shared_prefix_tokens == r.prefix_tokens));
        let none = ContentSpec {
            shared_prefix_fraction: 0.0,
            ..spec()
        }
        .tag(&trace);
        assert!(none
            .requests
            .iter()
            .all(|r| r.identity.expect("tagged").shared_prefix_tokens == 0));
    }

    #[test]
    #[should_panic(expected = "shared_prefix_fraction")]
    fn out_of_range_fractions_panic() {
        let _ = ContentSpec {
            shared_prefix_fraction: 1.5,
            ..spec()
        }
        .tag(&base_trace());
    }

    #[test]
    #[should_panic(expected = "at least one item")]
    fn empty_popularity_models_panic() {
        let _ = PopularityModel::zipf(0, 1.0);
    }
}
