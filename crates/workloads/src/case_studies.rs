//! The paper's four case studies (Table 3) and their evaluation sweeps.

use rago_schema::{presets, LlmSize, RagSchema};
use serde::{Deserialize, Serialize};

/// The four representative RAG paradigms characterized in §5 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum CaseStudy {
    /// Case I: hyperscale retrieval (RETRO-style).
    HyperscaleRetrieval,
    /// Case II: long-context sequence processing.
    LongContext,
    /// Case III: iterative retrievals during decoding.
    IterativeRetrieval,
    /// Case IV: query rewriter and reranker.
    RewriterReranker,
}

impl CaseStudy {
    /// All case studies in paper order.
    pub const ALL: [CaseStudy; 4] = [
        CaseStudy::HyperscaleRetrieval,
        CaseStudy::LongContext,
        CaseStudy::IterativeRetrieval,
        CaseStudy::RewriterReranker,
    ];

    /// The default instantiation used in the paper's figures for this case.
    pub fn default_schema(self) -> RagSchema {
        match self {
            CaseStudy::HyperscaleRetrieval => presets::case1_hyperscale(LlmSize::B8, 1),
            CaseStudy::LongContext => presets::case2_long_context(LlmSize::B70, 1_000_000),
            CaseStudy::IterativeRetrieval => presets::case3_iterative(LlmSize::B70, 4),
            CaseStudy::RewriterReranker => presets::case4_rewriter_reranker(LlmSize::B70),
        }
    }

    /// Human-readable name matching the paper.
    pub fn name(self) -> &'static str {
        match self {
            CaseStudy::HyperscaleRetrieval => "Case I: hyperscale retrieval",
            CaseStudy::LongContext => "Case II: long-context processing",
            CaseStudy::IterativeRetrieval => "Case III: iterative retrievals",
            CaseStudy::RewriterReranker => "Case IV: rewriter and reranker",
        }
    }
}

impl std::fmt::Display for CaseStudy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The parameter sweep of one case study, as listed in Table 3: every schema
/// variation the paper's characterization figures evaluate for that case.
pub fn case_study_sweeps(case: CaseStudy) -> Vec<RagSchema> {
    match case {
        CaseStudy::HyperscaleRetrieval => {
            let mut out = Vec::new();
            for llm in LlmSize::ALL {
                for queries in [1u32, 2, 4, 8] {
                    out.push(presets::case1_hyperscale(llm, queries));
                }
            }
            out
        }
        CaseStudy::LongContext => {
            let mut out = Vec::new();
            for llm in [LlmSize::B8, LlmSize::B70] {
                for ctx in [100_000u64, 1_000_000, 10_000_000] {
                    out.push(presets::case2_long_context(llm, ctx));
                }
            }
            out
        }
        CaseStudy::IterativeRetrieval => {
            let mut out = Vec::new();
            for llm in [LlmSize::B8, LlmSize::B70] {
                for freq in [2u32, 4, 8] {
                    out.push(presets::case3_iterative(llm, freq));
                }
            }
            out
        }
        CaseStudy::RewriterReranker => [LlmSize::B8, LlmSize::B70]
            .into_iter()
            .map(presets::case4_rewriter_reranker)
            .collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_schemas_validate() {
        for case in CaseStudy::ALL {
            assert!(case.default_schema().validate().is_ok(), "{case}");
            assert!(!case.name().is_empty());
        }
    }

    #[test]
    fn sweeps_match_table3_cardinality() {
        assert_eq!(
            case_study_sweeps(CaseStudy::HyperscaleRetrieval).len(),
            16 // 4 model sizes x 4 query counts
        );
        assert_eq!(case_study_sweeps(CaseStudy::LongContext).len(), 6);
        assert_eq!(case_study_sweeps(CaseStudy::IterativeRetrieval).len(), 6);
        assert_eq!(case_study_sweeps(CaseStudy::RewriterReranker).len(), 2);
    }

    #[test]
    fn every_sweep_schema_validates() {
        for case in CaseStudy::ALL {
            for schema in case_study_sweeps(case) {
                assert!(schema.validate().is_ok(), "{}", schema.name);
            }
        }
    }

    #[test]
    fn iterative_sweep_is_actually_iterative() {
        assert!(case_study_sweeps(CaseStudy::IterativeRetrieval)
            .iter()
            .all(|s| s.is_iterative()));
    }
}
