//! Request arrival processes: stationary (Poisson, bursts, instantaneous)
//! and time-varying (piecewise-rate, diurnal, spike).
//!
//! The time-varying variants are sampled as non-homogeneous Poisson
//! processes by thinning: candidate arrivals are drawn at the peak rate and
//! accepted with probability `rate(t) / rate_max`, which is exact for any
//! bounded rate function and stays deterministic in the RNG stream.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// One piecewise-constant segment of a time-varying offered-rate profile.
///
/// Also the unit of capacity-profile planning in `rago-core`, where a
/// replica *schedule* assigns a fleet size to each segment.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RateSegment {
    /// Segment length, in seconds.
    pub duration_s: f64,
    /// Mean offered rate during the segment, in requests per second.
    pub rate_rps: f64,
}

impl RateSegment {
    /// Creates a segment.
    ///
    /// # Panics
    ///
    /// Panics if the segment is invalid (see [`RateSegment::validate`]).
    pub fn new(duration_s: f64, rate_rps: f64) -> Self {
        let segment = Self {
            duration_s,
            rate_rps,
        };
        if let Err(reason) = segment.validate() {
            panic!("{reason}");
        }
        segment
    }

    /// Checks the segment: the duration must be positive and finite, the
    /// rate non-negative and finite. The single source of truth for
    /// segment validity — sampling and the capacity-profile planner in
    /// `rago-core` both defer to it.
    ///
    /// # Errors
    ///
    /// Returns a human-readable reason when the segment is invalid.
    pub fn validate(&self) -> Result<(), String> {
        if !(self.duration_s > 0.0 && self.duration_s.is_finite()) {
            return Err("segment duration must be positive and finite".into());
        }
        if !(self.rate_rps >= 0.0 && self.rate_rps.is_finite()) {
            return Err("segment rate must be non-negative and finite".into());
        }
        Ok(())
    }
}

/// How requests arrive at the serving system.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate_rps` requests per second (exponential
    /// inter-arrival times).
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Bursts of `burst_size` simultaneous requests every `period_s` seconds —
    /// the regime of the paper's micro-batching study (Figure 19).
    Bursts {
        /// Requests arriving together in each burst.
        burst_size: u32,
        /// Time between bursts, in seconds.
        period_s: f64,
    },
    /// All requests arrive at time zero (offline / batch evaluation).
    Instantaneous,
    /// A piecewise-constant non-homogeneous Poisson process. The profile
    /// repeats after its last segment, so any request count terminates.
    PiecewiseRate {
        /// The rate segments, applied in order and then cycled.
        segments: Vec<RateSegment>,
    },
    /// A sinusoidal day/night cycle: the rate starts at `base_rps` (the
    /// trough), peaks at `peak_rps` half a period later, and returns —
    /// `rate(t) = base + (peak − base) · (1 − cos(2πt / period)) / 2`.
    Diurnal {
        /// Trough rate, in requests per second.
        base_rps: f64,
        /// Peak rate, in requests per second.
        peak_rps: f64,
        /// Full cycle length, in seconds.
        period_s: f64,
    },
    /// A constant base rate with one rectangular surge — flash-crowd
    /// traffic: `spike_rps` during `[start_s, start_s + duration_s)`,
    /// `base_rps` elsewhere.
    Spike {
        /// Rate outside the spike, in requests per second. Must be
        /// strictly positive: the spike window is finite and never
        /// recurs, so a zero base rate would leave a request count that
        /// exceeds the spike's arrivals unsatisfiable (sampling would
        /// never terminate). Model an isolated burst with
        /// [`ArrivalProcess::Bursts`] instead.
        base_rps: f64,
        /// Rate inside the spike, in requests per second.
        spike_rps: f64,
        /// Spike onset, in seconds.
        start_s: f64,
        /// Spike length, in seconds.
        duration_s: f64,
    },
}

impl ArrivalProcess {
    /// Generates `n` arrival timestamps (seconds, non-decreasing).
    ///
    /// # Examples
    ///
    /// ```
    /// use rago_workloads::ArrivalProcess;
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let times = ArrivalProcess::Poisson { rate_rps: 100.0 }.sample(500, &mut rng);
    /// assert_eq!(times.len(), 500);
    /// assert!(times.windows(2).all(|w| w[1] >= w[0]));
    ///
    /// let bursts = ArrivalProcess::Bursts { burst_size: 4, period_s: 1.0 }.sample(8, &mut rng);
    /// assert_eq!(bursts, vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a Poisson rate or burst period is not positive, a burst
    /// size is zero, or a time-varying profile is degenerate (no segments,
    /// zero peak rate, non-positive period, peak below base, a
    /// non-positive spike duration, or a non-positive spike *base* rate —
    /// the spike window is finite, so only a positive base guarantees any
    /// request count terminates).
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> Vec<f64> {
        match self {
            ArrivalProcess::Poisson { rate_rps } => {
                let rate_rps = *rate_rps;
                assert!(rate_rps > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        t += -u.ln() / rate_rps;
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Bursts {
                burst_size,
                period_s,
            } => {
                assert!(*burst_size > 0, "burst size must be at least 1");
                assert!(*period_s > 0.0, "burst period must be positive");
                (0..n)
                    .map(|i| (i as u64 / u64::from(*burst_size)) as f64 * *period_s)
                    .collect()
            }
            ArrivalProcess::Instantaneous => vec![0.0; n],
            ArrivalProcess::PiecewiseRate { segments } => {
                assert!(
                    !segments.is_empty(),
                    "a piecewise rate profile needs at least one segment"
                );
                for s in segments {
                    if let Err(reason) = s.validate() {
                        panic!("{reason}");
                    }
                }
                let total: f64 = segments.iter().map(|s| s.duration_s).sum();
                let rate_max = segments.iter().map(|s| s.rate_rps).fold(0.0f64, f64::max);
                assert!(
                    rate_max > 0.0,
                    "a piecewise rate profile needs at least one positive-rate segment"
                );
                let rate = move |t: f64| {
                    let mut rem = t % total;
                    for s in segments {
                        if rem < s.duration_s {
                            return s.rate_rps;
                        }
                        rem -= s.duration_s;
                    }
                    segments.last().expect("non-empty").rate_rps
                };
                sample_thinned(n, rng, rate_max, rate)
            }
            ArrivalProcess::Diurnal {
                base_rps,
                peak_rps,
                period_s,
            } => {
                let (base, peak, period) = (*base_rps, *peak_rps, *period_s);
                assert!(
                    base >= 0.0 && base.is_finite(),
                    "diurnal base rate must be non-negative and finite"
                );
                assert!(
                    peak >= base && peak > 0.0 && peak.is_finite(),
                    "diurnal peak rate must be positive, finite, and at least the base"
                );
                assert!(
                    period > 0.0 && period.is_finite(),
                    "diurnal period must be positive and finite"
                );
                sample_thinned(n, rng, peak, move |t| {
                    base + (peak - base)
                        * 0.5
                        * (1.0 - (2.0 * std::f64::consts::PI * t / period).cos())
                })
            }
            ArrivalProcess::Spike {
                base_rps,
                spike_rps,
                start_s,
                duration_s,
            } => {
                let (base, spike, start, dur) = (*base_rps, *spike_rps, *start_s, *duration_s);
                // The base must be strictly positive: past the (finite,
                // non-recurring) spike window the rate is `base` forever,
                // and a zero rate there would make thinning reject every
                // candidate once the window closes — an infinite loop, not
                // an error.
                assert!(
                    base > 0.0 && base.is_finite() && spike >= 0.0 && spike.is_finite(),
                    "the spike base rate must be positive (and both rates finite) \
                     so sampling terminates for any request count"
                );
                assert!(
                    start >= 0.0 && start.is_finite() && dur > 0.0 && dur.is_finite(),
                    "spike onset must be non-negative and its duration positive"
                );
                sample_thinned(n, rng, base.max(spike), move |t| {
                    if t >= start && t < start + dur {
                        spike
                    } else {
                        base
                    }
                })
            }
        }
    }

    /// The instantaneous offered rate at time `t`, in requests per second,
    /// for the rate-driven processes; `None` for [`Bursts`] and
    /// [`Instantaneous`], whose intensity is not a bounded function of time.
    ///
    /// [`Bursts`]: ArrivalProcess::Bursts
    /// [`Instantaneous`]: ArrivalProcess::Instantaneous
    pub fn rate_at(&self, t: f64) -> Option<f64> {
        match self {
            ArrivalProcess::Poisson { rate_rps } => Some(*rate_rps),
            ArrivalProcess::Bursts { .. } | ArrivalProcess::Instantaneous => None,
            ArrivalProcess::PiecewiseRate { segments } => {
                let total: f64 = segments.iter().map(|s| s.duration_s).sum();
                if segments.is_empty() || total <= 0.0 {
                    return None;
                }
                let mut rem = t.rem_euclid(total);
                for s in segments {
                    if rem < s.duration_s {
                        return Some(s.rate_rps);
                    }
                    rem -= s.duration_s;
                }
                segments.last().map(|s| s.rate_rps)
            }
            ArrivalProcess::Diurnal {
                base_rps,
                peak_rps,
                period_s,
            } => Some(
                base_rps
                    + (peak_rps - base_rps)
                        * 0.5
                        * (1.0 - (2.0 * std::f64::consts::PI * t / period_s).cos()),
            ),
            ArrivalProcess::Spike {
                base_rps,
                spike_rps,
                start_s,
                duration_s,
            } => Some(if t >= *start_s && t < start_s + duration_s {
                *spike_rps
            } else {
                *base_rps
            }),
        }
    }
}

/// Samples `n` arrivals of a non-homogeneous Poisson process with bounded
/// intensity `rate(t) <= rate_max` by thinning (Lewis & Shedler): candidates
/// arrive as a homogeneous process at `rate_max` and are kept with
/// probability `rate(t) / rate_max`.
fn sample_thinned(
    n: usize,
    rng: &mut StdRng,
    rate_max: f64,
    rate: impl Fn(f64) -> f64,
) -> Vec<f64> {
    debug_assert!(rate_max > 0.0);
    let mut out = Vec::with_capacity(n);
    let mut t = 0.0f64;
    while out.len() < n {
        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
        t += -u.ln() / rate_max;
        let accept: f64 = rng.gen_range(0.0..1.0);
        if accept * rate_max < rate(t) {
            out.push(t);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn poisson_rate_matches_mean_interarrival() {
        let times = ArrivalProcess::Poisson { rate_rps: 50.0 }.sample(5_000, &mut rng());
        let mean_gap = times.last().unwrap() / times.len() as f64;
        assert!((mean_gap - 0.02).abs() < 0.003, "mean gap {mean_gap}");
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn bursts_arrive_in_groups() {
        let times = ArrivalProcess::Bursts {
            burst_size: 8,
            period_s: 1.0,
        }
        .sample(20, &mut rng());
        assert_eq!(times.iter().filter(|&&t| t == 0.0).count(), 8);
        assert_eq!(times.iter().filter(|&&t| t == 1.0).count(), 8);
        assert_eq!(times.iter().filter(|&&t| t == 2.0).count(), 4);
    }

    #[test]
    fn instantaneous_is_all_zero() {
        let times = ArrivalProcess::Instantaneous.sample(5, &mut rng());
        assert_eq!(times, vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = ArrivalProcess::Poisson { rate_rps: 0.0 }.sample(1, &mut rng());
    }

    #[test]
    fn piecewise_rate_concentrates_arrivals_in_fast_segments() {
        // 10 s at 1 rps then 10 s at 50 rps: the overwhelming majority of a
        // long sample lands in the second half of each 20 s cycle.
        let process = ArrivalProcess::PiecewiseRate {
            segments: vec![RateSegment::new(10.0, 1.0), RateSegment::new(10.0, 50.0)],
        };
        let times = process.sample(2_000, &mut rng());
        assert_eq!(times.len(), 2_000);
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
        let in_fast =
            times.iter().filter(|&&t| (t % 20.0) >= 10.0).count() as f64 / times.len() as f64;
        assert!(in_fast > 0.9, "fast-segment share {in_fast}");
        assert_eq!(process.rate_at(5.0), Some(1.0));
        assert_eq!(process.rate_at(15.0), Some(50.0));
        assert_eq!(process.rate_at(25.0), Some(1.0)); // cycles
    }

    #[test]
    fn diurnal_peaks_mid_period() {
        let process = ArrivalProcess::Diurnal {
            base_rps: 2.0,
            peak_rps: 40.0,
            period_s: 100.0,
        };
        // Rate shape: trough at t = 0 and t = period, peak at period / 2.
        assert!((process.rate_at(0.0).unwrap() - 2.0).abs() < 1e-9);
        assert!((process.rate_at(50.0).unwrap() - 40.0).abs() < 1e-9);
        assert!((process.rate_at(100.0).unwrap() - 2.0).abs() < 1e-9);
        // Arrivals concentrate around the peak: the middle half of the first
        // cycle holds well over half of its arrivals.
        let times = process.sample(3_000, &mut rng());
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
        let first_cycle: Vec<f64> = times.iter().copied().filter(|&t| t < 100.0).collect();
        let mid = first_cycle
            .iter()
            .filter(|&&t| (25.0..75.0).contains(&t))
            .count() as f64
            / first_cycle.len() as f64;
        assert!(mid > 0.6, "mid-cycle share {mid}");
    }

    #[test]
    fn spike_surges_within_its_window() {
        let process = ArrivalProcess::Spike {
            base_rps: 1.0,
            spike_rps: 100.0,
            start_s: 10.0,
            duration_s: 5.0,
        };
        assert_eq!(process.rate_at(0.0), Some(1.0));
        assert_eq!(process.rate_at(12.0), Some(100.0));
        assert_eq!(process.rate_at(15.0), Some(1.0)); // half-open window
        let times = process.sample(600, &mut rng());
        let in_spike = times.iter().filter(|&&t| (10.0..15.0).contains(&t)).count() as f64
            / times.len() as f64;
        assert!(in_spike > 0.8, "spike share {in_spike}");
    }

    #[test]
    fn sampling_is_deterministic_in_the_rng_stream() {
        let process = ArrivalProcess::Diurnal {
            base_rps: 1.0,
            peak_rps: 20.0,
            period_s: 30.0,
        };
        assert_eq!(
            process.sample(200, &mut rng()),
            process.sample(200, &mut rng())
        );
    }

    #[test]
    #[should_panic(expected = "at least one segment")]
    fn empty_piecewise_profile_panics() {
        let _ = ArrivalProcess::PiecewiseRate { segments: vec![] }.sample(1, &mut rng());
    }

    #[test]
    #[should_panic(expected = "positive-rate segment")]
    fn all_zero_piecewise_profile_panics() {
        let _ = ArrivalProcess::PiecewiseRate {
            segments: vec![RateSegment::new(1.0, 0.0)],
        }
        .sample(1, &mut rng());
    }

    #[test]
    #[should_panic(expected = "at least the base")]
    fn inverted_diurnal_panics() {
        let _ = ArrivalProcess::Diurnal {
            base_rps: 10.0,
            peak_rps: 5.0,
            period_s: 60.0,
        }
        .sample(1, &mut rng());
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn degenerate_rate_segment_panics() {
        let _ = RateSegment::new(0.0, 1.0);
    }

    /// Regression: a zero base rate used to hang `sample` once the finite
    /// spike window closed (thinning rejects every candidate against a
    /// zero rate); it must be rejected up front instead.
    #[test]
    #[should_panic(expected = "base rate must be positive")]
    fn zero_base_spike_panics_instead_of_hanging() {
        let _ = ArrivalProcess::Spike {
            base_rps: 0.0,
            spike_rps: 10.0,
            start_s: 0.0,
            duration_s: 1.0,
        }
        .sample(100, &mut rng());
    }
}
