//! Request arrival processes.

use rand::rngs::StdRng;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// How requests arrive at the serving system.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum ArrivalProcess {
    /// Poisson arrivals at `rate_rps` requests per second (exponential
    /// inter-arrival times).
    Poisson {
        /// Mean arrival rate in requests per second.
        rate_rps: f64,
    },
    /// Bursts of `burst_size` simultaneous requests every `period_s` seconds —
    /// the regime of the paper's micro-batching study (Figure 19).
    Bursts {
        /// Requests arriving together in each burst.
        burst_size: u32,
        /// Time between bursts, in seconds.
        period_s: f64,
    },
    /// All requests arrive at time zero (offline / batch evaluation).
    Instantaneous,
}

impl ArrivalProcess {
    /// Generates `n` arrival timestamps (seconds, non-decreasing).
    ///
    /// # Examples
    ///
    /// ```
    /// use rago_workloads::ArrivalProcess;
    /// use rand::rngs::StdRng;
    /// use rand::SeedableRng;
    ///
    /// let mut rng = StdRng::seed_from_u64(1);
    /// let times = ArrivalProcess::Poisson { rate_rps: 100.0 }.sample(500, &mut rng);
    /// assert_eq!(times.len(), 500);
    /// assert!(times.windows(2).all(|w| w[1] >= w[0]));
    ///
    /// let bursts = ArrivalProcess::Bursts { burst_size: 4, period_s: 1.0 }.sample(8, &mut rng);
    /// assert_eq!(bursts, vec![0.0, 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 1.0]);
    /// ```
    ///
    /// # Panics
    ///
    /// Panics if a Poisson rate or burst period is not positive, or a burst
    /// size is zero.
    pub fn sample(&self, n: usize, rng: &mut StdRng) -> Vec<f64> {
        match *self {
            ArrivalProcess::Poisson { rate_rps } => {
                assert!(rate_rps > 0.0, "Poisson rate must be positive");
                let mut t = 0.0;
                (0..n)
                    .map(|_| {
                        let u: f64 = rng.gen_range(f64::EPSILON..1.0);
                        t += -u.ln() / rate_rps;
                        t
                    })
                    .collect()
            }
            ArrivalProcess::Bursts {
                burst_size,
                period_s,
            } => {
                assert!(burst_size > 0, "burst size must be at least 1");
                assert!(period_s > 0.0, "burst period must be positive");
                (0..n)
                    .map(|i| (i as u64 / u64::from(burst_size)) as f64 * period_s)
                    .collect()
            }
            ArrivalProcess::Instantaneous => vec![0.0; n],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(11)
    }

    #[test]
    fn poisson_rate_matches_mean_interarrival() {
        let times = ArrivalProcess::Poisson { rate_rps: 50.0 }.sample(5_000, &mut rng());
        let mean_gap = times.last().unwrap() / times.len() as f64;
        assert!((mean_gap - 0.02).abs() < 0.003, "mean gap {mean_gap}");
        assert!(times.windows(2).all(|w| w[1] >= w[0]));
    }

    #[test]
    fn bursts_arrive_in_groups() {
        let times = ArrivalProcess::Bursts {
            burst_size: 8,
            period_s: 1.0,
        }
        .sample(20, &mut rng());
        assert_eq!(times.iter().filter(|&&t| t == 0.0).count(), 8);
        assert_eq!(times.iter().filter(|&&t| t == 1.0).count(), 8);
        assert_eq!(times.iter().filter(|&&t| t == 2.0).count(), 4);
    }

    #[test]
    fn instantaneous_is_all_zero() {
        let times = ArrivalProcess::Instantaneous.sample(5, &mut rng());
        assert_eq!(times, vec![0.0; 5]);
    }

    #[test]
    #[should_panic(expected = "rate must be positive")]
    fn zero_rate_panics() {
        let _ = ArrivalProcess::Poisson { rate_rps: 0.0 }.sample(1, &mut rng());
    }
}
