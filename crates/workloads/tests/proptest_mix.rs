//! Property-based tests for workload mixes and tagged-trace composition.

use proptest::prelude::*;
use rago_schema::{SequenceProfile, SloTarget};
use rago_workloads::{ArrivalProcess, MixTraceSpec, RequestClass, Trace, TraceSpec, WorkloadMix};

fn class(name: &str, weight: f64, decode: u32, jitter: f64) -> RequestClass {
    RequestClass::new(
        name,
        weight,
        SequenceProfile::paper_default().with_decode_tokens(decode),
        jitter,
        SloTarget::paper_default(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// `merge_tagged` conserves every request: the merged trace holds
    /// exactly the union of the parts (same arrival/length multiset), is
    /// arrival-sorted with consecutive ids, and tags each request with its
    /// part's class.
    #[test]
    fn merge_tagged_conserves_requests(
        n_a in 0usize..120,
        n_b in 0usize..120,
        rate_a in 1.0f64..80.0,
        rate_b in 1.0f64..80.0,
        seed in 0u64..500,
    ) {
        let make = |n: usize, rate: f64, seed: u64| TraceSpec {
            num_requests: n,
            profile: SequenceProfile::paper_default(),
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            length_jitter: 0.2,
            seed,
        }
        .generate();
        let a = make(n_a, rate_a, seed);
        let b = make(n_b, rate_b, seed.wrapping_add(1));
        let merged = Trace::merge_tagged(&[(3, a.clone()), (8, b.clone())]);
        prop_assert_eq!(merged.requests.len(), n_a + n_b);
        prop_assert!(merged
            .requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
        prop_assert!(merged
            .requests
            .iter()
            .enumerate()
            .all(|(i, r)| r.id == i as u64));
        prop_assert_eq!(
            merged.requests.iter().filter(|r| r.class == 3).count(),
            n_a
        );
        prop_assert_eq!(
            merged.requests.iter().filter(|r| r.class == 8).count(),
            n_b
        );
        // The multiset of (arrival, lengths) survives: compare sorted keys.
        let key = |r: &rago_workloads::Request| {
            (
                r.arrival_s.to_bits(),
                r.question_tokens,
                r.prefix_tokens,
                r.decode_tokens,
            )
        };
        let mut merged_keys: Vec<_> = merged.requests.iter().map(key).collect();
        let mut part_keys: Vec<_> = a
            .requests
            .iter()
            .chain(b.requests.iter())
            .map(key)
            .collect();
        merged_keys.sort_unstable();
        part_keys.sort_unstable();
        prop_assert_eq!(merged_keys, part_keys);
    }

    /// A one-class mix generates exactly the untagged trace of the same
    /// profile, jitter, arrival process, and seed — for any of those
    /// parameters.
    #[test]
    fn one_class_mix_is_bit_identical_to_tracespec(
        n in 1usize..200,
        rate in 1.0f64..100.0,
        jitter in 0.0f64..0.5,
        decode in 8u32..256,
        seed in 0u64..1_000,
    ) {
        let profile = SequenceProfile::paper_default().with_decode_tokens(decode);
        let tagged = MixTraceSpec {
            num_requests: n,
            mix: WorkloadMix::single("only", profile, jitter, SloTarget::paper_default()),
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            seed,
        }
        .generate();
        let plain = TraceSpec {
            num_requests: n,
            profile,
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            length_jitter: jitter,
            seed,
        }
        .generate();
        prop_assert_eq!(tagged, plain);
    }

    /// Class tags always index into the mix, arrivals stay sorted, and the
    /// per-class empirical share tracks the weights (within 15 points at
    /// 600 requests).
    #[test]
    fn mix_traces_are_well_formed(
        w0 in 0.5f64..4.0,
        w1 in 0.5f64..4.0,
        seed in 0u64..300,
    ) {
        let mix = WorkloadMix::new(vec![
            class("a", w0, 32, 0.1),
            class("b", w1, 128, 0.1),
        ]);
        let trace = MixTraceSpec {
            num_requests: 600,
            mix: mix.clone(),
            arrival: ArrivalProcess::Poisson { rate_rps: 50.0 },
            seed,
        }
        .generate();
        prop_assert!(trace.requests.iter().all(|r| r.class < 2));
        prop_assert!(trace
            .requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
        let share0 = trace.requests.iter().filter(|r| r.class == 0).count() as f64 / 600.0;
        prop_assert!(
            (share0 - mix.weight_fraction(0)).abs() < 0.15,
            "class-0 share {} vs weight {}",
            share0,
            mix.weight_fraction(0)
        );
    }
}
