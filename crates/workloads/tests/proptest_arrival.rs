//! Property-based tests for [`rago_workloads::ArrivalProcess::sample`] —
//! previously exercised only indirectly through trace generation.

use proptest::prelude::*;
use rago_workloads::{ArrivalProcess, RateSegment};
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Every arrival process produces non-negative, non-decreasing
    /// timestamps of exactly the requested length.
    #[test]
    fn timestamps_are_nondecreasing(
        n in 0usize..2_000,
        rate in 0.1f64..500.0,
        burst_size in 1u32..64,
        period in 0.01f64..10.0,
        seed in 0u64..1_000,
    ) {
        let processes = [
            ArrivalProcess::Poisson { rate_rps: rate },
            ArrivalProcess::Bursts { burst_size, period_s: period },
            ArrivalProcess::Instantaneous,
        ];
        for process in processes {
            let times = process.sample(n, &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(times.len(), n);
            prop_assert!(times.iter().all(|t| t.is_finite() && *t >= 0.0));
            prop_assert!(times.windows(2).all(|w| w[1] >= w[0]));
        }
    }

    /// The empirical Poisson rate converges to the configured rate: over
    /// 4 000 samples the mean inter-arrival gap is within 10 % of `1/rate`.
    #[test]
    fn poisson_mean_rate_converges(
        rate in 1.0f64..200.0,
        seed in 0u64..500,
    ) {
        let n = 4_000usize;
        let times = ArrivalProcess::Poisson { rate_rps: rate }
            .sample(n, &mut StdRng::seed_from_u64(seed));
        let span = *times.last().unwrap();
        prop_assert!(span > 0.0);
        let empirical_rate = n as f64 / span;
        prop_assert!(
            (empirical_rate - rate).abs() / rate < 0.1,
            "empirical rate {} vs configured {}",
            empirical_rate,
            rate
        );
    }

    /// Poisson inter-arrival gaps are strictly positive (the exponential
    /// draw excludes zero) and their variance is that of an exponential:
    /// sample variance within 30 % of `1/rate^2` at 4 000 samples.
    #[test]
    fn poisson_gaps_look_exponential(
        rate in 1.0f64..100.0,
        seed in 0u64..200,
    ) {
        let n = 4_000usize;
        let times = ArrivalProcess::Poisson { rate_rps: rate }
            .sample(n, &mut StdRng::seed_from_u64(seed));
        let gaps: Vec<f64> = std::iter::once(times[0])
            .chain(times.windows(2).map(|w| w[1] - w[0]))
            .collect();
        prop_assert!(gaps.iter().all(|g| *g > 0.0));
        let mean = gaps.iter().sum::<f64>() / gaps.len() as f64;
        let var = gaps.iter().map(|g| (g - mean).powi(2)).sum::<f64>() / gaps.len() as f64;
        let expected_var = 1.0 / (rate * rate);
        prop_assert!(
            (var - expected_var).abs() / expected_var < 0.3,
            "variance {} vs exponential {}",
            var,
            expected_var
        );
    }

    /// Burst arrivals land in groups of exactly `burst_size` at integer
    /// multiples of `period_s`, in order.
    #[test]
    fn burst_timing_matches_period(
        n in 1usize..1_000,
        burst_size in 1u32..32,
        period in 0.01f64..5.0,
        seed in 0u64..100,
    ) {
        let times = ArrivalProcess::Bursts { burst_size, period_s: period }
            .sample(n, &mut StdRng::seed_from_u64(seed));
        for (i, &t) in times.iter().enumerate() {
            let burst_index = (i as u64) / u64::from(burst_size);
            prop_assert!(
                (t - burst_index as f64 * period).abs() < 1e-12,
                "request {} expected at {}, got {}",
                i,
                burst_index as f64 * period,
                t
            );
        }
        // Every full burst contains exactly `burst_size` requests.
        let full_bursts = n / burst_size as usize;
        for b in 0..full_bursts {
            let t = b as f64 * period;
            let count = times.iter().filter(|&&x| (x - t).abs() < 1e-12).count();
            prop_assert_eq!(count, burst_size as usize);
        }
    }

    /// Instantaneous arrivals are all at time zero.
    #[test]
    fn instantaneous_is_all_zero(n in 0usize..500, seed in 0u64..100) {
        let times = ArrivalProcess::Instantaneous.sample(n, &mut StdRng::seed_from_u64(seed));
        prop_assert!(times.iter().all(|&t| t == 0.0));
    }

    /// The time-varying processes also produce non-negative, strictly
    /// ordered-in-time samples of exactly the requested length.
    #[test]
    fn time_varying_timestamps_are_nondecreasing(
        n in 0usize..1_500,
        base in 0.5f64..20.0,
        boost in 1.0f64..100.0,
        period in 1.0f64..60.0,
        seed in 0u64..1_000,
    ) {
        let processes = [
            ArrivalProcess::PiecewiseRate {
                segments: vec![
                    RateSegment::new(period, base),
                    RateSegment::new(period * 0.5, base + boost),
                ],
            },
            ArrivalProcess::Diurnal {
                base_rps: base,
                peak_rps: base + boost,
                period_s: period,
            },
            ArrivalProcess::Spike {
                base_rps: base,
                spike_rps: base + boost,
                start_s: period * 0.25,
                duration_s: period * 0.25,
            },
        ];
        for process in processes {
            let times = process.sample(n, &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(times.len(), n);
            prop_assert!(times.iter().all(|t| t.is_finite() && *t >= 0.0));
            prop_assert!(times.windows(2).all(|w| w[1] >= w[0]));
        }
    }

    /// Thinning is exact for a piecewise-constant intensity: the empirical
    /// rate inside each segment converges to that segment's configured
    /// rate (within 20 % over many cycles).
    #[test]
    fn piecewise_segment_rates_converge(
        low in 2.0f64..20.0,
        boost in 20.0f64..100.0,
        seed in 0u64..200,
    ) {
        let high = low + boost;
        let process = ArrivalProcess::PiecewiseRate {
            segments: vec![RateSegment::new(5.0, low), RateSegment::new(5.0, high)],
        };
        let n = 6_000usize;
        let times = process.sample(n, &mut StdRng::seed_from_u64(seed));
        let span = *times.last().unwrap();
        let full_cycles = (span / 10.0).floor();
        prop_assume!(full_cycles >= 3.0);
        let in_low = times
            .iter()
            .filter(|&&t| t < full_cycles * 10.0 && (t % 10.0) < 5.0)
            .count() as f64;
        let in_high = times
            .iter()
            .filter(|&&t| t < full_cycles * 10.0 && (t % 10.0) >= 5.0)
            .count() as f64;
        let low_rate = in_low / (full_cycles * 5.0);
        let high_rate = in_high / (full_cycles * 5.0);
        prop_assert!(
            (low_rate - low).abs() / low < 0.2,
            "low-segment rate {} vs configured {}", low_rate, low
        );
        prop_assert!(
            (high_rate - high).abs() / high < 0.2,
            "high-segment rate {} vs configured {}", high_rate, high
        );
    }

    /// The overall rate of any thinned process never exceeds its peak: the
    /// span of `n` samples is at least `n / rate_max` in expectation (checked
    /// with 20 % slack).
    #[test]
    fn thinned_processes_respect_the_peak_rate(
        base in 1.0f64..10.0,
        boost in 5.0f64..50.0,
        period in 2.0f64..20.0,
        seed in 0u64..200,
    ) {
        let peak = base + boost;
        let n = 3_000usize;
        let times = ArrivalProcess::Diurnal {
            base_rps: base,
            peak_rps: peak,
            period_s: period,
        }
        .sample(n, &mut StdRng::seed_from_u64(seed));
        let span = *times.last().unwrap();
        prop_assert!(
            n as f64 / span < peak * 1.2,
            "empirical rate {} exceeds peak {}", n as f64 / span, peak
        );
    }
}
