//! Trace-composition properties: class tags and content-identity fields
//! survive every composition path (`merge_tagged`, `with_arrival_offset`,
//! `split_round_robin`, and their chains), and per-class request counts are
//! conserved throughout.

use proptest::prelude::*;
use rago_schema::SequenceProfile;
use rago_workloads::{ArrivalProcess, ContentSpec, PopularityModel, Request, Trace, TraceSpec};

fn base_trace(n: usize, seed: u64) -> Trace {
    TraceSpec {
        num_requests: n,
        profile: SequenceProfile::paper_default(),
        arrival: ArrivalProcess::Poisson { rate_rps: 25.0 },
        length_jitter: 0.2,
        seed,
    }
    .generate()
}

fn content(seed: u64) -> ContentSpec {
    ContentSpec {
        prefixes: PopularityModel::zipf(6, 1.0),
        shared_prefix_fraction: 0.75,
        docs: PopularityModel::zipf(24, 0.9),
        seed,
    }
}

/// A request's payload minus its position (id and arrival are rewritten by
/// composition; everything else must survive verbatim). Sortable so
/// multiset comparisons are order-independent.
type Payload = (u32, u32, u32, u32, (u64, u32, u64));

fn payload(r: &Request) -> Payload {
    let identity = r
        .identity
        .map(|i| (i.prefix_id, i.shared_prefix_tokens, i.doc_key))
        .unwrap_or((u64::MAX, u32::MAX, u64::MAX));
    (
        r.class,
        r.question_tokens,
        r.prefix_tokens,
        r.decode_tokens,
        identity,
    )
}

fn payload_multiset(requests: &[Request]) -> Vec<Payload> {
    let mut all: Vec<Payload> = requests.iter().map(payload).collect();
    all.sort();
    all
}

fn class_count(trace: &Trace, class: u32) -> usize {
    trace.requests.iter().filter(|r| r.class == class).count()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The full composition chain: tag content → merge two tenants →
    /// shift → split. At every step the per-request payload (class,
    /// lengths, identity) is conserved as a multiset, and per-class counts
    /// partition correctly.
    #[test]
    fn composition_preserves_class_tags_and_identity(
        n_a in 5usize..40,
        n_b in 5usize..40,
        seed in 0u64..512,
        class_a in 0u32..4,
        class_b in 4u32..8,
        replicas in 1usize..5,
        offset in 0.0f64..50.0,
    ) {
        let a = content(seed).tag(&base_trace(n_a, seed));
        let b = content(seed.wrapping_add(77)).tag(&base_trace(n_b, seed.wrapping_add(1)));

        // merge_tagged re-tags classes and re-assigns ids, nothing else.
        let merged = Trace::merge_tagged(&[(class_a, a.clone()), (class_b, b.clone())]);
        prop_assert_eq!(merged.requests.len(), n_a + n_b);
        prop_assert_eq!(class_count(&merged, class_a), n_a);
        prop_assert_eq!(class_count(&merged, class_b), n_b);
        let mut expected: Vec<Payload> = a
            .requests
            .iter()
            .map(|r| {
                let mut retagged = *r;
                retagged.class = class_a;
                payload(&retagged)
            })
            .chain(b.requests.iter().map(|r| {
                let mut retagged = *r;
                retagged.class = class_b;
                payload(&retagged)
            }))
            .collect();
        expected.sort();
        prop_assert_eq!(payload_multiset(&merged.requests), expected.clone());
        // Every merged request still carries identity.
        prop_assert!(merged.requests.iter().all(|r| r.identity.is_some()));

        // with_arrival_offset is a pure time shift: payloads (and even ids)
        // are untouched per request.
        let shifted = merged.with_arrival_offset(offset);
        for (x, y) in merged.requests.iter().zip(shifted.requests.iter()) {
            prop_assert_eq!(x.id, y.id);
            prop_assert_eq!(x.class, y.class);
            prop_assert_eq!(x.identity, y.identity);
            prop_assert!((y.arrival_s - x.arrival_s - offset).abs() < 1e-9);
        }

        // split_round_robin partitions requests bit-exactly: the union of
        // the splits is the input, so payloads and per-class counts are
        // conserved and identity survives.
        let splits = shifted.split_round_robin(replicas);
        let mut reunited: Vec<Request> =
            splits.iter().flat_map(|t| t.requests.clone()).collect();
        reunited.sort_by_key(|r| r.id);
        prop_assert_eq!(&reunited, &shifted.requests);
        for class in [class_a, class_b] {
            let split_total: usize =
                splits.iter().map(|t| class_count(t, class)).sum();
            prop_assert_eq!(split_total, class_count(&shifted, class));
        }
        prop_assert_eq!(payload_multiset(&reunited), expected);
    }

    /// Merging tagged splits back (with their own classes preserved)
    /// conserves the identity multiset — the round-trip path a fleet
    /// baseline uses.
    #[test]
    fn split_then_merge_round_trips_identity(
        n in 8usize..60,
        seed in 0u64..512,
        replicas in 2usize..5,
    ) {
        let tagged = content(seed).tag(&base_trace(n, seed));
        let splits = tagged.split_round_robin(replicas);
        // Re-merge with class 0 everywhere (the original is untagged /
        // class 0 too, so the payload multiset must round-trip exactly).
        let parts: Vec<(u32, Trace)> = splits.into_iter().map(|t| (0, t)).collect();
        let merged = Trace::merge_tagged(&parts);
        prop_assert_eq!(merged.requests.len(), n);
        prop_assert_eq!(
            payload_multiset(&merged.requests),
            payload_multiset(&tagged.requests)
        );
        // Ids are re-assigned densely and arrivals stay sorted.
        prop_assert!(merged
            .requests
            .iter()
            .enumerate()
            .all(|(i, r)| r.id == i as u64));
        prop_assert!(merged
            .requests
            .windows(2)
            .all(|w| w[0].arrival_s <= w[1].arrival_s));
    }

    /// Identity-free traces stay identity-free through every composition
    /// path — the degenerate case the cache-less equivalences rely on.
    #[test]
    fn identity_free_traces_stay_identity_free(
        n in 5usize..40,
        seed in 0u64..512,
        replicas in 1usize..4,
    ) {
        let plain = base_trace(n, seed);
        let merged = Trace::merge_tagged(&[(1, plain.clone()), (2, plain.clone())]);
        prop_assert!(merged.requests.iter().all(|r| r.identity.is_none()));
        let shifted = merged.with_arrival_offset(3.0);
        prop_assert!(shifted.requests.iter().all(|r| r.identity.is_none()));
        for split in shifted.split_round_robin(replicas) {
            prop_assert!(split.requests.iter().all(|r| r.identity.is_none()));
        }
    }
}
