//! Inverted-file index over product-quantized codes (IVF-PQ).
//!
//! This is the algorithm family the RAGO paper assumes for hyperscale
//! retrieval (ScaNN / Faiss-IVFPQ, §2): a coarse quantizer partitions the
//! database into `num_lists` inverted lists; a query first scores the list
//! centroids, then scans the PQ codes of the `nprobe` closest lists with an
//! ADC lookup table. The fraction of the database actually scanned —
//! `nprobe / num_lists` on average — is the `P_scan` knob of the paper's
//! retrieval cost model.

use crate::error::VectorDbError;
use crate::flat::{partial_sort_by_distance, Neighbor};
use crate::kmeans::{kmeans, nearest_centroid, KMeansParams};
use crate::pq::ProductQuantizer;
use serde::{Deserialize, Serialize};

/// Construction parameters of an [`IvfPqIndex`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct IvfPqParams {
    /// Number of inverted lists (coarse centroids).
    pub num_lists: usize,
    /// Number of PQ subspaces (bytes per stored code).
    pub num_subspaces: usize,
    /// Bits per PQ code (codebook size is `2^bits`).
    pub bits_per_code: u32,
    /// Maximum number of training vectors used for k-means (subsampled when
    /// the database is larger).
    pub training_sample: usize,
}

impl Default for IvfPqParams {
    fn default() -> Self {
        Self {
            num_lists: 64,
            num_subspaces: 8,
            bits_per_code: 4,
            training_sample: 10_000,
        }
    }
}

/// One inverted list: the ids and contiguous PQ codes of its members.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct InvertedList {
    ids: Vec<usize>,
    codes: Vec<u8>,
}

/// An IVF-PQ approximate nearest-neighbour index.
///
/// # Examples
///
/// ```
/// use rago_vectordb::{IvfPqIndex, IvfPqParams, SyntheticDataset};
/// let data = SyntheticDataset::clustered(1_000, 16, 8, 2).vectors;
/// let index = IvfPqIndex::train(16, &data, IvfPqParams::default(), 9)?;
/// let hits = index.search(&data[3], 5, 8);
/// assert!(!hits.is_empty());
/// # Ok::<(), rago_vectordb::VectorDbError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IvfPqIndex {
    dim: usize,
    params: IvfPqParams,
    centroids: Vec<Vec<f32>>,
    pq: ProductQuantizer,
    lists: Vec<InvertedList>,
    num_vectors: usize,
}

impl IvfPqIndex {
    /// Trains the coarse quantizer and PQ codebooks on (a sample of) `data`
    /// and adds every vector of `data` to the index.
    ///
    /// # Errors
    ///
    /// Returns [`VectorDbError::InvalidInput`] if the dataset is empty or too
    /// small for the requested list count / codebook size, and
    /// [`VectorDbError::DimensionMismatch`] for ragged input.
    pub fn train(
        dim: usize,
        data: &[Vec<f32>],
        params: IvfPqParams,
        seed: u64,
    ) -> Result<Self, VectorDbError> {
        if data.is_empty() {
            return Err(VectorDbError::InvalidInput {
                reason: "cannot train an IVF-PQ index on an empty dataset".into(),
            });
        }
        if params.num_lists == 0 {
            return Err(VectorDbError::InvalidInput {
                reason: "num_lists must be at least 1".into(),
            });
        }
        if data.len() < params.num_lists {
            return Err(VectorDbError::InvalidInput {
                reason: format!(
                    "dataset ({}) must contain at least num_lists ({}) vectors",
                    data.len(),
                    params.num_lists
                ),
            });
        }
        if let Some(bad) = data.iter().find(|v| v.len() != dim) {
            return Err(VectorDbError::DimensionMismatch {
                expected: dim,
                got: bad.len(),
            });
        }
        // Subsample training data deterministically (strided) if necessary.
        let sample: Vec<Vec<f32>> = if data.len() > params.training_sample {
            let stride = data.len() / params.training_sample;
            data.iter().step_by(stride.max(1)).cloned().collect()
        } else {
            data.to_vec()
        };
        let coarse = kmeans(
            &sample,
            KMeansParams {
                k: params.num_lists.min(sample.len()),
                max_iterations: 20,
                tolerance: 1e-4,
            },
            seed,
        )?;
        let pq = ProductQuantizer::train(
            dim,
            params.num_subspaces,
            params.bits_per_code,
            &sample,
            seed.wrapping_add(0x9E37_79B9),
        )?;
        let mut index = Self {
            dim,
            params,
            centroids: coarse.centroids,
            pq,
            lists: vec![InvertedList::default(); params.num_lists],
            num_vectors: 0,
        };
        for (id, v) in data.iter().enumerate() {
            index.add_with_id(id, v)?;
        }
        Ok(index)
    }

    /// Adds a vector with an explicit external id.
    ///
    /// # Errors
    ///
    /// Returns [`VectorDbError::DimensionMismatch`] if the vector has the
    /// wrong dimensionality.
    pub fn add_with_id(&mut self, id: usize, vector: &[f32]) -> Result<(), VectorDbError> {
        if vector.len() != self.dim {
            return Err(VectorDbError::DimensionMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        let (list_id, _) = nearest_centroid(vector, &self.centroids);
        let code = self.pq.encode(vector);
        let list = &mut self.lists[list_id];
        list.ids.push(id);
        list.codes.extend_from_slice(&code);
        self.num_vectors += 1;
        Ok(())
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.num_vectors
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.num_vectors == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Construction parameters.
    pub fn params(&self) -> IvfPqParams {
        self.params
    }

    /// Average fraction of the database scanned when probing `nprobe` lists —
    /// the empirical counterpart of the paper's `P_scan`.
    pub fn scan_fraction(&self, nprobe: usize) -> f64 {
        if self.params.num_lists == 0 {
            return 1.0;
        }
        (nprobe.min(self.params.num_lists) as f64) / self.params.num_lists as f64
    }

    /// Searches for the `k` nearest neighbours of `query`, scanning the
    /// `nprobe` inverted lists whose centroids are closest to the query.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let nprobe = nprobe.clamp(1, self.params.num_lists);
        // Rank centroids by distance to the query.
        let mut centroid_order: Vec<Neighbor> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(id, c)| Neighbor {
                id,
                distance: crate::distance::l2_distance_squared(query, c),
            })
            .collect();
        partial_sort_by_distance(&mut centroid_order, nprobe);
        centroid_order.truncate(nprobe);

        let table = self.pq.build_lookup_table(query);
        let mut hits: Vec<Neighbor> = Vec::new();
        for probe in &centroid_order {
            let list = &self.lists[probe.id];
            if list.ids.is_empty() {
                continue;
            }
            let list_hits = self.pq.scan(&table, &list.codes, Some(&list.ids), k);
            hits.extend(list_hits);
        }
        partial_sort_by_distance(&mut hits, k);
        hits.truncate(k);
        hits
    }

    /// Searches a batch of queries with the same `k` and `nprobe`.
    pub fn search_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        nprobe: usize,
    ) -> Vec<Vec<Neighbor>> {
        queries.iter().map(|q| self.search(q, k, nprobe)).collect()
    }

    /// Total bytes of PQ codes scanned for one query at the given `nprobe`
    /// (averaged over list sizes) — the quantity the retrieval cost model
    /// prices.
    pub fn scanned_bytes_per_query(&self, nprobe: usize) -> f64 {
        self.scan_fraction(nprobe) * self.num_vectors as f64 * self.pq.code_bytes() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;
    use crate::flat::FlatIndex;
    use crate::recall::recall_at_k;

    use std::sync::OnceLock;

    /// Builds the (relatively expensive) shared test fixture exactly once.
    fn build_index() -> &'static (IvfPqIndex, FlatIndex, Vec<Vec<f32>>) {
        static FIXTURE: OnceLock<(IvfPqIndex, FlatIndex, Vec<Vec<f32>>)> = OnceLock::new();
        FIXTURE.get_or_init(|| {
            let data = SyntheticDataset::clustered(3_000, 24, 16, 4).vectors;
            let params = IvfPqParams {
                num_lists: 32,
                num_subspaces: 12,
                bits_per_code: 8,
                training_sample: 1_000,
            };
            let ivf = IvfPqIndex::train(24, &data, params, 21).unwrap();
            let flat = FlatIndex::build(24, data.clone()).unwrap();
            (ivf, flat, data)
        })
    }

    #[test]
    fn index_holds_every_vector() {
        let (ivf, _, data) = build_index();
        assert_eq!(ivf.len(), data.len());
        assert!(!ivf.is_empty());
        assert_eq!(ivf.dim(), 24);
    }

    #[test]
    fn recall_improves_with_nprobe() {
        // Queries are drawn from the indexed distribution (a held-out slice of
        // the same dataset) as in standard ANN benchmarks.
        let (ivf, flat, data) = build_index();
        let queries: Vec<Vec<f32>> = data.iter().step_by(120).take(25).cloned().collect();
        let exact: Vec<_> = queries.iter().map(|q| flat.search(q, 10)).collect();
        let r1 = recall_at_k(
            &exact,
            &queries
                .iter()
                .map(|q| ivf.search(q, 10, 1))
                .collect::<Vec<_>>(),
            10,
        );
        let r32 = recall_at_k(
            &exact,
            &queries
                .iter()
                .map(|q| ivf.search(q, 10, 32))
                .collect::<Vec<_>>(),
            10,
        );
        // Probing every list scans the whole database: recall is limited only
        // by PQ error and must be at least as good as probing one list.
        assert!(
            r32 >= r1,
            "recall@nprobe=32 ({r32}) < recall@nprobe=1 ({r1})"
        );
        assert!(r32 > 0.4, "full-probe recall too low: {r32}");
    }

    #[test]
    fn scan_fraction_tracks_nprobe() {
        let (ivf, _, _) = build_index();
        assert!((ivf.scan_fraction(8) - 0.25).abs() < 1e-9);
        assert!((ivf.scan_fraction(32) - 1.0).abs() < 1e-9);
        assert!((ivf.scan_fraction(64) - 1.0).abs() < 1e-9); // clamped
        assert!(ivf.scanned_bytes_per_query(8) > 0.0);
        assert!(ivf.scanned_bytes_per_query(32) > ivf.scanned_bytes_per_query(8));
    }

    #[test]
    fn batch_search_matches_single_queries() {
        let (ivf, _, data) = build_index();
        let queries = vec![data[0].clone(), data[1500].clone()];
        let batch = ivf.search_batch(&queries, 5, 4);
        assert_eq!(batch[0], ivf.search(&queries[0], 5, 4));
        assert_eq!(batch[1], ivf.search(&queries[1], 5, 4));
    }

    #[test]
    fn self_query_usually_finds_itself_at_full_probe() {
        let (ivf, _, data) = build_index();
        let mut found = 0;
        for i in (0..200).step_by(10) {
            let hits = ivf.search(&data[i], 10, 32);
            if hits.iter().any(|h| h.id == i) {
                found += 1;
            }
        }
        assert!(found >= 15, "only {found}/20 self-queries found themselves");
    }

    #[test]
    fn train_rejects_bad_inputs() {
        let data = SyntheticDataset::uniform(10, 8, 0).vectors;
        assert!(IvfPqIndex::train(8, &[], IvfPqParams::default(), 0).is_err());
        let params = IvfPqParams {
            num_lists: 64,
            ..Default::default()
        };
        assert!(IvfPqIndex::train(8, &data, params, 0).is_err()); // fewer vectors than lists
        let params = IvfPqParams {
            num_lists: 0,
            ..Default::default()
        };
        assert!(IvfPqIndex::train(8, &data, params, 0).is_err());
    }

    #[test]
    fn add_with_id_rejects_wrong_dim() {
        let mut ivf = build_index().0.clone();
        assert!(ivf.add_with_id(123456, &[0.0; 8]).is_err());
        assert!(ivf.add_with_id(123456, &[0.0; 24]).is_ok());
    }
}
