//! Inverted-file index over *uncompressed* vectors (IVF-flat).
//!
//! The same coarse-quantizer pruning as [`crate::IvfPqIndex`] — a k-means
//! partition into `num_lists` inverted lists, of which a query scans the
//! `nprobe` closest — but the lists store raw `f32` vectors and score them
//! with exact L2, so the *only* error source is probing too few lists.
//! That makes it the recall oracle between the two existing extremes:
//!
//! * at `nprobe = num_lists` the index scans every vector exactly and must
//!   reproduce [`crate::FlatIndex`] bit for bit (pinned by
//!   `tests/recall_regression.rs`);
//! * at smaller `nprobe`, the recall loss isolates the *pruning* error that
//!   IVF-PQ compounds with quantization error — comparing the two at equal
//!   `nprobe` attributes recall loss to its source, which is how the paper's
//!   retrieval quality/cost knob (`P_scan`) is calibrated.

use crate::error::VectorDbError;
use crate::flat::{partial_sort_by_distance, Neighbor};
use crate::kmeans::{kmeans, nearest_centroid, KMeansParams};
use serde::{Deserialize, Serialize};

/// One inverted list: member ids and their raw vectors.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct FlatList {
    ids: Vec<usize>,
    vectors: Vec<Vec<f32>>,
}

/// An IVF index over uncompressed vectors. See the module docs.
///
/// # Examples
///
/// ```
/// use rago_vectordb::{IvfFlatIndex, SyntheticDataset};
/// let data = SyntheticDataset::clustered(1_000, 16, 8, 2).vectors;
/// let index = IvfFlatIndex::train(16, &data, 16, 9)?;
/// let hits = index.search(&data[3], 5, 16);
/// assert_eq!(hits[0].id, 3); // full probe + exact distances find the query itself
/// # Ok::<(), rago_vectordb::VectorDbError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct IvfFlatIndex {
    dim: usize,
    num_lists: usize,
    centroids: Vec<Vec<f32>>,
    lists: Vec<FlatList>,
    num_vectors: usize,
}

impl IvfFlatIndex {
    /// Trains the coarse quantizer on `data` and adds every vector.
    ///
    /// # Errors
    ///
    /// Returns [`VectorDbError::InvalidInput`] if the dataset is empty,
    /// `num_lists` is zero, or the dataset is smaller than `num_lists`, and
    /// [`VectorDbError::DimensionMismatch`] for ragged input.
    pub fn train(
        dim: usize,
        data: &[Vec<f32>],
        num_lists: usize,
        seed: u64,
    ) -> Result<Self, VectorDbError> {
        if data.is_empty() {
            return Err(VectorDbError::InvalidInput {
                reason: "cannot train an IVF-flat index on an empty dataset".into(),
            });
        }
        if num_lists == 0 {
            return Err(VectorDbError::InvalidInput {
                reason: "num_lists must be at least 1".into(),
            });
        }
        if data.len() < num_lists {
            return Err(VectorDbError::InvalidInput {
                reason: format!(
                    "dataset ({}) must contain at least num_lists ({num_lists}) vectors",
                    data.len()
                ),
            });
        }
        if let Some(bad) = data.iter().find(|v| v.len() != dim) {
            return Err(VectorDbError::DimensionMismatch {
                expected: dim,
                got: bad.len(),
            });
        }
        let coarse = kmeans(
            data,
            KMeansParams {
                k: num_lists,
                max_iterations: 20,
                tolerance: 1e-4,
            },
            seed,
        )?;
        let mut index = Self {
            dim,
            num_lists,
            centroids: coarse.centroids,
            lists: vec![FlatList::default(); num_lists],
            num_vectors: 0,
        };
        for (id, v) in data.iter().enumerate() {
            index.add_with_id(id, v)?;
        }
        Ok(index)
    }

    /// Adds a vector with an explicit external id.
    ///
    /// # Errors
    ///
    /// Returns [`VectorDbError::DimensionMismatch`] if the vector has the
    /// wrong dimensionality.
    pub fn add_with_id(&mut self, id: usize, vector: &[f32]) -> Result<(), VectorDbError> {
        if vector.len() != self.dim {
            return Err(VectorDbError::DimensionMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        let (list_id, _) = nearest_centroid(vector, &self.centroids);
        let list = &mut self.lists[list_id];
        list.ids.push(id);
        list.vectors.push(vector.to_vec());
        self.num_vectors += 1;
        Ok(())
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.num_vectors
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.num_vectors == 0
    }

    /// Vector dimensionality.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of inverted lists.
    pub fn num_lists(&self) -> usize {
        self.num_lists
    }

    /// Average fraction of the database scanned when probing `nprobe` lists.
    pub fn scan_fraction(&self, nprobe: usize) -> f64 {
        (nprobe.min(self.num_lists) as f64) / self.num_lists as f64
    }

    /// Searches for the `k` exact-distance nearest neighbours of `query`
    /// within the `nprobe` closest inverted lists. Results are ordered by
    /// `(distance, id)` — the ordering of [`crate::FlatIndex::search`] — so
    /// at `nprobe = num_lists` the result equals a flat search exactly.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    pub fn search(&self, query: &[f32], k: usize, nprobe: usize) -> Vec<Neighbor> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let nprobe = nprobe.clamp(1, self.num_lists);
        let mut centroid_order: Vec<Neighbor> = self
            .centroids
            .iter()
            .enumerate()
            .map(|(id, c)| Neighbor {
                id,
                distance: crate::distance::l2_distance_squared(query, c),
            })
            .collect();
        partial_sort_by_distance(&mut centroid_order, nprobe);
        centroid_order.truncate(nprobe);

        let mut hits: Vec<Neighbor> = Vec::new();
        for probe in &centroid_order {
            let list = &self.lists[probe.id];
            for (id, v) in list.ids.iter().zip(list.vectors.iter()) {
                hits.push(Neighbor {
                    id: *id,
                    distance: crate::distance::l2_distance_squared(query, v),
                });
            }
        }
        partial_sort_by_distance(&mut hits, k);
        hits.truncate(k);
        hits
    }

    /// Searches a batch of queries with the same `k` and `nprobe`.
    pub fn search_batch(
        &self,
        queries: &[Vec<f32>],
        k: usize,
        nprobe: usize,
    ) -> Vec<Vec<Neighbor>> {
        queries.iter().map(|q| self.search(q, k, nprobe)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;
    use crate::flat::FlatIndex;

    #[test]
    fn train_rejects_bad_inputs() {
        let data = SyntheticDataset::uniform(10, 8, 0).vectors;
        assert!(IvfFlatIndex::train(8, &[], 4, 0).is_err());
        assert!(IvfFlatIndex::train(8, &data, 0, 0).is_err());
        assert!(IvfFlatIndex::train(8, &data, 64, 0).is_err());
        let mut ragged = data.clone();
        ragged.push(vec![0.0; 5]);
        assert!(IvfFlatIndex::train(8, &ragged, 4, 0).is_err());
    }

    #[test]
    fn add_with_id_rejects_wrong_dim() {
        let data = SyntheticDataset::uniform(32, 8, 1).vectors;
        let mut index = IvfFlatIndex::train(8, &data, 4, 1).unwrap();
        assert!(index.add_with_id(99, &[0.0; 3]).is_err());
        assert!(index.add_with_id(99, &[0.0; 8]).is_ok());
        assert_eq!(index.len(), 33);
    }

    #[test]
    fn scan_fraction_tracks_nprobe() {
        let data = SyntheticDataset::uniform(64, 8, 2).vectors;
        let index = IvfFlatIndex::train(8, &data, 16, 2).unwrap();
        assert!((index.scan_fraction(4) - 0.25).abs() < 1e-12);
        assert!((index.scan_fraction(16) - 1.0).abs() < 1e-12);
        assert!((index.scan_fraction(99) - 1.0).abs() < 1e-12);
        assert_eq!(index.num_lists(), 16);
        assert_eq!(index.dim(), 8);
        assert!(!index.is_empty());
    }

    #[test]
    fn batch_search_matches_single_queries() {
        let data = SyntheticDataset::clustered(500, 12, 6, 3).vectors;
        let index = IvfFlatIndex::train(12, &data, 8, 3).unwrap();
        let queries = vec![data[0].clone(), data[250].clone()];
        let batch = index.search_batch(&queries, 5, 4);
        assert_eq!(batch[0], index.search(&queries[0], 5, 4));
        assert_eq!(batch[1], index.search(&queries[1], 5, 4));
    }

    #[test]
    fn full_probe_equals_flat_search() {
        let data = SyntheticDataset::clustered(800, 16, 8, 4).vectors;
        let index = IvfFlatIndex::train(16, &data, 10, 4).unwrap();
        let flat = FlatIndex::build(16, data.clone()).unwrap();
        for q in data.iter().step_by(97) {
            assert_eq!(index.search(q, 10, 10), flat.search(q, 10));
        }
    }
}
