//! Synthetic vector datasets.
//!
//! The paper's hyperscale corpus is proprietary; for substrate testing and
//! cost-model calibration we generate clustered Gaussian data, which has the
//! multi-modal structure that IVF indexes exploit (uniform random data would
//! make every inverted list equally likely and understate recall).

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A synthetic collection of `f32` vectors with known generation parameters.
#[derive(Debug, Clone)]
pub struct SyntheticDataset {
    /// Vector dimensionality.
    pub dim: usize,
    /// The generated vectors, row-major (`vectors.len()` rows).
    pub vectors: Vec<Vec<f32>>,
    /// The cluster id each vector was drawn from (useful for sanity checks).
    pub labels: Vec<usize>,
}

impl SyntheticDataset {
    /// Generates `n` vectors of dimensionality `dim` drawn from `num_clusters`
    /// Gaussian clusters with unit intra-cluster standard deviation and
    /// cluster centres spread over `[-10, 10]^dim`. Deterministic in `seed`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` or `num_clusters` is zero.
    pub fn clustered(n: usize, dim: usize, num_clusters: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimensionality must be non-zero");
        assert!(num_clusters > 0, "cluster count must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        let centers: Vec<Vec<f32>> = (0..num_clusters)
            .map(|_| (0..dim).map(|_| rng.gen_range(-10.0..10.0)).collect())
            .collect();
        let mut vectors = Vec::with_capacity(n);
        let mut labels = Vec::with_capacity(n);
        for _ in 0..n {
            let c = rng.gen_range(0..num_clusters);
            let center = &centers[c];
            let v: Vec<f32> = center
                .iter()
                .map(|&m| m + gaussian(&mut rng) as f32)
                .collect();
            vectors.push(v);
            labels.push(c);
        }
        Self {
            dim,
            vectors,
            labels,
        }
    }

    /// Generates `n` vectors uniformly distributed in `[0, 1)^dim`.
    ///
    /// # Panics
    ///
    /// Panics if `dim` is zero.
    pub fn uniform(n: usize, dim: usize, seed: u64) -> Self {
        assert!(dim > 0, "dimensionality must be non-zero");
        let mut rng = StdRng::seed_from_u64(seed);
        let vectors: Vec<Vec<f32>> = (0..n)
            .map(|_| (0..dim).map(|_| rng.gen::<f32>()).collect())
            .collect();
        Self {
            dim,
            vectors,
            labels: vec![0; n],
        }
    }

    /// Number of vectors in the dataset.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }
}

/// Samples a standard normal variate using the Box–Muller transform.
fn gaussian(rng: &mut StdRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::EPSILON..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_dataset_has_requested_shape() {
        let d = SyntheticDataset::clustered(100, 16, 4, 1);
        assert_eq!(d.len(), 100);
        assert_eq!(d.dim, 16);
        assert!(d.vectors.iter().all(|v| v.len() == 16));
        assert!(d.labels.iter().all(|&l| l < 4));
        assert!(!d.is_empty());
    }

    #[test]
    fn generation_is_deterministic_in_seed() {
        let a = SyntheticDataset::clustered(50, 8, 4, 99);
        let b = SyntheticDataset::clustered(50, 8, 4, 99);
        let c = SyntheticDataset::clustered(50, 8, 4, 100);
        assert_eq!(a.vectors, b.vectors);
        assert_ne!(a.vectors, c.vectors);
    }

    #[test]
    fn uniform_dataset_is_in_unit_cube() {
        let d = SyntheticDataset::uniform(200, 4, 3);
        assert!(d.vectors.iter().flatten().all(|&x| (0.0..1.0).contains(&x)));
    }

    #[test]
    fn clusters_are_separated_on_average() {
        // Vectors from the same cluster should on average be closer than
        // vectors from different clusters.
        let d = SyntheticDataset::clustered(300, 8, 3, 7);
        let mut same = (0.0f64, 0usize);
        let mut diff = (0.0f64, 0usize);
        for i in 0..d.len() {
            for j in (i + 1)..d.len().min(i + 40) {
                let dist = f64::from(crate::distance::l2_distance(&d.vectors[i], &d.vectors[j]));
                if d.labels[i] == d.labels[j] {
                    same = (same.0 + dist, same.1 + 1);
                } else {
                    diff = (diff.0 + dist, diff.1 + 1);
                }
            }
        }
        let avg_same = same.0 / same.1 as f64;
        let avg_diff = diff.0 / diff.1 as f64;
        assert!(avg_same < avg_diff);
    }

    #[test]
    #[should_panic(expected = "dimensionality")]
    fn zero_dim_panics() {
        let _ = SyntheticDataset::uniform(10, 0, 1);
    }
}
