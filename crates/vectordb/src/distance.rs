//! Distance and similarity kernels.
//!
//! All kernels operate on `f32` slices of equal length. The hot loops are
//! written with eight independent accumulator lanes over exact 8-element
//! chunks, converted to fixed-size arrays: with no cross-lane dependency per
//! iteration and statically known bounds, the SLP vectorizer packs the lane
//! loop into SIMD registers without any `unsafe` (verify on the *final*
//! binary — e.g. `objdump -d target/release/examples/vector_search | grep
//! mulps` — since the workspace uses thin LTO and per-crate `--emit asm`
//! shows pre-LTO code). Plain multiply-adds are used rather than
//! `f32::mul_add`: without the `fma` target feature the latter lowers to a
//! scalar `fmaf` libcall per element, which defeats vectorization entirely
//! on baseline x86-64. The lanes are reduced pairwise at the end, so results
//! are deterministic for a given input — though they may differ from a
//! strictly sequential sum in the last bits, which is why the scalar
//! reference forms survive as `#[cfg(test)]` oracles.

const LANES: usize = 8;

/// Pairwise horizontal reduction of the eight accumulator lanes (balanced
/// tree, deterministic).
#[inline]
fn reduce_lanes(lanes: [f32; LANES]) -> f32 {
    ((lanes[0] + lanes[4]) + (lanes[1] + lanes[5]))
        + ((lanes[2] + lanes[6]) + (lanes[3] + lanes[7]))
}

/// Squared Euclidean (L2) distance between two vectors.
///
/// Squared distance preserves ordering and avoids the square root, so all
/// internal ranking uses this kernel.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// let d = rago_vectordb::l2_distance_squared(&[0.0, 0.0], &[3.0, 4.0]);
/// assert_eq!(d, 25.0);
/// ```
pub fn l2_distance_squared(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vectors must have equal dimensionality");
    let mut lanes = [0.0f32; LANES];
    let a_chunks = a.chunks_exact(LANES);
    let b_chunks = b.chunks_exact(LANES);
    let (a_rem, b_rem) = (a_chunks.remainder(), b_chunks.remainder());
    for (ca, cb) in a_chunks.zip(b_chunks) {
        // Fixed-size arrays (infallible for exact chunks) are what lets the
        // SLP vectorizer pack the lane loop into SIMD registers.
        let ca: [f32; LANES] = ca.try_into().expect("exact chunk");
        let cb: [f32; LANES] = cb.try_into().expect("exact chunk");
        for l in 0..LANES {
            let d = ca[l] - cb[l];
            lanes[l] += d * d;
        }
    }
    let mut acc = reduce_lanes(lanes);
    for (x, y) in a_rem.iter().zip(b_rem.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean (L2) distance between two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    l2_distance_squared(a, b).sqrt()
}

/// Inner product (dot product) of two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vectors must have equal dimensionality");
    let mut lanes = [0.0f32; LANES];
    let a_chunks = a.chunks_exact(LANES);
    let b_chunks = b.chunks_exact(LANES);
    let (a_rem, b_rem) = (a_chunks.remainder(), b_chunks.remainder());
    for (ca, cb) in a_chunks.zip(b_chunks) {
        let ca: [f32; LANES] = ca.try_into().expect("exact chunk");
        let cb: [f32; LANES] = cb.try_into().expect("exact chunk");
        for l in 0..LANES {
            lanes[l] += ca[l] * cb[l];
        }
    }
    let mut acc = reduce_lanes(lanes);
    for (x, y) in a_rem.iter().zip(b_rem.iter()) {
        acc += x * y;
    }
    acc
}

/// Cosine distance (`1 - cosine similarity`) of two vectors.
///
/// Returns `1.0` when either vector has zero norm.
///
/// Single pass over the pair: the dot product and both squared norms are
/// accumulated together, reading each input once instead of three times.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vectors must have equal dimensionality");
    let mut dot = [0.0f32; LANES];
    let mut na = [0.0f32; LANES];
    let mut nb = [0.0f32; LANES];
    let a_chunks = a.chunks_exact(LANES);
    let b_chunks = b.chunks_exact(LANES);
    let (a_rem, b_rem) = (a_chunks.remainder(), b_chunks.remainder());
    for (ca, cb) in a_chunks.zip(b_chunks) {
        let ca: [f32; LANES] = ca.try_into().expect("exact chunk");
        let cb: [f32; LANES] = cb.try_into().expect("exact chunk");
        for l in 0..LANES {
            dot[l] += ca[l] * cb[l];
            na[l] += ca[l] * ca[l];
            nb[l] += cb[l] * cb[l];
        }
    }
    let mut dot_acc = reduce_lanes(dot);
    let mut na_acc = reduce_lanes(na);
    let mut nb_acc = reduce_lanes(nb);
    for (x, y) in a_rem.iter().zip(b_rem.iter()) {
        dot_acc += x * y;
        na_acc += x * x;
        nb_acc += y * y;
    }
    if na_acc == 0.0 || nb_acc == 0.0 {
        return 1.0;
    }
    1.0 - dot_acc / (na_acc.sqrt() * nb_acc.sqrt())
}

#[cfg(test)]
mod scalar_oracles {
    //! Straightforward sequential reference implementations the chunked
    //! kernels are validated against.

    pub fn l2_distance_squared(a: &[f32], b: &[f32]) -> f32 {
        let mut acc = 0.0f32;
        for (x, y) in a.iter().zip(b.iter()) {
            let d = x - y;
            acc += d * d;
        }
        acc
    }

    pub fn inner_product(a: &[f32], b: &[f32]) -> f32 {
        a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
    }

    pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
        let dot = inner_product(a, b);
        let na = inner_product(a, a).sqrt();
        let nb = inner_product(b, b).sqrt();
        if na == 0.0 || nb == 0.0 {
            return 1.0;
        }
        1.0 - dot / (na * nb)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_of_identical_vectors_is_zero() {
        let v = vec![1.5f32, -2.0, 3.25];
        assert_eq!(l2_distance_squared(&v, &v), 0.0);
        assert_eq!(l2_distance(&v, &v), 0.0);
    }

    #[test]
    fn l2_matches_hand_computation() {
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn inner_product_matches_hand_computation() {
        assert_eq!(inner_product(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn cosine_distance_of_parallel_vectors_is_zero() {
        let d = cosine_distance(&[1.0, 2.0], &[2.0, 4.0]);
        assert!(d.abs() < 1e-6);
    }

    #[test]
    fn cosine_distance_of_orthogonal_vectors_is_one() {
        let d = cosine_distance(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_distance_of_zero_vector_is_one() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn mismatched_dims_panic() {
        let _ = l2_distance_squared(&[1.0], &[1.0, 2.0]);
    }

    /// Deterministic pseudo-random test vectors of every length around the
    /// chunk boundary (0..=33 covers empty, sub-chunk, exact multiples, and
    /// remainders).
    fn test_vectors(len: usize, salt: u32) -> (Vec<f32>, Vec<f32>) {
        let gen = |i: u32, s: u32| -> f32 {
            let x = (i.wrapping_mul(2_654_435_761).wrapping_add(s)) >> 8;
            (x % 2000) as f32 / 100.0 - 10.0
        };
        let a = (0..len as u32).map(|i| gen(i, salt)).collect();
        let b = (0..len as u32)
            .map(|i| gen(i, salt.wrapping_add(77)))
            .collect();
        (a, b)
    }

    #[test]
    fn chunked_kernels_match_scalar_oracles() {
        for len in 0..=33 {
            for salt in [1u32, 42, 1234] {
                let (a, b) = test_vectors(len, salt);
                let l2 = l2_distance_squared(&a, &b);
                let l2_ref = scalar_oracles::l2_distance_squared(&a, &b);
                assert!(
                    (l2 - l2_ref).abs() <= l2_ref.abs().max(1.0) * 1e-5,
                    "l2 len={len}: {l2} vs {l2_ref}"
                );
                let ip = inner_product(&a, &b);
                let ip_ref = scalar_oracles::inner_product(&a, &b);
                assert!(
                    (ip - ip_ref).abs() <= ip_ref.abs().max(1.0) * 1e-5,
                    "ip len={len}: {ip} vs {ip_ref}"
                );
                let cos = cosine_distance(&a, &b);
                let cos_ref = scalar_oracles::cosine_distance(&a, &b);
                assert!(
                    (cos - cos_ref).abs() <= 1e-5,
                    "cos len={len}: {cos} vs {cos_ref}"
                );
            }
        }
    }

    #[test]
    fn empty_vectors_have_zero_norm_semantics() {
        let e: [f32; 0] = [];
        assert_eq!(l2_distance_squared(&e, &e), 0.0);
        assert_eq!(inner_product(&e, &e), 0.0);
        assert_eq!(cosine_distance(&e, &e), 1.0);
    }
}
