//! Distance and similarity kernels.
//!
//! All kernels operate on `f32` slices of equal length. They are written as
//! straightforward scalar loops: the goal of this substrate is functional
//! correctness and calibration of *relative* costs, not peak SIMD throughput.

/// Squared Euclidean (L2) distance between two vectors.
///
/// Squared distance preserves ordering and avoids the square root, so all
/// internal ranking uses this kernel.
///
/// # Panics
///
/// Panics if the slices have different lengths.
///
/// ```
/// let d = rago_vectordb::l2_distance_squared(&[0.0, 0.0], &[3.0, 4.0]);
/// assert_eq!(d, 25.0);
/// ```
pub fn l2_distance_squared(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vectors must have equal dimensionality");
    let mut acc = 0.0f32;
    for (x, y) in a.iter().zip(b.iter()) {
        let d = x - y;
        acc += d * d;
    }
    acc
}

/// Euclidean (L2) distance between two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn l2_distance(a: &[f32], b: &[f32]) -> f32 {
    l2_distance_squared(a, b).sqrt()
}

/// Inner product (dot product) of two vectors.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn inner_product(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "vectors must have equal dimensionality");
    a.iter().zip(b.iter()).map(|(x, y)| x * y).sum()
}

/// Cosine distance (`1 - cosine similarity`) of two vectors.
///
/// Returns `1.0` when either vector has zero norm.
///
/// # Panics
///
/// Panics if the slices have different lengths.
pub fn cosine_distance(a: &[f32], b: &[f32]) -> f32 {
    let dot = inner_product(a, b);
    let na = inner_product(a, a).sqrt();
    let nb = inner_product(b, b).sqrt();
    if na == 0.0 || nb == 0.0 {
        return 1.0;
    }
    1.0 - dot / (na * nb)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn l2_of_identical_vectors_is_zero() {
        let v = vec![1.5f32, -2.0, 3.25];
        assert_eq!(l2_distance_squared(&v, &v), 0.0);
        assert_eq!(l2_distance(&v, &v), 0.0);
    }

    #[test]
    fn l2_matches_hand_computation() {
        assert_eq!(l2_distance(&[0.0, 0.0], &[3.0, 4.0]), 5.0);
    }

    #[test]
    fn inner_product_matches_hand_computation() {
        assert_eq!(inner_product(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn cosine_distance_of_parallel_vectors_is_zero() {
        let d = cosine_distance(&[1.0, 2.0], &[2.0, 4.0]);
        assert!(d.abs() < 1e-6);
    }

    #[test]
    fn cosine_distance_of_orthogonal_vectors_is_one() {
        let d = cosine_distance(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((d - 1.0).abs() < 1e-6);
    }

    #[test]
    fn cosine_distance_of_zero_vector_is_one() {
        assert_eq!(cosine_distance(&[0.0, 0.0], &[1.0, 1.0]), 1.0);
    }

    #[test]
    #[should_panic(expected = "equal dimensionality")]
    fn mismatched_dims_panic() {
        let _ = l2_distance_squared(&[1.0], &[1.0, 2.0]);
    }
}
