//! Retrieval-quality evaluation.

use crate::flat::Neighbor;

/// Computes recall@k of `approximate` results against `exact` ground truth:
/// the fraction of true top-`k` neighbours that appear anywhere in the
/// approximate top-`k`, averaged over queries.
///
/// Both slices must contain one result list per query, in the same query
/// order. Queries whose ground-truth list is empty are skipped.
///
/// # Panics
///
/// Panics if the two slices have different lengths.
///
/// # Examples
///
/// ```
/// use rago_vectordb::{recall_at_k, Neighbor};
/// let exact = vec![vec![Neighbor { id: 1, distance: 0.0 }, Neighbor { id: 2, distance: 1.0 }]];
/// let approx = vec![vec![Neighbor { id: 2, distance: 1.0 }, Neighbor { id: 9, distance: 2.0 }]];
/// assert_eq!(recall_at_k(&exact, &approx, 2), 0.5);
/// ```
pub fn recall_at_k(exact: &[Vec<Neighbor>], approximate: &[Vec<Neighbor>], k: usize) -> f64 {
    assert_eq!(
        exact.len(),
        approximate.len(),
        "exact and approximate result sets must cover the same queries"
    );
    let mut found = 0usize;
    let mut total = 0usize;
    for (truth, approx) in exact.iter().zip(approximate.iter()) {
        let truth_ids: Vec<usize> = truth.iter().take(k).map(|n| n.id).collect();
        if truth_ids.is_empty() {
            continue;
        }
        let approx_ids: Vec<usize> = approx.iter().take(k).map(|n| n.id).collect();
        total += truth_ids.len();
        found += truth_ids
            .iter()
            .filter(|id| approx_ids.contains(id))
            .count();
    }
    if total == 0 {
        return 0.0;
    }
    found as f64 / total as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn n(id: usize) -> Neighbor {
        Neighbor {
            id,
            distance: id as f32,
        }
    }

    #[test]
    fn perfect_recall() {
        let exact = vec![vec![n(1), n(2), n(3)]];
        assert_eq!(recall_at_k(&exact, &exact, 3), 1.0);
    }

    #[test]
    fn zero_recall() {
        let exact = vec![vec![n(1), n(2)]];
        let approx = vec![vec![n(7), n(8)]];
        assert_eq!(recall_at_k(&exact, &approx, 2), 0.0);
    }

    #[test]
    fn partial_recall_across_queries() {
        let exact = vec![vec![n(1), n(2)], vec![n(3), n(4)]];
        let approx = vec![vec![n(1), n(9)], vec![n(4), n(3)]];
        // Query 1: 1/2 found; query 2: 2/2 found (order does not matter).
        assert_eq!(recall_at_k(&exact, &approx, 2), 0.75);
    }

    #[test]
    fn empty_ground_truth_is_skipped() {
        let exact = vec![vec![], vec![n(1)]];
        let approx = vec![vec![n(5)], vec![n(1)]];
        assert_eq!(recall_at_k(&exact, &approx, 1), 1.0);
        assert_eq!(recall_at_k(&[], &[], 5), 0.0);
    }

    #[test]
    fn k_truncates_both_sides() {
        let exact = vec![vec![n(1), n(2), n(3), n(4)]];
        let approx = vec![vec![n(1), n(9), n(2), n(3)]];
        // At k=2 only {1,2} matter from ground truth and {1,9} from approx.
        assert_eq!(recall_at_k(&exact, &approx, 2), 0.5);
    }

    #[test]
    #[should_panic(expected = "same queries")]
    fn mismatched_query_counts_panic() {
        let _ = recall_at_k(&[vec![n(1)]], &[], 1);
    }
}
