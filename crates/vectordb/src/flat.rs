//! Exact brute-force k-nearest-neighbour search.
//!
//! This is the retrieval mode the paper uses for the long-context paradigm
//! (Case II), where the per-request database holds only 1K–100K vectors and
//! building an ANN index is not worth the cost. It also serves as the ground
//! truth for recall evaluation of the approximate index.

use crate::distance::l2_distance_squared;
use crate::error::VectorDbError;
use serde::{Deserialize, Serialize};

/// One search result: a database vector id and its (squared L2) distance to
/// the query.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Neighbor {
    /// Index of the matching vector in the database.
    pub id: usize,
    /// Squared L2 distance between the query and the matching vector.
    pub distance: f32,
}

/// An exact (brute-force) kNN index over L2 distance.
///
/// # Examples
///
/// ```
/// use rago_vectordb::FlatIndex;
/// let index = FlatIndex::build(2, vec![vec![0.0, 0.0], vec![1.0, 1.0], vec![5.0, 5.0]])?;
/// let hits = index.search(&[0.9, 1.1], 2);
/// assert_eq!(hits[0].id, 1);
/// # Ok::<(), rago_vectordb::VectorDbError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct FlatIndex {
    dim: usize,
    vectors: Vec<Vec<f32>>,
}

impl FlatIndex {
    /// Builds an index over `vectors`, all of dimensionality `dim`.
    ///
    /// # Errors
    ///
    /// Returns [`VectorDbError::InvalidInput`] if `dim` is zero, or
    /// [`VectorDbError::DimensionMismatch`] if any vector has a different
    /// dimensionality.
    pub fn build(dim: usize, vectors: Vec<Vec<f32>>) -> Result<Self, VectorDbError> {
        if dim == 0 {
            return Err(VectorDbError::InvalidInput {
                reason: "dimensionality must be non-zero".into(),
            });
        }
        if let Some(bad) = vectors.iter().find(|v| v.len() != dim) {
            return Err(VectorDbError::DimensionMismatch {
                expected: dim,
                got: bad.len(),
            });
        }
        Ok(Self { dim, vectors })
    }

    /// Vector dimensionality of the index.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of indexed vectors.
    pub fn len(&self) -> usize {
        self.vectors.len()
    }

    /// Whether the index is empty.
    pub fn is_empty(&self) -> bool {
        self.vectors.is_empty()
    }

    /// Appends a vector to the index and returns its id.
    ///
    /// # Errors
    ///
    /// Returns [`VectorDbError::DimensionMismatch`] if the vector has the
    /// wrong dimensionality.
    pub fn add(&mut self, vector: Vec<f32>) -> Result<usize, VectorDbError> {
        if vector.len() != self.dim {
            return Err(VectorDbError::DimensionMismatch {
                expected: self.dim,
                got: vector.len(),
            });
        }
        self.vectors.push(vector);
        Ok(self.vectors.len() - 1)
    }

    /// Returns the `k` nearest neighbours of `query` by exact L2 search,
    /// ordered by increasing distance. Returns fewer than `k` results when
    /// the index holds fewer vectors.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    pub fn search(&self, query: &[f32], k: usize) -> Vec<Neighbor> {
        assert_eq!(
            query.len(),
            self.dim,
            "query dimensionality must match the index"
        );
        let mut hits: Vec<Neighbor> = self
            .vectors
            .iter()
            .enumerate()
            .map(|(id, v)| Neighbor {
                id,
                distance: l2_distance_squared(query, v),
            })
            .collect();
        partial_sort_by_distance(&mut hits, k);
        hits.truncate(k);
        hits
    }

    /// Searches a batch of queries, returning one result list per query.
    pub fn search_batch(&self, queries: &[Vec<f32>], k: usize) -> Vec<Vec<Neighbor>> {
        queries.iter().map(|q| self.search(q, k)).collect()
    }

    /// Read access to the stored vectors (used by the IVF trainer).
    pub fn vectors(&self) -> &[Vec<f32>] {
        &self.vectors
    }
}

/// Sorts `hits` so the `k` smallest distances come first (ties broken by id
/// for determinism), then fully orders that prefix.
pub(crate) fn partial_sort_by_distance(hits: &mut [Neighbor], k: usize) {
    let k = k.min(hits.len());
    if k == 0 {
        return;
    }
    hits.select_nth_unstable_by(k.saturating_sub(1), |a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
    hits[..k].sort_by(|a, b| {
        a.distance
            .partial_cmp(&b.distance)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.id.cmp(&b.id))
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;

    #[test]
    fn finds_exact_nearest_neighbor() {
        let index = FlatIndex::build(
            2,
            vec![
                vec![0.0, 0.0],
                vec![1.0, 1.0],
                vec![5.0, 5.0],
                vec![1.2, 0.9],
            ],
        )
        .unwrap();
        let hits = index.search(&[1.0, 1.0], 2);
        assert_eq!(hits[0].id, 1);
        assert_eq!(hits[0].distance, 0.0);
        assert_eq!(hits[1].id, 3);
    }

    #[test]
    fn results_are_sorted_by_distance() {
        let data = SyntheticDataset::uniform(500, 8, 11);
        let index = FlatIndex::build(8, data.vectors).unwrap();
        let hits = index.search(&[0.5; 8], 20);
        assert_eq!(hits.len(), 20);
        for w in hits.windows(2) {
            assert!(w[0].distance <= w[1].distance);
        }
    }

    #[test]
    fn k_larger_than_index_returns_everything() {
        let index = FlatIndex::build(2, vec![vec![0.0, 0.0], vec![1.0, 1.0]]).unwrap();
        let hits = index.search(&[0.0, 0.0], 10);
        assert_eq!(hits.len(), 2);
    }

    #[test]
    fn add_appends_and_returns_id() {
        let mut index = FlatIndex::build(2, vec![]).unwrap();
        assert!(index.is_empty());
        assert_eq!(index.add(vec![1.0, 2.0]).unwrap(), 0);
        assert_eq!(index.add(vec![3.0, 4.0]).unwrap(), 1);
        assert_eq!(index.len(), 2);
        assert!(index.add(vec![1.0]).is_err());
    }

    #[test]
    fn build_rejects_bad_inputs() {
        assert!(FlatIndex::build(0, vec![]).is_err());
        assert!(FlatIndex::build(2, vec![vec![1.0]]).is_err());
    }

    #[test]
    #[should_panic(expected = "query dimensionality")]
    fn search_rejects_wrong_query_dim() {
        let index = FlatIndex::build(2, vec![vec![0.0, 0.0]]).unwrap();
        let _ = index.search(&[1.0], 1);
    }

    #[test]
    fn batch_search_matches_single_search() {
        let data = SyntheticDataset::clustered(200, 8, 4, 5);
        let index = FlatIndex::build(8, data.vectors.clone()).unwrap();
        let queries = vec![data.vectors[0].clone(), data.vectors[100].clone()];
        let batch = index.search_batch(&queries, 5);
        assert_eq!(batch[0], index.search(&queries[0], 5));
        assert_eq!(batch[1], index.search(&queries[1], 5));
    }
}
