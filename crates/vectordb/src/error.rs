//! Error type for the vector-search substrate.

use std::error::Error;
use std::fmt;

/// Error raised by index construction or search.
///
/// ```
/// use rago_vectordb::VectorDbError;
/// let e = VectorDbError::DimensionMismatch { expected: 128, got: 64 };
/// assert!(e.to_string().contains("128"));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VectorDbError {
    /// A vector's dimensionality does not match the index's.
    DimensionMismatch {
        /// Dimensionality the index was built with.
        expected: usize,
        /// Dimensionality of the offending vector.
        got: usize,
    },
    /// The operation needs data that was not provided (e.g. training on an
    /// empty set, or building an index with zero dimensions).
    InvalidInput {
        /// Why the input was rejected.
        reason: String,
    },
}

impl fmt::Display for VectorDbError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            VectorDbError::DimensionMismatch { expected, got } => {
                write!(
                    f,
                    "dimension mismatch: index expects {expected}, vector has {got}"
                )
            }
            VectorDbError::InvalidInput { reason } => write!(f, "invalid input: {reason}"),
        }
    }
}

impl Error for VectorDbError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        assert!(VectorDbError::InvalidInput {
            reason: "empty training set".into()
        }
        .to_string()
        .contains("empty"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<VectorDbError>();
    }
}
