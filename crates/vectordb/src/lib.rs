//! A working vector-search substrate for the RAGO reproduction.
//!
//! The RAGO paper builds its retrieval stage on ScaNN-style IVF-PQ search
//! (inverted-file index over product-quantized codes) and calibrates its
//! retrieval cost model by benchmarking PQ-code scanning on real hardware.
//! This crate provides that substrate from scratch:
//!
//! * [`FlatIndex`] — exact brute-force k-nearest-neighbour search (used by the
//!   paper for the tiny per-request databases of the long-context paradigm);
//! * [`mod@kmeans`] — Lloyd's k-means used to train coarse quantizers and PQ
//!   codebooks;
//! * [`ProductQuantizer`] — PQ training, encoding, and asymmetric-distance
//!   (ADC) scanning;
//! * [`IvfPqIndex`] — an inverted-file index over PQ codes with `nprobe`
//!   search, the same algorithm family as ScaNN/Faiss-IVFPQ;
//! * [`recall_at_k`] — retrieval-quality evaluation against exact search;
//! * [`SyntheticDataset`] — clustered synthetic vector generators.
//!
//! The crate is self-contained (no BLAS, no SIMD intrinsics) and deterministic
//! given an RNG seed, which is what the cost-model calibration and the tests
//! need.
//!
//! # Examples
//!
//! ```
//! use rago_vectordb::{FlatIndex, IvfPqIndex, IvfPqParams, SyntheticDataset, recall_at_k};
//!
//! let data = SyntheticDataset::clustered(2_000, 32, 16, 42).vectors;
//! let queries: Vec<Vec<f32>> = data.iter().step_by(200).cloned().collect();
//!
//! let flat = FlatIndex::build(32, data.clone())?;
//! let exact: Vec<_> = queries.iter().map(|q| flat.search(q, 10)).collect();
//!
//! let params = IvfPqParams { num_lists: 32, num_subspaces: 16, bits_per_code: 8, ..Default::default() };
//! let ivf = IvfPqIndex::train(32, &data, params, 123)?;
//! let approx: Vec<_> = queries.iter().map(|q| ivf.search(q, 10, 8)).collect();
//!
//! let recall = recall_at_k(&exact, &approx, 10);
//! assert!(recall > 0.3); // approximate search finds a meaningful share of true neighbours
//! # Ok::<(), rago_vectordb::VectorDbError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dataset;
pub mod distance;
pub mod error;
pub mod flat;
pub mod ivf;
pub mod ivf_flat;
pub mod kmeans;
pub mod pq;
pub mod recall;

pub use dataset::SyntheticDataset;
pub use distance::{cosine_distance, inner_product, l2_distance, l2_distance_squared};
pub use error::VectorDbError;
pub use flat::{FlatIndex, Neighbor};
pub use ivf::{IvfPqIndex, IvfPqParams};
pub use ivf_flat::IvfFlatIndex;
pub use kmeans::{kmeans, KMeansParams, KMeansResult};
pub use pq::ProductQuantizer;
pub use recall::recall_at_k;
