//! Product quantization (PQ).
//!
//! PQ splits a `D`-dimensional vector into `M` subvectors and quantizes each
//! subvector with its own small codebook (typically 16 or 256 entries), so a
//! vector is stored as `M` small codes. Search computes an asymmetric
//! distance (ADC): the query is kept in full precision, a per-subspace lookup
//! table of query-to-centroid distances is built once, and scanning a code is
//! just `M` table lookups and adds.
//!
//! This is the compression that lets the RAGO paper hold 64 billion
//! 768-dimensional vectors in 96 bytes each (one byte per eight dimensions);
//! the per-code scan cost of this implementation is also what calibrates the
//! retrieval cost model's bytes-per-second constants.

use crate::distance::l2_distance_squared;
use crate::error::VectorDbError;
use crate::flat::{partial_sort_by_distance, Neighbor};
use crate::kmeans::{kmeans, nearest_centroid, KMeansParams};
use bytes::Bytes;
use serde::{Deserialize, Serialize};

/// A trained product quantizer.
///
/// # Examples
///
/// ```
/// use rago_vectordb::{ProductQuantizer, SyntheticDataset};
/// let data = SyntheticDataset::clustered(500, 16, 8, 1).vectors;
/// let pq = ProductQuantizer::train(16, 4, 4, &data, 7)?;
/// let code = pq.encode(&data[0]);
/// assert_eq!(code.len(), 4); // 4 subspaces x 1 byte
/// let approx = pq.decode(&code);
/// assert_eq!(approx.len(), 16);
/// # Ok::<(), rago_vectordb::VectorDbError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ProductQuantizer {
    dim: usize,
    num_subspaces: usize,
    bits_per_code: u32,
    /// `codebooks[m][c]` is the centroid `c` of subspace `m`
    /// (length `dim / num_subspaces`).
    codebooks: Vec<Vec<Vec<f32>>>,
}

impl ProductQuantizer {
    /// Trains a product quantizer on `training` vectors.
    ///
    /// * `dim` — vector dimensionality; must be divisible by `num_subspaces`.
    /// * `num_subspaces` — number of independently quantized subvectors
    ///   (each stored as one code).
    /// * `bits_per_code` — codebook size is `2^bits_per_code`; must be in
    ///   `[1, 8]` so one code fits in a byte.
    ///
    /// # Errors
    ///
    /// Returns [`VectorDbError::InvalidInput`] when the dimensionality is not
    /// divisible by the subspace count, `bits_per_code` is outside `[1, 8]`,
    /// or the training set is smaller than the codebook.
    pub fn train(
        dim: usize,
        num_subspaces: usize,
        bits_per_code: u32,
        training: &[Vec<f32>],
        seed: u64,
    ) -> Result<Self, VectorDbError> {
        if num_subspaces == 0 || dim == 0 || dim % num_subspaces != 0 {
            return Err(VectorDbError::InvalidInput {
                reason: format!(
                    "dimensionality {dim} must be divisible by the subspace count {num_subspaces}"
                ),
            });
        }
        if !(1..=8).contains(&bits_per_code) {
            return Err(VectorDbError::InvalidInput {
                reason: format!("bits_per_code must be in [1, 8], got {bits_per_code}"),
            });
        }
        let k = 1usize << bits_per_code;
        if training.len() < k {
            return Err(VectorDbError::InvalidInput {
                reason: format!(
                    "training set ({}) must contain at least 2^bits ({k}) vectors",
                    training.len()
                ),
            });
        }
        if let Some(bad) = training.iter().find(|v| v.len() != dim) {
            return Err(VectorDbError::DimensionMismatch {
                expected: dim,
                got: bad.len(),
            });
        }
        let sub_dim = dim / num_subspaces;
        let mut codebooks = Vec::with_capacity(num_subspaces);
        for m in 0..num_subspaces {
            let sub_training: Vec<Vec<f32>> = training
                .iter()
                .map(|v| v[m * sub_dim..(m + 1) * sub_dim].to_vec())
                .collect();
            let result = kmeans(
                &sub_training,
                KMeansParams {
                    k,
                    max_iterations: 20,
                    tolerance: 1e-4,
                },
                seed.wrapping_add(m as u64),
            )?;
            codebooks.push(result.centroids);
        }
        Ok(Self {
            dim,
            num_subspaces,
            bits_per_code,
            codebooks,
        })
    }

    /// Vector dimensionality the quantizer was trained for.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Number of subspaces (bytes per encoded vector).
    pub fn num_subspaces(&self) -> usize {
        self.num_subspaces
    }

    /// Number of bits per code (codebook size is `2^bits`).
    pub fn bits_per_code(&self) -> u32 {
        self.bits_per_code
    }

    /// Bytes occupied by one encoded vector (one byte per subspace).
    pub fn code_bytes(&self) -> usize {
        self.num_subspaces
    }

    /// Encodes a vector into its PQ code (one byte per subspace).
    ///
    /// # Panics
    ///
    /// Panics if the vector has the wrong dimensionality.
    pub fn encode(&self, vector: &[f32]) -> Vec<u8> {
        assert_eq!(vector.len(), self.dim, "vector dimensionality mismatch");
        let sub_dim = self.dim / self.num_subspaces;
        let mut code = Vec::with_capacity(self.num_subspaces);
        for m in 0..self.num_subspaces {
            let sub = &vector[m * sub_dim..(m + 1) * sub_dim];
            let (best, _) = nearest_centroid(sub, &self.codebooks[m]);
            code.push(best as u8);
        }
        code
    }

    /// Encodes a batch of vectors into a single contiguous code buffer
    /// (`num_subspaces` bytes per vector), as a database shard would store it.
    pub fn encode_batch(&self, vectors: &[Vec<f32>]) -> Bytes {
        let mut buf = Vec::with_capacity(vectors.len() * self.num_subspaces);
        for v in vectors {
            buf.extend_from_slice(&self.encode(v));
        }
        Bytes::from(buf)
    }

    /// Reconstructs the approximate vector represented by a PQ code.
    ///
    /// # Panics
    ///
    /// Panics if the code has the wrong length.
    pub fn decode(&self, code: &[u8]) -> Vec<f32> {
        assert_eq!(code.len(), self.num_subspaces, "code length mismatch");
        let sub_dim = self.dim / self.num_subspaces;
        let mut out = Vec::with_capacity(self.dim);
        for (m, &c) in code.iter().enumerate() {
            let centroid = &self.codebooks[m][usize::from(c) % self.codebooks[m].len()];
            out.extend_from_slice(&centroid[..sub_dim]);
        }
        out
    }

    /// Builds the asymmetric-distance lookup table for a query: entry
    /// `[m][c]` is the squared L2 distance between the query's subvector `m`
    /// and centroid `c` of subspace `m`.
    ///
    /// # Panics
    ///
    /// Panics if the query has the wrong dimensionality.
    pub fn build_lookup_table(&self, query: &[f32]) -> Vec<Vec<f32>> {
        assert_eq!(query.len(), self.dim, "query dimensionality mismatch");
        let sub_dim = self.dim / self.num_subspaces;
        self.codebooks
            .iter()
            .enumerate()
            .map(|(m, book)| {
                let sub = &query[m * sub_dim..(m + 1) * sub_dim];
                book.iter()
                    .map(|c| l2_distance_squared(sub, c))
                    .collect::<Vec<f32>>()
            })
            .collect()
    }

    /// Computes the asymmetric distance of one code against a prebuilt lookup
    /// table.
    pub fn adc_distance(&self, table: &[Vec<f32>], code: &[u8]) -> f32 {
        debug_assert_eq!(code.len(), self.num_subspaces);
        code.iter()
            .enumerate()
            .map(|(m, &c)| table[m][usize::from(c) % table[m].len()])
            .sum()
    }

    /// Scans a contiguous buffer of PQ codes (`num_subspaces` bytes per
    /// vector) with a prebuilt lookup table, returning the `k` closest codes.
    /// `ids` supplies the external id of each code in the buffer; when `None`
    /// the position in the buffer is used.
    pub fn scan(
        &self,
        table: &[Vec<f32>],
        codes: &[u8],
        ids: Option<&[usize]>,
        k: usize,
    ) -> Vec<Neighbor> {
        let stride = self.num_subspaces;
        let n = codes.len() / stride;
        let mut hits = Vec::with_capacity(n);
        for i in 0..n {
            let code = &codes[i * stride..(i + 1) * stride];
            let distance = self.adc_distance(table, code);
            let id = ids.map(|ids| ids[i]).unwrap_or(i);
            hits.push(Neighbor { id, distance });
        }
        partial_sort_by_distance(&mut hits, k);
        hits.truncate(k);
        hits
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;
    use crate::flat::FlatIndex;

    fn trained_pq() -> (ProductQuantizer, Vec<Vec<f32>>) {
        let data = SyntheticDataset::clustered(800, 16, 8, 3).vectors;
        let pq = ProductQuantizer::train(16, 4, 4, &data, 11).unwrap();
        (pq, data)
    }

    #[test]
    fn code_size_matches_configuration() {
        let (pq, data) = trained_pq();
        assert_eq!(pq.code_bytes(), 4);
        assert_eq!(pq.encode(&data[0]).len(), 4);
        assert_eq!(pq.encode_batch(&data[..10]).len(), 40);
        assert_eq!(pq.bits_per_code(), 4);
        assert_eq!(pq.dim(), 16);
        assert_eq!(pq.num_subspaces(), 4);
    }

    #[test]
    fn reconstruction_error_is_bounded() {
        // PQ reconstruction should be much closer to the original than a
        // random other vector is.
        let (pq, data) = trained_pq();
        let mut recon_err = 0.0f64;
        let mut cross_err = 0.0f64;
        for i in 0..100 {
            let code = pq.encode(&data[i]);
            let recon = pq.decode(&code);
            recon_err += f64::from(l2_distance_squared(&data[i], &recon));
            cross_err += f64::from(l2_distance_squared(&data[i], &data[(i + 351) % data.len()]));
        }
        assert!(
            recon_err < cross_err * 0.5,
            "recon {recon_err} vs cross {cross_err}"
        );
    }

    #[test]
    fn adc_distance_approximates_true_distance() {
        let (pq, data) = trained_pq();
        let query = &data[5];
        let table = pq.build_lookup_table(query);
        let code = pq.encode(&data[17]);
        let adc = pq.adc_distance(&table, &code);
        let true_dist = l2_distance_squared(query, &data[17]);
        // ADC equals distance to the reconstructed vector, which should be in
        // the same ballpark as the true distance.
        let recon_dist = l2_distance_squared(query, &pq.decode(&code));
        assert!((adc - recon_dist).abs() < recon_dist.max(1.0) * 0.05);
        assert!(adc < true_dist * 3.0 + 10.0);
    }

    #[test]
    fn pq_scan_recall_against_exact_search() {
        let (pq, data) = trained_pq();
        let flat = FlatIndex::build(16, data.clone()).unwrap();
        let codes = pq.encode_batch(&data);
        let queries = SyntheticDataset::clustered(20, 16, 8, 77).vectors;
        let mut hits_found = 0usize;
        let mut hits_total = 0usize;
        for q in &queries {
            let exact: Vec<usize> = flat.search(q, 10).into_iter().map(|n| n.id).collect();
            let table = pq.build_lookup_table(q);
            let approx: Vec<usize> = pq
                .scan(&table, &codes, None, 10)
                .into_iter()
                .map(|n| n.id)
                .collect();
            hits_total += exact.len();
            hits_found += exact.iter().filter(|id| approx.contains(id)).count();
        }
        let recall = hits_found as f64 / hits_total as f64;
        // The exact recall of this synthetic setup depends on the RNG stream
        // behind the dataset and the k-means init (the workspace `rand` shim
        // is xoshiro256++, not upstream StdRng); 4-bit PQ on clustered data
        // lands around 0.25–0.35.
        assert!(recall > 0.25, "PQ scan recall too low: {recall}");
    }

    #[test]
    fn scan_respects_external_ids() {
        let (pq, data) = trained_pq();
        let codes = pq.encode_batch(&data[..50]);
        let ids: Vec<usize> = (1000..1050).collect();
        let table = pq.build_lookup_table(&data[0]);
        let hits = pq.scan(&table, &codes, Some(&ids), 5);
        assert!(hits.iter().all(|h| (1000..1050).contains(&h.id)));
    }

    #[test]
    fn train_rejects_invalid_configs() {
        let data = SyntheticDataset::uniform(100, 16, 0).vectors;
        assert!(ProductQuantizer::train(16, 5, 4, &data, 0).is_err()); // 16 % 5 != 0
        assert!(ProductQuantizer::train(16, 4, 0, &data, 0).is_err());
        assert!(ProductQuantizer::train(16, 4, 9, &data, 0).is_err());
        assert!(ProductQuantizer::train(16, 4, 8, &data[..10], 0).is_err()); // fewer than 256
        assert!(ProductQuantizer::train(0, 4, 4, &data, 0).is_err());
    }

    #[test]
    fn paper_compression_ratio_is_representable() {
        // The paper stores 768-d vectors in 96 bytes: 96 subspaces of 8 dims.
        let data = SyntheticDataset::clustered(600, 768, 4, 5).vectors;
        let pq = ProductQuantizer::train(768, 96, 4, &data, 1).unwrap();
        assert_eq!(pq.code_bytes(), 96);
        let code = pq.encode(&data[0]);
        assert_eq!(code.len(), 96);
    }
}
