//! Lloyd's k-means clustering.
//!
//! Used to train the coarse quantizer (inverted-list centroids) of the IVF
//! index and the per-subspace codebooks of the product quantizer.

use crate::distance::l2_distance_squared;
use crate::error::VectorDbError;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// Parameters of a k-means run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct KMeansParams {
    /// Number of clusters to fit.
    pub k: usize,
    /// Maximum number of Lloyd iterations.
    pub max_iterations: usize,
    /// Stop early when the relative improvement of the objective between two
    /// iterations falls below this threshold.
    pub tolerance: f64,
}

impl Default for KMeansParams {
    fn default() -> Self {
        Self {
            k: 8,
            max_iterations: 25,
            tolerance: 1e-4,
        }
    }
}

/// Result of a k-means run.
#[derive(Debug, Clone)]
pub struct KMeansResult {
    /// The fitted centroids (`k` rows of the training dimensionality).
    pub centroids: Vec<Vec<f32>>,
    /// Cluster assignment of each training vector.
    pub assignments: Vec<usize>,
    /// Final value of the k-means objective (sum of squared distances).
    pub inertia: f64,
    /// Number of iterations actually executed.
    pub iterations: usize,
}

/// Runs Lloyd's k-means on `data` with the given parameters and RNG seed.
///
/// Centroids are initialized by sampling `k` distinct training vectors
/// (Forgy initialization). Empty clusters are re-seeded from the point
/// furthest from its centroid.
///
/// # Errors
///
/// Returns [`VectorDbError::InvalidInput`] if the training set is empty,
/// `k` is zero, or `k` exceeds the number of training vectors.
///
/// # Examples
///
/// ```
/// use rago_vectordb::{kmeans, KMeansParams, SyntheticDataset};
/// let data = SyntheticDataset::clustered(300, 8, 3, 1).vectors;
/// let result = kmeans(&data, KMeansParams { k: 3, ..Default::default() }, 42)?;
/// assert_eq!(result.centroids.len(), 3);
/// # Ok::<(), rago_vectordb::VectorDbError>(())
/// ```
pub fn kmeans(
    data: &[Vec<f32>],
    params: KMeansParams,
    seed: u64,
) -> Result<KMeansResult, VectorDbError> {
    if data.is_empty() {
        return Err(VectorDbError::InvalidInput {
            reason: "cannot run k-means on an empty training set".into(),
        });
    }
    if params.k == 0 {
        return Err(VectorDbError::InvalidInput {
            reason: "k must be at least 1".into(),
        });
    }
    if params.k > data.len() {
        return Err(VectorDbError::InvalidInput {
            reason: format!(
                "k ({}) exceeds the number of training vectors ({})",
                params.k,
                data.len()
            ),
        });
    }
    let dim = data[0].len();
    if let Some(bad) = data.iter().find(|v| v.len() != dim) {
        return Err(VectorDbError::DimensionMismatch {
            expected: dim,
            got: bad.len(),
        });
    }
    // Non-finite coordinates would poison every distance comparison below
    // (the unwrap audit's one genuinely fallible path): reject them up
    // front with a proper error instead of clustering garbage.
    if data.iter().any(|v| v.iter().any(|x| !x.is_finite())) {
        return Err(VectorDbError::InvalidInput {
            reason: "training vectors must be finite (found NaN or infinity)".into(),
        });
    }

    let mut rng = StdRng::seed_from_u64(seed);
    let mut indices: Vec<usize> = (0..data.len()).collect();
    indices.shuffle(&mut rng);
    let mut centroids: Vec<Vec<f32>> = indices[..params.k]
        .iter()
        .map(|&i| data[i].clone())
        .collect();

    let mut assignments = vec![0usize; data.len()];
    let mut prev_inertia = f64::INFINITY;
    let mut inertia = 0.0;
    let mut iterations = 0;

    for iter in 0..params.max_iterations {
        iterations = iter + 1;
        // Assignment step.
        inertia = 0.0;
        for (i, v) in data.iter().enumerate() {
            let (best, dist) = nearest_centroid(v, &centroids);
            assignments[i] = best;
            inertia += f64::from(dist);
        }
        // Update step.
        let mut sums = vec![vec![0.0f64; dim]; params.k];
        let mut counts = vec![0usize; params.k];
        for (i, v) in data.iter().enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(v.iter()) {
                *s += f64::from(x);
            }
        }
        for (c, centroid) in centroids.iter_mut().enumerate() {
            if counts[c] == 0 {
                // Re-seed an empty cluster from the point furthest from its
                // assigned centroid. Distances are finite here (inputs are
                // validated above), so `total_cmp` is a true total order —
                // the old `partial_cmp(..).unwrap_or(Equal)` silently
                // treated incomparable (NaN) pairs as ties.
                if let Some((far_idx, _)) = data
                    .iter()
                    .enumerate()
                    .map(|(i, v)| (i, l2_distance_squared(v, &centroid[..])))
                    .max_by(|a, b| a.1.total_cmp(&b.1))
                {
                    *centroid = data[far_idx].clone();
                }
                continue;
            }
            for (d, s) in centroid.iter_mut().zip(sums[c].iter()) {
                *d = (*s / counts[c] as f64) as f32;
            }
        }
        // Convergence check.
        if prev_inertia.is_finite() {
            let improvement = (prev_inertia - inertia) / prev_inertia.max(f64::MIN_POSITIVE);
            if improvement.abs() < params.tolerance {
                break;
            }
        }
        prev_inertia = inertia;
    }

    Ok(KMeansResult {
        centroids,
        assignments,
        inertia,
        iterations,
    })
}

/// Returns the index of the nearest centroid and the squared distance to it.
pub(crate) fn nearest_centroid(v: &[f32], centroids: &[Vec<f32>]) -> (usize, f32) {
    let mut best = 0usize;
    let mut best_dist = f32::INFINITY;
    for (i, c) in centroids.iter().enumerate() {
        let d = l2_distance_squared(v, c);
        if d < best_dist {
            best_dist = d;
            best = i;
        }
    }
    (best, best_dist)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::SyntheticDataset;

    #[test]
    fn recovers_well_separated_clusters() {
        let data = SyntheticDataset::clustered(600, 8, 4, 3);
        let result = kmeans(
            &data.vectors,
            KMeansParams {
                k: 4,
                max_iterations: 50,
                tolerance: 1e-6,
            },
            7,
        )
        .unwrap();
        assert_eq!(result.centroids.len(), 4);
        // Each found cluster should be dominated by a single true label.
        let mut purity_sum = 0.0;
        for c in 0..4 {
            let members: Vec<usize> = result
                .assignments
                .iter()
                .enumerate()
                .filter(|(_, &a)| a == c)
                .map(|(i, _)| data.labels[i])
                .collect();
            if members.is_empty() {
                continue;
            }
            let mut counts = std::collections::HashMap::new();
            for l in &members {
                *counts.entry(*l).or_insert(0usize) += 1;
            }
            let max = *counts.values().max().unwrap();
            purity_sum += max as f64 / members.len() as f64;
        }
        assert!(purity_sum / 4.0 > 0.8, "purity too low: {purity_sum}");
    }

    #[test]
    fn inertia_decreases_with_more_clusters() {
        let data = SyntheticDataset::clustered(400, 8, 8, 5).vectors;
        let few = kmeans(
            &data,
            KMeansParams {
                k: 2,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        let many = kmeans(
            &data,
            KMeansParams {
                k: 16,
                ..Default::default()
            },
            1,
        )
        .unwrap();
        assert!(many.inertia < few.inertia);
    }

    #[test]
    fn deterministic_given_seed() {
        let data = SyntheticDataset::clustered(200, 4, 4, 9).vectors;
        let a = kmeans(&data, KMeansParams::default(), 33).unwrap();
        let b = kmeans(&data, KMeansParams::default(), 33).unwrap();
        assert_eq!(a.centroids, b.centroids);
        assert_eq!(a.assignments, b.assignments);
    }

    #[test]
    fn rejects_non_finite_training_vectors() {
        let mut data = SyntheticDataset::uniform(10, 4, 0).vectors;
        data[3][1] = f32::NAN;
        assert!(matches!(
            kmeans(
                &data,
                KMeansParams {
                    k: 2,
                    ..Default::default()
                },
                0
            ),
            Err(VectorDbError::InvalidInput { .. })
        ));
        data[3][1] = f32::INFINITY;
        assert!(kmeans(&data, KMeansParams::default(), 0).is_err());
    }

    #[test]
    fn rejects_invalid_inputs() {
        let data = SyntheticDataset::uniform(10, 4, 0).vectors;
        assert!(kmeans(&[], KMeansParams::default(), 0).is_err());
        assert!(kmeans(
            &data,
            KMeansParams {
                k: 0,
                ..Default::default()
            },
            0
        )
        .is_err());
        assert!(kmeans(
            &data,
            KMeansParams {
                k: 11,
                ..Default::default()
            },
            0
        )
        .is_err());
    }

    #[test]
    fn k_equal_to_n_gives_zero_inertia() {
        let data = SyntheticDataset::uniform(8, 4, 2).vectors;
        let result = kmeans(
            &data,
            KMeansParams {
                k: 8,
                max_iterations: 50,
                tolerance: 1e-9,
            },
            0,
        )
        .unwrap();
        assert!(result.inertia < 1e-6);
    }
}
