//! Recall regression tests for the ANN indexes on a seeded dataset.
//!
//! The distance kernels have exact scalar oracles; until this suite, the
//! *indexes* built on them had none. Three tiers pin retrieval quality:
//!
//! 1. **Exactness** — IVF-flat at `nprobe = num_lists` scans every vector
//!    with exact L2 and must equal [`FlatIndex`] bit for bit (same ids,
//!    same distances, same order).
//! 2. **Monotonicity** — recall never drops as `nprobe` grows, for both
//!    IVF variants.
//! 3. **Pinned floors** — recall@10 of IVF-PQ (quantization error only, at
//!    full probe) and of a raw PQ scan on this seeded dataset must stay
//!    above floors set just below the currently measured values (0.53 and
//!    0.54 respectively), so a silent quality regression in k-means, PQ
//!    training, or the ADC scan fails loudly.

use rago_vectordb::{
    recall_at_k, FlatIndex, IvfFlatIndex, IvfPqIndex, IvfPqParams, ProductQuantizer,
    SyntheticDataset,
};
use std::sync::OnceLock;

struct Fixture {
    data: Vec<Vec<f32>>,
    queries: Vec<Vec<f32>>,
    flat: FlatIndex,
    ivf_pq: IvfPqIndex,
    ivf_flat: IvfFlatIndex,
}

/// One shared seeded dataset: 2 000 clustered 24-d vectors, 19 held-out
/// in-distribution queries, and all three indexes built on it (6-bit PQ
/// codes keep the debug-build training time reasonable).
fn fixture() -> &'static Fixture {
    static FIXTURE: OnceLock<Fixture> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let data = SyntheticDataset::clustered(2_000, 24, 16, 4).vectors;
        let params = IvfPqParams {
            num_lists: 32,
            num_subspaces: 12,
            bits_per_code: 6,
            training_sample: 800,
        };
        let ivf_pq = IvfPqIndex::train(24, &data, params, 77).unwrap();
        let ivf_flat = IvfFlatIndex::train(24, &data, 32, 77).unwrap();
        let flat = FlatIndex::build(24, data.clone()).unwrap();
        let queries: Vec<Vec<f32>> = data.iter().step_by(101).take(19).cloned().collect();
        Fixture {
            data,
            queries,
            flat,
            ivf_pq,
            ivf_flat,
        }
    })
}

fn exact_top10(f: &Fixture) -> Vec<Vec<rago_vectordb::Neighbor>> {
    f.queries.iter().map(|q| f.flat.search(q, 10)).collect()
}

/// Tier 1: probing every list with uncompressed vectors *is* a flat scan —
/// ids, distances, and order all equal.
#[test]
fn ivf_flat_full_probe_equals_flat_exactly() {
    let f = fixture();
    for q in &f.queries {
        assert_eq!(f.ivf_flat.search(q, 10, 32), f.flat.search(q, 10));
    }
    // Also at a k larger than any single list, forcing cross-list merging.
    for q in f.data.iter().step_by(500) {
        assert_eq!(f.ivf_flat.search(q, 200, 32), f.flat.search(q, 200));
    }
}

/// Tier 2: recall is monotone in `nprobe` for both IVF variants.
#[test]
fn recall_is_monotone_in_nprobe() {
    let f = fixture();
    let exact = exact_top10(f);
    let recall_at = |nprobe: usize, pq: bool| {
        let approx: Vec<_> = f
            .queries
            .iter()
            .map(|q| {
                if pq {
                    f.ivf_pq.search(q, 10, nprobe)
                } else {
                    f.ivf_flat.search(q, 10, nprobe)
                }
            })
            .collect();
        recall_at_k(&exact, &approx, 10)
    };
    for pq in [true, false] {
        let sweep: Vec<f64> = [1usize, 4, 8, 32]
            .iter()
            .map(|&n| recall_at(n, pq))
            .collect();
        for pair in sweep.windows(2) {
            assert!(
                pair[1] >= pair[0] - 1e-12,
                "recall dropped with more probes ({}): {sweep:?}",
                if pq { "ivf-pq" } else { "ivf-flat" }
            );
        }
    }
    // IVF-flat recovers full recall at full probe (it is exact there).
    assert_eq!(recall_at(32, false), 1.0);
}

/// Tier 3a: IVF-PQ at full probe is limited only by quantization error;
/// on this seeded dataset it measures 0.53 — pin a floor just below.
#[test]
fn ivf_pq_full_probe_recall_floor() {
    let f = fixture();
    let exact = exact_top10(f);
    let approx: Vec<_> = f
        .queries
        .iter()
        .map(|q| f.ivf_pq.search(q, 10, 32))
        .collect();
    let recall = recall_at_k(&exact, &approx, 10);
    assert!(
        recall > 0.45,
        "IVF-PQ full-probe recall regressed: {recall:.4} (was 0.53)"
    );
}

/// Tier 3b: a raw PQ scan over the whole database (no IVF pruning at all)
/// measures 0.54 on this dataset — pin a floor just below.
#[test]
fn raw_pq_scan_recall_floor() {
    let f = fixture();
    let exact = exact_top10(f);
    let pq = ProductQuantizer::train(24, 12, 6, &f.data, 55).unwrap();
    let codes = pq.encode_batch(&f.data);
    let approx: Vec<_> = f
        .queries
        .iter()
        .map(|q| {
            let table = pq.build_lookup_table(q);
            pq.scan(&table, &codes, None, 10)
        })
        .collect();
    let recall = recall_at_k(&exact, &approx, 10);
    assert!(
        recall > 0.45,
        "raw PQ scan recall regressed: {recall:.4} (was 0.54)"
    );
}

/// The IVF-flat index at partial probe dominates IVF-PQ at the same probe
/// count on this dataset (it shares the pruning but adds no quantization
/// error with this seed's identical coarse partitioning).
#[test]
fn ivf_flat_partial_probe_beats_ivf_pq() {
    let f = fixture();
    let exact = exact_top10(f);
    let flat4: Vec<_> = f
        .queries
        .iter()
        .map(|q| f.ivf_flat.search(q, 10, 4))
        .collect();
    let pq4: Vec<_> = f
        .queries
        .iter()
        .map(|q| f.ivf_pq.search(q, 10, 4))
        .collect();
    let r_flat = recall_at_k(&exact, &flat4, 10);
    let r_pq = recall_at_k(&exact, &pq4, 10);
    assert!(
        r_flat >= r_pq,
        "IVF-flat ({r_flat:.4}) fell below IVF-PQ ({r_pq:.4}) at nprobe=4"
    );
}
