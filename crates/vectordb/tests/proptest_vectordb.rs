//! Property-based tests for the vector-search substrate.

use proptest::prelude::*;
use rago_vectordb::{
    kmeans, FlatIndex, IvfPqIndex, IvfPqParams, KMeansParams, ProductQuantizer, SyntheticDataset,
};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Flat search always returns results ordered by non-decreasing distance
    /// and never more than min(k, n) of them.
    #[test]
    fn flat_search_is_sorted_and_bounded(
        n in 1usize..400,
        dim in 1usize..24,
        k in 1usize..50,
        seed in 0u64..1000,
    ) {
        let data = SyntheticDataset::uniform(n, dim, seed);
        let index = FlatIndex::build(dim, data.vectors.clone()).unwrap();
        let query = vec![0.5f32; dim];
        let hits = index.search(&query, k);
        prop_assert_eq!(hits.len(), k.min(n));
        for w in hits.windows(2) {
            prop_assert!(w[0].distance <= w[1].distance);
        }
        // Every returned id is a valid database id and ids are unique.
        let mut ids: Vec<usize> = hits.iter().map(|h| h.id).collect();
        prop_assert!(ids.iter().all(|&i| i < n));
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), hits.len());
    }

    /// The top-1 result of flat search is never farther than any other
    /// database vector (true exactness).
    #[test]
    fn flat_top1_is_globally_nearest(
        n in 2usize..200,
        dim in 1usize..16,
        seed in 0u64..1000,
    ) {
        let data = SyntheticDataset::uniform(n, dim, seed);
        let index = FlatIndex::build(dim, data.vectors.clone()).unwrap();
        let query = vec![0.25f32; dim];
        let best = index.search(&query, 1)[0];
        for v in &data.vectors {
            let d = rago_vectordb::l2_distance_squared(&query, v);
            prop_assert!(best.distance <= d + 1e-5);
        }
    }

    /// K-means never increases the number of distinct assignments beyond k and
    /// its inertia is non-negative.
    #[test]
    fn kmeans_assignments_are_within_k(
        n in 10usize..300,
        k in 1usize..10,
        seed in 0u64..500,
    ) {
        prop_assume!(k <= n);
        let data = SyntheticDataset::clustered(n, 8, 4, seed).vectors;
        let result = kmeans(&data, KMeansParams { k, max_iterations: 10, tolerance: 1e-4 }, seed).unwrap();
        prop_assert_eq!(result.assignments.len(), n);
        prop_assert!(result.assignments.iter().all(|&a| a < k));
        prop_assert!(result.inertia >= 0.0);
        prop_assert_eq!(result.centroids.len(), k);
    }

    /// PQ encode/decode round-trips produce vectors of the right shape, and
    /// the ADC distance of a vector to itself is no larger than to a far-away
    /// point (sanity of the lookup-table machinery).
    #[test]
    fn pq_roundtrip_shapes(
        seed in 0u64..200,
        subspaces in 1usize..5,
    ) {
        let dim = subspaces * 4;
        let data = SyntheticDataset::clustered(200, dim, 4, seed).vectors;
        let pq = ProductQuantizer::train(dim, subspaces, 4, &data, seed).unwrap();
        let code = pq.encode(&data[0]);
        prop_assert_eq!(code.len(), subspaces);
        prop_assert_eq!(pq.decode(&code).len(), dim);
        let table = pq.build_lookup_table(&data[0]);
        let d_self = pq.adc_distance(&table, &code);
        let far: Vec<f32> = data[0].iter().map(|x| x + 100.0).collect();
        let d_far = pq.adc_distance(&table, &pq.encode(&far));
        prop_assert!(d_self <= d_far);
    }

    /// IVF-PQ search returns at most k unique ids, all valid.
    #[test]
    fn ivf_search_returns_valid_ids(
        seed in 0u64..100,
        nprobe in 1usize..40,
        k in 1usize..20,
    ) {
        let data = SyntheticDataset::clustered(600, 16, 8, seed).vectors;
        let params = IvfPqParams { num_lists: 16, num_subspaces: 4, bits_per_code: 4, training_sample: 600 };
        let index = IvfPqIndex::train(16, &data, params, seed).unwrap();
        let hits = index.search(&data[0], k, nprobe);
        prop_assert!(hits.len() <= k);
        let mut ids: Vec<usize> = hits.iter().map(|h| h.id).collect();
        prop_assert!(ids.iter().all(|&i| i < data.len()));
        ids.sort_unstable();
        ids.dedup();
        prop_assert_eq!(ids.len(), hits.len());
        // Scan fraction is within (0, 1].
        let f = index.scan_fraction(nprobe);
        prop_assert!(f > 0.0 && f <= 1.0);
    }
}
