//! Dynamic (request-level) schedule evaluation: Step 3 of Algorithm 1 under
//! a real request stream instead of steady state.
//!
//! [`Schedule::evaluate`] scores a schedule analytically — every stage at its
//! steady-state batch, no queueing, no burstiness. This module drives the
//! same schedule through the request-level discrete-event engine of
//! `rago-serving-sim` instead: the profiled per-stage costs become
//! [`LatencyTable`]s, the placement's accelerator groups become engine
//! resources (collocated stages share one), and a generated
//! [`rago_workloads::Trace`] supplies arrivals. The result adds what the
//! static path cannot see — TTFT/TPOT *distributions* under load,
//! queueing-versus-service breakdown, SLO attainment, and goodput — which is
//! what the optimizer needs to rank Pareto-frontier schedules against a
//! latency SLO (the direction of the disaggregated-serving literature in
//! `PAPERS.md`).

use crate::error::RagoError;
use crate::pareto::{ParetoFrontier, ParetoPoint};
use crate::profiler::StageProfiler;
use crate::schedule::Schedule;
use rago_schema::{SloTarget, Stage};
use rago_serving_sim::engine::{
    DecodeSpec, IterativeSpec, LatencyTable, PipelineSpec, ServingEngine, ServingReport,
};
use rago_workloads::Trace;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Seed of the iterative-retrieval trigger positions, shared with the static
/// path so both evaluate the same random draw.
const ITERATIVE_SEED: u64 = 0x5EED;

/// The outcome of one dynamic schedule evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicEvaluation {
    /// Per-request timelines and aggregate distributions from the engine.
    pub report: ServingReport,
    /// Fraction of requests meeting the SLO's latency targets.
    pub attainment: f64,
    /// Requests meeting the SLO per second of makespan.
    pub goodput_rps: f64,
    /// Whether attainment reaches the SLO's required fraction.
    pub meets_slo: bool,
}

/// Builds the engine pipeline implied by `schedule` and the profiled stage
/// costs, then drives `trace` through it and scores the result against
/// `slo`.
///
/// Engine construction mirrors the static evaluation:
///
/// * every pre-decode accelerator group is one resource; stages collocated in
///   a group time-share it (latest-stage-first), disaggregated groups
///   pipeline;
/// * retrieval runs on its own CPU resource;
/// * per-stage latency tables are sampled from the (memoized) profiler at
///   every fill up to the schedule's batch sizes;
/// * iterative workloads pause decoding exactly as in
///   [`Schedule::evaluate`]'s simulation, with the same trigger-position
///   seed.
///
/// # Errors
///
/// Returns [`RagoError::InvalidConfig`] for structurally invalid schedules
/// and [`RagoError::CostModel`] when any profiled point is infeasible under
/// its allocation.
pub fn evaluate_schedule_dynamic(
    profiler: &StageProfiler,
    schedule: &Schedule,
    trace: &Trace,
    slo: &SloTarget,
) -> Result<DynamicEvaluation, RagoError> {
    schedule.validate()?;
    let spec = pipeline_spec(profiler, schedule)?;
    let report = ServingEngine::from_trace(spec, trace).run();
    // One pass over the timelines covers all three SLO figures.
    let met = report
        .timelines
        .iter()
        .filter(|t| slo.meets(t.ttft_s(), t.tpot_s()))
        .count();
    let attainment = if report.timelines.is_empty() {
        1.0
    } else {
        met as f64 / report.timelines.len() as f64
    };
    let goodput_rps = if report.metrics.makespan_s > 0.0 {
        met as f64 / report.metrics.makespan_s
    } else {
        0.0
    };
    let meets_slo = attainment >= slo.attainment;
    Ok(DynamicEvaluation {
        report,
        attainment,
        goodput_rps,
        meets_slo,
    })
}

/// Translates a schedule into the engine's pipeline description using the
/// profiled stage costs.
fn pipeline_spec(profiler: &StageProfiler, schedule: &Schedule) -> Result<PipelineSpec, RagoError> {
    let schema = profiler.schema();
    let batch = schedule.batching.predecode_batch;
    let retrieval_resource = schedule.placement.num_groups();

    let mut stages = Vec::new();
    for stage in schema.pipeline() {
        if stage == Stage::Decode {
            continue;
        }
        let (resource, chips) = if stage == Stage::Retrieval {
            (retrieval_resource, schedule.allocation.retrieval_servers)
        } else {
            let group =
                schedule
                    .placement
                    .group_of(stage)
                    .ok_or_else(|| RagoError::InvalidConfig {
                        reason: format!("stage `{stage}` is not placed in any accelerator group"),
                    })?;
            (group, schedule.allocation.group_xpus[group])
        };
        let mut table = Vec::with_capacity(batch as usize);
        for fill in 1..=batch {
            table.push(profiler.profile(stage, chips, fill)?.latency_s);
        }
        stages.push(rago_serving_sim::engine::StageSpec::new(
            stage.to_string(),
            resource,
            batch,
            LatencyTable::from_table(table),
        ));
    }

    let decode_batch = schedule.batching.decode_batch;
    let mut step_table = Vec::with_capacity(decode_batch as usize);
    for fill in 1..=decode_batch {
        let perf = profiler.profile(Stage::Decode, schedule.allocation.decode_xpus, fill)?;
        step_table.push(perf.step_latency_s.unwrap_or(perf.latency_s));
    }
    let mut spec = PipelineSpec::new(
        stages,
        DecodeSpec::new(decode_batch, LatencyTable::from_table(step_table)),
    );

    if schema.is_iterative() {
        let cfg = schema
            .retrieval
            .as_ref()
            .expect("iterative implies retrieval");
        let iter_batch = schedule.batching.iterative_batch.unwrap_or(batch).max(1);
        let retrieval = profiler.profile(
            Stage::Retrieval,
            schedule.allocation.retrieval_servers,
            iter_batch,
        )?;
        let prefix_chips = schedule
            .placement
            .group_of(Stage::Prefix)
            .map(|g| schedule.allocation.group_xpus[g])
            .unwrap_or(schedule.allocation.decode_xpus);
        let reprefix = profiler.profile(Stage::Prefix, prefix_chips, iter_batch)?;
        spec = spec.with_iterative(IterativeSpec {
            retrievals_per_sequence: cfg.retrievals_per_sequence.saturating_sub(1),
            iterative_batch: iter_batch,
            retrieval_prefix_latency_s: retrieval.latency_s + reprefix.latency_s,
            seed: ITERATIVE_SEED,
        });
    }
    Ok(spec)
}

/// Ranks the points of a Pareto frontier by SLO goodput under a request
/// trace, best first. Points whose dynamic evaluation fails are omitted
/// from the result (frontier points are statically feasible, and the
/// dynamic path only profiles at fills up to the already-feasible batch
/// sizes, so in practice every point evaluates).
///
/// Evaluations run across rayon worker threads — each point's
/// discrete-event run is independent and deterministic, and the final sort
/// breaks every tie, so the ranking does not depend on thread scheduling.
///
/// This is the SLO-aware selection step on top of Algorithm 1: the static
/// search reduces millions of candidates to a frontier, and the dynamic
/// engine — too expensive to run inside the search loop — re-scores just the
/// frontier under real arrivals.
pub fn rank_frontier_by_goodput(
    profiler: &StageProfiler,
    frontier: &ParetoFrontier,
    trace: &Trace,
    slo: &SloTarget,
) -> Vec<(ParetoPoint, DynamicEvaluation)> {
    let mut ranked: Vec<(ParetoPoint, DynamicEvaluation)> = frontier
        .iter()
        .par_bridge()
        .fold(Vec::new, |mut acc, point| {
            if let Ok(eval) = evaluate_schedule_dynamic(profiler, &point.schedule, trace, slo) {
                acc.push((point.clone(), eval));
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    ranked.sort_by(|a, b| {
        b.1.goodput_rps
            .total_cmp(&a.1.goodput_rps)
            .then(a.0.performance.ttft_s.total_cmp(&b.0.performance.ttft_s))
            .then_with(|| a.0.schedule.describe().cmp(&b.0.schedule.describe()))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{Rago, SearchOptions};
    use crate::placement::PlacementPlan;
    use crate::schedule::{BatchingPolicy, ResourceAllocation};
    use rago_hardware::ClusterSpec;
    use rago_schema::presets::{self, LlmSize};
    use rago_schema::SequenceProfile;
    use rago_workloads::{ArrivalProcess, TraceSpec};

    fn case1_profiler() -> StageProfiler {
        StageProfiler::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        )
    }

    fn case1_schedule() -> Schedule {
        Schedule {
            placement: PlacementPlan {
                predecode_groups: vec![vec![Stage::Prefix]],
            },
            allocation: ResourceAllocation {
                group_xpus: vec![8],
                decode_xpus: 8,
                retrieval_servers: 32,
            },
            batching: BatchingPolicy::new(8, 64),
        }
    }

    /// One micro-batch of exactly the pre-decode batch arriving at once, with
    /// the decode batch fully resident: the dynamic engine must agree with
    /// the static evaluation on both TTFT and TPOT.
    #[test]
    fn dynamic_matches_static_in_steady_state() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let static_perf = schedule.evaluate(&profiler).unwrap();
        let trace = TraceSpec {
            num_requests: 8, // == predecode batch, <= decode batch
            profile: SequenceProfile::paper_default(),
            arrival: ArrivalProcess::Instantaneous,
            length_jitter: 0.0,
            seed: 0,
        }
        .generate();
        let eval =
            evaluate_schedule_dynamic(&profiler, &schedule, &trace, &SloTarget::paper_default())
                .unwrap();
        // All eight requests flow as one micro-batch through retrieval and
        // prefix: TTFT equals the static sum of stage latencies.
        assert!(
            (eval.report.metrics.ttft.max_s - static_perf.ttft_s).abs() < 1e-9,
            "dynamic TTFT {} != static {}",
            eval.report.metrics.ttft.max_s,
            static_perf.ttft_s
        );
        // Decoding runs the full trace at fill 8; the static path reports
        // the step latency at the configured decode batch of 64, which the
        // fill-aware engine can only beat.
        assert!(eval.report.metrics.tpot.max_s <= static_perf.tpot_s + 1e-9);
        assert_eq!(eval.report.metrics.completed, 8);
    }

    /// With the decode step table pinned at the configured batch, TPOT
    /// matches the static step latency exactly.
    #[test]
    fn dynamic_tpot_equals_static_step_latency_at_full_fill() {
        let profiler = case1_profiler();
        let mut schedule = case1_schedule();
        schedule.batching = BatchingPolicy::new(8, 8); // decode batch == trace size
        let static_perf = schedule.evaluate(&profiler).unwrap();
        let trace = TraceSpec {
            num_requests: 8,
            profile: SequenceProfile::paper_default(),
            arrival: ArrivalProcess::Instantaneous,
            length_jitter: 0.0,
            seed: 0,
        }
        .generate();
        let eval =
            evaluate_schedule_dynamic(&profiler, &schedule, &trace, &SloTarget::paper_default())
                .unwrap();
        assert!(
            (eval.report.metrics.tpot.max_s - static_perf.tpot_s).abs() < 1e-9,
            "dynamic TPOT {} != static step latency {}",
            eval.report.metrics.tpot.max_s,
            static_perf.tpot_s
        );
    }

    #[test]
    fn overload_degrades_attainment_and_goodput_saturates() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let run = |rate: f64| {
            let trace = TraceSpec {
                num_requests: 150,
                profile: SequenceProfile::paper_default().with_decode_tokens(32),
                arrival: ArrivalProcess::Poisson { rate_rps: rate },
                length_jitter: 0.0,
                seed: 11,
            }
            .generate();
            evaluate_schedule_dynamic(&profiler, &schedule, &trace, &slo).unwrap()
        };
        let light = run(2.0);
        let crushed = run(4000.0);
        assert!(light.attainment >= crushed.attainment);
        assert!(
            crushed.attainment < 0.95,
            "4000 rps should overwhelm the schedule, attainment {}",
            crushed.attainment
        );
        // Queueing dominates under overload.
        assert!(crushed.report.metrics.queueing_mean_s > light.report.metrics.queueing_mean_s);
    }

    #[test]
    fn iterative_workloads_run_dynamically() {
        let profiler = StageProfiler::new(
            presets::case3_iterative(LlmSize::B8, 4),
            ClusterSpec::paper_default(),
        );
        let schedule = Schedule {
            batching: BatchingPolicy::new(8, 32).with_iterative_batch(8),
            ..case1_schedule()
        };
        let trace = TraceSpec {
            num_requests: 32,
            profile: SequenceProfile::paper_default().with_decode_tokens(64),
            arrival: ArrivalProcess::Instantaneous,
            length_jitter: 0.0,
            seed: 2,
        }
        .generate();
        let eval =
            evaluate_schedule_dynamic(&profiler, &schedule, &trace, &SloTarget::paper_default())
                .unwrap();
        assert!(eval.report.metrics.retrieval_batches > 0);
        // Pauses stretch the achieved TPOT beyond the raw step latency.
        let step = profiler
            .profile(Stage::Decode, 8, 32)
            .unwrap()
            .step_latency_s
            .unwrap();
        assert!(eval.report.metrics.tpot.max_s > step);
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        let profiler = case1_profiler();
        let mut schedule = case1_schedule();
        schedule.allocation.decode_xpus = 0;
        let trace = TraceSpec {
            num_requests: 4,
            profile: SequenceProfile::paper_default(),
            arrival: ArrivalProcess::Instantaneous,
            length_jitter: 0.0,
            seed: 0,
        }
        .generate();
        let err =
            evaluate_schedule_dynamic(&profiler, &schedule, &trace, &SloTarget::paper_default())
                .unwrap_err();
        assert!(matches!(err, RagoError::InvalidConfig { .. }));
    }

    #[test]
    fn frontier_ranking_orders_by_goodput() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        let options = SearchOptions {
            xpu_steps: vec![8, 32],
            server_steps: vec![32],
            predecode_batch_steps: vec![1, 16],
            decode_batch_steps: vec![128],
            iterative_batch_steps: vec![8],
            placements: None,
        };
        let frontier = rago.optimize(&options).unwrap();
        let trace = TraceSpec {
            num_requests: 60,
            profile: SequenceProfile::paper_default().with_decode_tokens(32),
            arrival: ArrivalProcess::Poisson { rate_rps: 20.0 },
            length_jitter: 0.1,
            seed: 5,
        }
        .generate();
        let slo = SloTarget::new(2.0, 0.1);
        let ranked = rago.rank_frontier_by_goodput(&frontier, &trace, &slo);
        assert_eq!(ranked.len(), frontier.len());
        for pair in ranked.windows(2) {
            assert!(pair[0].1.goodput_rps >= pair[1].1.goodput_rps);
        }
    }
}
