//! Dynamic (request-level) schedule evaluation: Step 3 of Algorithm 1 under
//! a real request stream instead of steady state.
//!
//! [`Schedule::evaluate`] scores a schedule analytically — every stage at its
//! steady-state batch, no queueing, no burstiness. This module drives the
//! same schedule through the request-level discrete-event engine of
//! `rago-serving-sim` instead: the profiled per-stage costs become
//! [`LatencyTable`]s, the placement's accelerator groups become engine
//! resources (collocated stages share one), and a generated
//! [`rago_workloads::Trace`] supplies arrivals. The result adds what the
//! static path cannot see — TTFT/TPOT *distributions* under load,
//! queueing-versus-service breakdown, SLO attainment, and goodput — which is
//! what the optimizer needs to rank Pareto-frontier schedules against a
//! latency SLO (the direction of the disaggregated-serving literature in
//! `PAPERS.md`).

use crate::error::RagoError;
use crate::pareto::{ParetoFrontier, ParetoPoint};
use crate::profiler::StageProfiler;
use crate::schedule::Schedule;
use rago_schema::{FleetConfig, RouterPolicy, SloTarget, Stage};
use rago_serving_sim::cluster::{ClusterEngine, FleetReport};
use rago_serving_sim::engine::{
    DecodeSpec, IterativeSpec, LatencyTable, PipelineSpec, ServingEngine, ServingReport,
};
use rago_serving_sim::MetricsMode;
use rago_workloads::Trace;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// Seed of the iterative-retrieval trigger positions, shared with the static
/// path so both evaluate the same random draw.
const ITERATIVE_SEED: u64 = 0x5EED;

/// The outcome of one dynamic schedule evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DynamicEvaluation {
    /// Per-request timelines and aggregate distributions from the engine.
    pub report: ServingReport,
    /// Fraction of requests meeting the SLO's latency targets.
    pub attainment: f64,
    /// Requests meeting the SLO per second of makespan.
    pub goodput_rps: f64,
    /// Whether attainment reaches the SLO's required fraction.
    pub meets_slo: bool,
}

/// Builds the engine pipeline implied by `schedule` and the profiled stage
/// costs, then drives `trace` through it and scores the result against
/// `slo`.
///
/// Engine construction mirrors the static evaluation:
///
/// * every pre-decode accelerator group is one resource; stages collocated in
///   a group time-share it (latest-stage-first), disaggregated groups
///   pipeline;
/// * retrieval runs on its own CPU resource;
/// * per-stage latency tables are sampled from the (memoized) profiler at
///   every fill up to the schedule's batch sizes;
/// * iterative workloads pause decoding exactly as in
///   [`Schedule::evaluate`]'s simulation, with the same trigger-position
///   seed.
///
/// # Errors
///
/// Returns [`RagoError::InvalidConfig`] for structurally invalid schedules
/// or an empty trace (a zero-request trace has no attainment to measure —
/// reporting `meets_slo = true` for it would let a misconfigured sweep pass
/// silently), and [`RagoError::CostModel`] when any profiled point is
/// infeasible under its allocation.
pub fn evaluate_schedule_dynamic(
    profiler: &StageProfiler,
    schedule: &Schedule,
    trace: &Trace,
    slo: &SloTarget,
) -> Result<DynamicEvaluation, RagoError> {
    evaluate_schedule_dynamic_with(profiler, schedule, trace, slo, &MetricsMode::Exact)
}

/// [`evaluate_schedule_dynamic`] with an explicit metrics mode: `Exact`
/// reproduces the default evaluation bit-for-bit (timelines and all), while
/// `Streaming` keeps only `O(histogram buckets)` state per run — the mode
/// the million-request `scale_stress` bench drives. A streaming mode must
/// name `slo` in its [`rago_serving_sim::StreamingConfig`], because SLO
/// attainment is counted online during the run.
///
/// # Errors
///
/// As [`evaluate_schedule_dynamic`], plus [`RagoError::InvalidConfig`] when
/// a streaming mode's configured SLO differs from `slo`.
pub fn evaluate_schedule_dynamic_with(
    profiler: &StageProfiler,
    schedule: &Schedule,
    trace: &Trace,
    slo: &SloTarget,
    mode: &MetricsMode,
) -> Result<DynamicEvaluation, RagoError> {
    schedule.validate()?;
    reject_empty_trace(trace)?;
    check_mode_slo(mode, slo)?;
    let spec = pipeline_spec(profiler, schedule)?;
    Ok(score_single(
        ServingEngine::from_trace(spec, trace).run_with_mode(mode),
        slo,
    ))
}

/// [`evaluate_schedule_dynamic_with`] recording a telemetry trace into
/// `rec`: the engine run is bit-identical to the untraced path for any
/// recorder (with [`rago_telemetry::NullRecorder`] the hooks compile to
/// nothing), and the profiler's memoization counters are appended as
/// Profile-lane counters after the run. `telemetry` only sets the derived
/// gauge cadence — event *filtering* is the recorder's concern.
///
/// # Errors
///
/// As [`evaluate_schedule_dynamic_with`].
pub fn evaluate_schedule_dynamic_traced<R: rago_telemetry::Recorder>(
    profiler: &StageProfiler,
    schedule: &Schedule,
    trace: &Trace,
    slo: &SloTarget,
    mode: &MetricsMode,
    telemetry: &rago_telemetry::TelemetryConfig,
    rec: &mut R,
) -> Result<DynamicEvaluation, RagoError> {
    schedule.validate()?;
    reject_empty_trace(trace)?;
    check_mode_slo(mode, slo)?;
    let spec = pipeline_spec(profiler, schedule)?;
    let engine = ServingEngine::from_trace(spec, trace).with_telemetry(telemetry.clone());
    let eval = score_single(engine.run_traced(mode, rec), slo);
    record_profiler_memo(profiler, rec, eval.report.metrics.makespan_s);
    Ok(eval)
}

/// Appends the profiler's lifetime memoization counters to a trace as
/// Profile-lane counters on the fleet track, using the same `sim.*` names
/// as [`rago_telemetry::SimProfile`]. Compiles to nothing for a
/// [`rago_telemetry::NullRecorder`].
pub fn record_profiler_memo<R: rago_telemetry::Recorder>(
    profiler: &StageProfiler,
    rec: &mut R,
    time_s: f64,
) {
    if !R::ENABLED {
        return;
    }
    use rago_telemetry::{Lane, TraceEvent, FLEET_TRACK};
    let (hits, misses) = profiler.memo_stats();
    let total = hits + misses;
    if total == 0 {
        return;
    }
    let mut emit = |name: &str, value: f64| {
        rec.record(TraceEvent::counter(
            time_s,
            FLEET_TRACK,
            Lane::Profile,
            name,
            value,
        ));
    };
    emit("sim.profiler_memo_hits", hits as f64);
    emit("sim.profiler_memo_misses", misses as f64);
    emit("sim.profiler_memo_hit_rate", hits as f64 / total as f64);
}

/// Rejects a streaming mode whose configured run-level SLO differs from the
/// SLO the evaluation scores against. The histogram sink counts attainment
/// *during* the run; querying a different SLO afterwards is unanswerable
/// (and the report accessors would panic), so the mismatch is surfaced as a
/// configuration error up front. Shared with [`crate::cached`].
pub(crate) fn check_mode_slo(mode: &MetricsMode, slo: &SloTarget) -> Result<(), RagoError> {
    if let MetricsMode::Streaming(config) = mode {
        if config.slo.as_ref() != Some(slo) {
            return Err(RagoError::InvalidConfig {
                reason: format!(
                    "streaming evaluation scores against {slo:?}, but the streaming \
                     configuration names {:?}; set StreamingConfig::with_slo to the \
                     scored SLO before the run",
                    config.slo
                ),
            });
        }
    }
    Ok(())
}

/// Scores a finished single-engine run against `slo`. Shared with the
/// cache-aware evaluation in [`crate::cached`], so cached and cache-less
/// paths score by one definition.
pub(crate) fn score_single(report: ServingReport, slo: &SloTarget) -> DynamicEvaluation {
    if report.streamed.is_some() {
        // A streaming run kept no timelines; the report answers from the
        // SLO counts the sink accumulated online.
        let attainment = report.attainment(slo);
        let goodput_rps = report.goodput_rps(slo);
        let meets_slo = attainment >= slo.attainment;
        return DynamicEvaluation {
            report,
            attainment,
            goodput_rps,
            meets_slo,
        };
    }
    // One pass over the timelines covers all three SLO figures.
    let met = report
        .timelines
        .iter()
        .filter(|t| slo.meets(t.ttft_s(), t.tpot_s()))
        .count();
    let attainment = met as f64 / report.timelines.len() as f64;
    // Goodput over the serving window (first arrival to last completion):
    // a trace whose first arrival is late must not deflate the rate.
    let goodput_rps = if report.metrics.serving_duration_s > 0.0 {
        met as f64 / report.metrics.serving_duration_s
    } else {
        0.0
    };
    let meets_slo = attainment >= slo.attainment;
    DynamicEvaluation {
        report,
        attainment,
        goodput_rps,
        meets_slo,
    }
}

/// Rejects zero-request traces, which would otherwise score a vacuous
/// `attainment = 1.0`. Shared with [`crate::timevarying`].
pub(crate) fn reject_empty_trace(trace: &Trace) -> Result<(), RagoError> {
    if trace.requests.is_empty() {
        return Err(RagoError::InvalidConfig {
            reason: "dynamic evaluation needs at least one request; \
                     a zero-request trace has no SLO attainment to measure"
                .into(),
        });
    }
    Ok(())
}

/// The outcome of one fleet-level dynamic evaluation: `replicas` copies of
/// the schedule's pipeline behind a router, sharing one arrival stream.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FleetEvaluation {
    /// Merged fleet report with per-replica breakdowns and imbalance stats.
    pub report: FleetReport,
    /// Fraction of all requests meeting the SLO's latency targets.
    pub attainment: f64,
    /// Requests meeting the SLO per second of fleet serving duration.
    pub goodput_rps: f64,
    /// Whether fleet attainment reaches the SLO's required fraction.
    pub meets_slo: bool,
}

/// Drives `trace` through a fleet of `fleet.replicas` identical replicas of
/// `schedule`'s pipeline behind `fleet.router`, and scores the merged
/// result against `slo`. The fleet-level analogue of
/// [`evaluate_schedule_dynamic`].
///
/// # Errors
///
/// Returns [`RagoError::InvalidConfig`] for invalid schedules, invalid
/// fleet configurations, or an empty trace, and [`RagoError::CostModel`]
/// when any profiled point is infeasible.
pub fn evaluate_fleet_dynamic(
    profiler: &StageProfiler,
    schedule: &Schedule,
    fleet: &FleetConfig,
    trace: &Trace,
    slo: &SloTarget,
) -> Result<FleetEvaluation, RagoError> {
    evaluate_fleet_dynamic_with(profiler, schedule, fleet, trace, slo, &MetricsMode::Exact)
}

/// [`evaluate_fleet_dynamic`] with an explicit metrics mode (see
/// [`evaluate_schedule_dynamic_with`] for the mode semantics).
///
/// Disaggregated `[Prefill, Decode]` pool fleets dispatch to
/// [`crate::disagg::evaluate_fleet_disagg`] and come back converted into the
/// flat [`FleetEvaluation`] shape (replicas renumbered prefill-first); they
/// require [`MetricsMode::Exact`]. A fleet declaring a single `[Monolithic]`
/// pool runs the flat path with the pool's router.
///
/// # Errors
///
/// As [`evaluate_fleet_dynamic`], plus [`RagoError::InvalidConfig`] when a
/// streaming mode's configured SLO differs from `slo`, or when a streaming
/// mode is combined with a disaggregated pool fleet.
pub fn evaluate_fleet_dynamic_with(
    profiler: &StageProfiler,
    schedule: &Schedule,
    fleet: &FleetConfig,
    trace: &Trace,
    slo: &SloTarget,
    mode: &MetricsMode,
) -> Result<FleetEvaluation, RagoError> {
    schedule.validate()?;
    fleet.validate().map_err(|e| RagoError::InvalidConfig {
        reason: e.to_string(),
    })?;
    reject_empty_trace(trace)?;
    check_mode_slo(mode, slo)?;
    if fleet.is_disaggregated() {
        if !matches!(mode, MetricsMode::Exact) {
            return Err(RagoError::InvalidConfig {
                reason: "streaming metrics are not supported for disaggregated pool fleets; \
                         score the exact merged report instead"
                    .into(),
            });
        }
        let report = crate::disagg::run_disagg(profiler, schedule, fleet, trace, None, &[])?;
        let eval = crate::disagg::score_disagg(report, schedule, slo);
        return Ok(crate::disagg::to_fleet_evaluation(&eval));
    }
    // A single declared Monolithic pool is the flat fleet spelled in pool
    // form — honour the pool's router (`validate` pinned the totals).
    let router = match fleet.pools.as_slice() {
        [only] => only.router,
        _ => fleet.router,
    };
    let spec = pipeline_spec(profiler, schedule)?;
    let engine = ClusterEngine::homogeneous(spec, fleet.replicas as usize, router);
    Ok(score_fleet(engine.run_trace_with_mode(trace, mode), slo))
}

/// [`evaluate_fleet_dynamic_with`] recording a telemetry trace into `rec`
/// (see [`evaluate_schedule_dynamic_traced`] for the tracing semantics).
/// Disaggregated pool fleets trace through
/// [`rago_serving_sim::pools::DisaggEngine`] with prefill replicas on
/// tracks `0..P` and decode replicas on `P..P+D`.
///
/// # Errors
///
/// As [`evaluate_fleet_dynamic_with`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_fleet_dynamic_traced<R: rago_telemetry::Recorder>(
    profiler: &StageProfiler,
    schedule: &Schedule,
    fleet: &FleetConfig,
    trace: &Trace,
    slo: &SloTarget,
    mode: &MetricsMode,
    telemetry: &rago_telemetry::TelemetryConfig,
    rec: &mut R,
) -> Result<FleetEvaluation, RagoError> {
    schedule.validate()?;
    fleet.validate().map_err(|e| RagoError::InvalidConfig {
        reason: e.to_string(),
    })?;
    reject_empty_trace(trace)?;
    check_mode_slo(mode, slo)?;
    if fleet.is_disaggregated() {
        if !matches!(mode, MetricsMode::Exact) {
            return Err(RagoError::InvalidConfig {
                reason: "streaming metrics are not supported for disaggregated pool fleets; \
                         score the exact merged report instead"
                    .into(),
            });
        }
        let report = crate::disagg::run_disagg_recorded(
            profiler,
            schedule,
            fleet,
            trace,
            None,
            &[],
            telemetry,
            rec,
        )?;
        let eval = crate::disagg::score_disagg(report, schedule, slo);
        record_profiler_memo(profiler, rec, eval.report.merged.metrics.makespan_s);
        return Ok(crate::disagg::to_fleet_evaluation(&eval));
    }
    let router = match fleet.pools.as_slice() {
        [only] => only.router,
        _ => fleet.router,
    };
    let spec = pipeline_spec(profiler, schedule)?;
    let engine = ClusterEngine::homogeneous(spec, fleet.replicas as usize, router)
        .with_telemetry(telemetry.clone());
    let requests = trace
        .requests
        .iter()
        .map(rago_serving_sim::engine::EngineRequest::from)
        .collect();
    let eval = score_fleet(engine.run_traced(requests, mode, rec), slo);
    record_profiler_memo(profiler, rec, eval.report.merged.metrics.makespan_s);
    Ok(eval)
}

/// A heterogeneous fleet: one (possibly different) schedule per replica —
/// e.g. serving two Pareto-frontier schedules side by side.
///
/// # Errors
///
/// Returns [`RagoError::InvalidConfig`] when `schedules` is empty, any
/// schedule is invalid, or the trace is empty, and [`RagoError::CostModel`]
/// when any profiled point is infeasible.
pub fn evaluate_heterogeneous_fleet_dynamic(
    profiler: &StageProfiler,
    schedules: &[Schedule],
    router: RouterPolicy,
    trace: &Trace,
    slo: &SloTarget,
) -> Result<FleetEvaluation, RagoError> {
    evaluate_heterogeneous_fleet_dynamic_with(
        profiler,
        schedules,
        router,
        trace,
        slo,
        &MetricsMode::Exact,
    )
}

/// [`evaluate_heterogeneous_fleet_dynamic`] with an explicit metrics mode
/// (see [`evaluate_schedule_dynamic_with`] for the mode semantics).
///
/// # Errors
///
/// As [`evaluate_heterogeneous_fleet_dynamic`], plus
/// [`RagoError::InvalidConfig`] when a streaming mode's configured SLO
/// differs from `slo`.
pub fn evaluate_heterogeneous_fleet_dynamic_with(
    profiler: &StageProfiler,
    schedules: &[Schedule],
    router: RouterPolicy,
    trace: &Trace,
    slo: &SloTarget,
    mode: &MetricsMode,
) -> Result<FleetEvaluation, RagoError> {
    if schedules.is_empty() {
        return Err(RagoError::InvalidConfig {
            reason: "a heterogeneous fleet needs at least one schedule".into(),
        });
    }
    reject_empty_trace(trace)?;
    check_mode_slo(mode, slo)?;
    let mut specs = Vec::with_capacity(schedules.len());
    for schedule in schedules {
        schedule.validate()?;
        specs.push(pipeline_spec(profiler, schedule)?);
    }
    let engine = ClusterEngine::heterogeneous(specs, router);
    Ok(score_fleet(engine.run_trace_with_mode(trace, mode), slo))
}

/// [`evaluate_heterogeneous_fleet_dynamic_with`] recording a telemetry
/// trace into `rec` (see [`evaluate_schedule_dynamic_traced`] for the
/// tracing semantics).
///
/// # Errors
///
/// As [`evaluate_heterogeneous_fleet_dynamic_with`].
#[allow(clippy::too_many_arguments)]
pub fn evaluate_heterogeneous_fleet_dynamic_traced<R: rago_telemetry::Recorder>(
    profiler: &StageProfiler,
    schedules: &[Schedule],
    router: RouterPolicy,
    trace: &Trace,
    slo: &SloTarget,
    mode: &MetricsMode,
    telemetry: &rago_telemetry::TelemetryConfig,
    rec: &mut R,
) -> Result<FleetEvaluation, RagoError> {
    if schedules.is_empty() {
        return Err(RagoError::InvalidConfig {
            reason: "a heterogeneous fleet needs at least one schedule".into(),
        });
    }
    reject_empty_trace(trace)?;
    check_mode_slo(mode, slo)?;
    let mut specs = Vec::with_capacity(schedules.len());
    for schedule in schedules {
        schedule.validate()?;
        specs.push(pipeline_spec(profiler, schedule)?);
    }
    let engine = ClusterEngine::heterogeneous(specs, router).with_telemetry(telemetry.clone());
    let requests = trace
        .requests
        .iter()
        .map(rago_serving_sim::engine::EngineRequest::from)
        .collect();
    let eval = score_fleet(engine.run_traced(requests, mode, rec), slo);
    record_profiler_memo(profiler, rec, eval.report.merged.metrics.makespan_s);
    Ok(eval)
}

/// Scores a finished fleet run against `slo`. Shared with
/// [`crate::cached`].
pub(crate) fn score_fleet(report: FleetReport, slo: &SloTarget) -> FleetEvaluation {
    let attainment = report.attainment(slo);
    let goodput_rps = report.goodput_rps(slo);
    let meets_slo = report.meets_slo(slo);
    FleetEvaluation {
        report,
        attainment,
        goodput_rps,
        meets_slo,
    }
}

/// Translates a schedule into the engine's pipeline description using the
/// profiled stage costs. Shared with the capacity planner
/// ([`crate::capacity`]), which builds the spec once and replicates it.
pub(crate) fn pipeline_spec(
    profiler: &StageProfiler,
    schedule: &Schedule,
) -> Result<PipelineSpec, RagoError> {
    pipeline_spec_cached(profiler, schedule, None)
}

/// [`pipeline_spec`] with an optional cache configuration attached: the
/// prefix-KV cache binds to the [`Stage::Prefix`] stage, and a
/// retrieval-result hit skips the [`Stage::Retrieval`] and [`Stage::Rerank`]
/// stages. With `cache = None` the spec is byte-for-byte the cache-less
/// pipeline, which is what makes the cached evaluators' degenerate cases
/// bit-exact.
pub(crate) fn pipeline_spec_cached(
    profiler: &StageProfiler,
    schedule: &Schedule,
    cache: Option<&rago_cache::CacheConfig>,
) -> Result<PipelineSpec, RagoError> {
    let schema = profiler.schema();
    let batch = schedule.batching.predecode_batch;
    let retrieval_resource = schedule.placement.num_groups();

    let mut prefix_stage = None;
    let mut retrieval_stages = Vec::new();
    let mut stages = Vec::new();
    for stage in schema.pipeline() {
        if stage == Stage::Decode {
            continue;
        }
        match stage {
            Stage::Retrieval | Stage::Rerank => retrieval_stages.push(stages.len()),
            Stage::Prefix => prefix_stage = Some(stages.len()),
            _ => {}
        }
        let (resource, chips) = if stage == Stage::Retrieval {
            (retrieval_resource, schedule.allocation.retrieval_servers)
        } else {
            let group =
                schedule
                    .placement
                    .group_of(stage)
                    .ok_or_else(|| RagoError::InvalidConfig {
                        reason: format!("stage `{stage}` is not placed in any accelerator group"),
                    })?;
            (group, schedule.allocation.group_xpus[group])
        };
        let mut table = Vec::with_capacity(batch as usize);
        for fill in 1..=batch {
            table.push(profiler.profile(stage, chips, fill)?.latency_s);
        }
        stages.push(rago_serving_sim::engine::StageSpec::new(
            stage.to_string(),
            resource,
            batch,
            LatencyTable::from_table(table),
        ));
    }

    let decode_batch = schedule.batching.decode_batch;
    let mut step_table = Vec::with_capacity(decode_batch as usize);
    for fill in 1..=decode_batch {
        let perf = profiler.profile(Stage::Decode, schedule.allocation.decode_xpus, fill)?;
        step_table.push(perf.step_latency_s.unwrap_or(perf.latency_s));
    }
    let mut spec = PipelineSpec::new(
        stages,
        DecodeSpec::new(decode_batch, LatencyTable::from_table(step_table)),
    );

    if schema.is_iterative() {
        let cfg = schema
            .retrieval
            .as_ref()
            .expect("iterative implies retrieval");
        let iter_batch = schedule.batching.iterative_batch.unwrap_or(batch).max(1);
        let retrieval = profiler.profile(
            Stage::Retrieval,
            schedule.allocation.retrieval_servers,
            iter_batch,
        )?;
        let prefix_chips = schedule
            .placement
            .group_of(Stage::Prefix)
            .map(|g| schedule.allocation.group_xpus[g])
            .unwrap_or(schedule.allocation.decode_xpus);
        let reprefix = profiler.profile(Stage::Prefix, prefix_chips, iter_batch)?;
        spec = spec.with_iterative(IterativeSpec {
            retrievals_per_sequence: cfg.retrievals_per_sequence.saturating_sub(1),
            iterative_batch: iter_batch,
            retrieval_prefix_latency_s: retrieval.latency_s + reprefix.latency_s,
            seed: ITERATIVE_SEED,
        });
    }

    if let Some(config) = cache {
        if config.prefix.is_some() && prefix_stage.is_none() {
            return Err(RagoError::InvalidConfig {
                reason: "a prefix-KV cache was configured but the schema's pipeline \
                         has no prefix stage to act on"
                    .into(),
            });
        }
        if config.retrieval.is_some() && retrieval_stages.is_empty() {
            return Err(RagoError::InvalidConfig {
                reason: "a retrieval-result cache was configured but the schema's \
                         pipeline has no retrieval or rerank stage to skip — its hit \
                         rate would measure nothing"
                    .into(),
            });
        }
        spec = spec.with_cache(rago_serving_sim::engine::CachePlan {
            config: *config,
            prefix_stage,
            retrieval_stages,
        });
    }
    Ok(spec)
}

/// Ranks the points of a Pareto frontier by SLO goodput under a request
/// trace, best first. Points whose dynamic evaluation fails are omitted
/// from the result (frontier points are statically feasible, and the
/// dynamic path only profiles at fills up to the already-feasible batch
/// sizes, so in practice every point evaluates).
///
/// Evaluations run across rayon worker threads — each point's
/// discrete-event run is independent and deterministic, and the final sort
/// breaks every tie, so the ranking does not depend on thread scheduling.
///
/// This is the SLO-aware selection step on top of Algorithm 1: the static
/// search reduces millions of candidates to a frontier, and the dynamic
/// engine — too expensive to run inside the search loop — re-scores just the
/// frontier under real arrivals.
///
/// # Panics
///
/// Panics on a zero-request trace. The per-point evaluation rejects empty
/// traces, so silently dropping the error here would turn a misconfigured
/// sweep into an empty ranking indistinguishable from "nothing was
/// feasible" — the exact failure mode the empty-trace guard exists to
/// surface.
pub fn rank_frontier_by_goodput(
    profiler: &StageProfiler,
    frontier: &ParetoFrontier,
    trace: &Trace,
    slo: &SloTarget,
) -> Vec<(ParetoPoint, DynamicEvaluation)> {
    assert!(
        !trace.requests.is_empty(),
        "cannot rank a frontier by goodput over a zero-request trace"
    );
    rank_frontier_with(frontier, |schedule| {
        evaluate_schedule_dynamic(profiler, schedule, trace, slo)
    })
}

/// The shared rank-and-sort machinery of [`rank_frontier_by_goodput`] and
/// [`crate::cached::rank_frontier_by_goodput_cached`]: evaluates every
/// frontier point with `evaluate` across rayon workers (points whose
/// evaluation fails are omitted), then sorts best-goodput-first with the
/// deterministic three-key tie-break (goodput, static TTFT, schedule
/// description) so the ranking never depends on thread scheduling.
pub(crate) fn rank_frontier_with(
    frontier: &ParetoFrontier,
    evaluate: impl Fn(&Schedule) -> Result<DynamicEvaluation, RagoError> + Sync,
) -> Vec<(ParetoPoint, DynamicEvaluation)> {
    let mut ranked: Vec<(ParetoPoint, DynamicEvaluation)> = frontier
        .iter()
        .par_bridge()
        .fold(Vec::new, |mut acc, point| {
            if let Ok(eval) = evaluate(&point.schedule) {
                acc.push((point.clone(), eval));
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    ranked.sort_by(|a, b| {
        b.1.goodput_rps
            .total_cmp(&a.1.goodput_rps)
            .then(a.0.performance.ttft_s.total_cmp(&b.0.performance.ttft_s))
            .then_with(|| a.0.schedule.describe().cmp(&b.0.schedule.describe()))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{Rago, SearchOptions};
    use crate::placement::PlacementPlan;
    use crate::schedule::{BatchingPolicy, ResourceAllocation};
    use rago_hardware::ClusterSpec;
    use rago_schema::presets::{self, LlmSize};
    use rago_schema::SequenceProfile;
    use rago_workloads::{ArrivalProcess, TraceSpec};

    fn case1_profiler() -> StageProfiler {
        StageProfiler::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        )
    }

    fn case1_schedule() -> Schedule {
        Schedule {
            placement: PlacementPlan {
                predecode_groups: vec![vec![Stage::Prefix]],
            },
            allocation: ResourceAllocation {
                group_xpus: vec![8],
                decode_xpus: 8,
                retrieval_servers: 32,
            },
            batching: BatchingPolicy::new(8, 64),
        }
    }

    /// One micro-batch of exactly the pre-decode batch arriving at once, with
    /// the decode batch fully resident: the dynamic engine must agree with
    /// the static evaluation on both TTFT and TPOT.
    #[test]
    fn dynamic_matches_static_in_steady_state() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let static_perf = schedule.evaluate(&profiler).unwrap();
        let trace = TraceSpec {
            num_requests: 8, // == predecode batch, <= decode batch
            profile: SequenceProfile::paper_default(),
            arrival: ArrivalProcess::Instantaneous,
            length_jitter: 0.0,
            seed: 0,
        }
        .generate();
        let eval =
            evaluate_schedule_dynamic(&profiler, &schedule, &trace, &SloTarget::paper_default())
                .unwrap();
        // All eight requests flow as one micro-batch through retrieval and
        // prefix: TTFT equals the static sum of stage latencies.
        assert!(
            (eval.report.metrics.ttft.max_s - static_perf.ttft_s).abs() < 1e-9,
            "dynamic TTFT {} != static {}",
            eval.report.metrics.ttft.max_s,
            static_perf.ttft_s
        );
        // Decoding runs the full trace at fill 8; the static path reports
        // the step latency at the configured decode batch of 64, which the
        // fill-aware engine can only beat.
        assert!(eval.report.metrics.tpot.max_s <= static_perf.tpot_s + 1e-9);
        assert_eq!(eval.report.metrics.completed, 8);
    }

    /// With the decode step table pinned at the configured batch, TPOT
    /// matches the static step latency exactly.
    #[test]
    fn dynamic_tpot_equals_static_step_latency_at_full_fill() {
        let profiler = case1_profiler();
        let mut schedule = case1_schedule();
        schedule.batching = BatchingPolicy::new(8, 8); // decode batch == trace size
        let static_perf = schedule.evaluate(&profiler).unwrap();
        let trace = TraceSpec {
            num_requests: 8,
            profile: SequenceProfile::paper_default(),
            arrival: ArrivalProcess::Instantaneous,
            length_jitter: 0.0,
            seed: 0,
        }
        .generate();
        let eval =
            evaluate_schedule_dynamic(&profiler, &schedule, &trace, &SloTarget::paper_default())
                .unwrap();
        assert!(
            (eval.report.metrics.tpot.max_s - static_perf.tpot_s).abs() < 1e-9,
            "dynamic TPOT {} != static step latency {}",
            eval.report.metrics.tpot.max_s,
            static_perf.tpot_s
        );
    }

    #[test]
    fn overload_degrades_attainment_and_goodput_saturates() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let run = |rate: f64| {
            let trace = TraceSpec {
                num_requests: 150,
                profile: SequenceProfile::paper_default().with_decode_tokens(32),
                arrival: ArrivalProcess::Poisson { rate_rps: rate },
                length_jitter: 0.0,
                seed: 11,
            }
            .generate();
            evaluate_schedule_dynamic(&profiler, &schedule, &trace, &slo).unwrap()
        };
        let light = run(2.0);
        let crushed = run(4000.0);
        assert!(light.attainment >= crushed.attainment);
        assert!(
            crushed.attainment < 0.95,
            "4000 rps should overwhelm the schedule, attainment {}",
            crushed.attainment
        );
        // Queueing dominates under overload.
        assert!(crushed.report.metrics.queueing_mean_s > light.report.metrics.queueing_mean_s);
    }

    #[test]
    fn iterative_workloads_run_dynamically() {
        let profiler = StageProfiler::new(
            presets::case3_iterative(LlmSize::B8, 4),
            ClusterSpec::paper_default(),
        );
        let schedule = Schedule {
            batching: BatchingPolicy::new(8, 32).with_iterative_batch(8),
            ..case1_schedule()
        };
        let trace = TraceSpec {
            num_requests: 32,
            profile: SequenceProfile::paper_default().with_decode_tokens(64),
            arrival: ArrivalProcess::Instantaneous,
            length_jitter: 0.0,
            seed: 2,
        }
        .generate();
        let eval =
            evaluate_schedule_dynamic(&profiler, &schedule, &trace, &SloTarget::paper_default())
                .unwrap();
        assert!(eval.report.metrics.retrieval_batches > 0);
        // Pauses stretch the achieved TPOT beyond the raw step latency.
        let step = profiler
            .profile(Stage::Decode, 8, 32)
            .unwrap()
            .step_latency_s
            .unwrap();
        assert!(eval.report.metrics.tpot.max_s > step);
    }

    /// Regression: an empty trace used to score a vacuous `attainment = 1.0`
    /// and `meets_slo = true`; it must be rejected instead.
    #[test]
    fn empty_traces_are_rejected() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let trace = TraceSpec {
            num_requests: 0,
            profile: SequenceProfile::paper_default(),
            arrival: ArrivalProcess::Instantaneous,
            length_jitter: 0.0,
            seed: 0,
        }
        .generate();
        let slo = SloTarget::paper_default();
        let err = evaluate_schedule_dynamic(&profiler, &schedule, &trace, &slo).unwrap_err();
        assert!(matches!(err, RagoError::InvalidConfig { .. }));
        let err = evaluate_fleet_dynamic(
            &profiler,
            &schedule,
            &rago_schema::FleetConfig::new(2, RouterPolicy::LeastOutstanding),
            &trace,
            &slo,
        )
        .unwrap_err();
        assert!(matches!(err, RagoError::InvalidConfig { .. }));
    }

    /// An empty trace must not produce an empty ranking that masquerades as
    /// "nothing was feasible" — it fails loudly instead.
    #[test]
    #[should_panic(expected = "zero-request trace")]
    fn frontier_ranking_rejects_empty_traces() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        let frontier = rago
            .optimize(&SearchOptions {
                xpu_steps: vec![8],
                server_steps: vec![32],
                predecode_batch_steps: vec![8],
                decode_batch_steps: vec![64],
                iterative_batch_steps: vec![8],
                placements: None,
            })
            .unwrap();
        let empty = TraceSpec {
            num_requests: 0,
            profile: SequenceProfile::paper_default(),
            arrival: ArrivalProcess::Instantaneous,
            length_jitter: 0.0,
            seed: 0,
        }
        .generate();
        let _ = rago.rank_frontier_by_goodput(&frontier, &empty, &SloTarget::paper_default());
    }

    /// Regression: goodput used to divide by the makespan measured from
    /// t = 0, so a trace shifted +100 s silently deflated it. It is now
    /// measured over the serving window and invariant to the shift.
    #[test]
    fn goodput_is_invariant_to_a_shifted_trace() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::paper_default();
        let trace = TraceSpec {
            num_requests: 48,
            profile: SequenceProfile::paper_default().with_decode_tokens(32),
            arrival: ArrivalProcess::Bursts {
                burst_size: 8,
                period_s: 0.5,
            },
            length_jitter: 0.0,
            seed: 7,
        }
        .generate();
        let shifted = trace.with_arrival_offset(100.0);
        let base = evaluate_schedule_dynamic(&profiler, &schedule, &trace, &slo).unwrap();
        let moved = evaluate_schedule_dynamic(&profiler, &schedule, &shifted, &slo).unwrap();
        assert!(base.goodput_rps > 0.0);
        assert!(
            (moved.goodput_rps - base.goodput_rps).abs() < 1e-9,
            "shifted trace changed goodput: {} vs {}",
            moved.goodput_rps,
            base.goodput_rps
        );
        assert!(
            (moved.report.metrics.throughput_rps - base.report.metrics.throughput_rps).abs() < 1e-9
        );
        assert!((moved.report.metrics.first_arrival_s - 100.0).abs() < 1e-9);
        // The drain tail is exposed and identical across the shift.
        assert!(
            (moved.report.metrics.drain_tail_s - base.report.metrics.drain_tail_s).abs() < 1e-9
        );
    }

    #[test]
    fn fleet_evaluation_scales_attainment_with_replicas() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let trace = TraceSpec {
            num_requests: 120,
            profile: SequenceProfile::paper_default().with_decode_tokens(32),
            arrival: ArrivalProcess::Poisson { rate_rps: 60.0 },
            length_jitter: 0.0,
            seed: 11,
        }
        .generate();
        let fleet = |n: u32| {
            evaluate_fleet_dynamic(
                &profiler,
                &schedule,
                &rago_schema::FleetConfig::new(n, RouterPolicy::LeastOutstanding),
                &trace,
                &slo,
            )
            .unwrap()
        };
        let one = fleet(1);
        let four = fleet(4);
        assert!(four.attainment >= one.attainment);
        assert_eq!(four.report.per_replica.len(), 4);
        assert_eq!(
            four.report
                .per_replica
                .iter()
                .map(|r| r.assigned)
                .sum::<usize>(),
            120
        );
        // A 1-replica fleet agrees with the single-engine path.
        let single = evaluate_schedule_dynamic(&profiler, &schedule, &trace, &slo).unwrap();
        assert_eq!(one.report.merged, single.report);
        assert!((one.attainment - single.attainment).abs() < 1e-12);
        assert!((one.goodput_rps - single.goodput_rps).abs() < 1e-12);
    }

    /// The degenerate pool shape: a fleet declaring one explicit Monolithic
    /// pool is **bit-identical** to the flat fleet it spells out — same
    /// engine, same router, same replica count, byte-for-byte equal report.
    #[test]
    fn single_monolithic_pool_is_bit_identical_to_flat_fleet() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let trace = TraceSpec {
            num_requests: 90,
            profile: SequenceProfile::paper_default().with_decode_tokens(32),
            arrival: ArrivalProcess::Poisson { rate_rps: 50.0 },
            length_jitter: 0.2,
            seed: 7,
        }
        .generate();
        for router in [
            RouterPolicy::RoundRobin,
            RouterPolicy::LeastOutstanding,
            RouterPolicy::JoinShortestQueue,
        ] {
            let flat = rago_schema::FleetConfig::new(3, router);
            let pooled = rago_schema::FleetConfig {
                replicas: 3,
                // A deliberately different top-level router: the declared
                // pool's router must win for the [Monolithic] shape.
                router: RouterPolicy::RoundRobin,
                pools: vec![rago_schema::PoolSpec::new(
                    rago_schema::PoolRole::Monolithic,
                    3,
                    router,
                )],
                transfer: rago_schema::KvTransferModel::zero(),
            };
            let a = evaluate_fleet_dynamic(&profiler, &schedule, &flat, &trace, &slo).unwrap();
            let b = evaluate_fleet_dynamic(&profiler, &schedule, &pooled, &trace, &slo).unwrap();
            assert_eq!(a.report, b.report, "router {router:?}");
            assert_eq!(a.attainment, b.attainment);
            assert_eq!(a.goodput_rps, b.goodput_rps);
            assert_eq!(a.meets_slo, b.meets_slo);
        }
    }

    #[test]
    fn heterogeneous_fleet_runs_distinct_schedules() {
        let profiler = case1_profiler();
        let small = case1_schedule();
        let mut big = case1_schedule();
        big.allocation.group_xpus = vec![16];
        big.allocation.decode_xpus = 16;
        let slo = SloTarget::paper_default();
        let trace = TraceSpec {
            num_requests: 60,
            profile: SequenceProfile::paper_default().with_decode_tokens(32),
            arrival: ArrivalProcess::Poisson { rate_rps: 30.0 },
            length_jitter: 0.1,
            seed: 3,
        }
        .generate();
        let eval = evaluate_heterogeneous_fleet_dynamic(
            &profiler,
            &[small, big],
            RouterPolicy::LeastOutstanding,
            &trace,
            &slo,
        )
        .unwrap();
        assert_eq!(eval.report.per_replica.len(), 2);
        assert_eq!(eval.report.merged.metrics.completed, 60);
        assert!(evaluate_heterogeneous_fleet_dynamic(
            &profiler,
            &[],
            RouterPolicy::RoundRobin,
            &trace,
            &slo
        )
        .is_err());
    }

    #[test]
    fn invalid_schedules_are_rejected() {
        let profiler = case1_profiler();
        let mut schedule = case1_schedule();
        schedule.allocation.decode_xpus = 0;
        let trace = TraceSpec {
            num_requests: 4,
            profile: SequenceProfile::paper_default(),
            arrival: ArrivalProcess::Instantaneous,
            length_jitter: 0.0,
            seed: 0,
        }
        .generate();
        let err =
            evaluate_schedule_dynamic(&profiler, &schedule, &trace, &SloTarget::paper_default())
                .unwrap_err();
        assert!(matches!(err, RagoError::InvalidConfig { .. }));
    }

    #[test]
    fn frontier_ranking_orders_by_goodput() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        let options = SearchOptions {
            xpu_steps: vec![8, 32],
            server_steps: vec![32],
            predecode_batch_steps: vec![1, 16],
            decode_batch_steps: vec![128],
            iterative_batch_steps: vec![8],
            placements: None,
        };
        let frontier = rago.optimize(&options).unwrap();
        let trace = TraceSpec {
            num_requests: 60,
            profile: SequenceProfile::paper_default().with_decode_tokens(32),
            arrival: ArrivalProcess::Poisson { rate_rps: 20.0 },
            length_jitter: 0.1,
            seed: 5,
        }
        .generate();
        let slo = SloTarget::new(2.0, 0.1);
        let ranked = rago.rank_frontier_by_goodput(&frontier, &trace, &slo);
        assert_eq!(ranked.len(), frontier.len());
        for pair in ranked.windows(2) {
            assert!(pair[0].1.goodput_rps >= pair[1].1.goodput_rps);
        }
    }

    /// SLO counting is exact in streaming mode (only latency *percentiles*
    /// are histogram-approximated), so the streaming evaluation's scores
    /// must equal the exact evaluation's bit for bit — with no timelines
    /// retained.
    #[test]
    fn streaming_evaluation_scores_match_exact() {
        use rago_schema::HistogramSpec;
        use rago_serving_sim::StreamingConfig;

        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(2.0, 0.1);
        let trace = TraceSpec {
            num_requests: 80,
            profile: SequenceProfile::paper_default().with_decode_tokens(32),
            arrival: ArrivalProcess::Poisson { rate_rps: 30.0 },
            length_jitter: 0.2,
            seed: 11,
        }
        .generate();
        let exact = evaluate_schedule_dynamic(&profiler, &schedule, &trace, &slo).unwrap();
        let mode =
            MetricsMode::Streaming(StreamingConfig::new(HistogramSpec::default()).with_slo(slo));
        let streamed =
            evaluate_schedule_dynamic_with(&profiler, &schedule, &trace, &slo, &mode).unwrap();

        assert_eq!(streamed.attainment, exact.attainment);
        assert_eq!(streamed.goodput_rps, exact.goodput_rps);
        assert_eq!(streamed.meets_slo, exact.meets_slo);
        assert!(streamed.report.timelines.is_empty());
        assert_eq!(streamed.report.metrics.requests, 80);
        // Percentile estimates land within one bucket width of the exact
        // order statistics.
        let w = HistogramSpec::default().bucket_width_s;
        for (est, true_v) in [
            (
                streamed.report.metrics.ttft.p99_s,
                exact.report.metrics.ttft.p99_s,
            ),
            (
                streamed.report.metrics.latency.p50_s,
                exact.report.metrics.latency.p50_s,
            ),
        ] {
            assert!(
                (est - true_v).abs() <= w * (1.0 + 1e-9),
                "estimate {est} strayed beyond one bucket width from {true_v}"
            );
        }
        // The streaming report retains orders of magnitude less memory than
        // the per-request timelines.
        assert!(streamed.report.retained_bytes() < exact.report.retained_bytes());

        // The fleet evaluator agrees through the same sink plumbing.
        let fleet = FleetConfig::new(2, RouterPolicy::LeastOutstanding);
        let exact_fleet =
            evaluate_fleet_dynamic(&profiler, &schedule, &fleet, &trace, &slo).unwrap();
        let streamed_fleet =
            evaluate_fleet_dynamic_with(&profiler, &schedule, &fleet, &trace, &slo, &mode).unwrap();
        assert_eq!(streamed_fleet.attainment, exact_fleet.attainment);
        assert_eq!(streamed_fleet.goodput_rps, exact_fleet.goodput_rps);
        assert!(streamed_fleet.report.merged.timelines.is_empty());
    }

    /// A streaming mode that does not name the scored SLO is rejected with
    /// a configuration error, not a mid-run panic.
    #[test]
    fn streaming_mode_must_name_the_scored_slo() {
        use rago_schema::HistogramSpec;
        use rago_serving_sim::StreamingConfig;

        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let trace = TraceSpec {
            num_requests: 5,
            profile: SequenceProfile::paper_default(),
            arrival: ArrivalProcess::Instantaneous,
            length_jitter: 0.0,
            seed: 0,
        }
        .generate();
        let unconfigured = MetricsMode::Streaming(StreamingConfig::new(HistogramSpec::default()));
        assert!(matches!(
            evaluate_schedule_dynamic_with(
                &profiler,
                &schedule,
                &trace,
                &SloTarget::paper_default(),
                &unconfigured
            ),
            Err(RagoError::InvalidConfig { .. })
        ));
    }
}
