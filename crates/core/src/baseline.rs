//! The LLM-system-extension baseline (§7.1).
//!
//! The paper's baseline treats a RAG pipeline as a simple extension of an
//! LLM-only serving system: every auxiliary component (encoder, rewriter,
//! reranker) is collocated with the main LLM's prefix partition, the prefix
//! and decode partitions receive an equal number of chips (a 1:1 ratio tuned
//! to their similar time consumption), and all stages before decode share one
//! batch size. Only the batch sizes are swept to build its Pareto frontier.

use crate::error::RagoError;
use crate::pareto::{ParetoFrontier, ParetoPoint};
use crate::placement::PlacementPlan;
use crate::profiler::StageProfiler;
use crate::schedule::{BatchingPolicy, ResourceAllocation, Schedule};
use rago_hardware::ClusterSpec;
use rago_schema::RagSchema;

/// The baseline serving system built as an extension of an LLM-only system.
#[derive(Debug, Clone)]
pub struct BaselineSystem {
    profiler: StageProfiler,
    total_xpus: u32,
    retrieval_servers: u32,
}

impl BaselineSystem {
    /// Creates the baseline for `schema` on `cluster`, using `total_xpus`
    /// accelerators split 1:1 between the prefix-side partition (which also
    /// hosts all auxiliary components) and the decode partition. Retrieval
    /// gets the minimum number of servers that holds the database.
    pub fn new(schema: RagSchema, cluster: ClusterSpec, total_xpus: u32) -> Self {
        let profiler = StageProfiler::new(schema, cluster);
        let retrieval_servers = profiler.min_retrieval_servers();
        Self {
            profiler,
            total_xpus,
            retrieval_servers,
        }
    }

    /// The underlying profiler.
    pub fn profiler(&self) -> &StageProfiler {
        &self.profiler
    }

    /// The baseline schedule for a given pre-decode batch size and decode
    /// batch size.
    pub fn schedule(&self, predecode_batch: u32, decode_batch: u32) -> Schedule {
        let schema = self.profiler.schema();
        let placement = PlacementPlan::fully_collocated(schema);
        let prefix_side = (self.total_xpus / 2).max(1);
        let decode_side = (self.total_xpus - prefix_side).max(1);
        let mut batching = BatchingPolicy::new(predecode_batch, decode_batch);
        if schema.is_iterative() {
            batching = batching.with_iterative_batch(predecode_batch);
        }
        Schedule {
            placement,
            allocation: ResourceAllocation {
                group_xpus: vec![prefix_side],
                decode_xpus: decode_side,
                retrieval_servers: self.retrieval_servers,
            },
            batching,
        }
    }

    /// Evaluates the baseline over a sweep of batch sizes and returns its
    /// Pareto frontier.
    ///
    /// # Errors
    ///
    /// Returns [`RagoError::NoFeasibleSchedule`] if no batch size is feasible
    /// (e.g. the model does not fit in half the chips).
    pub fn optimize(
        &self,
        predecode_batches: &[u32],
        decode_batches: &[u32],
    ) -> Result<ParetoFrontier, RagoError> {
        let mut points = Vec::new();
        for &pb in predecode_batches {
            for &db in decode_batches {
                let schedule = self.schedule(pb, db);
                if let Ok(performance) = schedule.evaluate(&self.profiler) {
                    points.push(ParetoPoint {
                        schedule,
                        performance,
                    });
                }
            }
        }
        if points.is_empty() {
            return Err(RagoError::NoFeasibleSchedule {
                reason: format!(
                    "the baseline cannot serve `{}` with {} XPUs",
                    self.profiler.schema().name,
                    self.total_xpus
                ),
            });
        }
        Ok(ParetoFrontier::from_points(points))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rago_schema::presets::{self, LlmSize};
    use rago_schema::Stage;

    #[test]
    fn baseline_collocates_everything_with_prefix() {
        let schema = presets::case4_rewriter_reranker(LlmSize::B70);
        let baseline = BaselineSystem::new(schema, ClusterSpec::paper_default(), 64);
        let schedule = baseline.schedule(8, 256);
        assert_eq!(schedule.placement.num_groups(), 1);
        assert!(schedule.placement.predecode_groups[0].contains(&Stage::RewritePrefix));
        assert!(schedule.placement.predecode_groups[0].contains(&Stage::Prefix));
        // 1:1 chip split.
        assert_eq!(schedule.allocation.group_xpus[0], 32);
        assert_eq!(schedule.allocation.decode_xpus, 32);
    }

    #[test]
    fn baseline_produces_a_frontier() {
        let schema = presets::case1_hyperscale(LlmSize::B8, 1);
        let baseline = BaselineSystem::new(schema, ClusterSpec::paper_default(), 32);
        let frontier = baseline.optimize(&[1, 8, 32], &[64, 256]).unwrap();
        assert!(!frontier.is_empty());
        assert!(
            frontier
                .max_qps_per_chip()
                .unwrap()
                .performance
                .qps_per_chip
                > 0.0
        );
    }

    #[test]
    fn infeasible_baseline_is_reported() {
        // A 405B model cannot fit in 2 chips (1 per partition).
        let schema = presets::case1_hyperscale(LlmSize::B405, 1);
        let baseline = BaselineSystem::new(schema, ClusterSpec::paper_default(), 2);
        assert!(matches!(
            baseline.optimize(&[1], &[16]),
            Err(RagoError::NoFeasibleSchedule { .. })
        ));
    }
}
