//! Pareto-frontier extraction over (TTFT, QPS/chip).

use crate::metrics::RagPerformance;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// One point of the performance Pareto frontier: a schedule and the
/// performance it achieves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// The schedule (placement, allocation, batching) achieving this point.
    pub schedule: Schedule,
    /// The end-to-end performance of that schedule.
    pub performance: RagPerformance,
}

/// The Pareto frontier of evaluated schedules, sorted by increasing TTFT.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ParetoFrontier {
    /// Non-dominated points, sorted by increasing TTFT (and therefore
    /// increasing QPS/chip).
    pub points: Vec<ParetoPoint>,
    /// Total number of schedules that were evaluated to produce the frontier.
    pub evaluated_schedules: usize,
}

impl ParetoFrontier {
    /// Builds the frontier from an arbitrary collection of evaluated points.
    pub fn from_points(mut candidates: Vec<ParetoPoint>) -> Self {
        let evaluated = candidates.len();
        // Sort by TTFT ascending, then QPS/chip descending so a single sweep
        // keeps exactly the non-dominated points.
        candidates.sort_by(|a, b| {
            a.performance
                .ttft_s
                .total_cmp(&b.performance.ttft_s)
                .then(b.performance.qps_per_chip.total_cmp(&a.performance.qps_per_chip))
        });
        let mut points: Vec<ParetoPoint> = Vec::new();
        let mut best_qps = f64::NEG_INFINITY;
        for cand in candidates {
            if cand.performance.qps_per_chip > best_qps {
                best_qps = cand.performance.qps_per_chip;
                points.push(cand);
            }
        }
        Self {
            points,
            evaluated_schedules: evaluated,
        }
    }

    /// The point with the highest QPS/chip (throughput-optimal schedule).
    pub fn max_qps_per_chip(&self) -> Option<&ParetoPoint> {
        self.points.last()
    }

    /// The point with the lowest TTFT (latency-optimal schedule).
    pub fn min_ttft(&self) -> Option<&ParetoPoint> {
        self.points.first()
    }

    /// Number of points on the frontier.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over the frontier points in increasing-TTFT order.
    pub fn iter(&self) -> std::slice::Iter<'_, ParetoPoint> {
        self.points.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    fn point(ttft: f64, qpc: f64) -> ParetoPoint {
        ParetoPoint {
            schedule: Schedule::test_dummy(),
            performance: RagPerformance {
                ttft_s: ttft,
                tpot_s: 0.01,
                qps: qpc * 10.0,
                qps_per_chip: qpc,
                total_xpus: 10,
                retrieval_servers: 4,
            },
        }
    }

    #[test]
    fn frontier_keeps_only_non_dominated_points() {
        let frontier = ParetoFrontier::from_points(vec![
            point(0.1, 1.0),
            point(0.2, 2.0),
            point(0.15, 0.5), // dominated by (0.1, 1.0)
            point(0.3, 1.5),  // dominated by (0.2, 2.0)
            point(0.4, 3.0),
        ]);
        assert_eq!(frontier.len(), 3);
        assert_eq!(frontier.evaluated_schedules, 5);
        assert!((frontier.min_ttft().unwrap().performance.ttft_s - 0.1).abs() < 1e-12);
        assert!(
            (frontier.max_qps_per_chip().unwrap().performance.qps_per_chip - 3.0).abs() < 1e-12
        );
        // Sorted by increasing TTFT and increasing QPS/chip.
        for w in frontier.points.windows(2) {
            assert!(w[0].performance.ttft_s <= w[1].performance.ttft_s);
            assert!(w[0].performance.qps_per_chip <= w[1].performance.qps_per_chip);
        }
    }

    #[test]
    fn duplicate_points_collapse() {
        let frontier = ParetoFrontier::from_points(vec![point(0.1, 1.0), point(0.1, 1.0)]);
        assert_eq!(frontier.len(), 1);
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        let frontier = ParetoFrontier::from_points(vec![]);
        assert!(frontier.is_empty());
        assert!(frontier.min_ttft().is_none());
        assert!(frontier.max_qps_per_chip().is_none());
        assert_eq!(frontier.iter().count(), 0);
    }
}
