//! Pareto-frontier extraction over (TTFT, QPS/chip).
//!
//! Two construction paths produce identical frontiers:
//!
//! * [`ParetoFrontier::from_points`] — the batch path: sort every evaluated
//!   point, then sweep. Simple, but requires holding all points in memory.
//! * [`ParetoAccumulator`] — the streaming path: points are folded in one at
//!   a time with online dominance pruning, so memory stays proportional to
//!   the frontier itself. Accumulators merge associatively, which is what
//!   lets the optimizer fold per-thread frontiers and combine them at the
//!   end.
//!
//! Ties (two schedules with bit-identical TTFT *and* QPS/chip) are broken by
//! the schedule's own identity ([`Schedule::identity_key`]) — the
//! lexicographically smallest schedule wins. The result therefore depends
//! only on the *set* of evaluated points: not on thread interleaving, not on
//! insertion order, and not on any enumeration index — which sampled
//! candidates (the stochastic search) don't have in the first place.

use crate::metrics::RagPerformance;
use crate::schedule::Schedule;
use serde::{Deserialize, Serialize};

/// One point of the performance Pareto frontier: a schedule and the
/// performance it achieves.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParetoPoint {
    /// The schedule (placement, allocation, batching) achieving this point.
    pub schedule: Schedule,
    /// The end-to-end performance of that schedule.
    pub performance: RagPerformance,
}

/// The Pareto frontier of evaluated schedules, sorted by increasing TTFT.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct ParetoFrontier {
    /// Non-dominated points, sorted by increasing TTFT (and therefore
    /// increasing QPS/chip).
    pub points: Vec<ParetoPoint>,
    /// Total number of schedules that were evaluated to produce the frontier.
    pub evaluated_schedules: usize,
}

impl ParetoFrontier {
    /// Builds the frontier from an arbitrary collection of evaluated points.
    pub fn from_points(mut candidates: Vec<ParetoPoint>) -> Self {
        let evaluated = candidates.len();
        // Sort by TTFT ascending, then QPS/chip descending, breaking exact
        // performance ties by schedule identity so a single sweep keeps
        // exactly the non-dominated points and the survivor of a tie does
        // not depend on input order.
        candidates.sort_by(|a, b| {
            a.performance
                .ttft_s
                .total_cmp(&b.performance.ttft_s)
                .then(
                    b.performance
                        .qps_per_chip
                        .total_cmp(&a.performance.qps_per_chip),
                )
                .then_with(|| a.schedule.identity_key().cmp(&b.schedule.identity_key()))
        });
        let mut points: Vec<ParetoPoint> = Vec::new();
        let mut best_qps = f64::NEG_INFINITY;
        for cand in candidates {
            if cand.performance.qps_per_chip > best_qps {
                best_qps = cand.performance.qps_per_chip;
                points.push(cand);
            }
        }
        Self {
            points,
            evaluated_schedules: evaluated,
        }
    }

    /// The point with the highest QPS/chip (throughput-optimal schedule).
    pub fn max_qps_per_chip(&self) -> Option<&ParetoPoint> {
        self.points.last()
    }

    /// The point with the lowest TTFT (latency-optimal schedule).
    pub fn min_ttft(&self) -> Option<&ParetoPoint> {
        self.points.first()
    }

    /// Number of points on the frontier.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the frontier is empty.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Iterates over the frontier points in increasing-TTFT order.
    pub fn iter(&self) -> std::slice::Iter<'_, ParetoPoint> {
        self.points.iter()
    }

    /// The 2-D hypervolume indicator: the area of the objective region
    /// dominated by this frontier, clipped to the box whose worst corner is
    /// the reference point `(ttft_ref, qps_ref)` (TTFT is minimized,
    /// QPS/chip maximized). Points at or beyond the reference contribute
    /// nothing.
    ///
    /// For a fixed reference, the hypervolume is monotone: a frontier that
    /// dominates at least the same region never scores lower. This is the
    /// anytime-quality metric of the stochastic search — see
    /// [`crate::search`].
    pub fn hypervolume(&self, ttft_ref: f64, qps_ref: f64) -> f64 {
        let mut area = 0.0;
        let mut qps_floor = qps_ref;
        // Points arrive sorted by increasing TTFT and increasing QPS/chip,
        // so each adds the strip between the previous QPS level and its own.
        for p in &self.points {
            let ttft = p.performance.ttft_s;
            let qps = p.performance.qps_per_chip;
            if ttft >= ttft_ref || qps <= qps_floor {
                continue;
            }
            area += (ttft_ref - ttft) * (qps - qps_floor);
            qps_floor = qps;
        }
        area
    }
}

/// Streaming Pareto-frontier builder with online dominance pruning.
///
/// Feed evaluated points in with [`ParetoAccumulator::push`]; only the
/// current non-dominated set is retained (a dominated point is dropped on
/// arrival, and an arriving point evicts every point it dominates).
/// Accumulators built on different threads over disjoint slices of the
/// candidate stream [`merge`](ParetoAccumulator::merge) into the same
/// frontier [`ParetoFrontier::from_points`] would produce over the union —
/// including `evaluated_schedules` — regardless of how the stream was split.
#[derive(Debug, Clone, Default)]
pub struct ParetoAccumulator {
    /// Non-dominated points, sorted by strictly increasing TTFT and
    /// (equivalently) strictly increasing QPS/chip.
    entries: Vec<ParetoPoint>,
    /// Number of points pushed (the `evaluated_schedules` of the result).
    evaluated: usize,
}

impl ParetoAccumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of non-dominated points currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether no point has survived pruning (true before any push).
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Number of points pushed so far (across merges).
    pub fn evaluated(&self) -> usize {
        self.evaluated
    }

    /// Folds one evaluated candidate into the frontier. Exact performance
    /// ties are resolved by [`Schedule::identity_key`], so the outcome is
    /// independent of the order points arrive in.
    pub fn push(&mut self, point: ParetoPoint) {
        self.evaluated += 1;
        self.insert(point);
    }

    /// Merges two accumulators (associative and — thanks to the identity
    /// tie-break — order-insensitive).
    pub fn merge(mut self, other: Self) -> Self {
        self.evaluated += other.evaluated;
        for point in other.entries {
            self.insert(point);
        }
        self
    }

    /// Finalizes into a [`ParetoFrontier`].
    pub fn into_frontier(self) -> ParetoFrontier {
        ParetoFrontier {
            points: self.entries,
            evaluated_schedules: self.evaluated,
        }
    }

    fn insert(&mut self, point: ParetoPoint) {
        use std::cmp::Ordering;

        let ttft = point.performance.ttft_s;
        let qps = point.performance.qps_per_chip;
        // First entry whose TTFT is not below the candidate's.
        let pos = self
            .entries
            .partition_point(|e| e.performance.ttft_s.total_cmp(&ttft) == Ordering::Less);

        // A strictly-faster predecessor with at-least-equal QPS/chip
        // dominates the candidate.
        if pos > 0
            && self.entries[pos - 1]
                .performance
                .qps_per_chip
                .total_cmp(&qps)
                != Ordering::Less
        {
            return;
        }

        // An entry with exactly the candidate's TTFT: resolve by QPS/chip,
        // then by schedule identity (keys are computed lazily — exact ties
        // are the rare case).
        if let Some(existing) = self.entries.get_mut(pos) {
            if existing.performance.ttft_s.total_cmp(&ttft) == Ordering::Equal {
                match existing.performance.qps_per_chip.total_cmp(&qps) {
                    Ordering::Greater => return,
                    Ordering::Equal => {
                        if point.schedule.identity_key() < existing.schedule.identity_key() {
                            *existing = point;
                        }
                        return;
                    }
                    Ordering::Less => {}
                }
            }
        }

        // The candidate survives: evict the contiguous run of now-dominated
        // entries (TTFT at or above the candidate's, QPS/chip at or below).
        let end = pos
            + self.entries[pos..].partition_point(|e| {
                e.performance.qps_per_chip.total_cmp(&qps) != Ordering::Greater
            });
        self.entries.splice(pos..end, std::iter::once(point));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::schedule::Schedule;

    fn point(ttft: f64, qpc: f64) -> ParetoPoint {
        ParetoPoint {
            schedule: Schedule::test_dummy(),
            performance: RagPerformance {
                ttft_s: ttft,
                tpot_s: 0.01,
                qps: qpc * 10.0,
                qps_per_chip: qpc,
                total_xpus: 10,
                retrieval_servers: 4,
            },
        }
    }

    /// Like [`point`], but with a distinguishable schedule so identity
    /// tie-breaks have something to choose between.
    fn point_on(decode_xpus: u32, ttft: f64, qpc: f64) -> ParetoPoint {
        let mut p = point(ttft, qpc);
        p.schedule.allocation.decode_xpus = decode_xpus;
        p
    }

    #[test]
    fn frontier_keeps_only_non_dominated_points() {
        let frontier = ParetoFrontier::from_points(vec![
            point(0.1, 1.0),
            point(0.2, 2.0),
            point(0.15, 0.5), // dominated by (0.1, 1.0)
            point(0.3, 1.5),  // dominated by (0.2, 2.0)
            point(0.4, 3.0),
        ]);
        assert_eq!(frontier.len(), 3);
        assert_eq!(frontier.evaluated_schedules, 5);
        assert!((frontier.min_ttft().unwrap().performance.ttft_s - 0.1).abs() < 1e-12);
        assert!(
            (frontier
                .max_qps_per_chip()
                .unwrap()
                .performance
                .qps_per_chip
                - 3.0)
                .abs()
                < 1e-12
        );
        // Sorted by increasing TTFT and increasing QPS/chip.
        for w in frontier.points.windows(2) {
            assert!(w[0].performance.ttft_s <= w[1].performance.ttft_s);
            assert!(w[0].performance.qps_per_chip <= w[1].performance.qps_per_chip);
        }
    }

    #[test]
    fn duplicate_points_collapse() {
        let frontier = ParetoFrontier::from_points(vec![point(0.1, 1.0), point(0.1, 1.0)]);
        assert_eq!(frontier.len(), 1);
    }

    #[test]
    fn empty_input_gives_empty_frontier() {
        let frontier = ParetoFrontier::from_points(vec![]);
        assert!(frontier.is_empty());
        assert!(frontier.min_ttft().is_none());
        assert!(frontier.max_qps_per_chip().is_none());
        assert_eq!(frontier.iter().count(), 0);
    }

    fn accumulate(points: &[ParetoPoint]) -> ParetoFrontier {
        let mut acc = ParetoAccumulator::new();
        for p in points {
            acc.push(p.clone());
        }
        acc.into_frontier()
    }

    #[test]
    fn accumulator_matches_batch_extraction() {
        let points = vec![
            point(0.1, 1.0),
            point(0.2, 2.0),
            point(0.15, 0.5),
            point(0.3, 1.5),
            point(0.4, 3.0),
            point(0.1, 1.0), // exact duplicate
            point(0.4, 3.0),
        ];
        let batch = ParetoFrontier::from_points(points.clone());
        let streamed = accumulate(&points);
        assert_eq!(batch, streamed);
        assert_eq!(streamed.evaluated_schedules, points.len());
    }

    #[test]
    fn accumulator_merge_is_split_invariant() {
        let points: Vec<ParetoPoint> = (0..40)
            .map(|i| {
                point_on(
                    i + 1,
                    0.05 * f64::from((i * 7) % 13),
                    0.3 * f64::from((i * 11) % 17),
                )
            })
            .collect();
        let whole = accumulate(&points);
        for split in [1usize, 7, 20, 39] {
            let mut left = ParetoAccumulator::new();
            let mut right = ParetoAccumulator::new();
            for (i, p) in points.iter().enumerate() {
                if i < split {
                    left.push(p.clone());
                } else {
                    right.push(p.clone());
                }
            }
            // Merge in both orders: the identity tie-break makes the result
            // independent of which thread's accumulator comes first.
            let ab = left.clone().merge(right.clone()).into_frontier();
            let ba = right.merge(left).into_frontier();
            assert_eq!(whole, ab, "split at {split}");
            assert_eq!(whole, ba, "split at {split} (reversed)");
        }
    }

    #[test]
    fn accumulator_prunes_dominated_points_online() {
        let mut acc = ParetoAccumulator::new();
        acc.push(point(0.2, 1.0));
        acc.push(point(0.3, 0.5)); // dominated on arrival
        assert_eq!(acc.len(), 1);
        acc.push(point(0.1, 2.0)); // dominates the survivor
        assert_eq!(acc.len(), 1);
        assert_eq!(acc.evaluated(), 3);
        let frontier = acc.into_frontier();
        assert_eq!(frontier.len(), 1);
        assert!((frontier.points[0].performance.qps_per_chip - 2.0).abs() < 1e-12);
        assert_eq!(frontier.evaluated_schedules, 3);
    }

    #[test]
    fn tie_break_is_insertion_order_independent() {
        // Two distinct schedules with bit-identical performance: whichever
        // order they arrive in — and whichever path builds the frontier —
        // the schedule with the smaller identity key survives.
        let a = point_on(2, 0.1, 1.0);
        let b = point_on(16, 0.1, 1.0);
        assert_ne!(a.schedule.identity_key(), b.schedule.identity_key());
        let winner = if a.schedule.identity_key() < b.schedule.identity_key() {
            &a.schedule
        } else {
            &b.schedule
        };

        let streamed_ab = accumulate(&[a.clone(), b.clone()]);
        let streamed_ba = accumulate(&[b.clone(), a.clone()]);
        let batch_ab = ParetoFrontier::from_points(vec![a.clone(), b.clone()]);
        let batch_ba = ParetoFrontier::from_points(vec![b.clone(), a.clone()]);
        for frontier in [&streamed_ab, &streamed_ba, &batch_ab, &batch_ba] {
            assert_eq!(frontier.len(), 1);
            assert_eq!(&frontier.points[0].schedule, winner);
        }
    }

    #[test]
    fn hypervolume_of_simple_frontiers() {
        let empty = ParetoFrontier::from_points(vec![]);
        assert_eq!(empty.hypervolume(1.0, 0.0), 0.0);

        // One point: a rectangle.
        let single = ParetoFrontier::from_points(vec![point(0.2, 2.0)]);
        assert!((single.hypervolume(1.0, 0.0) - 0.8 * 2.0).abs() < 1e-12);
        // Points at or beyond the reference contribute nothing.
        assert_eq!(single.hypervolume(0.2, 0.0), 0.0);
        assert_eq!(single.hypervolume(1.0, 2.0), 0.0);

        // Two points: union of two rectangles.
        let double = ParetoFrontier::from_points(vec![point(0.2, 2.0), point(0.5, 3.0)]);
        let expected = 0.8 * 2.0 + 0.5 * 1.0;
        assert!((double.hypervolume(1.0, 0.0) - expected).abs() < 1e-12);
        // Growing the frontier never shrinks the hypervolume.
        assert!(double.hypervolume(1.0, 0.0) >= single.hypervolume(1.0, 0.0));
    }
}
