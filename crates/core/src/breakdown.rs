//! Resource-normalized time breakdowns (Figures 6–8 and 11 of the paper).
//!
//! The paper's breakdown plots show, for each stage, its share of
//! *time × resource* consumption when every component runs at its own maximum
//! QPS/chip: a stage that needs many chip-seconds per request takes a large
//! share. Retrieval servers are converted to chip equivalents via the
//! cluster's XPUs-per-server ratio (four in the paper's setup), so "retrieval
//! dominates" means the CPU hosts are the bottleneck while XPUs idle.

use crate::error::RagoError;
use crate::profiler::StageProfiler;
use rago_schema::Stage;
use serde::{Deserialize, Serialize};

/// The resource-normalized time share of one stage.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StageShare {
    /// The pipeline stage.
    pub stage: Stage,
    /// Chip-seconds (XPU-equivalents × seconds) consumed per request when the
    /// stage runs at its best QPS/chip.
    pub chip_seconds_per_request: f64,
    /// The stage's fraction of the pipeline's total chip-seconds (0–1).
    pub share: f64,
}

/// Computes the resource-normalized time share of every stage in the
/// workload.
///
/// For every stage the profiler is evaluated over `batch_candidates` batch
/// sizes and `resource_candidates` resource counts; the best (lowest)
/// chip-seconds-per-request point is kept, and shares are normalized over the
/// pipeline. CPU retrieval servers count as `xpus_per_server` chip
/// equivalents.
///
/// # Errors
///
/// Returns [`RagoError::NoFeasibleSchedule`] if some stage has no feasible
/// configuration among the candidates.
pub fn stage_breakdown(
    profiler: &StageProfiler,
    resource_candidates: &[u32],
    batch_candidates: &[u32],
) -> Result<Vec<StageShare>, RagoError> {
    let schema = profiler.schema();
    let xpus_per_server = f64::from(profiler.cluster().xpus_per_server.max(1));
    let min_servers = profiler.min_retrieval_servers();

    let mut rows = Vec::new();
    for stage in schema.pipeline() {
        let mut best: Option<f64> = None;
        let candidates: Vec<u32> = if stage == Stage::Retrieval {
            // Retrieval must at least hold the database.
            resource_candidates
                .iter()
                .copied()
                .map(|r| r.max(min_servers))
                .collect()
        } else {
            resource_candidates.to_vec()
        };
        for &resources in &candidates {
            for &batch in batch_candidates {
                let Ok(perf) = profiler.profile(stage, resources, batch) else {
                    continue;
                };
                if perf.throughput_rps <= 0.0 {
                    continue;
                }
                let chip_equivalents = if stage == Stage::Retrieval {
                    f64::from(resources) * xpus_per_server
                } else {
                    f64::from(resources)
                };
                let chip_seconds = chip_equivalents / perf.throughput_rps;
                if best.map(|b| chip_seconds < b).unwrap_or(true) {
                    best = Some(chip_seconds);
                }
            }
        }
        let chip_seconds = best.ok_or_else(|| RagoError::NoFeasibleSchedule {
            reason: format!("no feasible configuration for stage `{stage}` in the breakdown"),
        })?;
        rows.push(StageShare {
            stage,
            chip_seconds_per_request: chip_seconds,
            share: 0.0,
        });
    }
    let total: f64 = rows.iter().map(|r| r.chip_seconds_per_request).sum();
    for row in &mut rows {
        row.share = if total > 0.0 {
            row.chip_seconds_per_request / total
        } else {
            0.0
        };
    }
    Ok(rows)
}

/// Convenience: the share of a specific stage within a breakdown (0 when the
/// stage is absent).
pub fn share_of(breakdown: &[StageShare], stage: Stage) -> f64 {
    breakdown
        .iter()
        .find(|s| s.stage == stage)
        .map(|s| s.share)
        .unwrap_or(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rago_hardware::ClusterSpec;
    use rago_schema::presets::{self, LlmSize};

    fn breakdown_for(schema: rago_schema::RagSchema) -> Vec<StageShare> {
        let profiler = StageProfiler::new(schema, ClusterSpec::paper_default());
        stage_breakdown(&profiler, &[8, 16, 32, 64], &[1, 16, 64]).unwrap()
    }

    #[test]
    fn shares_sum_to_one() {
        let b = breakdown_for(presets::case1_hyperscale(LlmSize::B8, 1));
        let total: f64 = b.iter().map(|s| s.share).sum();
        assert!((total - 1.0).abs() < 1e-9);
        assert!(b.iter().all(|s| s.share >= 0.0 && s.share <= 1.0));
    }

    #[test]
    fn retrieval_share_grows_with_query_count_case1() {
        // Figure 6: doubling the query vectors per retrieval increases the
        // retrieval share of the pipeline.
        let one = share_of(
            &breakdown_for(presets::case1_hyperscale(LlmSize::B8, 1)),
            Stage::Retrieval,
        );
        let eight = share_of(
            &breakdown_for(presets::case1_hyperscale(LlmSize::B8, 8)),
            Stage::Retrieval,
        );
        assert!(eight > one, "retrieval share {eight} !> {one}");
        assert!(
            one > 0.2,
            "retrieval share for 8B should be substantial: {one}"
        );
    }

    #[test]
    fn retrieval_share_shrinks_with_model_size_case1() {
        // Figure 7a: larger generative models shift the bottleneck to inference.
        let small = share_of(
            &breakdown_for(presets::case1_hyperscale(LlmSize::B1, 1)),
            Stage::Retrieval,
        );
        let large = share_of(
            &breakdown_for(presets::case1_hyperscale(LlmSize::B405, 1)),
            Stage::Retrieval,
        );
        assert!(small > large);
        assert!(large < 0.5, "405B should be inference bound, got {large}");
    }

    #[test]
    fn encoder_dominates_long_context_case2() {
        // §5.2: the database encoder is the bottleneck despite being 100x
        // smaller than the generative LLM, and retrieval is negligible.
        let b = breakdown_for(presets::case2_long_context(LlmSize::B70, 1_000_000));
        let encode = share_of(&b, Stage::DatabaseEncode);
        let retrieval = share_of(&b, Stage::Retrieval);
        assert!(encode > 0.4, "encode share {encode}");
        assert!(retrieval < 0.05, "retrieval share {retrieval}");
    }

    #[test]
    fn rewriter_and_reranker_are_small_case4() {
        // Figure 11: the rewriter and reranker consume little of the pipeline.
        let b = breakdown_for(presets::case4_rewriter_reranker(LlmSize::B70));
        let rerank = share_of(&b, Stage::Rerank);
        assert!(rerank < 0.15, "rerank share {rerank}");
        let rewrite = share_of(&b, Stage::RewritePrefix) + share_of(&b, Stage::RewriteDecode);
        assert!(rewrite < 0.4, "rewrite share {rewrite}");
    }

    #[test]
    fn share_of_missing_stage_is_zero() {
        let b = breakdown_for(presets::case1_hyperscale(LlmSize::B8, 1));
        assert_eq!(share_of(&b, Stage::Rerank), 0.0);
    }
}
