//! Schedules: placement + resource allocation + batching policy, and their
//! end-to-end evaluation (Step 3 of Algorithm 1).

use crate::error::RagoError;
use crate::metrics::RagPerformance;
use crate::placement::PlacementPlan;
use crate::profiler::StageProfiler;
use rago_schema::Stage;
use rago_serving_sim::iterative::{IterativeDecodeParams, IterativeDecodeSim};
use serde::{Deserialize, Serialize};

/// Resource allocation of one schedule (§6.1 \[II\]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceAllocation {
    /// XPU chips assigned to each pre-decode accelerator group (same order as
    /// [`PlacementPlan::predecode_groups`]).
    pub group_xpus: Vec<u32>,
    /// XPU chips assigned to the main LLM's decode stage.
    pub decode_xpus: u32,
    /// CPU servers assigned to retrieval.
    pub retrieval_servers: u32,
}

impl ResourceAllocation {
    /// Total XPU chips allocated to inference components.
    pub fn total_xpus(&self) -> u32 {
        self.group_xpus.iter().sum::<u32>() + self.decode_xpus
    }
}

/// Batching policy of one schedule (§6.1 \[III\]).
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct BatchingPolicy {
    /// Micro-batch size shared by all stages up to (and including) the main
    /// LLM prefix, including retrieval.
    pub predecode_batch: u32,
    /// Batch size of the decode stage (continuous batching keeps it full).
    pub decode_batch: u32,
    /// Batch size of decoder-initiated iterative retrieval + prefix passes;
    /// only meaningful for iterative workloads (Case III). Defaults to the
    /// pre-decode batch when `None`.
    pub iterative_batch: Option<u32>,
}

impl BatchingPolicy {
    /// A uniform policy using `batch` before decode and `decode_batch` for
    /// decoding.
    pub fn new(batch: u32, decode_batch: u32) -> Self {
        Self {
            predecode_batch: batch,
            decode_batch,
            iterative_batch: None,
        }
    }

    /// Sets the iterative retrieval batch size.
    pub fn with_iterative_batch(mut self, b: u32) -> Self {
        self.iterative_batch = Some(b);
        self
    }
}

/// A complete scheduling decision: task placement, resource allocation, and
/// batching policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Schedule {
    /// Which pre-decode stages share accelerator groups.
    pub placement: PlacementPlan,
    /// How many chips/servers every component receives.
    pub allocation: ResourceAllocation,
    /// The batch size of every stage.
    pub batching: BatchingPolicy,
}

impl Schedule {
    /// Validates structural consistency (group counts match, no zero
    /// allocations).
    ///
    /// # Errors
    ///
    /// Returns [`RagoError::InvalidConfig`] describing the first mismatch.
    pub fn validate(&self) -> Result<(), RagoError> {
        if self.allocation.group_xpus.len() != self.placement.num_groups() {
            return Err(RagoError::InvalidConfig {
                reason: format!(
                    "allocation covers {} groups but the placement defines {}",
                    self.allocation.group_xpus.len(),
                    self.placement.num_groups()
                ),
            });
        }
        if self.allocation.group_xpus.contains(&0) {
            return Err(RagoError::InvalidConfig {
                reason: "every accelerator group needs at least one XPU".into(),
            });
        }
        if self.allocation.decode_xpus == 0 {
            return Err(RagoError::InvalidConfig {
                reason: "the decode stage needs at least one XPU".into(),
            });
        }
        if self.allocation.retrieval_servers == 0 {
            return Err(RagoError::InvalidConfig {
                reason: "retrieval needs at least one CPU server".into(),
            });
        }
        if self.batching.predecode_batch == 0 || self.batching.decode_batch == 0 {
            return Err(RagoError::InvalidConfig {
                reason: "batch sizes must be at least 1".into(),
            });
        }
        Ok(())
    }

    /// Evaluates the end-to-end performance of this schedule for the
    /// profiler's workload: TTFT, TPOT, QPS, and QPS/chip (Step 3 of
    /// Algorithm 1).
    ///
    /// # Errors
    ///
    /// Returns [`RagoError::InvalidConfig`] for structurally invalid
    /// schedules and [`RagoError::CostModel`] when any stage is infeasible
    /// under its allocation (e.g. its model does not fit in memory).
    pub fn evaluate(&self, profiler: &StageProfiler) -> Result<RagPerformance, RagoError> {
        self.validate()?;
        let schema = profiler.schema();
        let batch = self.batching.predecode_batch;

        let mut ttft = 0.0f64;
        let mut throughputs: Vec<f64> = Vec::new();

        // Pre-decode XPU groups: time-multiplexed stages add their latencies;
        // a group's throughput is batch / total busy time per batch.
        for (group_idx, stages) in self.placement.predecode_groups.iter().enumerate() {
            let chips = self.allocation.group_xpus[group_idx];
            let mut group_latency = 0.0;
            let mut singleton_throughput = None;
            for &stage in stages {
                let perf = profiler.profile(stage, chips, batch)?;
                group_latency += perf.latency_s;
                singleton_throughput = Some(perf.throughput_rps);
            }
            ttft += group_latency;
            let throughput = if stages.len() == 1 {
                singleton_throughput.expect("one stage profiled")
            } else {
                f64::from(batch) / group_latency
            };
            throughputs.push(throughput);
        }

        // Retrieval (CPU servers).
        let mut retrieval_latency_at_iter_batch = 0.0;
        if schema.has_retrieval() {
            let perf =
                profiler.profile(Stage::Retrieval, self.allocation.retrieval_servers, batch)?;
            ttft += perf.latency_s;
            throughputs.push(perf.throughput_rps);
            if schema.is_iterative() {
                let iter_batch = self.batching.iterative_batch.unwrap_or(batch).max(1);
                let iter_perf = profiler.profile(
                    Stage::Retrieval,
                    self.allocation.retrieval_servers,
                    iter_batch,
                )?;
                retrieval_latency_at_iter_batch = iter_perf.latency_s;
            }
        }

        // Decode stage.
        let decode_perf = profiler.profile(
            Stage::Decode,
            self.allocation.decode_xpus,
            self.batching.decode_batch,
        )?;
        let mut tpot = decode_perf.step_latency_s.unwrap_or(0.0);
        let mut decode_throughput = decode_perf.throughput_rps;

        // Iterative retrieval (Case III): decoding stalls while batched
        // retrieval + prefix passes complete; simulate the resulting slowdown.
        if schema.is_iterative() {
            let retrieval_cfg = schema
                .retrieval
                .as_ref()
                .expect("iterative implies retrieval");
            let iter_batch = self.batching.iterative_batch.unwrap_or(batch).max(1);
            // The re-prefix of newly retrieved content runs on the last
            // pre-decode group (the one containing the main prefix).
            let prefix_group = self
                .placement
                .group_of(Stage::Prefix)
                .map(|g| self.allocation.group_xpus[g])
                .unwrap_or(self.allocation.decode_xpus);
            let reprefix = profiler.profile(Stage::Prefix, prefix_group, iter_batch)?;
            let sim = IterativeDecodeSim::new(IterativeDecodeParams {
                decode_batch: self.batching.decode_batch,
                iterative_batch: iter_batch,
                decode_len: schema.sequence.decode_tokens,
                // One retrieval happens before decoding; the rest interrupt it.
                retrievals_per_sequence: retrieval_cfg.retrievals_per_sequence.saturating_sub(1),
                step_latency_s: decode_perf.step_latency_s.unwrap_or(1e-3),
                retrieval_prefix_latency_s: retrieval_latency_at_iter_batch + reprefix.latency_s,
                seed: 0x5EED,
            });
            let result = sim.run();
            tpot = result.tpot_worst_s;
            decode_throughput = f64::from(self.batching.decode_batch) / result.total_time_s;
        }
        throughputs.push(decode_throughput);

        let qps = throughputs
            .iter()
            .fold(f64::INFINITY, |acc, &t| acc.min(t))
            .max(0.0);
        let total_xpus = self.allocation.total_xpus();
        // QPS/chip reflects whole-system cost efficiency (§4). In the paper's
        // deployment the XPUs live on the same host servers that hold the
        // sharded database, so the system's chip count is set by however many
        // servers the schedule occupies: enough to carry the inference XPUs
        // (xpus_per_server each) *and* at least the retrieval server count —
        // retrieval-only servers contribute idle XPUs to the denominator.
        let xpus_per_server = profiler.cluster().xpus_per_server.max(1);
        let inference_servers = total_xpus.div_ceil(xpus_per_server);
        let occupied_servers = if schema.has_retrieval() {
            inference_servers.max(self.allocation.retrieval_servers)
        } else {
            inference_servers
        };
        let chip_denominator = f64::from((occupied_servers * xpus_per_server).max(1));
        Ok(RagPerformance {
            ttft_s: ttft,
            tpot_s: tpot,
            qps,
            qps_per_chip: qps / chip_denominator,
            total_xpus,
            retrieval_servers: self.allocation.retrieval_servers,
        })
    }

    /// A structurally trivial schedule used by unit tests of the Pareto
    /// utilities. Not meaningful for evaluation.
    #[doc(hidden)]
    pub fn test_dummy() -> Self {
        Self {
            placement: PlacementPlan {
                predecode_groups: vec![vec![Stage::Prefix]],
            },
            allocation: ResourceAllocation {
                group_xpus: vec![1],
                decode_xpus: 1,
                retrieval_servers: 1,
            },
            batching: BatchingPolicy::new(1, 1),
        }
    }

    /// A stable identity key: two schedules produce equal keys exactly when
    /// they encode the same scheduling decision. Used to break exact
    /// performance ties deterministically in [`crate::pareto`] and to
    /// deduplicate sampled candidates in [`crate::search`] — unlike an
    /// enumeration index, the key exists for every schedule regardless of
    /// where (or whether) it appears in an enumeration order.
    pub fn identity_key(&self) -> String {
        // `describe` prints every axis of the decision (placement groups are
        // bracket-delimited, all allocations and batch sizes appear
        // verbatim), so it is injective over any one workload's space.
        self.describe()
    }

    /// A one-line description of the schedule for reports.
    pub fn describe(&self) -> String {
        format!(
            "{} xpus={:?}+{}dec servers={} batch={}/{}{}",
            self.placement.describe(),
            self.allocation.group_xpus,
            self.allocation.decode_xpus,
            self.allocation.retrieval_servers,
            self.batching.predecode_batch,
            self.batching.decode_batch,
            self.batching
                .iterative_batch
                .map(|b| format!("/iter{b}"))
                .unwrap_or_default()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::StageProfiler;
    use rago_hardware::ClusterSpec;
    use rago_schema::presets::{self, LlmSize};

    fn case1_profiler() -> StageProfiler {
        StageProfiler::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        )
    }

    fn case1_schedule() -> Schedule {
        Schedule {
            placement: PlacementPlan {
                predecode_groups: vec![vec![Stage::Prefix]],
            },
            allocation: ResourceAllocation {
                group_xpus: vec![8],
                decode_xpus: 8,
                retrieval_servers: 32,
            },
            batching: BatchingPolicy::new(8, 64),
        }
    }

    #[test]
    fn case1_schedule_evaluates_to_sensible_metrics() {
        let profiler = case1_profiler();
        let perf = case1_schedule().evaluate(&profiler).unwrap();
        assert!(
            perf.ttft_s > 0.0 && perf.ttft_s < 1.0,
            "ttft {}",
            perf.ttft_s
        );
        assert!(perf.tpot_s > 0.0 && perf.tpot_s < 0.2);
        assert!(perf.qps > 0.0);
        assert_eq!(perf.total_xpus, 16);
        // The system occupies max(ceil(16/4), 32) = 32 servers x 4 chips each.
        assert!((perf.qps_per_chip - perf.qps / 128.0).abs() < 1e-12);
    }

    #[test]
    fn qps_is_limited_by_the_slowest_stage() {
        let profiler = case1_profiler();
        let mut schedule = case1_schedule();
        let base = schedule.evaluate(&profiler).unwrap();
        // Starving the decode stage must not increase end-to-end QPS.
        schedule.allocation.decode_xpus = 1;
        let starved = schedule.evaluate(&profiler).unwrap();
        assert!(starved.qps <= base.qps + 1e-9);
    }

    #[test]
    fn larger_predecode_batches_increase_ttft() {
        let profiler = case1_profiler();
        let mut small = case1_schedule();
        small.batching = BatchingPolicy::new(1, 64);
        let mut large = case1_schedule();
        large.batching = BatchingPolicy::new(64, 64);
        let p_small = small.evaluate(&profiler).unwrap();
        let p_large = large.evaluate(&profiler).unwrap();
        assert!(p_large.ttft_s > p_small.ttft_s);
    }

    #[test]
    fn validation_catches_mismatched_allocations() {
        let mut s = case1_schedule();
        s.allocation.group_xpus = vec![8, 8];
        assert!(matches!(s.validate(), Err(RagoError::InvalidConfig { .. })));
        let mut s = case1_schedule();
        s.allocation.decode_xpus = 0;
        assert!(s.validate().is_err());
        let mut s = case1_schedule();
        s.batching.decode_batch = 0;
        assert!(s.validate().is_err());
        assert!(case1_schedule().validate().is_ok());
    }

    #[test]
    fn iterative_workload_has_higher_tpot_than_single_retrieval() {
        let cluster = ClusterSpec::paper_default();
        let single = StageProfiler::new(presets::case1_hyperscale(LlmSize::B8, 1), cluster.clone());
        let iterative = StageProfiler::new(presets::case3_iterative(LlmSize::B8, 4), cluster);
        let schedule = Schedule {
            batching: BatchingPolicy::new(8, 64).with_iterative_batch(16),
            ..case1_schedule()
        };
        let p_single = schedule.evaluate(&single).unwrap();
        let p_iter = schedule.evaluate(&iterative).unwrap();
        assert!(
            p_iter.tpot_s > p_single.tpot_s,
            "iterative TPOT {} should exceed single-retrieval TPOT {}",
            p_iter.tpot_s,
            p_single.tpot_s
        );
        assert!(p_iter.qps <= p_single.qps + 1e-9);
    }

    #[test]
    fn case4_full_pipeline_evaluates() {
        let profiler = StageProfiler::new(
            presets::case4_rewriter_reranker(LlmSize::B70),
            ClusterSpec::paper_default(),
        );
        let schema = profiler.schema().clone();
        let placement = PlacementPlan::fully_disaggregated(&schema);
        let schedule = Schedule {
            allocation: ResourceAllocation {
                group_xpus: vec![4, 4, 4, 16],
                decode_xpus: 16,
                retrieval_servers: 32,
            },
            batching: BatchingPolicy::new(4, 128),
            placement,
        };
        let perf = schedule.evaluate(&profiler).unwrap();
        assert!(perf.ttft_s > 0.0);
        assert!(perf.qps > 0.0);
        assert_eq!(perf.total_xpus, 44);
    }

    #[test]
    fn describe_mentions_all_decisions() {
        let text = case1_schedule().describe();
        assert!(text.contains("prefix"));
        assert!(text.contains("servers=32"));
        assert!(text.contains("batch=8/64"));
    }
}
