//! Chaos-ready fleet evaluation: faults, admission control, and predictive
//! scaling scored end to end.
//!
//! [`crate::timevarying::evaluate_fleet_timevarying`] scores an elastic
//! fleet under time-varying traffic, but assumes every replica stays
//! healthy and every request is admitted. This module adds the failure
//! axis: a [`FaultSchedule`] of crashes, stragglers, and spot preemptions
//! plays against the fleet while it serves, an optional
//! [`AdmissionConfig`] sheds work by class priority under overload, and
//! the fleet may be driven by a *predictive* [`ScalingPlan`] — typically
//! derived from a provisioning-side [`CapacityProfile`] via
//! [`scaling_plan_from_profile`] — instead of the reactive policy.
//!
//! Scoring switches from *completed* to *offered* attainment: shed
//! requests count against their class in the denominator, so an admission
//! controller cannot buy attainment by refusing work. Recovery metrics
//! (time to SLO re-attainment and the goodput-dip area after each
//! disruption) come from the windowed attainment timeline of the
//! [`ChaosReport`].
//!
//! With no faults, no admission control, and a reactive (or static)
//! driver, the underlying engine is **bit-identical** to the one behind
//! [`crate::timevarying::evaluate_fleet_timevarying`] — pinned by
//! `faultless_scenario_matches_timevarying` below and by the degenerate
//! tests in `rago-serving-sim`.

use crate::capacity::CapacityProfile;
use crate::dynamic::{pipeline_spec, reject_empty_trace};
use crate::error::RagoError;
use crate::profiler::StageProfiler;
use crate::schedule::Schedule;
use crate::timevarying::ScalingSummary;
use rago_schema::{RouterPolicy, SloTarget};
use rago_serving_sim::faults::{
    AdmissionConfig, AttainmentWindow, ChaosEngine, ChaosReport, CrashPolicy, FaultSchedule,
    PlanStep, RecoveryMetrics, ScaleDriver, ScalingPlan,
};
use rago_workloads::{Trace, WorkloadMix};
use serde::{Deserialize, Serialize};

/// Everything that can go wrong (and how the fleet responds) in one
/// faulted evaluation: the fault schedule, the crash policy, the admission
/// controller, and the scaling driver.
///
/// # Examples
///
/// ```
/// use rago_core::faulted::FaultScenario;
/// use rago_serving_sim::faults::{FaultEvent, FaultSchedule, ScaleDriver};
///
/// let scenario = FaultScenario::new(ScaleDriver::Static { replicas: 3 })
///     .with_faults(FaultSchedule::new(vec![FaultEvent::Crash {
///         replica: 0,
///         at_s: 5.0,
///         restart_delay_s: 2.0,
///     }]))
///     .with_recovery_window(0.5);
/// assert_eq!(scenario.faults.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultScenario {
    /// How the fleet is sized over time (static, reactive, or predictive).
    pub driver: ScaleDriver,
    /// The deterministic fault schedule to inject (empty = no faults).
    pub faults: FaultSchedule,
    /// What happens to in-flight work when a replica dies.
    pub crash_policy: CrashPolicy,
    /// Admission control, or `None` to admit everything. A configuration
    /// with an *empty* priority table inherits each class's priority from
    /// the workload mix ([`rago_workloads::RequestClass::priority`]).
    pub admission: Option<AdmissionConfig>,
    /// The SLO recovery metrics are computed against, or `None` to use the
    /// mix's class-0 SLO.
    pub recovery_slo: Option<SloTarget>,
    /// Window width for the attainment timeline and recovery metrics, in
    /// seconds.
    pub recovery_window_s: f64,
}

impl FaultScenario {
    /// A scenario with no faults, no admission control, requeue-on-crash,
    /// and a half-second recovery window.
    pub fn new(driver: ScaleDriver) -> Self {
        Self {
            driver,
            faults: FaultSchedule::empty(),
            crash_policy: CrashPolicy::default(),
            admission: None,
            recovery_slo: None,
            recovery_window_s: 0.5,
        }
    }

    /// Sets the fault schedule.
    #[must_use]
    pub fn with_faults(mut self, faults: FaultSchedule) -> Self {
        self.faults = faults;
        self
    }

    /// Sets the crash policy.
    #[must_use]
    pub fn with_crash_policy(mut self, policy: CrashPolicy) -> Self {
        self.crash_policy = policy;
        self
    }

    /// Enables admission control.
    #[must_use]
    pub fn with_admission(mut self, admission: AdmissionConfig) -> Self {
        self.admission = Some(admission);
        self
    }

    /// Sets the SLO recovery metrics are scored against.
    #[must_use]
    pub fn with_recovery_slo(mut self, slo: SloTarget) -> Self {
        self.recovery_slo = Some(slo);
        self
    }

    /// Sets the recovery/timeline window width.
    ///
    /// # Panics
    ///
    /// Panics unless `window_s` is finite and positive.
    #[must_use]
    pub fn with_recovery_window(mut self, window_s: f64) -> Self {
        assert!(
            window_s.is_finite() && window_s > 0.0,
            "recovery window must be finite and positive, got {window_s}"
        );
        self.recovery_window_s = window_s;
        self
    }
}

/// One tenant class's outcome under faults, scored on *offered* traffic.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultedClassOutcome {
    /// The workload-class tag (index into the mix).
    pub class: u32,
    /// The tenant name from the mix.
    pub name: String,
    /// Requests of this class offered to the fleet (completed + shed; lost
    /// requests — [`CrashPolicy::Fail`] casualties and work stranded after
    /// the last replica died — are counted fleet-wide in
    /// [`ChaosReport::fault`], not per class).
    pub offered: usize,
    /// Requests of this class that completed.
    pub completed: usize,
    /// Requests of this class shed by admission control.
    pub shed: usize,
    /// The admission priority the class was shed under.
    pub priority: u32,
    /// The SLO this tenant was scored against (its own, from the mix).
    pub slo: SloTarget,
    /// Fraction of *offered* requests meeting the class SLO (shed requests
    /// count as misses; 1.0 when the class offered nothing).
    pub attainment: f64,
    /// Requests meeting the class SLO per second of the class's serving
    /// window, in requests per second.
    pub goodput_rps: f64,
    /// Whether offered attainment reaches the SLO's required fraction.
    pub meets_slo: bool,
}

/// The outcome of one faulted fleet evaluation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultedEvaluation {
    /// The full chaos run: merged fleet report, scaling events, lifetimes,
    /// and the fault ledger.
    pub chaos: ChaosReport,
    /// Fraction of all *offered* requests meeting their own class's SLO
    /// (shed and lost requests count as misses).
    pub attainment: f64,
    /// Requests meeting their class SLO per second of fleet serving
    /// duration.
    pub goodput_rps: f64,
    /// Whether every class reaches its own SLO's attainment requirement on
    /// offered traffic.
    pub meets_slo: bool,
    /// Per-tenant outcomes, by class id.
    pub per_class: Vec<FaultedClassOutcome>,
    /// Scaling history (always present: a chaos run tracks lifetimes even
    /// for a static fleet, since faults change the provisioned count).
    pub scaling: ScalingSummary,
    /// Windowed SLO-attainment timeline over the run, for recovery plots.
    pub timeline: Vec<AttainmentWindow>,
    /// Per-disruption recovery metrics (time to re-attainment, dip area).
    pub recovery: Vec<RecoveryMetrics>,
    /// Integral of provisioned replicas over time, in replica-seconds —
    /// dead replicas stop accruing at their death instant.
    pub replica_seconds: f64,
    /// `replica_seconds × total XPUs per replica` — the chip-time the
    /// deployment paid.
    pub chip_seconds: f64,
}

impl FaultedEvaluation {
    /// Chip-hours paid by the deployment.
    pub fn chip_hours(&self) -> f64 {
        self.chip_seconds / 3600.0
    }

    /// The worst per-disruption time-to-reattainment, or `None` when no
    /// disruption occurred or some disruption never recovered within the
    /// run (a non-recovery is *worse* than any finite time, so callers
    /// should treat `None` after a disruption as failure).
    pub fn worst_recovery_s(&self) -> Option<f64> {
        if self.recovery.is_empty() {
            return None;
        }
        self.recovery
            .iter()
            .map(|r| r.reattainment_s)
            .collect::<Option<Vec<f64>>>()
            .map(|times| times.into_iter().fold(0.0, f64::max))
    }
}

/// Converts a provisioning-side [`CapacityProfile`] (the per-interval
/// replica schedule [`crate::capacity::plan_capacity_profile`] computes)
/// into the feed-forward [`ScalingPlan`] a predictive
/// [`ScaleDriver::Predictive`] executes — the planning loop closed: size
/// the fleet offline from the known rate profile, then play that schedule
/// forward against the live trace.
///
/// `lead_s` shifts every step earlier by that many seconds so replicas
/// finish warming up *before* the rate change arrives (a step shifted to
/// or past time zero is folded into the initial count, taking the larger
/// target). Zero-replica intervals are clamped to one — a serving fleet
/// never scales to nothing. Consecutive intervals with the same target
/// merge into one step.
///
/// # Panics
///
/// Panics unless `lead_s` is finite and non-negative, or if the profile
/// has no intervals.
///
/// # Examples
///
/// ```
/// use rago_core::faulted::scaling_plan_from_profile;
/// use rago_core::{CapacityInterval, CapacityProfile};
///
/// let interval = |start_s: f64, replicas: u32| CapacityInterval {
///     start_s,
///     duration_s: 10.0,
///     rate_rps: 5.0,
///     replicas,
///     attainment: 1.0,
/// };
/// let profile = CapacityProfile {
///     intervals: vec![interval(0.0, 1), interval(10.0, 3), interval(20.0, 3), interval(30.0, 0)],
///     peak_replicas: 3,
///     replica_seconds: 70.0,
///     static_replica_seconds: 120.0,
///     savings_fraction: 5.0 / 12.0,
/// };
/// let plan = scaling_plan_from_profile(&profile, 2.0);
/// assert_eq!(plan.initial, 1);
/// // One step up (led by 2 s), the repeat merged away, and the zero-rate
/// // tail clamped to one replica.
/// assert_eq!(plan.steps.len(), 2);
/// assert_eq!((plan.steps[0].at_s, plan.steps[0].replicas), (8.0, 3));
/// assert_eq!((plan.steps[1].at_s, plan.steps[1].replicas), (28.0, 1));
/// ```
pub fn scaling_plan_from_profile(profile: &CapacityProfile, lead_s: f64) -> ScalingPlan {
    assert!(
        lead_s.is_finite() && lead_s >= 0.0,
        "lead must be finite and non-negative, got {lead_s}"
    );
    assert!(
        !profile.intervals.is_empty(),
        "a capacity profile needs at least one interval"
    );
    let mut initial = profile.intervals[0].replicas.max(1);
    let mut steps: Vec<PlanStep> = Vec::new();
    for interval in &profile.intervals[1..] {
        let target = interval.replicas.max(1);
        let at_s = interval.start_s - lead_s;
        if at_s <= 0.0 {
            // The lead pushes this step before the run starts: provision it
            // from the beginning, never below an earlier folded target.
            initial = initial.max(target);
            continue;
        }
        // Collapse steps the lead squeezed onto the same instant (take the
        // larger target — over-provision rather than under) and merge
        // consecutive equal targets.
        if let Some(last) = steps.last_mut() {
            if at_s <= last.at_s {
                last.replicas = last.replicas.max(target);
                continue;
            }
        }
        let current = steps.last().map_or(initial, |s| s.replicas);
        if target != current {
            steps.push(PlanStep {
                at_s,
                replicas: target,
            });
        }
    }
    ScalingPlan::new(initial, steps)
}

/// Evaluates `schedule`'s pipeline as a fleet under `trace` while the
/// `scenario`'s fault schedule plays against it, scoring every tenant's
/// *offered* traffic against its own SLO from `mix`.
///
/// The fleet is sized by `scenario.driver` (`fleet` supplies only the
/// router — the driver owns the replica count), admission control sheds by
/// class priority when configured, and every disruption's recovery is
/// measured on the windowed attainment timeline.
///
/// # Errors
///
/// Returns [`RagoError::InvalidConfig`] for invalid schedules, an empty
/// trace, a class tag outside the mix, or an invalid per-class SLO, and
/// [`RagoError::CostModel`] when the schedule cannot be profiled.
pub fn evaluate_fleet_faulted(
    profiler: &StageProfiler,
    schedule: &Schedule,
    router: RouterPolicy,
    mix: &WorkloadMix,
    trace: &Trace,
    scenario: &FaultScenario,
) -> Result<FaultedEvaluation, RagoError> {
    schedule.validate()?;
    reject_empty_trace(trace)?;
    let num_classes = mix.num_classes() as u32;
    if let Some(bad) = trace.requests.iter().find(|r| r.class >= num_classes) {
        return Err(RagoError::InvalidConfig {
            reason: format!(
                "request {} carries class tag {} but the mix has only {num_classes} classes",
                bad.id, bad.class
            ),
        });
    }
    for class in &mix.classes {
        class.slo.validate().map_err(|e| RagoError::InvalidConfig {
            reason: format!("class `{}`: {e}", class.name),
        })?;
    }

    // An admission configuration with an empty priority table inherits the
    // mix's per-class priorities.
    let admission = scenario.admission.clone().map(|mut a| {
        if a.class_priorities.is_empty() {
            for (i, class) in mix.classes.iter().enumerate() {
                a = a.with_class_priority(i as u32, class.priority);
            }
        }
        a
    });

    let spec = pipeline_spec(profiler, schedule)?;
    let mut engine = ChaosEngine::new(spec, router, scenario.driver.clone())
        .with_faults(scenario.faults.clone())
        .with_crash_policy(scenario.crash_policy);
    if let Some(a) = admission.clone() {
        engine = engine.with_admission(a);
    }
    let chaos = engine.run_trace(trace);

    // Offered attainment: a shed request is an offered request that missed
    // its SLO. Completed counts and SLO hits come from the merged report's
    // per-class accounting; shed counts from the fault ledger.
    let shed_of = |class: u32| {
        chaos
            .fault
            .shed_by_class
            .iter()
            .find(|s| s.class == class)
            .map_or(0, |s| s.shed)
    };
    let mut met_total = 0usize;
    let mut offered_total = 0usize;
    let per_class: Vec<FaultedClassOutcome> = mix
        .classes
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let class = i as u32;
            let (met, completed) = chaos.fleet.merged.class_slo_counts(class, &c.slo);
            let shed = shed_of(class);
            let offered = completed + shed;
            met_total += met;
            offered_total += offered;
            let attainment = if offered == 0 {
                1.0
            } else {
                met as f64 / offered as f64
            };
            let priority = admission
                .as_ref()
                .map_or_else(|| c.priority, |a| a.priority_of(class));
            FaultedClassOutcome {
                class,
                name: c.name.clone(),
                offered,
                completed,
                shed,
                priority,
                slo: c.slo,
                attainment,
                goodput_rps: chaos.fleet.merged.class_goodput_rps(class, &c.slo),
                meets_slo: attainment >= c.slo.attainment,
            }
        })
        .collect();
    // Lost requests (failed) have no class attribution; count them against
    // the fleet-wide denominator so attainment stays honest.
    let offered_all = offered_total + chaos.fault.failed;
    let attainment = if offered_all == 0 {
        1.0
    } else {
        met_total as f64 / offered_all as f64
    };
    let serving_duration = chaos.fleet.merged.metrics.serving_duration_s;
    let goodput_rps = if serving_duration > 0.0 {
        met_total as f64 / serving_duration
    } else {
        0.0
    };
    let meets_slo = per_class.iter().all(|c| c.meets_slo) && chaos.fault.failed == 0;

    let recovery_slo = scenario.recovery_slo.unwrap_or(mix.classes[0].slo);
    let timeline = chaos.attainment_timeline(&recovery_slo, scenario.recovery_window_s);
    let recovery = chaos.recovery(&recovery_slo, scenario.recovery_window_s);

    let scaling = ScalingSummary {
        peak_provisioned: chaos.peak_provisioned,
        min_provisioned: chaos.min_provisioned,
        mean_provisioned: chaos.mean_provisioned(),
        events: chaos.events.clone(),
        lifetimes: chaos.lifetimes.clone(),
    };
    let replica_seconds = chaos.replica_seconds;
    let chip_seconds = replica_seconds * f64::from(schedule.allocation.total_xpus());

    Ok(FaultedEvaluation {
        chaos,
        attainment,
        goodput_rps,
        meets_slo,
        per_class,
        scaling,
        timeline,
        recovery,
        replica_seconds,
        chip_seconds,
    })
}

/// The disaggregated analogue of [`evaluate_fleet_faulted`]: plays a
/// schedule of per-pool crashes ([`rago_serving_sim::pools::PoolCrash`])
/// against a `[Prefill, Decode]` pool fleet while it serves `trace`, and
/// scores the stitched result against `slo`.
///
/// Crash semantics are pool-typed: a prefill-replica crash re-queues its
/// un-prefilled and un-transferred work onto prefill *survivors* only; a
/// decode-replica crash sends its in-flight decodes back through the
/// transfer lane to surviving decode replicas. The requeue counters land in
/// [`rago_serving_sim::pools::TransferStats`] on the returned report.
///
/// # Errors
///
/// As [`crate::disagg::evaluate_fleet_disagg`], plus
/// [`RagoError::InvalidConfig`] for crashes targeting the Monolithic pool,
/// an out-of-range replica, or carrying non-finite timings.
pub fn evaluate_fleet_faulted_pools(
    profiler: &StageProfiler,
    schedule: &Schedule,
    fleet: &rago_schema::FleetConfig,
    crashes: &[rago_serving_sim::pools::PoolCrash],
    trace: &Trace,
    slo: &SloTarget,
) -> Result<crate::disagg::DisaggEvaluation, RagoError> {
    let report = crate::disagg::run_disagg(profiler, schedule, fleet, trace, None, crashes)?;
    Ok(crate::disagg::score_disagg(report, schedule, slo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::capacity::{plan_capacity_profile, CapacityOptions};
    use crate::placement::PlacementPlan;
    use crate::schedule::{BatchingPolicy, ResourceAllocation};
    use crate::timevarying::evaluate_fleet_timevarying;
    use rago_hardware::ClusterSpec;
    use rago_schema::presets::{self, LlmSize};
    use rago_schema::{FleetConfig, SequenceProfile, Stage};
    use rago_serving_sim::autoscaler::AutoscalerPolicy;
    use rago_serving_sim::faults::FaultEvent;
    use rago_workloads::{ArrivalProcess, MixTraceSpec, RateSegment, RequestClass};

    fn case1_profiler() -> StageProfiler {
        StageProfiler::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        )
    }

    fn case1_schedule() -> Schedule {
        Schedule {
            placement: PlacementPlan {
                predecode_groups: vec![vec![Stage::Prefix]],
            },
            allocation: ResourceAllocation {
                group_xpus: vec![8],
                decode_xpus: 8,
                retrieval_servers: 32,
            },
            batching: BatchingPolicy::new(8, 64),
        }
    }

    fn priority_mix() -> WorkloadMix {
        WorkloadMix::new(vec![
            RequestClass::new(
                "batch",
                1.0,
                SequenceProfile::paper_default().with_decode_tokens(64),
                0.1,
                SloTarget::new(10.0, 0.2),
            ),
            RequestClass::new(
                "chat",
                2.0,
                SequenceProfile::paper_default().with_decode_tokens(32),
                0.1,
                SloTarget::new(2.0, 0.05),
            )
            .with_priority(2),
        ])
    }

    fn diurnal_trace(mix: &WorkloadMix, n: usize) -> Trace {
        MixTraceSpec {
            num_requests: n,
            mix: mix.clone(),
            arrival: ArrivalProcess::Diurnal {
                base_rps: 5.0,
                peak_rps: 80.0,
                period_s: 20.0,
            },
            seed: 31,
        }
        .generate()
    }

    /// The degenerate pin at the core layer: no faults, no admission,
    /// reactive driver ⇒ the same fleet report and cost as the
    /// time-varying evaluation.
    #[test]
    fn faultless_scenario_matches_timevarying() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let mix = priority_mix();
        let trace = diurnal_trace(&mix, 300);
        let policy = AutoscalerPolicy::new(1, 4)
            .with_evaluation_interval(0.5)
            .with_scale_out_queue_depth(1.0)
            .with_scale_in_outstanding(2.0)
            .with_cooldown(2.0)
            .with_warmup(0.5);
        let fleet = FleetConfig::new(1, RouterPolicy::LeastOutstanding);
        let baseline =
            evaluate_fleet_timevarying(&profiler, &schedule, &fleet, &mix, &trace, Some(&policy))
                .unwrap();
        let scenario = FaultScenario::new(ScaleDriver::Reactive(policy));
        let faulted = evaluate_fleet_faulted(
            &profiler,
            &schedule,
            RouterPolicy::LeastOutstanding,
            &mix,
            &trace,
            &scenario,
        )
        .unwrap();
        assert_eq!(faulted.chaos.fleet, baseline.report);
        assert_eq!(faulted.replica_seconds, baseline.replica_seconds);
        assert_eq!(faulted.chip_seconds, baseline.chip_seconds);
        // With nothing shed or lost, offered attainment equals completed
        // attainment.
        assert_eq!(faulted.attainment, baseline.attainment);
        assert_eq!(faulted.goodput_rps, baseline.goodput_rps);
        assert!(faulted.recovery.is_empty());
        assert_eq!(faulted.chaos.fault.shed, 0);
        assert_eq!(faulted.chaos.fault.failed, 0);
    }

    /// The acceptance criterion: under a single-replica crash with
    /// admission on, the highest-priority class degrades less than the
    /// fleet's share of the lost replica.
    #[test]
    fn high_priority_class_degrades_less_than_fleet_share() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let mix = priority_mix();
        let trace = diurnal_trace(&mix, 400);
        let replicas = 3u32;
        let crash = FaultSchedule::new(vec![FaultEvent::Crash {
            replica: 0,
            at_s: 4.0, // near the first diurnal peak
            restart_delay_s: 6.0,
        }]);
        let scenario = FaultScenario::new(ScaleDriver::Static { replicas })
            .with_faults(crash)
            .with_admission(AdmissionConfig::new(4.0, 24.0));
        let healthy = evaluate_fleet_faulted(
            &profiler,
            &schedule,
            RouterPolicy::LeastOutstanding,
            &mix,
            &trace,
            &FaultScenario::new(ScaleDriver::Static { replicas }),
        )
        .unwrap();
        let faulted = evaluate_fleet_faulted(
            &profiler,
            &schedule,
            RouterPolicy::LeastOutstanding,
            &mix,
            &trace,
            &scenario,
        )
        .unwrap();
        // Priorities were inherited from the mix (empty table).
        let chat = &faulted.per_class[1];
        assert_eq!(chat.priority, 2);
        assert_eq!(faulted.per_class[0].priority, 0);
        // The crash actually disrupted the run.
        assert_eq!(faulted.chaos.fault.disruptions.len(), 1);
        // The high-priority class's attainment drop is bounded by the
        // fleet share of the lost replica (1/3 here).
        let healthy_chat = &healthy.per_class[1];
        let drop = (healthy_chat.attainment - chat.attainment).max(0.0);
        let fleet_share = 1.0 / f64::from(replicas);
        assert!(
            drop < fleet_share,
            "chat dropped {drop:.3}, worse than the lost replica's share {fleet_share:.3}"
        );
        // Shed is attributed per class and offered conservation holds.
        let offered: usize = faulted.per_class.iter().map(|c| c.offered).sum();
        assert_eq!(
            offered + faulted.chaos.fault.failed,
            faulted.chaos.fault.injected
        );
    }

    #[test]
    fn predictive_plan_from_profile_closes_the_loop() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(2.0, 0.1);
        let profile_segments = vec![
            RateSegment {
                rate_rps: 5.0,
                duration_s: 5.0,
            },
            RateSegment {
                rate_rps: 60.0,
                duration_s: 5.0,
            },
            RateSegment {
                rate_rps: 5.0,
                duration_s: 5.0,
            },
        ];
        let options = CapacityOptions {
            max_replicas: 4,
            num_requests: 80,
            ..Default::default()
        };
        let capacity =
            plan_capacity_profile(&profiler, &schedule, &slo, &profile_segments, &options).unwrap();
        let plan = scaling_plan_from_profile(&capacity, 1.0);
        assert!(plan.initial >= 1);
        // The plan follows the profile: the mid-window surge needs more
        // replicas than the trough.
        let peak_target = plan
            .steps
            .iter()
            .map(|s| s.replicas)
            .max()
            .unwrap_or(plan.initial);
        assert_eq!(peak_target, capacity.peak_replicas.max(1));
        // And it drives a faulted evaluation end to end.
        let profile_def = SequenceProfile::paper_default().with_decode_tokens(32);
        let mix = WorkloadMix::single("all", profile_def, 0.1, slo);
        let trace = MixTraceSpec {
            num_requests: 300,
            mix: mix.clone(),
            arrival: ArrivalProcess::PiecewiseRate {
                segments: profile_segments,
            },
            seed: 11,
        }
        .generate();
        let scenario = FaultScenario::new(ScaleDriver::Predictive(
            rago_serving_sim::faults::PredictivePolicy::new(plan.clone(), 0.5),
        ));
        let eval = evaluate_fleet_faulted(
            &profiler,
            &schedule,
            RouterPolicy::LeastOutstanding,
            &mix,
            &trace,
            &scenario,
        )
        .unwrap();
        assert_eq!(eval.chaos.fault.completed, 300);
        assert_eq!(eval.scaling.peak_provisioned, peak_target.max(plan.initial));
    }

    #[test]
    fn recovery_metrics_follow_a_crash() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(2.0, 0.1).with_attainment(0.8);
        let profile = SequenceProfile::paper_default().with_decode_tokens(32);
        let mix = WorkloadMix::single("all", profile, 0.1, slo);
        let trace = MixTraceSpec {
            num_requests: 400,
            mix: mix.clone(),
            arrival: ArrivalProcess::Poisson { rate_rps: 40.0 },
            seed: 17,
        }
        .generate();
        let scenario = FaultScenario::new(ScaleDriver::Static { replicas: 2 })
            .with_faults(FaultSchedule::new(vec![FaultEvent::Crash {
                replica: 0,
                at_s: 3.0,
                restart_delay_s: 1.0,
            }]))
            .with_recovery_window(0.5);
        let eval = evaluate_fleet_faulted(
            &profiler,
            &schedule,
            RouterPolicy::LeastOutstanding,
            &mix,
            &trace,
            &scenario,
        )
        .unwrap();
        assert_eq!(eval.recovery.len(), 1);
        assert!(eval.recovery[0].dip_area >= 0.0);
        assert!(!eval.timeline.is_empty());
        let covered: usize = eval.timeline.iter().map(|w| w.completed).sum();
        assert_eq!(covered, eval.chaos.fault.completed);
        if eval.recovery[0].reattainment_s.is_some() {
            assert_eq!(eval.worst_recovery_s(), eval.recovery[0].reattainment_s);
        }
    }

    #[test]
    fn invalid_inputs_are_rejected() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let mix = priority_mix();
        let scenario = FaultScenario::new(ScaleDriver::Static { replicas: 1 });
        let empty = Trace { requests: vec![] };
        assert!(matches!(
            evaluate_fleet_faulted(
                &profiler,
                &schedule,
                RouterPolicy::RoundRobin,
                &mix,
                &empty,
                &scenario
            ),
            Err(RagoError::InvalidConfig { .. })
        ));
        let mut trace = diurnal_trace(&mix, 10);
        trace.requests[2].class = 9;
        assert!(matches!(
            evaluate_fleet_faulted(
                &profiler,
                &schedule,
                RouterPolicy::RoundRobin,
                &mix,
                &trace,
                &scenario
            ),
            Err(RagoError::InvalidConfig { .. })
        ));
    }

    /// A prefill-pool crash mid-run degrades (never improves) the split's
    /// attainment, conserves every request onto the survivors, and invalid
    /// crash targets error instead of panicking.
    #[test]
    fn pool_crashes_requeue_to_survivors_and_degrade_attainment() {
        use rago_schema::{FleetConfig, PoolRole, SloTarget};
        use rago_serving_sim::pools::PoolCrash;
        use rago_workloads::{ArrivalProcess, TraceSpec};

        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let trace = TraceSpec {
            num_requests: 120,
            profile: rago_schema::SequenceProfile::paper_default().with_decode_tokens(16),
            arrival: ArrivalProcess::Poisson { rate_rps: 120.0 },
            length_jitter: 0.2,
            seed: 23,
        }
        .generate();
        let fleet = FleetConfig::split(2, 1, RouterPolicy::LeastOutstanding);
        let healthy =
            crate::disagg::evaluate_fleet_disagg(&profiler, &schedule, &fleet, &trace, &slo)
                .unwrap();
        let crash = PoolCrash {
            pool: PoolRole::Prefill,
            replica: 0,
            at_s: 0.2,
            restart_delay_s: None,
        };
        let crashed =
            evaluate_fleet_faulted_pools(&profiler, &schedule, &fleet, &[crash], &trace, &slo)
                .unwrap();
        // Conservation: every request still completes on the survivors.
        assert_eq!(crashed.report.merged.metrics.completed, 120);
        assert!(crashed.attainment <= healthy.attainment);
        // Crashing the Monolithic pool is a configuration error.
        let bad = PoolCrash {
            pool: PoolRole::Monolithic,
            replica: 0,
            at_s: 0.1,
            restart_delay_s: None,
        };
        assert!(matches!(
            evaluate_fleet_faulted_pools(&profiler, &schedule, &fleet, &[bad], &trace, &slo),
            Err(RagoError::InvalidConfig { .. })
        ));
    }
}
