//! Anytime stochastic schedule search: sample → beam → coordinate descent →
//! worker exchange.
//!
//! The exhaustive odometer ([`crate::optimizer::ScheduleIter`]) is the right
//! tool for paper-sized grids (thousands of candidates), but the spaces the
//! repo now models — disaggregated pools × chip types × cache configs —
//! are combinatorially large. This module searches the *same* candidate
//! space (identical budget-filtered axes, shared via
//! `Rago::search_axes`) without enumerating it:
//!
//! 1. **Sample.** Each round draws a deterministic batch of novel
//!    candidates: *uniform* draws over the whole space (via the
//!    [`ScheduleSpace`] mixed-radix codec, which decodes any index to its
//!    schedule in O(axes)), and *focussed* draws that perturb one axis of a
//!    current beam survivor. When uniform draws keep hitting already-seen
//!    candidates, generation falls back to a deterministic cursor scan of
//!    the remaining unseen indices — so with enough budget the search
//!    provably visits **every** candidate and the frontier equals the
//!    exhaustive one exactly.
//! 2. **Beam.** Every feasible evaluation reports into a deduplicated
//!    [`BestSamples`] beam keyed on [`Schedule::identity_key`] — *not* on an
//!    enumeration index, which sampled candidates don't have — scored by
//!    QPS/chip (the goodput-per-chip objective the exhaustive path also
//!    optimizes), while a [`ParetoAccumulator`] collects the full
//!    (TTFT, QPS/chip) frontier from every evaluation.
//! 3. **Coordinate descent.** Beam survivors are refined by hill-climbing
//!    along one placement/parallelism axis at a time (each group's XPU
//!    count, the decode allocation, the server count, each batch axis),
//!    against a snapshot of the scores known at the round start.
//! 4. **Worker exchange.** Within a round, the batch is split across
//!    `workers` threads that evaluate independently; their results merge at
//!    the round boundary — a fixed evaluation-count checkpoint — into the
//!    shared beam and frontier, which the next round's sampling and descent
//!    read. Because the work list is generated sequentially up front, every
//!    merge is order-insensitive (identity tie-breaks), and descent only
//!    consults the frozen snapshot, **seeded runs are bit-reproducible
//!    regardless of worker count or thread timing.**
//!
//! The only reproducibility trade-off is the optional wall-clock budget
//! ([`StochasticConfig::time_budget_s`]): it is checked at round boundaries
//! only, so a time-capped run still never splits a round, but *which* round
//! it stops after depends on the machine. Leave it `None` (budgeting by
//! `max_evaluations` alone) for bit-reproducible results.
//!
//! The design follows the sparrow placement-search exemplars (SNIPPETS.md
//! 1–2): a capacity-bounded deduplicated best-sample set, focussed + uniform
//! samplers, coordinate-descent refinement, and parallel workers with
//! periodic best-solution exchange under a strict budget.

use crate::error::RagoError;
use crate::metrics::RagPerformance;
use crate::optimizer::{Rago, SearchAxes};
use crate::pareto::{ParetoAccumulator, ParetoFrontier, ParetoPoint};
use crate::placement::PlacementPlan;
use crate::profiler::StageProfiler;
use crate::schedule::{BatchingPolicy, ResourceAllocation, Schedule};
use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use serde::{Deserialize, Serialize};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// How [`Rago::optimize_with_mode`] searches the schedule space.
#[derive(Debug, Clone, PartialEq, Default)]
pub enum SearchMode {
    /// Enumerate and evaluate every candidate (exact; the default).
    #[default]
    Exhaustive,
    /// The seeded anytime stochastic search of this module.
    Stochastic(StochasticConfig),
}

/// Tuning knobs of the stochastic search. [`StochasticConfig::default`] is
/// sized for exploratory runs; [`StochasticConfig::with_budget`] is the knob
/// that matters most (how many novel candidate evaluations to spend).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct StochasticConfig {
    /// RNG seed. Two runs with the same seed, budget, and grid produce
    /// bit-identical reports (modulo wall-clock fields).
    pub seed: u64,
    /// Worker threads evaluating each round's batch. The result is
    /// independent of this value — it only changes wall-clock time.
    pub workers: usize,
    /// Budget: total novel candidate evaluations across all rounds. The
    /// search stops at the first round boundary at or beyond it (a round's
    /// coordinate-descent phase may overshoot by at most
    /// `beam_width × descent_evaluations`).
    pub max_evaluations: usize,
    /// Optional wall-clock budget in seconds, checked at round boundaries
    /// only. **Setting this trades bit-reproducibility across machines for
    /// an anytime cap** — see the module docs.
    pub time_budget_s: Option<f64>,
    /// Best-sample beam capacity (survivors refined and exchanged).
    pub beam_width: usize,
    /// Novel evaluations per sampling round (the exchange checkpoint
    /// interval).
    pub round_evaluations: usize,
    /// Fraction of each round's samples drawn uniformly from the whole
    /// space; the rest focus around beam survivors. Clamped to `[0, 1]`.
    pub uniform_fraction: f64,
    /// Maximum full axis sweeps per survivor in one descent phase.
    pub descent_sweeps: usize,
    /// Maximum novel evaluations one survivor's descent may spend per
    /// round. `0` disables coordinate descent.
    pub descent_evaluations: usize,
}

impl Default for StochasticConfig {
    fn default() -> Self {
        Self {
            seed: 0x5EED,
            workers: rayon::current_num_threads().max(1),
            max_evaluations: 4096,
            time_budget_s: None,
            beam_width: 8,
            round_evaluations: 256,
            uniform_fraction: 0.5,
            descent_sweeps: 4,
            descent_evaluations: 96,
        }
    }
}

impl StochasticConfig {
    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the worker-thread count (result-invariant; speed only).
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers;
        self
    }

    /// Sets the evaluation budget.
    pub fn with_budget(mut self, max_evaluations: usize) -> Self {
        self.max_evaluations = max_evaluations;
        self
    }

    /// Sets the wall-clock budget (see [`StochasticConfig::time_budget_s`]).
    pub fn with_time_budget(mut self, seconds: f64) -> Self {
        self.time_budget_s = Some(seconds);
        self
    }

    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`RagoError::InvalidConfig`] on a zero worker count, beam
    /// width, round size, or budget, a non-finite uniform fraction, or a
    /// non-positive time budget.
    pub fn validate(&self) -> Result<(), RagoError> {
        let reject = |reason: String| Err(RagoError::InvalidConfig { reason });
        if self.workers == 0 {
            return reject("stochastic search needs at least one worker".into());
        }
        if self.beam_width == 0 {
            return reject("stochastic search needs a beam of at least one survivor".into());
        }
        if self.round_evaluations == 0 {
            return reject("stochastic search needs at least one evaluation per round".into());
        }
        if self.max_evaluations == 0 {
            return reject("stochastic search needs a non-zero evaluation budget".into());
        }
        if !self.uniform_fraction.is_finite() {
            return reject(format!(
                "uniform_fraction must be finite, got {}",
                self.uniform_fraction
            ));
        }
        if let Some(t) = self.time_budget_s {
            if t <= 0.0 || t.is_nan() {
                return reject(format!("time budget must be positive, got {t}"));
            }
        }
        Ok(())
    }
}

/// One placement's block of the candidate space: a contiguous index range
/// whose digits are the per-group XPU steps, the decode step, the server
/// step, and the batch steps.
#[derive(Debug, Clone)]
struct PlacementBlock {
    placement: PlacementPlan,
    offset: u128,
    size: u128,
}

/// Random-access mixed-radix codec over the candidate schedule space: the
/// same placements × budget-filtered allocation steps × batching axes the
/// exhaustive [`crate::optimizer::ScheduleIter`] streams, addressable by a
/// dense index in `0..size()`. Decoding is O(axes); no candidate is ever
/// materialized eagerly.
///
/// Indices enumerate *allocations within the XPU budget or not* — the
/// odometer skips over-budget allocations while streaming, whereas the
/// codec reports them via [`ScheduleSpace::feasible`] so samplers can
/// reject and redraw. Both views contain exactly the same feasible
/// candidates.
#[derive(Debug, Clone)]
pub struct ScheduleSpace {
    blocks: Vec<PlacementBlock>,
    xpu_steps: Vec<u32>,
    server_steps: Vec<u32>,
    predecode_batches: Vec<u32>,
    decode_batches: Vec<u32>,
    iterative_batches: Vec<Option<u32>>,
    max_total_xpus: u32,
    size: u128,
}

/// The digit vector of one candidate: its placement block and one index
/// into every axis. The coordinate-descent refinement steps these digits
/// one at a time.
#[derive(Debug, Clone, PartialEq, Eq)]
struct Digits {
    block: usize,
    groups: Vec<usize>,
    decode: usize,
    server: usize,
    predecode: usize,
    decode_batch: usize,
    iterative: usize,
}

impl ScheduleSpace {
    pub(crate) fn new(axes: SearchAxes) -> Self {
        let SearchAxes {
            placements,
            xpu_steps,
            server_steps,
            predecode_batches,
            decode_batches,
            iterative_batches,
            max_total_xpus,
        } = axes;
        let degenerate = xpu_steps.is_empty()
            || server_steps.is_empty()
            || predecode_batches.is_empty()
            || decode_batches.is_empty()
            || iterative_batches.is_empty();
        let mut blocks = Vec::with_capacity(placements.len());
        let mut offset: u128 = 0;
        if !degenerate {
            let inner = (xpu_steps.len()
                * server_steps.len()
                * predecode_batches.len()
                * decode_batches.len()
                * iterative_batches.len()) as u128;
            for placement in placements {
                let groups = placement.num_groups() as u32;
                let size = inner * (xpu_steps.len() as u128).pow(groups);
                blocks.push(PlacementBlock {
                    placement,
                    offset,
                    size,
                });
                offset += size;
            }
        }
        Self {
            blocks,
            xpu_steps,
            server_steps,
            predecode_batches,
            decode_batches,
            iterative_batches,
            max_total_xpus,
            size: offset,
        }
    }

    /// Total number of addressable candidates (including allocations over
    /// the XPU budget, which [`ScheduleSpace::feasible`] rejects).
    pub fn size(&self) -> u128 {
        self.size
    }

    /// The schedule at `index`, or `None` past the end of the space.
    pub fn decode(&self, index: u128) -> Option<Schedule> {
        self.digits_of(index).map(|d| self.schedule_at(&d))
    }

    /// Whether the candidate at `index` fits the XPU budget. (Budget-wise
    /// inadmissible *steps* were already filtered from the axes; this
    /// rejects admissible steps whose *sum* exceeds the budget.)
    pub fn feasible(&self, index: u128) -> bool {
        self.digits_of(index)
            .map(|d| self.digits_feasible(&d))
            .unwrap_or(false)
    }

    fn digits_feasible(&self, d: &Digits) -> bool {
        let groups: u32 = d.groups.iter().map(|&i| self.xpu_steps[i]).sum();
        groups + self.xpu_steps[d.decode] <= self.max_total_xpus
    }

    fn digits_of(&self, index: u128) -> Option<Digits> {
        if index >= self.size {
            return None;
        }
        let block = self
            .blocks
            .partition_point(|b| b.offset + b.size <= index)
            .min(self.blocks.len() - 1);
        let mut rem = index - self.blocks[block].offset;
        let mut take = |len: usize| {
            let digit = (rem % len as u128) as usize;
            rem /= len as u128;
            digit
        };
        let iterative = take(self.iterative_batches.len());
        let decode_batch = take(self.decode_batches.len());
        let predecode = take(self.predecode_batches.len());
        let server = take(self.server_steps.len());
        let decode = take(self.xpu_steps.len());
        let groups: Vec<usize> = (0..self.blocks[block].placement.num_groups())
            .map(|_| take(self.xpu_steps.len()))
            .collect();
        Some(Digits {
            block,
            groups,
            decode,
            server,
            predecode,
            decode_batch,
            iterative,
        })
    }

    fn encode(&self, d: &Digits) -> u128 {
        let mut v: u128 = 0;
        for &g in d.groups.iter().rev() {
            v = v * self.xpu_steps.len() as u128 + g as u128;
        }
        v = v * self.xpu_steps.len() as u128 + d.decode as u128;
        v = v * self.server_steps.len() as u128 + d.server as u128;
        v = v * self.predecode_batches.len() as u128 + d.predecode as u128;
        v = v * self.decode_batches.len() as u128 + d.decode_batch as u128;
        v = v * self.iterative_batches.len() as u128 + d.iterative as u128;
        self.blocks[d.block].offset + v
    }

    fn schedule_at(&self, d: &Digits) -> Schedule {
        let placement = self.blocks[d.block].placement.clone();
        let group_xpus: Vec<u32> = d.groups.iter().map(|&i| self.xpu_steps[i]).collect();
        let mut batching = BatchingPolicy::new(
            self.predecode_batches[d.predecode],
            self.decode_batches[d.decode_batch],
        );
        batching.iterative_batch = self.iterative_batches[d.iterative];
        Schedule {
            placement,
            allocation: ResourceAllocation {
                group_xpus,
                decode_xpus: self.xpu_steps[d.decode],
                retrieval_servers: self.server_steps[d.server],
            },
            batching,
        }
    }

    /// Number of steppable axes for a candidate in `block`: one per
    /// placement group, plus decode allocation, server count, pre-decode
    /// batch, decode batch, and iterative batch.
    fn num_axes(&self, block: usize) -> usize {
        self.blocks[block].placement.num_groups() + 5
    }

    fn axis_len(&self, block: usize, axis: usize) -> usize {
        let groups = self.blocks[block].placement.num_groups();
        if axis < groups {
            return self.xpu_steps.len();
        }
        match axis - groups {
            0 => self.xpu_steps.len(),
            1 => self.server_steps.len(),
            2 => self.predecode_batches.len(),
            3 => self.decode_batches.len(),
            _ => self.iterative_batches.len(),
        }
    }

    fn axis_digit(d: &Digits, axis: usize) -> usize {
        if axis < d.groups.len() {
            return d.groups[axis];
        }
        match axis - d.groups.len() {
            0 => d.decode,
            1 => d.server,
            2 => d.predecode,
            3 => d.decode_batch,
            _ => d.iterative,
        }
    }

    fn set_axis_digit(d: &mut Digits, axis: usize, value: usize) {
        if axis < d.groups.len() {
            d.groups[axis] = value;
            return;
        }
        match axis - d.groups.len() {
            0 => d.decode = value,
            1 => d.server = value,
            2 => d.predecode = value,
            3 => d.decode_batch = value,
            _ => d.iterative = value,
        }
    }

    /// One coordinate step: the neighbour of `d` along `axis` in direction
    /// `dir` (±1), or `None` at the axis boundary.
    fn step(&self, d: &Digits, axis: usize, dir: i64) -> Option<Digits> {
        let len = self.axis_len(d.block, axis) as i64;
        let next = Self::axis_digit(d, axis) as i64 + dir;
        if next < 0 || next >= len {
            return None;
        }
        let mut out = d.clone();
        Self::set_axis_digit(&mut out, axis, next as usize);
        Some(out)
    }
}

/// One survivor of the [`BestSamples`] beam.
#[derive(Debug, Clone)]
pub struct BeamEntry {
    /// The candidate's index in its [`ScheduleSpace`].
    pub index: u128,
    /// The beam objective: QPS/chip.
    pub score: f64,
    /// The schedule itself.
    pub schedule: Schedule,
    /// Cached [`Schedule::identity_key`] (the dedup/tie-break key).
    key: String,
}

/// A capacity-bounded, deduplicated set of the best samples seen so far,
/// ordered by score (QPS/chip) descending. Dedup and tie-breaks use
/// [`Schedule::identity_key`], so reporting the same candidates in any
/// order — from any number of workers — yields the same beam.
#[derive(Debug, Clone)]
pub struct BestSamples {
    capacity: usize,
    entries: Vec<BeamEntry>,
}

impl BestSamples {
    /// Creates an empty beam holding at most `capacity` survivors.
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity,
            entries: Vec::with_capacity(capacity + 1),
        }
    }

    /// Number of survivors currently held.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the beam holds no survivor yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The survivors, best score first (ties by identity key ascending).
    pub fn entries(&self) -> &[BeamEntry] {
        &self.entries
    }

    /// Reports one scored sample. Returns `true` if it entered the beam.
    pub fn report(&mut self, index: u128, score: f64, schedule: Schedule) -> bool {
        let key = schedule.identity_key();
        if self.entries.iter().any(|e| e.key == key) {
            // A candidate's score is a pure function of its schedule, so a
            // duplicate can neither improve nor displace anything.
            return false;
        }
        let pos = self.entries.partition_point(|e| {
            e.score.total_cmp(&score) == std::cmp::Ordering::Greater
                || (e.score.total_cmp(&score) == std::cmp::Ordering::Equal && e.key < key)
        });
        if pos >= self.capacity {
            return false;
        }
        self.entries.insert(
            pos,
            BeamEntry {
                index,
                score,
                schedule,
                key,
            },
        );
        self.entries.truncate(self.capacity);
        true
    }
}

/// One anytime checkpoint: the frontier as of a round boundary.
#[derive(Debug, Clone)]
pub struct AnytimeSample {
    /// Novel evaluations spent up to this checkpoint.
    pub evaluations: usize,
    /// Wall-clock seconds elapsed at this checkpoint (informational; not
    /// part of the reproducible surface).
    pub elapsed_s: f64,
    /// The frontier over everything evaluated so far.
    pub frontier: ParetoFrontier,
}

/// The result of one stochastic search run.
#[derive(Debug, Clone)]
pub struct StochasticSearchReport {
    /// The Pareto frontier over every evaluated candidate.
    pub frontier: ParetoFrontier,
    /// Novel candidate evaluations spent (feasible or not).
    pub evaluations: usize,
    /// How many of those evaluated successfully (structurally feasible and
    /// within every stage's cost model).
    pub feasible_evaluations: usize,
    /// Sampling rounds completed (= exchange checkpoints).
    pub rounds: usize,
    /// Total addressable candidates in the space.
    pub space_size: u128,
    /// Whether the search visited every candidate (at which point the
    /// frontier is exactly the exhaustive one).
    pub exhausted: bool,
    /// Wall-clock seconds for the whole run (informational).
    pub elapsed_s: f64,
    /// The frontier at every round boundary, oldest first. With a fixed
    /// reference point, `frontier.hypervolume(..)` over this timeline is
    /// non-decreasing.
    pub timeline: Vec<AnytimeSample>,
    /// Novel candidate evaluations charged in each round, oldest first
    /// (uniform + focussed + descent). Sums to `evaluations`.
    pub round_evals: Vec<u64>,
    /// Beam admissions in each round, oldest first: how many evaluated
    /// candidates entered the survivor beam (displacing a weaker entry or
    /// filling a free slot). A settling search trends toward zero churn.
    pub beam_churn: Vec<u64>,
}

impl StochasticSearchReport {
    /// The search's self-profiling counters in [`rago_telemetry::SimProfile`]
    /// form: rounds completed, novel evaluations per round, and beam churn
    /// per round (every other field is zero — merge with an engine-produced
    /// profile via [`rago_telemetry::SimProfile::merge_from`] if desired).
    pub fn sim_profile(&self) -> rago_telemetry::SimProfile {
        rago_telemetry::SimProfile {
            search_rounds: self.rounds as u64,
            search_round_evals: self.round_evals.clone(),
            search_beam_churn: self.beam_churn.clone(),
            ..Default::default()
        }
    }
}

/// Splits a `u64` seed into an independent per-(round, stream) RNG.
fn stream_rng(seed: u64, round: usize, stream: u64) -> StdRng {
    let mixed = seed
        ^ (round as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ stream.wrapping_mul(0xC2B2_AE3D_27D4_EB4F);
    StdRng::seed_from_u64(mixed)
}

/// A uniform index into `0..size`.
fn draw_index<R: RngCore>(rng: &mut R, size: u128) -> u128 {
    if size <= u64::MAX as u128 {
        return u128::from(rng.gen_range(0..size as u64));
    }
    // Compose two draws for astronomically large grids; the modulo bias is
    // ~2^-64 and irrelevant for sampling quality.
    let hi = u128::from(rng.gen::<u64>());
    let lo = u128::from(rng.gen::<u64>());
    ((hi << 64) | lo) % size
}

/// Evaluation outcome of one candidate, in work-list order.
type Evaluated = (u128, Schedule, Option<RagPerformance>);

/// Evaluates `batch` across `workers` threads, returning results in batch
/// order regardless of thread timing (each worker owns a contiguous chunk;
/// chunks are concatenated in order).
fn evaluate_batch(
    profiler: &StageProfiler,
    batch: Vec<(u128, Schedule)>,
    workers: usize,
) -> Vec<Evaluated> {
    let eval_one = |(index, schedule): (u128, Schedule)| -> Evaluated {
        let perf = schedule.evaluate(profiler).ok();
        (index, schedule, perf)
    };
    if workers <= 1 || batch.len() <= 1 {
        return batch.into_iter().map(eval_one).collect();
    }
    let chunk = batch.len().div_ceil(workers);
    let chunks: Vec<Vec<(u128, Schedule)>> = batch.chunks(chunk).map(|c| c.to_vec()).collect();
    let mut results: Vec<Vec<Evaluated>> = Vec::with_capacity(chunks.len());
    std::thread::scope(|scope| {
        let handles: Vec<_> = chunks
            .into_iter()
            .map(|c| scope.spawn(move || c.into_iter().map(eval_one).collect::<Vec<_>>()))
            .collect();
        for h in handles {
            results.push(h.join().expect("search evaluation worker panicked"));
        }
    });
    results.into_iter().flatten().collect()
}

/// The frozen knowledge a descent worker may consult: everything evaluated
/// before the current round's descent phase.
struct Snapshot<'a> {
    seen: &'a HashSet<u128>,
    scores: &'a HashMap<u128, f64>,
}

/// Hill-climbs one survivor along one axis at a time against the frozen
/// snapshot, evaluating at most `eval_cap` novel candidates. Returns the
/// ordered list of evaluations performed (the caller merges them; nothing
/// global is mutated here, which is what keeps the phase deterministic
/// under any worker count).
fn coordinate_descent(
    space: &ScheduleSpace,
    profiler: &StageProfiler,
    snapshot: &Snapshot<'_>,
    entry: &BeamEntry,
    sweeps: usize,
    eval_cap: usize,
) -> Vec<Evaluated> {
    let Some(mut digits) = space.digits_of(entry.index) else {
        return Vec::new();
    };
    let mut best = entry.score;
    let mut evals: Vec<Evaluated> = Vec::new();
    let mut local: HashMap<u128, Option<f64>> = HashMap::new();
    let mut budget_left = eval_cap;

    'sweeps: for _ in 0..sweeps {
        let mut improved = false;
        for axis in 0..space.num_axes(digits.block) {
            for dir in [1i64, -1] {
                // Walk this direction while it keeps strictly improving.
                while let Some(next) = space.step(&digits, axis, dir) {
                    let index = space.encode(&next);
                    let score = if let Some(&s) = snapshot.scores.get(&index) {
                        Some(s)
                    } else if snapshot.seen.contains(&index) {
                        // Known infeasible (or cost-model-rejected).
                        None
                    } else if let Some(&s) = local.get(&index) {
                        s
                    } else {
                        if budget_left == 0 {
                            break 'sweeps;
                        }
                        budget_left -= 1;
                        let (schedule, perf) = if space.digits_feasible(&next) {
                            let schedule = space.schedule_at(&next);
                            let perf = schedule.evaluate(profiler).ok();
                            (schedule, perf)
                        } else {
                            (space.schedule_at(&next), None)
                        };
                        let s = perf.as_ref().map(|p| p.qps_per_chip);
                        local.insert(index, s);
                        evals.push((index, schedule, perf));
                        s
                    };
                    match score {
                        Some(s) if s > best => {
                            best = s;
                            digits = next;
                            improved = true;
                        }
                        _ => break,
                    }
                }
            }
        }
        if !improved {
            break;
        }
    }
    evals
}

/// Runs the stochastic search over `space` for `rago`'s workload. Prefer
/// the façade [`Rago::optimize_stochastic`].
///
/// # Errors
///
/// Returns [`RagoError::InvalidConfig`] for a malformed `config` and
/// [`RagoError::NoFeasibleSchedule`] when the budget ran out before any
/// feasible candidate was found (or the space holds none).
pub fn run_stochastic(
    rago: &Rago,
    space: &ScheduleSpace,
    config: &StochasticConfig,
) -> Result<StochasticSearchReport, RagoError> {
    config.validate()?;
    let start = Instant::now();
    let profiler = rago.profiler();
    let uniform_fraction = config.uniform_fraction.clamp(0.0, 1.0);

    let mut seen: HashSet<u128> = HashSet::new();
    let mut scores: HashMap<u128, f64> = HashMap::new();
    let mut accumulator = ParetoAccumulator::new();
    let mut beam = BestSamples::new(config.beam_width);
    let mut evaluations = 0usize;
    let mut feasible_evaluations = 0usize;
    let mut rounds = 0usize;
    let mut scan_cursor: u128 = 0;
    let mut scanned: u128 = 0; // indices the fallback scan has consumed
    let mut timeline: Vec<AnytimeSample> = Vec::new();
    let mut round_evals: Vec<u64> = Vec::new();
    let mut beam_churn: Vec<u64> = Vec::new();
    let mut exhausted = space.size() == 0;

    while !exhausted && evaluations < config.max_evaluations {
        rounds += 1;
        let round_start_evals = evaluations;
        let mut round_churn = 0u64;
        let remaining = config.max_evaluations - evaluations;
        let target = config.round_evaluations.min(remaining);

        // ---- Generation (sequential, deterministic): the round's work
        // list of novel candidates, reserved in `seen` up front. ----
        let mut batch: Vec<(u128, Schedule)> = Vec::with_capacity(target);
        let uniform_quota = if beam.is_empty() {
            target
        } else {
            ((target as f64) * uniform_fraction).round() as usize
        };

        // Uniform draws; on sustained novelty misses, fall back to a
        // deterministic cursor scan so coverage is guaranteed.
        let mut rng = stream_rng(config.seed, rounds, 0xA11C_E5EE);
        let miss_limit = 4 * uniform_quota + 64;
        let mut misses = 0usize;
        while batch.len() < uniform_quota && misses < miss_limit {
            let index = draw_index(&mut rng, space.size());
            if seen.contains(&index) {
                misses += 1;
                continue;
            }
            seen.insert(index);
            let digits = space.digits_of(index).expect("index in range");
            if !space.digits_feasible(&digits) {
                misses += 1;
                continue;
            }
            batch.push((index, space.schedule_at(&digits)));
        }
        if batch.len() < uniform_quota {
            // Saturated: sweep the cursor over the remaining unseen indices.
            while batch.len() < uniform_quota && scanned < space.size() {
                let index = scan_cursor;
                scan_cursor = (scan_cursor + 1) % space.size();
                scanned += 1;
                if seen.contains(&index) {
                    continue;
                }
                seen.insert(index);
                let digits = space.digits_of(index).expect("index in range");
                if space.digits_feasible(&digits) {
                    batch.push((index, space.schedule_at(&digits)));
                }
            }
            if scanned >= space.size() {
                // Every index is now reserved; whatever is in flight this
                // round is the last of the space.
                exhausted = true;
            }
        }

        // Focussed draws: perturb one axis of a beam survivor (or jump to a
        // fresh placement block), one RNG stream per survivor slot.
        let survivors: Vec<BeamEntry> = beam.entries().to_vec();
        if !survivors.is_empty() {
            let focussed_quota = target.saturating_sub(batch.len());
            let share = focussed_quota.div_ceil(survivors.len());
            for (slot, survivor) in survivors.iter().enumerate() {
                let quota = share.min(target.saturating_sub(batch.len()));
                if quota == 0 {
                    break;
                }
                let mut rng = stream_rng(config.seed, rounds, 0xF0C0_5000 + slot as u64);
                let Some(base) = space.digits_of(survivor.index) else {
                    continue;
                };
                let axes = space.num_axes(base.block);
                let mut drawn = 0usize;
                let mut attempts = 0usize;
                while drawn < quota && attempts < 8 * quota + 16 {
                    attempts += 1;
                    // Axis `axes` is the "jump" move: a fresh uniform index
                    // (possibly another placement), keeping the sampler
                    // ergodic across blocks.
                    let axis = rng.gen_range(0..=axes);
                    let index = if axis == axes {
                        draw_index(&mut rng, space.size())
                    } else {
                        let mut d = base.clone();
                        let len = space.axis_len(d.block, axis);
                        ScheduleSpace::set_axis_digit(&mut d, axis, rng.gen_range(0..len));
                        space.encode(&d)
                    };
                    if seen.contains(&index) {
                        continue;
                    }
                    seen.insert(index);
                    let digits = space.digits_of(index).expect("index in range");
                    if !space.digits_feasible(&digits) {
                        continue;
                    }
                    batch.push((index, space.schedule_at(&digits)));
                    drawn += 1;
                }
            }
        }

        // ---- Parallel evaluation; merge in work-list order. ----
        let descent_enabled =
            config.descent_sweeps > 0 && config.descent_evaluations > 0 && !survivors.is_empty();
        let had_batch = !batch.is_empty();
        for (index, schedule, perf) in evaluate_batch(profiler, batch, config.workers) {
            evaluations += 1;
            if let Some(perf) = perf {
                feasible_evaluations += 1;
                scores.insert(index, perf.qps_per_chip);
                if beam.report(index, perf.qps_per_chip, schedule.clone()) {
                    round_churn += 1;
                }
                accumulator.push(ParetoPoint {
                    schedule,
                    performance: perf,
                });
            }
        }

        // ---- Coordinate descent on the round-start survivors, against the
        // frozen snapshot; results merge in survivor order. ----
        let mut descent_progress = false;
        if descent_enabled {
            let snapshot_seen = seen.clone();
            let snapshot = Snapshot {
                seen: &snapshot_seen,
                scores: &scores,
            };
            let descent_results: Vec<Vec<Evaluated>> =
                if config.workers <= 1 || survivors.len() <= 1 {
                    survivors
                        .iter()
                        .map(|e| {
                            coordinate_descent(
                                space,
                                profiler,
                                &snapshot,
                                e,
                                config.descent_sweeps,
                                config.descent_evaluations,
                            )
                        })
                        .collect()
                } else {
                    let chunk = survivors.len().div_ceil(config.workers);
                    let mut out: Vec<Vec<Vec<Evaluated>>> = Vec::new();
                    std::thread::scope(|scope| {
                        let snapshot = &snapshot;
                        let handles: Vec<_> = survivors
                            .chunks(chunk)
                            .map(|c| {
                                scope.spawn(move || {
                                    c.iter()
                                        .map(|e| {
                                            coordinate_descent(
                                                space,
                                                profiler,
                                                snapshot,
                                                e,
                                                config.descent_sweeps,
                                                config.descent_evaluations,
                                            )
                                        })
                                        .collect::<Vec<_>>()
                                })
                            })
                            .collect();
                        for h in handles {
                            out.push(h.join().expect("search descent worker panicked"));
                        }
                    });
                    out.into_iter().flatten().collect()
                };
            for (index, schedule, perf) in descent_results.into_iter().flatten() {
                if !seen.insert(index) {
                    // Two survivors explored the same neighbour; charge and
                    // record it once (the first, in survivor order).
                    continue;
                }
                descent_progress = true;
                evaluations += 1;
                if let Some(perf) = perf {
                    feasible_evaluations += 1;
                    scores.insert(index, perf.qps_per_chip);
                    if beam.report(index, perf.qps_per_chip, schedule.clone()) {
                        round_churn += 1;
                    }
                    accumulator.push(ParetoPoint {
                        schedule,
                        performance: perf,
                    });
                }
            }
        }

        // ---- Exchange checkpoint: everything learned this round is now in
        // the shared beam + frontier for the next round's workers. ----
        timeline.push(AnytimeSample {
            evaluations,
            elapsed_s: start.elapsed().as_secs_f64(),
            frontier: accumulator.clone().into_frontier(),
        });
        round_evals.push((evaluations - round_start_evals) as u64);
        beam_churn.push(round_churn);
        if !had_batch && !descent_progress {
            // Nothing novel can be generated any more.
            exhausted = true;
        }
        if let Some(budget) = config.time_budget_s {
            if start.elapsed().as_secs_f64() >= budget {
                break;
            }
        }
    }

    if accumulator.is_empty() {
        return Err(rago.no_feasible_schedule());
    }
    Ok(StochasticSearchReport {
        frontier: accumulator.into_frontier(),
        evaluations,
        feasible_evaluations,
        rounds,
        space_size: space.size(),
        exhausted,
        elapsed_s: start.elapsed().as_secs_f64(),
        timeline,
        round_evals,
        beam_churn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::SearchOptions;
    use rago_hardware::ClusterSpec;
    use rago_schema::presets::{self, LlmSize};

    fn case1() -> Rago {
        Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        )
    }

    fn tiny_options() -> SearchOptions {
        SearchOptions {
            xpu_steps: vec![8, 32],
            server_steps: vec![32],
            predecode_batch_steps: vec![1, 16],
            decode_batch_steps: vec![128],
            iterative_batch_steps: vec![8],
            placements: None,
        }
    }

    #[test]
    fn space_size_matches_axis_product() {
        let rago = case1();
        let space = rago.schedule_space(&tiny_options());
        // Case 1 has one collocatable stage → one placement with one group:
        // 2 (group) × 2 (decode) × 1 (server) × 2 (pre) × 1 (decode batch).
        assert_eq!(space.size(), 8);
    }

    #[test]
    fn decode_covers_exactly_the_odometer_stream() {
        let rago = case1();
        let options = tiny_options();
        let space = rago.schedule_space(&options);
        let streamed: Vec<Schedule> = rago.schedule_iter(&options).collect();
        let mut decoded: Vec<Schedule> = Vec::new();
        for index in 0..space.size() {
            let schedule = space.decode(index).expect("index in range");
            assert_eq!(
                space.feasible(index),
                schedule.allocation.total_xpus() <= rago.budget().max_xpus
            );
            if space.feasible(index) {
                decoded.push(schedule);
            }
        }
        // Same candidates (the codec enumerates in a different digit order
        // than the odometer, so compare as sets of identity keys).
        let mut streamed_keys: Vec<String> = streamed.iter().map(Schedule::identity_key).collect();
        let mut decoded_keys: Vec<String> = decoded.iter().map(Schedule::identity_key).collect();
        streamed_keys.sort();
        decoded_keys.sort();
        assert_eq!(streamed_keys, decoded_keys);
    }

    #[test]
    fn encode_round_trips_every_index() {
        let rago = Rago::new(
            presets::case4_rewriter_reranker(LlmSize::B8),
            ClusterSpec::paper_default(),
        );
        let options = SearchOptions {
            xpu_steps: vec![4, 16],
            server_steps: vec![16, 32],
            predecode_batch_steps: vec![4, 8],
            decode_batch_steps: vec![128],
            iterative_batch_steps: vec![8],
            placements: None,
        };
        let space = rago.schedule_space(&options);
        assert!(space.size() > 0);
        for index in 0..space.size() {
            let digits = space.digits_of(index).expect("index in range");
            assert_eq!(space.encode(&digits), index);
        }
        assert!(space.decode(space.size()).is_none());
    }

    #[test]
    fn beam_dedups_and_keeps_best() {
        let mut beam = BestSamples::new(2);
        let schedule_scoring = |xpus: u32| {
            let mut s = Schedule::test_dummy();
            s.allocation.decode_xpus = xpus;
            s
        };
        assert!(beam.report(0, 1.0, schedule_scoring(1)));
        assert!(!beam.report(0, 1.0, schedule_scoring(1)), "duplicate key");
        assert!(beam.report(1, 3.0, schedule_scoring(2)));
        assert!(beam.report(2, 2.0, schedule_scoring(3)), "evicts the 1.0");
        assert_eq!(beam.len(), 2);
        assert_eq!(beam.entries()[0].score, 3.0);
        assert_eq!(beam.entries()[1].score, 2.0);
        assert!(!beam.report(3, 0.5, schedule_scoring(4)), "below the beam");
    }

    #[test]
    fn beam_is_report_order_independent() {
        let entries: Vec<(u128, f64, u32)> = (0..12)
            .map(|i| (u128::from(i), f64::from((i * 7) % 5), 100 + i))
            .collect();
        let build = |order: &[usize]| {
            let mut beam = BestSamples::new(4);
            for &i in order {
                let (index, score, xpus) = entries[i];
                let mut s = Schedule::test_dummy();
                s.allocation.decode_xpus = xpus;
                beam.report(index, score, s);
            }
            beam.entries()
                .iter()
                .map(|e| (e.index, e.key.clone()))
                .collect::<Vec<_>>()
        };
        let forward: Vec<usize> = (0..entries.len()).collect();
        let reverse: Vec<usize> = (0..entries.len()).rev().collect();
        assert_eq!(build(&forward), build(&reverse));
    }

    #[test]
    fn invalid_configs_are_rejected() {
        let ok = StochasticConfig::default();
        assert!(ok.validate().is_ok());
        for bad in [
            StochasticConfig {
                workers: 0,
                ..ok.clone()
            },
            StochasticConfig {
                beam_width: 0,
                ..ok.clone()
            },
            StochasticConfig {
                round_evaluations: 0,
                ..ok.clone()
            },
            StochasticConfig {
                max_evaluations: 0,
                ..ok.clone()
            },
            StochasticConfig {
                uniform_fraction: f64::NAN,
                ..ok.clone()
            },
            StochasticConfig {
                time_budget_s: Some(0.0),
                ..ok.clone()
            },
        ] {
            assert!(
                matches!(bad.validate(), Err(RagoError::InvalidConfig { .. })),
                "{bad:?} should be rejected"
            );
        }
    }

    #[test]
    fn stochastic_with_full_budget_recovers_tiny_grid_exactly() {
        let rago = case1();
        let options = tiny_options();
        let exhaustive = rago.optimize(&options).unwrap();
        let config = StochasticConfig::default()
            .with_seed(7)
            .with_budget(64)
            .with_workers(2);
        let report = rago.optimize_stochastic(&options, &config).unwrap();
        assert!(report.exhausted, "8-candidate space must be exhausted");
        assert_eq!(report.frontier.points, exhaustive.points);
    }

    #[test]
    fn no_feasible_schedule_is_reported() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B405, 1),
            ClusterSpec::paper_default(),
        )
        .with_budget(rago_hardware::ResourceBudget::new(2, 32));
        let options = SearchOptions {
            xpu_steps: vec![1],
            ..tiny_options()
        };
        let err = rago
            .optimize_stochastic(&options, &StochasticConfig::default())
            .unwrap_err();
        assert!(matches!(err, RagoError::NoFeasibleSchedule { .. }));
    }

    #[test]
    fn optimize_with_mode_dispatches_both_paths() {
        let rago = case1();
        let options = tiny_options();
        let exhaustive = rago
            .optimize_with_mode(&options, &SearchMode::Exhaustive)
            .unwrap();
        assert_eq!(exhaustive, rago.optimize(&options).unwrap());
        let stochastic = rago
            .optimize_with_mode(
                &options,
                &SearchMode::Stochastic(StochasticConfig::default().with_budget(64)),
            )
            .unwrap();
        assert_eq!(stochastic.points, exhaustive.points);
    }
}
