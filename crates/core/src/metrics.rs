//! End-to-end RAG serving performance metrics (§4 "Performance metrics").

use serde::{Deserialize, Serialize};

/// The performance of one RAG serving schedule.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RagPerformance {
    /// Time-to-first-token: latency from request reception to the first
    /// output token (all stages up to and including the main LLM prefix).
    pub ttft_s: f64,
    /// Time-per-output-token during decoding (worst case under continuous
    /// batching, as reported by the paper).
    pub tpot_s: f64,
    /// Maximum end-to-end request throughput (requests per second).
    pub qps: f64,
    /// Throughput normalized by the system's chip count: the inference XPUs
    /// plus the (idle) XPUs of the retrieval host servers, reflecting
    /// whole-system cost efficiency as in the paper.
    pub qps_per_chip: f64,
    /// Total XPU chips allocated across all inference components.
    pub total_xpus: u32,
    /// CPU servers allocated to retrieval.
    pub retrieval_servers: u32,
}

impl RagPerformance {
    /// Average end-to-end latency of a full request: TTFT plus the decode time
    /// for `decode_tokens` output tokens.
    pub fn request_latency_s(&self, decode_tokens: u32) -> f64 {
        self.ttft_s + self.tpot_s * f64::from(decode_tokens)
    }

    /// Returns `true` if `self` dominates `other` in the (minimize TTFT,
    /// maximize QPS/chip) sense: at least as good in both objectives and
    /// strictly better in one.
    pub fn dominates(&self, other: &RagPerformance) -> bool {
        let no_worse = self.ttft_s <= other.ttft_s && self.qps_per_chip >= other.qps_per_chip;
        let strictly_better = self.ttft_s < other.ttft_s || self.qps_per_chip > other.qps_per_chip;
        no_worse && strictly_better
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn perf(ttft: f64, qps_per_chip: f64) -> RagPerformance {
        RagPerformance {
            ttft_s: ttft,
            tpot_s: 0.01,
            qps: qps_per_chip * 64.0,
            qps_per_chip,
            total_xpus: 64,
            retrieval_servers: 16,
        }
    }

    #[test]
    fn dominance_is_strict_somewhere() {
        assert!(perf(0.1, 10.0).dominates(&perf(0.2, 5.0)));
        assert!(perf(0.1, 10.0).dominates(&perf(0.1, 5.0)));
        assert!(!perf(0.1, 10.0).dominates(&perf(0.1, 10.0))); // equal: no strict edge
        assert!(!perf(0.2, 10.0).dominates(&perf(0.1, 5.0))); // trade-off: incomparable
    }

    #[test]
    fn request_latency_combines_ttft_and_tpot() {
        let p = perf(0.5, 1.0);
        assert!((p.request_latency_s(256) - (0.5 + 2.56)).abs() < 1e-12);
    }
}
