//! The RAGO optimizer: exhaustive search over placement × allocation ×
//! batching (Algorithm 1).

use crate::error::RagoError;
use crate::pareto::{ParetoFrontier, ParetoPoint};
use crate::placement::PlacementPlan;
use crate::profiler::StageProfiler;
use crate::schedule::{BatchingPolicy, ResourceAllocation, Schedule};
use rago_hardware::{power_of_two_steps, ClusterSpec, ResourceBudget};
use rago_schema::RagSchema;
use serde::{Deserialize, Serialize};

/// Granularity of the schedule search. The paper searches powers of two for
/// accelerator counts and batch sizes; these options let callers trade search
/// time for schedule quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOptions {
    /// Candidate XPU counts per accelerator group (pre-decode groups and the
    /// decode partition).
    pub xpu_steps: Vec<u32>,
    /// Candidate CPU-server counts for retrieval. When empty, the smallest
    /// power-of-two count that holds the database (and every power of two up
    /// to the budget) is used.
    pub server_steps: Vec<u32>,
    /// Candidate batch sizes for the stages before decoding (shared
    /// micro-batch, including retrieval).
    pub predecode_batch_steps: Vec<u32>,
    /// Candidate batch sizes for the decode stage (continuous batching).
    pub decode_batch_steps: Vec<u32>,
    /// Candidate batch sizes for decoder-initiated iterative retrievals;
    /// only used for iterative workloads.
    pub iterative_batch_steps: Vec<u32>,
    /// Restrict the search to these placements (all legal placements when
    /// `None`).
    pub placements: Option<Vec<PlacementPlan>>,
}

impl SearchOptions {
    /// A coarse grid suitable for unit tests and quick exploration.
    pub fn fast() -> Self {
        Self {
            xpu_steps: vec![4, 16, 64],
            server_steps: Vec::new(),
            predecode_batch_steps: vec![1, 8, 32],
            decode_batch_steps: vec![64, 256],
            iterative_batch_steps: vec![4, 16],
            placements: None,
        }
    }

    /// The paper's default powers-of-two grid (heavier; intended for release
    /// builds and the benchmark harness).
    pub fn paper_default() -> Self {
        Self {
            xpu_steps: vec![1, 2, 4, 8, 16, 32, 64],
            server_steps: Vec::new(),
            predecode_batch_steps: vec![1, 2, 4, 8, 16, 32, 64, 128],
            decode_batch_steps: vec![16, 32, 64, 128, 256, 512, 1024],
            iterative_batch_steps: vec![1, 2, 4, 8, 16, 32, 64],
            placements: None,
        }
    }

    /// Restricts the search to the given placements.
    pub fn with_placements(mut self, placements: Vec<PlacementPlan>) -> Self {
        self.placements = Some(placements);
        self
    }
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions::fast()
    }
}

/// The RAGO optimizer (Figure 2): holds the workload, the cluster, and the
/// per-stage profiler, and searches the scheduling space for the performance
/// Pareto frontier.
#[derive(Debug, Clone)]
pub struct Rago {
    profiler: StageProfiler,
    budget: ResourceBudget,
}

impl Rago {
    /// Creates an optimizer for `schema` on `cluster`, using the cluster's
    /// full capacity as the resource budget.
    pub fn new(schema: RagSchema, cluster: ClusterSpec) -> Self {
        let budget = cluster.budget();
        Self {
            profiler: StageProfiler::new(schema, cluster),
            budget,
        }
    }

    /// Overrides the resource budget (e.g. to study smaller deployments).
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// The per-stage profiler (useful for breakdowns and custom studies).
    pub fn profiler(&self) -> &StageProfiler {
        &self.profiler
    }

    /// The resource budget constraining the search.
    pub fn budget(&self) -> ResourceBudget {
        self.budget
    }

    /// Evaluates one explicit schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`Schedule::evaluate`] errors.
    pub fn evaluate(&self, schedule: &Schedule) -> Result<crate::metrics::RagPerformance, RagoError> {
        schedule.evaluate(&self.profiler)
    }

    /// Enumerates the candidate schedules implied by `options` (Step 2 of
    /// Algorithm 1): every legal placement × allocation within the budget ×
    /// batching policy.
    pub fn enumerate_schedules(&self, options: &SearchOptions) -> Vec<Schedule> {
        let schema = self.profiler.schema();
        let placements = options
            .placements
            .clone()
            .unwrap_or_else(|| PlacementPlan::enumerate(schema));
        let server_steps = self.server_steps(options);
        let iterative = schema.is_iterative();

        let mut schedules = Vec::new();
        for placement in &placements {
            let groups = placement.num_groups();
            let mut group_alloc = vec![0usize; groups];
            // Odometer over group allocations.
            loop {
                let group_xpus: Vec<u32> = group_alloc
                    .iter()
                    .map(|&i| options.xpu_steps[i])
                    .collect();
                for &decode_xpus in &options.xpu_steps {
                    let total: u32 = group_xpus.iter().sum::<u32>() + decode_xpus;
                    if total > self.budget.max_xpus {
                        continue;
                    }
                    for &servers in &server_steps {
                        if servers > self.budget.max_cpu_servers {
                            continue;
                        }
                        for &pre_batch in &options.predecode_batch_steps {
                            for &dec_batch in &options.decode_batch_steps {
                                let iter_batches: Vec<Option<u32>> = if iterative {
                                    options
                                        .iterative_batch_steps
                                        .iter()
                                        .map(|&b| Some(b))
                                        .collect()
                                } else {
                                    vec![None]
                                };
                                for iter_batch in iter_batches {
                                    let mut batching = BatchingPolicy::new(pre_batch, dec_batch);
                                    batching.iterative_batch = iter_batch;
                                    schedules.push(Schedule {
                                        placement: placement.clone(),
                                        allocation: ResourceAllocation {
                                            group_xpus: group_xpus.clone(),
                                            decode_xpus,
                                            retrieval_servers: servers,
                                        },
                                        batching,
                                    });
                                }
                            }
                        }
                    }
                }
                // Advance the odometer.
                if groups == 0 {
                    break;
                }
                let mut pos = 0;
                loop {
                    group_alloc[pos] += 1;
                    if group_alloc[pos] < options.xpu_steps.len() {
                        break;
                    }
                    group_alloc[pos] = 0;
                    pos += 1;
                    if pos == groups {
                        break;
                    }
                }
                if pos == groups {
                    break;
                }
            }
            if groups == 0 {
                // Placement with no pre-decode groups (LLM-only decode-only
                // pipelines never occur, but guard against infinite loops).
                continue;
            }
        }
        schedules
    }

    /// Evaluates every candidate schedule and returns all feasible points
    /// (infeasible ones — e.g. out-of-memory allocations — are skipped).
    pub fn evaluate_all(&self, options: &SearchOptions) -> Vec<ParetoPoint> {
        self.enumerate_schedules(options)
            .into_iter()
            .filter_map(|schedule| {
                schedule
                    .evaluate(&self.profiler)
                    .ok()
                    .map(|performance| ParetoPoint {
                        schedule,
                        performance,
                    })
            })
            .collect()
    }

    /// Runs the full search (Algorithm 1) and returns the performance Pareto
    /// frontier over (TTFT, QPS/chip) with the schedules achieving it.
    ///
    /// # Errors
    ///
    /// Returns [`RagoError::NoFeasibleSchedule`] when no candidate schedule is
    /// feasible within the budget.
    pub fn optimize(&self, options: &SearchOptions) -> Result<ParetoFrontier, RagoError> {
        let points = self.evaluate_all(options);
        if points.is_empty() {
            return Err(RagoError::NoFeasibleSchedule {
                reason: format!(
                    "no feasible schedule for workload `{}` within {} XPUs / {} servers",
                    self.profiler.schema().name,
                    self.budget.max_xpus,
                    self.budget.max_cpu_servers
                ),
            });
        }
        Ok(ParetoFrontier::from_points(points))
    }

    /// Groups all evaluated points by (placement, allocation) and returns the
    /// per-plan Pareto frontiers (each point on a per-plan frontier is a
    /// batching policy), as plotted in Figures 16 and 18 of the paper.
    pub fn frontiers_by_plan(
        &self,
        options: &SearchOptions,
    ) -> Vec<(PlacementPlan, ResourceAllocation, ParetoFrontier)> {
        use std::collections::HashMap;
        let mut by_plan: HashMap<(PlacementPlan, ResourceAllocation), Vec<ParetoPoint>> =
            HashMap::new();
        for point in self.evaluate_all(options) {
            by_plan
                .entry((
                    point.schedule.placement.clone(),
                    point.schedule.allocation.clone(),
                ))
                .or_default()
                .push(point);
        }
        let mut out: Vec<(PlacementPlan, ResourceAllocation, ParetoFrontier)> = by_plan
            .into_iter()
            .map(|((placement, allocation), points)| {
                (placement, allocation, ParetoFrontier::from_points(points))
            })
            .collect();
        out.sort_by(|a, b| {
            let qa = a.2.max_qps_per_chip().map(|p| p.performance.qps_per_chip);
            let qb = b.2.max_qps_per_chip().map(|p| p.performance.qps_per_chip);
            qb.partial_cmp(&qa).unwrap_or(std::cmp::Ordering::Equal)
        });
        out
    }

    fn server_steps(&self, options: &SearchOptions) -> Vec<u32> {
        if !options.server_steps.is_empty() {
            return options.server_steps.clone();
        }
        if !self.profiler.schema().has_retrieval() {
            return vec![1];
        }
        let min = self.profiler.min_retrieval_servers();
        power_of_two_steps(self.budget.max_cpu_servers)
            .into_iter()
            .filter(|&s| s >= min)
            .collect::<Vec<_>>()
            .into_iter()
            .chain(std::iter::once(min))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rago_schema::presets::{self, LlmSize};

    fn tiny_options() -> SearchOptions {
        SearchOptions {
            xpu_steps: vec![8, 32],
            server_steps: vec![32],
            predecode_batch_steps: vec![1, 16],
            decode_batch_steps: vec![128],
            iterative_batch_steps: vec![8],
            placements: None,
        }
    }

    #[test]
    fn case1_search_finds_a_frontier() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        let frontier = rago.optimize(&tiny_options()).unwrap();
        assert!(!frontier.is_empty());
        assert!(frontier.evaluated_schedules >= frontier.len());
        // Frontier extremes behave as expected.
        let min_ttft = frontier.min_ttft().unwrap();
        let max_qps = frontier.max_qps_per_chip().unwrap();
        assert!(min_ttft.performance.ttft_s <= max_qps.performance.ttft_s);
        assert!(min_ttft.performance.qps_per_chip <= max_qps.performance.qps_per_chip);
    }

    #[test]
    fn budget_is_respected() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        for schedule in rago.enumerate_schedules(&tiny_options()) {
            assert!(schedule.allocation.total_xpus() <= 128);
            assert!(schedule.allocation.retrieval_servers <= 32);
        }
    }

    #[test]
    fn infeasible_budget_reports_no_schedule() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B405, 1),
            ClusterSpec::paper_default(),
        )
        .with_budget(ResourceBudget::new(2, 32));
        // A 405B model cannot fit on 2 chips, and the budget excludes more.
        let err = rago
            .optimize(&SearchOptions {
                xpu_steps: vec![1],
                ..tiny_options()
            })
            .unwrap_err();
        assert!(matches!(err, RagoError::NoFeasibleSchedule { .. }));
    }

    #[test]
    fn case4_search_covers_multiple_placements() {
        let rago = Rago::new(
            presets::case4_rewriter_reranker(LlmSize::B8),
            ClusterSpec::paper_default(),
        );
        let opts = SearchOptions {
            xpu_steps: vec![4, 16],
            server_steps: vec![32],
            predecode_batch_steps: vec![4],
            decode_batch_steps: vec![128],
            iterative_batch_steps: vec![8],
            placements: None,
        };
        let schedules = rago.enumerate_schedules(&opts);
        let placements: std::collections::HashSet<String> = schedules
            .iter()
            .map(|s| s.placement.describe())
            .collect();
        assert_eq!(placements.len(), 8, "expected all 8 case-IV placements");
        let frontier = rago.optimize(&opts).unwrap();
        assert!(!frontier.is_empty());
    }

    #[test]
    fn frontiers_by_plan_partition_the_search() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        let plans = rago.frontiers_by_plan(&tiny_options());
        assert!(!plans.is_empty());
        let total: usize = plans.iter().map(|(_, _, f)| f.evaluated_schedules).sum();
        assert_eq!(total, rago.evaluate_all(&tiny_options()).len());
        // Plans are sorted by best QPS/chip, descending.
        let best: Vec<f64> = plans
            .iter()
            .filter_map(|(_, _, f)| f.max_qps_per_chip().map(|p| p.performance.qps_per_chip))
            .collect();
        for w in best.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn placement_restriction_is_honoured() {
        let schema = presets::case2_long_context(LlmSize::B70, 1_000_000);
        let rago = Rago::new(schema.clone(), ClusterSpec::paper_default());
        let collocated = PlacementPlan::fully_collocated(&schema);
        let opts = tiny_options().with_placements(vec![collocated.clone()]);
        for schedule in rago.enumerate_schedules(&opts) {
            assert_eq!(schedule.placement, collocated);
        }
    }
}
