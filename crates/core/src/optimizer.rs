//! The RAGO optimizer: exhaustive search over placement × allocation ×
//! batching (Algorithm 1).
//!
//! # Search space and complexity
//!
//! For a workload with `k` collocatable pre-decode stages the search visits
//!
//! ```text
//! Σ_placements |xpu_steps|^groups(p)            (per-group allocations)
//!   × |xpu_steps|                               (decode allocation)
//!   × |server_steps|                            (retrieval allocation)
//!   × |predecode_batch| × |decode_batch|        (batching policy)
//!   × |iterative_batch|                         (iterative workloads only)
//! ```
//!
//! candidates — `Σ_p |xpu_steps|^groups(p)` is `Σ_{g=1..k} C(k-1, g-1) ·
//! |xpu_steps|^g` over the `2^(k-1)` contiguous-partition placements. At the
//! paper's grid ([`SearchOptions::paper_default`]) this reaches millions of
//! schedules for Case IV, so the implementation is built not to touch memory
//! proportionally:
//!
//! * **Streaming** — [`Rago::schedule_iter`] yields candidates from an
//!   odometer state machine ([`ScheduleIter`]); nothing is materialized.
//!   [`Rago::enumerate_schedules`] survives as a `Vec`-collecting wrapper
//!   for callers that want the list.
//! * **Memoized** — candidate evaluation decomposes into per-stage profiles
//!   keyed by `(stage, resources, batch)`; the grid being a cross product,
//!   the same profile is shared by thousands of schedules, and
//!   [`StageProfiler`] computes each exactly once behind an `RwLock` (see
//!   the profiler module docs).
//! * **Parallel** — [`Rago::optimize`] bridges the candidate stream across
//!   rayon worker threads; each folds into a thread-local incremental
//!   [`ParetoAccumulator`] (online dominance pruning), and the per-thread
//!   frontiers merge at the end. Peak candidate storage is
//!   O(frontier + threads), never O(grid).
//!
//! The parallel path is frontier-identical to the serial reference
//! ([`Rago::optimize_serial`]): performance ties between schedules are
//! broken by the schedule's identity key ([`Schedule::identity_key`]),
//! making the result independent of thread scheduling and of the order
//! candidates arrive in. This is covered by the
//! `streaming_matches_serial_reference` tests in `tests/determinism.rs`.
//!
//! For grids too large to enumerate, [`Rago::optimize_with_mode`] selects
//! the anytime stochastic search ([`crate::search`]) behind the same
//! frontier interface.

use crate::error::RagoError;
use crate::pareto::{ParetoAccumulator, ParetoFrontier, ParetoPoint};
use crate::placement::PlacementPlan;
use crate::profiler::StageProfiler;
use crate::schedule::{BatchingPolicy, ResourceAllocation, Schedule};
use rago_hardware::{power_of_two_steps, ClusterSpec, ResourceBudget};
use rago_schema::RagSchema;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;

/// Granularity of the schedule search. The paper searches powers of two for
/// accelerator counts and batch sizes; these options let callers trade search
/// time for schedule quality.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SearchOptions {
    /// Candidate XPU counts per accelerator group (pre-decode groups and the
    /// decode partition).
    pub xpu_steps: Vec<u32>,
    /// Candidate CPU-server counts for retrieval. When empty, the smallest
    /// power-of-two count that holds the database (and every power of two up
    /// to the budget) is used.
    pub server_steps: Vec<u32>,
    /// Candidate batch sizes for the stages before decoding (shared
    /// micro-batch, including retrieval).
    pub predecode_batch_steps: Vec<u32>,
    /// Candidate batch sizes for the decode stage (continuous batching).
    pub decode_batch_steps: Vec<u32>,
    /// Candidate batch sizes for decoder-initiated iterative retrievals;
    /// only used for iterative workloads.
    pub iterative_batch_steps: Vec<u32>,
    /// Restrict the search to these placements (all legal placements when
    /// `None`).
    pub placements: Option<Vec<PlacementPlan>>,
}

impl SearchOptions {
    /// A coarse grid suitable for unit tests and quick exploration.
    pub fn fast() -> Self {
        Self {
            xpu_steps: vec![4, 16, 64],
            server_steps: Vec::new(),
            predecode_batch_steps: vec![1, 8, 32],
            decode_batch_steps: vec![64, 256],
            iterative_batch_steps: vec![4, 16],
            placements: None,
        }
    }

    /// The paper's default powers-of-two grid (heavier; intended for release
    /// builds and the benchmark harness).
    pub fn paper_default() -> Self {
        Self {
            xpu_steps: vec![1, 2, 4, 8, 16, 32, 64],
            server_steps: Vec::new(),
            predecode_batch_steps: vec![1, 2, 4, 8, 16, 32, 64, 128],
            decode_batch_steps: vec![16, 32, 64, 128, 256, 512, 1024],
            iterative_batch_steps: vec![1, 2, 4, 8, 16, 32, 64],
            placements: None,
        }
    }

    /// Restricts the search to the given placements.
    pub fn with_placements(mut self, placements: Vec<PlacementPlan>) -> Self {
        self.placements = Some(placements);
        self
    }
}

impl Default for SearchOptions {
    fn default() -> Self {
        SearchOptions::fast()
    }
}

/// The budget-filtered axes of one search grid: every placement block and
/// every admissible step list, as produced by `Rago::search_axes`. The
/// exhaustive odometer and the stochastic codec are two views of this one
/// struct.
#[derive(Debug, Clone)]
pub(crate) struct SearchAxes {
    pub placements: Vec<PlacementPlan>,
    pub xpu_steps: Vec<u32>,
    pub server_steps: Vec<u32>,
    pub predecode_batches: Vec<u32>,
    pub decode_batches: Vec<u32>,
    pub iterative_batches: Vec<Option<u32>>,
    pub max_total_xpus: u32,
}

/// Lazy enumeration of the candidate schedules implied by a search grid: an
/// odometer over placement × per-group allocation × decode allocation ×
/// server count × batching policy, yielding [`Schedule`]s on demand.
///
/// The iteration order matches the eager enumeration the optimizer
/// historically produced (placement outermost; within a placement the first
/// group's step advances fastest; the iterative batch innermost), so
/// enumeration indices are stable and usable as deterministic tie-breaks.
///
/// A placement with **zero** pre-decode groups contributes the decode ×
/// server × batching cross product exactly once (there is no group odometer
/// to spin).
///
/// Allocations whose XPU total exceeds the budget are skipped without
/// touching the inner batching axes. Individual steps that can never fit
/// (zero, duplicate, or above budget) are dropped up front via
/// [`ResourceBudget::admissible_xpu_steps`] /
/// [`ResourceBudget::admissible_server_steps`], keeping the odometer as
/// small as the budget allows.
#[derive(Debug, Clone)]
pub struct ScheduleIter {
    placements: Vec<PlacementPlan>,
    xpu_steps: Vec<u32>,
    server_steps: Vec<u32>,
    predecode_batches: Vec<u32>,
    decode_batches: Vec<u32>,
    iterative_batches: Vec<Option<u32>>,
    max_total_xpus: u32,
    // Odometer state.
    placement_idx: usize,
    group_alloc: Vec<usize>,
    decode_idx: usize,
    server_idx: usize,
    predecode_idx: usize,
    decode_batch_idx: usize,
    iterative_idx: usize,
    done: bool,
}

impl ScheduleIter {
    fn new(
        placements: Vec<PlacementPlan>,
        xpu_steps: Vec<u32>,
        server_steps: Vec<u32>,
        predecode_batches: Vec<u32>,
        decode_batches: Vec<u32>,
        iterative_batches: Vec<Option<u32>>,
        max_total_xpus: u32,
    ) -> Self {
        let done = placements.is_empty()
            || xpu_steps.is_empty()
            || server_steps.is_empty()
            || predecode_batches.is_empty()
            || decode_batches.is_empty()
            || iterative_batches.is_empty();
        let group_alloc = placements
            .first()
            .map(|p| vec![0usize; p.num_groups()])
            .unwrap_or_default();
        Self {
            placements,
            xpu_steps,
            server_steps,
            predecode_batches,
            decode_batches,
            iterative_batches,
            max_total_xpus,
            placement_idx: 0,
            group_alloc,
            decode_idx: 0,
            server_idx: 0,
            predecode_idx: 0,
            decode_batch_idx: 0,
            iterative_idx: 0,
            done,
        }
    }

    /// Total XPUs of the current (group allocation, decode) digit setting.
    fn current_total_xpus(&self) -> u32 {
        let groups: u32 = self.group_alloc.iter().map(|&i| self.xpu_steps[i]).sum();
        groups + self.xpu_steps[self.decode_idx]
    }

    fn build_schedule(&self) -> Schedule {
        let placement = self.placements[self.placement_idx].clone();
        let group_xpus: Vec<u32> = self
            .group_alloc
            .iter()
            .map(|&i| self.xpu_steps[i])
            .collect();
        let mut batching = BatchingPolicy::new(
            self.predecode_batches[self.predecode_idx],
            self.decode_batches[self.decode_batch_idx],
        );
        batching.iterative_batch = self.iterative_batches[self.iterative_idx];
        Schedule {
            placement,
            allocation: ResourceAllocation {
                group_xpus,
                decode_xpus: self.xpu_steps[self.decode_idx],
                retrieval_servers: self.server_steps[self.server_idx],
            },
            batching,
        }
    }

    /// Advances the innermost digits (batching and server axes); cascades
    /// into the allocation odometer when they wrap. Returns `false` when the
    /// whole space is exhausted.
    fn advance_inner(&mut self) -> bool {
        self.iterative_idx += 1;
        if self.iterative_idx < self.iterative_batches.len() {
            return true;
        }
        self.iterative_idx = 0;
        self.decode_batch_idx += 1;
        if self.decode_batch_idx < self.decode_batches.len() {
            return true;
        }
        self.decode_batch_idx = 0;
        self.predecode_idx += 1;
        if self.predecode_idx < self.predecode_batches.len() {
            return true;
        }
        self.predecode_idx = 0;
        self.server_idx += 1;
        if self.server_idx < self.server_steps.len() {
            return true;
        }
        self.server_idx = 0;
        self.advance_decode()
    }

    /// Advances the decode-allocation digit (resetting everything inside
    /// it); cascades into the group odometer when it wraps.
    fn advance_decode(&mut self) -> bool {
        self.server_idx = 0;
        self.predecode_idx = 0;
        self.decode_batch_idx = 0;
        self.iterative_idx = 0;
        self.decode_idx += 1;
        if self.decode_idx < self.xpu_steps.len() {
            return true;
        }
        self.decode_idx = 0;
        self.advance_group()
    }

    /// Advances the per-group allocation odometer (first group fastest); a
    /// zero-group placement has nothing to advance and moves straight to the
    /// next placement.
    fn advance_group(&mut self) -> bool {
        let groups = self.group_alloc.len();
        let mut pos = 0;
        while pos < groups {
            self.group_alloc[pos] += 1;
            if self.group_alloc[pos] < self.xpu_steps.len() {
                return true;
            }
            self.group_alloc[pos] = 0;
            pos += 1;
        }
        self.advance_placement()
    }

    fn advance_placement(&mut self) -> bool {
        self.placement_idx += 1;
        if self.placement_idx < self.placements.len() {
            self.group_alloc = vec![0usize; self.placements[self.placement_idx].num_groups()];
            true
        } else {
            self.done = true;
            false
        }
    }
}

impl Iterator for ScheduleIter {
    type Item = Schedule;

    fn next(&mut self) -> Option<Schedule> {
        while !self.done {
            if self.current_total_xpus() > self.max_total_xpus {
                // The whole batching sub-space of this allocation is
                // infeasible; skip it without spinning the inner digits.
                self.advance_decode();
                continue;
            }
            let schedule = self.build_schedule();
            self.advance_inner();
            return Some(schedule);
        }
        None
    }
}

/// The RAGO optimizer (Figure 2): holds the workload, the cluster, and the
/// per-stage profiler, and searches the scheduling space for the performance
/// Pareto frontier.
#[derive(Debug, Clone)]
pub struct Rago {
    profiler: StageProfiler,
    budget: ResourceBudget,
}

impl Rago {
    /// Creates an optimizer for `schema` on `cluster`, using the cluster's
    /// full capacity as the resource budget.
    pub fn new(schema: RagSchema, cluster: ClusterSpec) -> Self {
        let budget = cluster.budget();
        Self {
            profiler: StageProfiler::new(schema, cluster),
            budget,
        }
    }

    /// Overrides the resource budget (e.g. to study smaller deployments).
    pub fn with_budget(mut self, budget: ResourceBudget) -> Self {
        self.budget = budget;
        self
    }

    /// Enables or disables stage-profile memoization (enabled by default;
    /// disabling exists to benchmark the unmemoized search).
    pub fn with_memoization(mut self, enabled: bool) -> Self {
        self.profiler = self.profiler.with_memoization(enabled);
        self
    }

    /// The per-stage profiler (useful for breakdowns and custom studies).
    pub fn profiler(&self) -> &StageProfiler {
        &self.profiler
    }

    /// The resource budget constraining the search.
    pub fn budget(&self) -> ResourceBudget {
        self.budget
    }

    /// Evaluates one explicit schedule.
    ///
    /// # Errors
    ///
    /// Propagates [`Schedule::evaluate`] errors.
    pub fn evaluate(
        &self,
        schedule: &Schedule,
    ) -> Result<crate::metrics::RagPerformance, RagoError> {
        schedule.evaluate(&self.profiler)
    }

    /// Evaluates one schedule dynamically: drives a request trace through
    /// the discrete-event serving engine and scores TTFT/TPOT distributions,
    /// queueing, and SLO attainment. See
    /// [`crate::dynamic::evaluate_schedule_dynamic`].
    ///
    /// # Examples
    ///
    /// ```
    /// use rago_core::{Rago, SearchOptions};
    /// use rago_hardware::ClusterSpec;
    /// use rago_schema::{presets, SequenceProfile, SloTarget};
    /// use rago_workloads::{ArrivalProcess, TraceSpec};
    ///
    /// let rago = Rago::new(
    ///     presets::case1_hyperscale(presets::LlmSize::B8, 1),
    ///     ClusterSpec::paper_default(),
    /// );
    /// let frontier = rago.optimize(&SearchOptions::fast())?;
    /// let trace = TraceSpec {
    ///     num_requests: 40,
    ///     profile: SequenceProfile::paper_default().with_decode_tokens(32),
    ///     arrival: ArrivalProcess::Poisson { rate_rps: 10.0 },
    ///     length_jitter: 0.1,
    ///     seed: 7,
    /// }
    /// .generate();
    /// let slo = SloTarget::paper_default();
    /// let best = frontier.max_qps_per_chip().unwrap();
    /// let eval = rago.evaluate_dynamic(&best.schedule, &trace, &slo)?;
    /// assert_eq!(eval.report.metrics.completed, 40);
    /// # Ok::<(), rago_core::RagoError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates [`crate::dynamic::evaluate_schedule_dynamic`] errors.
    pub fn evaluate_dynamic(
        &self,
        schedule: &Schedule,
        trace: &rago_workloads::Trace,
        slo: &rago_schema::SloTarget,
    ) -> Result<crate::dynamic::DynamicEvaluation, RagoError> {
        crate::dynamic::evaluate_schedule_dynamic(&self.profiler, schedule, trace, slo)
    }

    /// Re-scores a Pareto frontier under a request trace and ranks its
    /// schedules by SLO goodput, best first. See
    /// [`crate::dynamic::rank_frontier_by_goodput`].
    pub fn rank_frontier_by_goodput(
        &self,
        frontier: &ParetoFrontier,
        trace: &rago_workloads::Trace,
        slo: &rago_schema::SloTarget,
    ) -> Vec<(
        crate::pareto::ParetoPoint,
        crate::dynamic::DynamicEvaluation,
    )> {
        crate::dynamic::rank_frontier_by_goodput(&self.profiler, frontier, trace, slo)
    }

    /// Evaluates one schedule as a *fleet*: `fleet.replicas` copies of its
    /// pipeline behind `fleet.router`, sharing the trace's arrival stream.
    /// See [`crate::dynamic::evaluate_fleet_dynamic`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::dynamic::evaluate_fleet_dynamic`] errors.
    pub fn evaluate_fleet(
        &self,
        schedule: &Schedule,
        fleet: &rago_schema::FleetConfig,
        trace: &rago_workloads::Trace,
        slo: &rago_schema::SloTarget,
    ) -> Result<crate::dynamic::FleetEvaluation, RagoError> {
        crate::dynamic::evaluate_fleet_dynamic(&self.profiler, schedule, fleet, trace, slo)
    }

    /// Sizes a fleet of `schedule` replicas for `target_qps` within `slo`:
    /// the minimum replica count whose fleet attainment meets the SLO. See
    /// [`crate::capacity::plan_capacity_with`].
    ///
    /// # Examples
    ///
    /// ```
    /// use rago_core::{CapacityOptions, Rago, SearchOptions};
    /// use rago_hardware::ClusterSpec;
    /// use rago_schema::{presets, SloTarget};
    ///
    /// let rago = Rago::new(
    ///     presets::case1_hyperscale(presets::LlmSize::B8, 1),
    ///     ClusterSpec::paper_default(),
    /// );
    /// let frontier = rago.optimize(&SearchOptions::fast())?;
    /// let best = frontier.max_qps_per_chip().unwrap();
    /// let slo = SloTarget::paper_default();
    /// let options = CapacityOptions { max_replicas: 4, num_requests: 60, ..Default::default() };
    /// let plan = rago.plan_capacity(&best.schedule, &slo, 5.0, &options)?;
    /// assert!(plan.replicas >= 1);
    /// assert_eq!(plan.total_xpus, best.schedule.allocation.total_xpus() * plan.replicas);
    /// # Ok::<(), rago_core::RagoError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Propagates [`crate::capacity::plan_capacity_with`] errors.
    pub fn plan_capacity(
        &self,
        schedule: &Schedule,
        slo: &rago_schema::SloTarget,
        target_qps: f64,
        options: &crate::capacity::CapacityOptions,
    ) -> Result<crate::capacity::CapacityPlan, RagoError> {
        crate::capacity::plan_capacity_with(&self.profiler, schedule, slo, target_qps, options)
    }

    /// Evaluates one schedule as a *disaggregated* fleet: its pre-decode
    /// stages on a Prefill pool, its decode on a Decode pool, every KV
    /// handoff priced by `fleet.transfer`, scored per chip. See
    /// [`crate::disagg::evaluate_fleet_disagg`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::disagg::evaluate_fleet_disagg`] errors.
    pub fn evaluate_fleet_disagg(
        &self,
        schedule: &Schedule,
        fleet: &rago_schema::FleetConfig,
        trace: &rago_workloads::Trace,
        slo: &rago_schema::SloTarget,
    ) -> Result<crate::disagg::DisaggEvaluation, RagoError> {
        crate::disagg::evaluate_fleet_disagg(&self.profiler, schedule, fleet, trace, slo)
    }

    /// Sizes the cheapest disaggregated `(prefill, decode)` split of
    /// `schedule` for `target_qps` within `slo` — the joint pool-size
    /// search. See [`crate::capacity::plan_capacity_pools`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::capacity::plan_capacity_pools`] errors.
    pub fn plan_capacity_pools(
        &self,
        schedule: &Schedule,
        slo: &rago_schema::SloTarget,
        target_qps: f64,
        transfer: &rago_schema::KvTransferModel,
        options: &crate::capacity::CapacityOptions,
    ) -> Result<crate::capacity::PoolCapacityPlan, RagoError> {
        crate::capacity::plan_capacity_pools(
            &self.profiler,
            schedule,
            slo,
            target_qps,
            transfer,
            options,
        )
    }

    /// The joint (schedule, pool split, interconnect) ranking by goodput
    /// per chip. See [`crate::disagg::rank_frontier_by_goodput_disagg`].
    pub fn rank_frontier_by_goodput_disagg(
        &self,
        frontier: &ParetoFrontier,
        trace: &rago_workloads::Trace,
        slo: &rago_schema::SloTarget,
        splits: &[(u32, u32)],
        interconnects: &[rago_hardware::InterconnectSpec],
    ) -> Vec<(
        crate::pareto::ParetoPoint,
        crate::disagg::DisaggChoice,
        crate::disagg::DisaggEvaluation,
    )> {
        crate::disagg::rank_frontier_by_goodput_disagg(
            &self.profiler,
            frontier,
            trace,
            slo,
            splits,
            interconnects,
        )
    }

    /// Evaluates one schedule as a (possibly autoscaled) fleet under a
    /// class-tagged, possibly time-varying trace, scoring every tenant
    /// against its own SLO. See
    /// [`crate::timevarying::evaluate_fleet_timevarying`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::timevarying::evaluate_fleet_timevarying`]
    /// errors.
    pub fn evaluate_fleet_timevarying(
        &self,
        schedule: &Schedule,
        fleet: &rago_schema::FleetConfig,
        mix: &rago_workloads::WorkloadMix,
        trace: &rago_workloads::Trace,
        autoscaler: Option<&rago_serving_sim::autoscaler::AutoscalerPolicy>,
    ) -> Result<crate::timevarying::TimeVaryingEvaluation, RagoError> {
        crate::timevarying::evaluate_fleet_timevarying(
            &self.profiler,
            schedule,
            fleet,
            mix,
            trace,
            autoscaler,
        )
    }

    /// Evaluates one schedule as a fleet while a fault scenario plays
    /// against it: replica crashes, stragglers, and preemptions from a
    /// [`rago_serving_sim::faults::FaultSchedule`], priority-aware
    /// admission control, and static/reactive/predictive scaling, scored
    /// on *offered* attainment with per-disruption recovery metrics. See
    /// [`crate::faulted::evaluate_fleet_faulted`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::faulted::evaluate_fleet_faulted`] errors.
    pub fn evaluate_fleet_faulted(
        &self,
        schedule: &Schedule,
        router: rago_schema::RouterPolicy,
        mix: &rago_workloads::WorkloadMix,
        trace: &rago_workloads::Trace,
        scenario: &crate::faulted::FaultScenario,
    ) -> Result<crate::faulted::FaultedEvaluation, RagoError> {
        crate::faulted::evaluate_fleet_faulted(
            &self.profiler,
            schedule,
            router,
            mix,
            trace,
            scenario,
        )
    }

    /// Evaluates one schedule dynamically **with caching enabled**:
    /// per-replica prefix-KV and retrieval-result caches exploit the
    /// trace's content identity. See
    /// [`crate::cached::evaluate_schedule_cached`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::cached::evaluate_schedule_cached`] errors.
    pub fn evaluate_cached(
        &self,
        schedule: &Schedule,
        trace: &rago_workloads::Trace,
        slo: &rago_schema::SloTarget,
        cache: &rago_cache::CacheConfig,
    ) -> Result<crate::dynamic::DynamicEvaluation, RagoError> {
        crate::cached::evaluate_schedule_cached(&self.profiler, schedule, trace, slo, cache)
    }

    /// Evaluates one schedule as a fleet with per-replica caches. See
    /// [`crate::cached::evaluate_fleet_cached`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::cached::evaluate_fleet_cached`] errors.
    pub fn evaluate_fleet_cached(
        &self,
        schedule: &Schedule,
        fleet: &rago_schema::FleetConfig,
        trace: &rago_workloads::Trace,
        slo: &rago_schema::SloTarget,
        cache: &rago_cache::CacheConfig,
    ) -> Result<crate::dynamic::FleetEvaluation, RagoError> {
        crate::cached::evaluate_fleet_cached(&self.profiler, schedule, fleet, trace, slo, cache)
    }

    /// Re-ranks a Pareto frontier by SLO goodput with caching enabled. See
    /// [`crate::cached::rank_frontier_by_goodput_cached`].
    pub fn rank_frontier_by_goodput_cached(
        &self,
        frontier: &ParetoFrontier,
        trace: &rago_workloads::Trace,
        slo: &rago_schema::SloTarget,
        cache: &rago_cache::CacheConfig,
    ) -> Vec<(
        crate::pareto::ParetoPoint,
        crate::dynamic::DynamicEvaluation,
    )> {
        crate::cached::rank_frontier_by_goodput_cached(&self.profiler, frontier, trace, slo, cache)
    }

    /// Sizes a fleet for `target_qps` within `slo` with caching enabled,
    /// under the content model `content`. See
    /// [`crate::cached::plan_capacity_cached`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::cached::plan_capacity_cached`] errors.
    #[allow(clippy::too_many_arguments)]
    pub fn plan_capacity_cached(
        &self,
        schedule: &Schedule,
        slo: &rago_schema::SloTarget,
        target_qps: f64,
        options: &crate::capacity::CapacityOptions,
        cache: &rago_cache::CacheConfig,
        content: &rago_workloads::ContentSpec,
    ) -> Result<crate::cached::CachedCapacityPlan, RagoError> {
        crate::cached::plan_capacity_cached(
            &self.profiler,
            schedule,
            slo,
            target_qps,
            options,
            cache,
            content,
        )
    }

    /// Plans the minimum replica schedule of `schedule`'s pipeline over a
    /// piecewise rate profile. See
    /// [`crate::capacity::plan_capacity_profile`].
    ///
    /// # Errors
    ///
    /// Propagates [`crate::capacity::plan_capacity_profile`] errors.
    pub fn plan_capacity_profile(
        &self,
        schedule: &Schedule,
        slo: &rago_schema::SloTarget,
        profile: &[rago_workloads::RateSegment],
        options: &crate::capacity::CapacityOptions,
    ) -> Result<crate::capacity::CapacityProfile, RagoError> {
        crate::capacity::plan_capacity_profile(&self.profiler, schedule, slo, profile, options)
    }

    /// Re-ranks a Pareto frontier by the total chips needed to serve
    /// `target_qps` within `slo`, cheapest fleet first. See
    /// [`crate::capacity::rank_frontier_by_cost_at_qps`].
    pub fn rank_frontier_by_cost_at_qps(
        &self,
        frontier: &ParetoFrontier,
        slo: &rago_schema::SloTarget,
        target_qps: f64,
        options: &crate::capacity::CapacityOptions,
    ) -> Vec<(crate::pareto::ParetoPoint, crate::capacity::CapacityPlan)> {
        crate::capacity::rank_frontier_by_cost_at_qps(
            &self.profiler,
            frontier,
            slo,
            target_qps,
            options,
        )
    }

    /// The budget-filtered axes of the search grid implied by `options` —
    /// shared by the exhaustive odometer ([`Rago::schedule_iter`]) and the
    /// stochastic sampler's random-access codec
    /// ([`crate::search::ScheduleSpace`]), so both views agree on exactly
    /// which candidates exist.
    pub(crate) fn search_axes(&self, options: &SearchOptions) -> SearchAxes {
        let schema = self.profiler.schema();
        let placements = options
            .placements
            .clone()
            .unwrap_or_else(|| PlacementPlan::enumerate(schema));
        let iterative_batches: Vec<Option<u32>> = if schema.is_iterative() {
            options
                .iterative_batch_steps
                .iter()
                .map(|&b| Some(b))
                .collect()
        } else {
            vec![None]
        };
        SearchAxes {
            placements,
            xpu_steps: self.budget.admissible_xpu_steps(&options.xpu_steps),
            server_steps: self
                .budget
                .admissible_server_steps(&self.server_steps(options)),
            predecode_batches: options.predecode_batch_steps.clone(),
            decode_batches: options.decode_batch_steps.clone(),
            iterative_batches,
            max_total_xpus: self.budget.max_xpus,
        }
    }

    /// Streams the candidate schedules implied by `options` (Step 2 of
    /// Algorithm 1): every legal placement × allocation within the budget ×
    /// batching policy, yielded lazily in a stable enumeration order.
    pub fn schedule_iter(&self, options: &SearchOptions) -> ScheduleIter {
        let axes = self.search_axes(options);
        ScheduleIter::new(
            axes.placements,
            axes.xpu_steps,
            axes.server_steps,
            axes.predecode_batches,
            axes.decode_batches,
            axes.iterative_batches,
            axes.max_total_xpus,
        )
    }

    /// The random-access view of the same candidate space
    /// [`Rago::schedule_iter`] streams: placement blocks × mixed-radix
    /// digits, decodable at any index. This is what the stochastic search
    /// samples from. See [`crate::search::ScheduleSpace`].
    pub fn schedule_space(&self, options: &SearchOptions) -> crate::search::ScheduleSpace {
        crate::search::ScheduleSpace::new(self.search_axes(options))
    }

    /// Runs the search in the requested mode: [`crate::search::SearchMode::Exhaustive`]
    /// enumerates every candidate ([`Rago::optimize`]);
    /// [`crate::search::SearchMode::Stochastic`] runs the seeded anytime search
    /// ([`Rago::optimize_stochastic`]) and returns its frontier. Both modes
    /// produce a [`ParetoFrontier`], so every frontier consumer
    /// (`rank_frontier_by_goodput{,_disagg,_cached}`,
    /// `rank_frontier_by_cost_at_qps`, …) works with either.
    ///
    /// # Errors
    ///
    /// Returns [`RagoError::NoFeasibleSchedule`] when no candidate schedule
    /// is feasible within the budget, and [`RagoError::InvalidConfig`] for a
    /// malformed [`crate::search::StochasticConfig`].
    pub fn optimize_with_mode(
        &self,
        options: &SearchOptions,
        mode: &crate::search::SearchMode,
    ) -> Result<ParetoFrontier, RagoError> {
        match mode {
            crate::search::SearchMode::Exhaustive => self.optimize(options),
            crate::search::SearchMode::Stochastic(cfg) => {
                Ok(self.optimize_stochastic(options, cfg)?.frontier)
            }
        }
    }

    /// Runs the seeded, time-budgeted anytime stochastic search over the
    /// same candidate space as [`Rago::optimize`] and returns the full
    /// report (frontier + anytime timeline + telemetry). See
    /// [`crate::search`] for the algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`RagoError::InvalidConfig`] for a malformed config and
    /// [`RagoError::NoFeasibleSchedule`] when no feasible candidate was
    /// found within the budget.
    pub fn optimize_stochastic(
        &self,
        options: &SearchOptions,
        config: &crate::search::StochasticConfig,
    ) -> Result<crate::search::StochasticSearchReport, RagoError> {
        crate::search::run_stochastic(self, &self.schedule_space(options), config)
    }

    /// Collects the candidate stream of [`Rago::schedule_iter`] into a
    /// `Vec`. Prefer the iterator for large grids — this materializes the
    /// full cross product.
    pub fn enumerate_schedules(&self, options: &SearchOptions) -> Vec<Schedule> {
        self.schedule_iter(options).collect()
    }

    /// Evaluates every candidate schedule and returns all feasible points
    /// (infeasible ones — e.g. out-of-memory allocations — are skipped), in
    /// enumeration order.
    pub fn evaluate_all(&self, options: &SearchOptions) -> Vec<ParetoPoint> {
        self.schedule_iter(options)
            .filter_map(move |schedule| {
                schedule
                    .evaluate(&self.profiler)
                    .ok()
                    .map(|performance| ParetoPoint {
                        schedule,
                        performance,
                    })
            })
            .collect()
    }

    /// Runs the full search (Algorithm 1) and returns the performance Pareto
    /// frontier over (TTFT, QPS/chip) with the schedules achieving it.
    ///
    /// Candidates are streamed across rayon worker threads, each folding
    /// into an incremental [`ParetoAccumulator`]; the per-thread frontiers
    /// merge at the end. The result is bit-identical to
    /// [`Rago::optimize_serial`] — see the module docs.
    ///
    /// # Errors
    ///
    /// Returns [`RagoError::NoFeasibleSchedule`] when no candidate schedule is
    /// feasible within the budget.
    pub fn optimize(&self, options: &SearchOptions) -> Result<ParetoFrontier, RagoError> {
        let accumulator = self
            .schedule_iter(options)
            .par_bridge()
            .fold(ParetoAccumulator::new, |mut acc, schedule| {
                if let Ok(performance) = schedule.evaluate(&self.profiler) {
                    acc.push(ParetoPoint {
                        schedule,
                        performance,
                    });
                }
                acc
            })
            .reduce(ParetoAccumulator::new, ParetoAccumulator::merge);
        if accumulator.is_empty() {
            return Err(self.no_feasible_schedule());
        }
        Ok(accumulator.into_frontier())
    }

    /// The serial reference implementation of [`Rago::optimize`]: evaluate
    /// every candidate on the calling thread, then extract the frontier in
    /// one batch. Kept as the ground truth the streaming/parallel path is
    /// tested against (and benchmarked against; it materializes every
    /// feasible point, so it is also the memory-hungry path).
    ///
    /// # Errors
    ///
    /// Returns [`RagoError::NoFeasibleSchedule`] when no candidate schedule is
    /// feasible within the budget.
    pub fn optimize_serial(&self, options: &SearchOptions) -> Result<ParetoFrontier, RagoError> {
        let points = self.evaluate_all(options);
        if points.is_empty() {
            return Err(self.no_feasible_schedule());
        }
        Ok(ParetoFrontier::from_points(points))
    }

    pub(crate) fn no_feasible_schedule(&self) -> RagoError {
        RagoError::NoFeasibleSchedule {
            reason: format!(
                "no feasible schedule for workload `{}` within {} XPUs / {} servers",
                self.profiler.schema().name,
                self.budget.max_xpus,
                self.budget.max_cpu_servers
            ),
        }
    }

    /// Groups all evaluated points by (placement, allocation) and returns the
    /// per-plan Pareto frontiers (each point on a per-plan frontier is a
    /// batching policy), as plotted in Figures 16 and 18 of the paper.
    ///
    /// Uses the same streaming/parallel pipeline as [`Rago::optimize`], with
    /// one incremental accumulator per plan: memory is proportional to the
    /// number of plans and their frontiers, not to the grid.
    pub fn frontiers_by_plan(
        &self,
        options: &SearchOptions,
    ) -> Vec<(PlacementPlan, ResourceAllocation, ParetoFrontier)> {
        type PlanKey = (PlacementPlan, ResourceAllocation);
        let by_plan: HashMap<PlanKey, ParetoAccumulator> = self
            .schedule_iter(options)
            .par_bridge()
            .fold(
                HashMap::new,
                |mut map: HashMap<PlanKey, ParetoAccumulator>, schedule| {
                    if let Ok(performance) = schedule.evaluate(&self.profiler) {
                        map.entry((schedule.placement.clone(), schedule.allocation.clone()))
                            .or_default()
                            .push(ParetoPoint {
                                schedule,
                                performance,
                            });
                    }
                    map
                },
            )
            .reduce(HashMap::new, |mut merged, map| {
                for (key, acc) in map {
                    match merged.entry(key) {
                        std::collections::hash_map::Entry::Occupied(mut existing) => {
                            let prior = std::mem::take(existing.get_mut());
                            *existing.get_mut() = prior.merge(acc);
                        }
                        std::collections::hash_map::Entry::Vacant(slot) => {
                            slot.insert(acc);
                        }
                    }
                }
                merged
            });

        let mut out: Vec<(PlacementPlan, ResourceAllocation, ParetoFrontier)> = by_plan
            .into_iter()
            .map(|((placement, allocation), acc)| (placement, allocation, acc.into_frontier()))
            .collect();
        // Best QPS/chip first; exact ties fall back to the plan identity so
        // the order never depends on hash-map iteration.
        out.sort_by(|a, b| {
            let qps = |f: &ParetoFrontier| {
                f.max_qps_per_chip()
                    .map(|p| p.performance.qps_per_chip)
                    .unwrap_or(f64::NEG_INFINITY)
            };
            qps(&b.2).total_cmp(&qps(&a.2)).then_with(|| {
                (
                    a.0.describe(),
                    &a.1.group_xpus,
                    a.1.decode_xpus,
                    a.1.retrieval_servers,
                )
                    .cmp(&(
                        b.0.describe(),
                        &b.1.group_xpus,
                        b.1.decode_xpus,
                        b.1.retrieval_servers,
                    ))
            })
        });
        out
    }

    fn server_steps(&self, options: &SearchOptions) -> Vec<u32> {
        if !options.server_steps.is_empty() {
            return options.server_steps.clone();
        }
        if !self.profiler.schema().has_retrieval() {
            return vec![1];
        }
        let min = self.profiler.min_retrieval_servers();
        power_of_two_steps(self.budget.max_cpu_servers)
            .into_iter()
            .filter(|&s| s >= min)
            .collect::<Vec<_>>()
            .into_iter()
            .chain(std::iter::once(min))
            .collect::<std::collections::BTreeSet<_>>()
            .into_iter()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rago_schema::presets::{self, LlmSize};
    use rago_schema::Stage;

    fn tiny_options() -> SearchOptions {
        SearchOptions {
            xpu_steps: vec![8, 32],
            server_steps: vec![32],
            predecode_batch_steps: vec![1, 16],
            decode_batch_steps: vec![128],
            iterative_batch_steps: vec![8],
            placements: None,
        }
    }

    #[test]
    fn case1_search_finds_a_frontier() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        let frontier = rago.optimize(&tiny_options()).unwrap();
        assert!(!frontier.is_empty());
        assert!(frontier.evaluated_schedules >= frontier.len());
        // Frontier extremes behave as expected.
        let min_ttft = frontier.min_ttft().unwrap();
        let max_qps = frontier.max_qps_per_chip().unwrap();
        assert!(min_ttft.performance.ttft_s <= max_qps.performance.ttft_s);
        assert!(min_ttft.performance.qps_per_chip <= max_qps.performance.qps_per_chip);
    }

    #[test]
    fn budget_is_respected() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        for schedule in rago.enumerate_schedules(&tiny_options()) {
            assert!(schedule.allocation.total_xpus() <= 128);
            assert!(schedule.allocation.retrieval_servers <= 32);
        }
    }

    #[test]
    fn infeasible_budget_reports_no_schedule() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B405, 1),
            ClusterSpec::paper_default(),
        )
        .with_budget(ResourceBudget::new(2, 32));
        // A 405B model cannot fit on 2 chips, and the budget excludes more.
        let err = rago
            .optimize(&SearchOptions {
                xpu_steps: vec![1],
                ..tiny_options()
            })
            .unwrap_err();
        assert!(matches!(err, RagoError::NoFeasibleSchedule { .. }));
    }

    #[test]
    fn case4_search_covers_multiple_placements() {
        let rago = Rago::new(
            presets::case4_rewriter_reranker(LlmSize::B8),
            ClusterSpec::paper_default(),
        );
        let opts = SearchOptions {
            xpu_steps: vec![4, 16],
            server_steps: vec![32],
            predecode_batch_steps: vec![4],
            decode_batch_steps: vec![128],
            iterative_batch_steps: vec![8],
            placements: None,
        };
        let schedules = rago.enumerate_schedules(&opts);
        let placements: std::collections::HashSet<String> =
            schedules.iter().map(|s| s.placement.describe()).collect();
        assert_eq!(placements.len(), 8, "expected all 8 case-IV placements");
        let frontier = rago.optimize(&opts).unwrap();
        assert!(!frontier.is_empty());
    }

    #[test]
    fn frontiers_by_plan_partition_the_search() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        let plans = rago.frontiers_by_plan(&tiny_options());
        assert!(!plans.is_empty());
        let total: usize = plans.iter().map(|(_, _, f)| f.evaluated_schedules).sum();
        assert_eq!(total, rago.evaluate_all(&tiny_options()).len());
        // Plans are sorted by best QPS/chip, descending.
        let best: Vec<f64> = plans
            .iter()
            .filter_map(|(_, _, f)| f.max_qps_per_chip().map(|p| p.performance.qps_per_chip))
            .collect();
        for w in best.windows(2) {
            assert!(w[0] >= w[1]);
        }
    }

    #[test]
    fn placement_restriction_is_honoured() {
        let schema = presets::case2_long_context(LlmSize::B70, 1_000_000);
        let rago = Rago::new(schema.clone(), ClusterSpec::paper_default());
        let collocated = PlacementPlan::fully_collocated(&schema);
        let opts = tiny_options().with_placements(vec![collocated.clone()]);
        for schedule in rago.enumerate_schedules(&opts) {
            assert_eq!(schedule.placement, collocated);
        }
    }

    #[test]
    fn schedule_iter_is_lazy_and_matches_enumerate() {
        let rago = Rago::new(
            presets::case4_rewriter_reranker(LlmSize::B8),
            ClusterSpec::paper_default(),
        );
        let opts = tiny_options();
        let eager = rago.enumerate_schedules(&opts);
        let streamed: Vec<Schedule> = rago.schedule_iter(&opts).collect();
        assert_eq!(eager, streamed);
        // Pulling a prefix does not require enumerating the rest.
        let first_three: Vec<Schedule> = rago.schedule_iter(&opts).take(3).collect();
        assert_eq!(&eager[..3], &first_three[..]);
    }

    #[test]
    fn zero_group_placement_yields_cross_product_exactly_once() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        let empty_placement = PlacementPlan {
            predecode_groups: Vec::new(),
        };
        let opts = SearchOptions {
            xpu_steps: vec![8, 32],
            server_steps: vec![16, 32],
            predecode_batch_steps: vec![1, 16],
            decode_batch_steps: vec![128, 256],
            iterative_batch_steps: vec![8],
            placements: Some(vec![empty_placement.clone()]),
        };
        let schedules = rago.enumerate_schedules(&opts);
        // decode(2) × servers(2) × pre-batch(2) × decode-batch(2) = 16, once.
        assert_eq!(schedules.len(), 16);
        for s in &schedules {
            assert_eq!(s.placement, empty_placement);
            assert!(s.allocation.group_xpus.is_empty());
        }
        let distinct: std::collections::HashSet<String> =
            schedules.iter().map(Schedule::describe).collect();
        assert_eq!(distinct.len(), 16, "no duplicate candidates");
    }

    #[test]
    fn budget_prunes_steps_before_enumeration() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        )
        .with_budget(ResourceBudget::new(16, 32));
        let opts = SearchOptions {
            // 64 and the duplicate 8 can never appear: the iterator's axes
            // are budget-filtered up front.
            xpu_steps: vec![8, 8, 64, 4],
            ..tiny_options()
        };
        let schedules = rago.enumerate_schedules(&opts);
        assert!(!schedules.is_empty());
        for s in &schedules {
            assert!(s.allocation.total_xpus() <= 16);
            assert!(s.allocation.group_xpus.iter().all(|&x| x == 8 || x == 4));
        }
    }

    #[test]
    fn iterative_axis_only_spins_for_iterative_workloads() {
        let cluster = ClusterSpec::paper_default();
        let single = Rago::new(presets::case1_hyperscale(LlmSize::B8, 1), cluster.clone());
        let iterative = Rago::new(presets::case3_iterative(LlmSize::B8, 4), cluster);
        let opts = SearchOptions {
            iterative_batch_steps: vec![4, 8, 16],
            ..tiny_options()
        };
        let n_single = single.enumerate_schedules(&opts).len();
        let n_iter = iterative.enumerate_schedules(&opts).len();
        assert_eq!(n_iter, n_single * 3);
        assert!(single
            .schedule_iter(&opts)
            .all(|s| s.batching.iterative_batch.is_none()));
        assert!(iterative
            .schedule_iter(&opts)
            .all(|s| s.batching.iterative_batch.is_some()));
    }

    #[test]
    fn parallel_and_serial_agree_on_case1() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        let parallel = rago.optimize(&tiny_options()).unwrap();
        let serial = rago.optimize_serial(&tiny_options()).unwrap();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn memoization_shares_profiles_across_candidates() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        let opts = SearchOptions::fast();
        let frontier = rago.optimize(&opts).unwrap();
        let profiles = rago.profiler().cached_profiles();
        assert!(
            profiles * 2 < frontier.evaluated_schedules,
            "expected profile reuse: {} profiles for {} schedules",
            profiles,
            frontier.evaluated_schedules
        );
        // Case 1 has three profiled stages (retrieval, prefix, decode); the
        // distinct profile count is bounded by the per-stage grids.
        let bound = 3
            * (opts.xpu_steps.len() + 8)
            * (opts.predecode_batch_steps.len()
                + opts.decode_batch_steps.len()
                + opts.iterative_batch_steps.len());
        assert!(profiles <= bound, "{profiles} > {bound}");
    }

    #[test]
    fn zero_collocatable_stage_guard_terminates() {
        // A schema whose placement list contains only zero-group plans must
        // terminate and still cover decode-only schedules (regression guard
        // for the old odometer, which special-cased `groups == 0` after the
        // fact).
        let rago = Rago::new(presets::llm_only(LlmSize::B8), ClusterSpec::paper_default());
        let opts = SearchOptions {
            placements: Some(vec![PlacementPlan {
                predecode_groups: Vec::new(),
            }]),
            ..tiny_options()
        };
        let schedules = rago.enumerate_schedules(&opts);
        assert!(!schedules.is_empty());
        assert!(schedules.iter().all(|s| s.placement.num_groups() == 0));
        // And the normal pipeline still carries the prefix stage.
        let normal = rago.enumerate_schedules(&tiny_options());
        assert!(normal
            .iter()
            .all(|s| s.placement.group_of(Stage::Prefix).is_some()));
    }
}
