//! Cache-aware schedule evaluation and capacity planning: what the
//! optimizer's answers look like once prefill and retrieval work can be
//! *reused* across requests.
//!
//! The dynamic evaluators in [`crate::dynamic`] treat every request as
//! independent. Real RAG traffic is popularity-skewed — shared prompt
//! templates, repeated queries, hot documents — and the serving stack can
//! exploit it with the cache simulators of `rago-cache`: a prefix-KV hit
//! charges prefill only for the uncached suffix, and a retrieval-result hit
//! skips the retrieve and rerank stages outright. This module threads a
//! [`CacheConfig`] through the same engine, fleet, frontier-ranking, and
//! capacity-planning entry points, so the optimizer's chips-per-goodput
//! answer *changes* when caching is on:
//!
//! * [`evaluate_schedule_cached`] / [`evaluate_fleet_cached`] — the cached
//!   twins of [`crate::dynamic::evaluate_schedule_dynamic`] and
//!   [`crate::dynamic::evaluate_fleet_dynamic`];
//! * [`rank_frontier_by_goodput_cached`] — cache-aware frontier re-ranking:
//!   schedules with large pre-decode batches amortize differently once the
//!   prefix stage's work becomes hit-rate-dependent;
//! * [`plan_capacity_cached`] — fleet sizing under a content model: the
//!   sizing trace carries Zipfian identity from a
//!   [`rago_workloads::ContentSpec`], and the plan reports the hit rates it
//!   was sized under (a target hit rate is *achieved* by choosing the
//!   content model and capacities, then verified in the plan).
//!
//! **Degenerate-case discipline** (pinned by tests here and in
//! `rago-serving-sim`): with [`CacheConfig::disabled`], a zero-capacity
//! config, or an identity-free trace, every function reproduces its
//! cache-less twin bit-exactly — timelines, metrics, and per-class rows.

use crate::capacity::{
    build_plan, search_min_replicas, sizing_trace, validate_capacity_inputs, CapacityOptions,
    CapacityPlan,
};
use crate::dynamic::{
    check_mode_slo, pipeline_spec_cached, rank_frontier_with, reject_empty_trace, score_fleet,
    score_single, DynamicEvaluation, FleetEvaluation,
};
use crate::error::RagoError;
use crate::pareto::{ParetoFrontier, ParetoPoint};
use crate::profiler::StageProfiler;
use crate::schedule::Schedule;
pub use rago_cache::CacheConfig;
use rago_schema::{FleetConfig, SloTarget};
use rago_serving_sim::cluster::ClusterEngine;
use rago_serving_sim::engine::ServingEngine;
use rago_serving_sim::MetricsMode;
use rago_workloads::{ContentSpec, Trace};
use serde::{Deserialize, Serialize};

/// Drives `trace` through `schedule`'s pipeline with per-replica caches
/// from `cache` and scores the result against `slo` — the cached twin of
/// [`crate::dynamic::evaluate_schedule_dynamic`]. The report's
/// [`rago_serving_sim::engine::CacheUsage`] carries hit/miss/eviction
/// counters, overall and per class.
///
/// # Errors
///
/// Returns [`RagoError::InvalidConfig`] for invalid schedules, empty
/// traces, or a prefix cache on a schema without a prefix stage, and
/// [`RagoError::CostModel`] when the schedule cannot be profiled.
pub fn evaluate_schedule_cached(
    profiler: &StageProfiler,
    schedule: &Schedule,
    trace: &Trace,
    slo: &SloTarget,
    cache: &CacheConfig,
) -> Result<DynamicEvaluation, RagoError> {
    evaluate_schedule_cached_with(profiler, schedule, trace, slo, cache, &MetricsMode::Exact)
}

/// [`evaluate_schedule_cached`] with an explicit metrics mode (see
/// [`crate::dynamic::evaluate_schedule_dynamic_with`] for the mode
/// semantics). Cache hit/miss counters are exact in both modes — the cache
/// simulators run inside the engine regardless of how latency samples are
/// aggregated.
///
/// # Errors
///
/// As [`evaluate_schedule_cached`], plus [`RagoError::InvalidConfig`] when
/// a streaming mode's configured SLO differs from `slo`.
pub fn evaluate_schedule_cached_with(
    profiler: &StageProfiler,
    schedule: &Schedule,
    trace: &Trace,
    slo: &SloTarget,
    cache: &CacheConfig,
    mode: &MetricsMode,
) -> Result<DynamicEvaluation, RagoError> {
    schedule.validate()?;
    reject_empty_trace(trace)?;
    check_mode_slo(mode, slo)?;
    let spec = pipeline_spec_cached(profiler, schedule, Some(cache))?;
    Ok(score_single(
        ServingEngine::from_trace(spec, trace).run_with_mode(mode),
        slo,
    ))
}

/// Drives `trace` through a fleet of `fleet.replicas` replicas of
/// `schedule`'s pipeline, each with its *own cold* caches from `cache`, and
/// scores the merged result — the cached twin of
/// [`crate::dynamic::evaluate_fleet_dynamic`]. Pair it with the
/// content-aware routers ([`rago_schema::RouterPolicy::CacheAffinity`] /
/// [`rago_schema::RouterPolicy::PrefixHash`]) to keep each template's KV
/// state on one replica instead of duplicating it everywhere.
///
/// # Errors
///
/// As [`evaluate_schedule_cached`], plus invalid fleet configurations.
pub fn evaluate_fleet_cached(
    profiler: &StageProfiler,
    schedule: &Schedule,
    fleet: &FleetConfig,
    trace: &Trace,
    slo: &SloTarget,
    cache: &CacheConfig,
) -> Result<FleetEvaluation, RagoError> {
    evaluate_fleet_cached_with(
        profiler,
        schedule,
        fleet,
        trace,
        slo,
        cache,
        &MetricsMode::Exact,
    )
}

/// [`evaluate_fleet_cached`] with an explicit metrics mode (see
/// [`crate::dynamic::evaluate_schedule_dynamic_with`] for the mode
/// semantics).
///
/// Disaggregated `[Prefill, Decode]` pool fleets dispatch to
/// [`crate::disagg::evaluate_fleet_disagg_cached`] — the caches live on the
/// prefill pool, where the prefix and retrieval stages run — and require
/// [`MetricsMode::Exact`]. A fleet declaring a single `[Monolithic]` pool
/// runs the flat path with the pool's router.
///
/// # Errors
///
/// As [`evaluate_fleet_cached`], plus [`RagoError::InvalidConfig`] when a
/// streaming mode's configured SLO differs from `slo`, or when a streaming
/// mode is combined with a disaggregated pool fleet.
pub fn evaluate_fleet_cached_with(
    profiler: &StageProfiler,
    schedule: &Schedule,
    fleet: &FleetConfig,
    trace: &Trace,
    slo: &SloTarget,
    cache: &CacheConfig,
    mode: &MetricsMode,
) -> Result<FleetEvaluation, RagoError> {
    schedule.validate()?;
    fleet.validate().map_err(|e| RagoError::InvalidConfig {
        reason: e.to_string(),
    })?;
    reject_empty_trace(trace)?;
    check_mode_slo(mode, slo)?;
    if fleet.is_disaggregated() {
        if !matches!(mode, MetricsMode::Exact) {
            return Err(RagoError::InvalidConfig {
                reason: "streaming metrics are not supported for disaggregated pool fleets; \
                         score the exact merged report instead"
                    .into(),
            });
        }
        let report = crate::disagg::run_disagg(profiler, schedule, fleet, trace, Some(cache), &[])?;
        let eval = crate::disagg::score_disagg(report, schedule, slo);
        return Ok(crate::disagg::to_fleet_evaluation(&eval));
    }
    let router = match fleet.pools.as_slice() {
        [only] => only.router,
        _ => fleet.router,
    };
    let spec = pipeline_spec_cached(profiler, schedule, Some(cache))?;
    let engine = ClusterEngine::homogeneous(spec, fleet.replicas as usize, router);
    Ok(score_fleet(engine.run_trace_with_mode(trace, mode), slo))
}

/// Ranks the points of a Pareto frontier by SLO goodput under a
/// (content-tagged) trace with caching enabled, best first — the cached
/// twin of [`crate::dynamic::rank_frontier_by_goodput`]. The static
/// frontier does not know about reuse, so its best-QPS/chip point can lose
/// this ranking to a point whose larger pre-decode batch turns the cached
/// prefix stage into nearly free work.
///
/// # Panics
///
/// Panics on a zero-request trace, for the reason documented on
/// [`crate::dynamic::rank_frontier_by_goodput`].
pub fn rank_frontier_by_goodput_cached(
    profiler: &StageProfiler,
    frontier: &ParetoFrontier,
    trace: &Trace,
    slo: &SloTarget,
    cache: &CacheConfig,
) -> Vec<(ParetoPoint, DynamicEvaluation)> {
    assert!(
        !trace.requests.is_empty(),
        "cannot rank a frontier by goodput over a zero-request trace"
    );
    rank_frontier_with(frontier, |schedule| {
        evaluate_schedule_cached(profiler, schedule, trace, slo, cache)
    })
}

/// A capacity plan sized under a content model, with the hit rates the
/// sizing run achieved.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CachedCapacityPlan {
    /// The provisioning decision (same fields as the cache-less planner's).
    pub plan: CapacityPlan,
    /// Prefix-KV hit rate of the sizing run at the chosen replica count.
    pub prefix_hit_rate: f64,
    /// Retrieval-result hit rate of the sizing run at the chosen count.
    pub retrieval_hit_rate: f64,
    /// Prefill tokens served from cache during the sizing run.
    pub prefix_tokens_saved: u64,
}

/// Sizes a fleet of `schedule` replicas for `target_qps` within `slo`
/// **with caching enabled**: the sizing trace is tagged with `content`'s
/// Zipfian identity, every candidate fleet runs with per-replica caches
/// from `cache`, and the returned plan carries the hit rates the chosen
/// fleet achieved. Because hits shed prefill and retrieval work, the
/// cached plan needs *at most* as many replicas as
/// [`crate::capacity::plan_capacity_with`] at the same rate — the
/// chips-per-goodput answer the tentpole changes.
///
/// "Planning under a target hit rate" works by construction: the hit rate
/// is a deterministic function of the content skew and cache capacities, so
/// callers pick those, plan, and read the achieved rates off the result
/// (the `cache_reuse` bench prints exactly this loop).
///
/// # Errors
///
/// As [`crate::capacity::plan_capacity_with`], plus the cached pipeline's
/// configuration errors.
pub fn plan_capacity_cached(
    profiler: &StageProfiler,
    schedule: &Schedule,
    slo: &SloTarget,
    target_qps: f64,
    options: &CapacityOptions,
    cache: &CacheConfig,
    content: &ContentSpec,
) -> Result<CachedCapacityPlan, RagoError> {
    validate_capacity_inputs(target_qps, options)?;
    schedule.validate()?;
    let spec = pipeline_spec_cached(profiler, schedule, Some(cache))?;
    let trace = content.tag(&sizing_trace(target_qps, options));
    let (replicas, report) = search_min_replicas(&spec, &trace, slo, target_qps, options)?;
    let usage = &report.merged.cache;
    Ok(CachedCapacityPlan {
        plan: build_plan(schedule, replicas, &report, slo, target_qps),
        prefix_hit_rate: usage.prefix.hit_rate(),
        retrieval_hit_rate: usage.retrieval.hit_rate(),
        prefix_tokens_saved: usage.prefix.tokens_saved,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{evaluate_fleet_dynamic, evaluate_schedule_dynamic};
    use crate::placement::PlacementPlan;
    use crate::schedule::{BatchingPolicy, ResourceAllocation};
    use rago_cache::{EvictionPolicy, PrefixKvCacheConfig, RetrievalCacheConfig};
    use rago_hardware::ClusterSpec;
    use rago_schema::presets::{self, LlmSize};
    use rago_schema::{RouterPolicy, SequenceProfile, Stage};
    use rago_workloads::{ArrivalProcess, PopularityModel, TraceSpec};

    fn case1_profiler() -> StageProfiler {
        StageProfiler::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        )
    }

    fn case1_schedule() -> Schedule {
        Schedule {
            placement: PlacementPlan {
                predecode_groups: vec![vec![Stage::Prefix]],
            },
            allocation: ResourceAllocation {
                group_xpus: vec![8],
                decode_xpus: 8,
                retrieval_servers: 32,
            },
            batching: BatchingPolicy::new(8, 64),
        }
    }

    fn hot_cache() -> CacheConfig {
        CacheConfig {
            prefix: Some(PrefixKvCacheConfig::new(64 * 1024, EvictionPolicy::Lru)),
            retrieval: Some(RetrievalCacheConfig::new(256, EvictionPolicy::Lru)),
        }
    }

    fn zero_cache() -> CacheConfig {
        CacheConfig {
            prefix: Some(PrefixKvCacheConfig::new(0, EvictionPolicy::Lru)),
            retrieval: Some(RetrievalCacheConfig::new(0, EvictionPolicy::Lru)),
        }
    }

    fn content() -> ContentSpec {
        ContentSpec {
            prefixes: PopularityModel::zipf(8, 1.1),
            shared_prefix_fraction: 0.8,
            docs: PopularityModel::zipf(32, 1.0),
            seed: 91,
        }
    }

    fn poisson_trace(n: usize, rate: f64, seed: u64) -> Trace {
        TraceSpec {
            num_requests: n,
            profile: SequenceProfile::paper_default().with_decode_tokens(32),
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            length_jitter: 0.2,
            seed,
        }
        .generate()
    }

    /// The acceptance-criterion equivalence: zero-capacity caches on a
    /// tagged trace reproduce the cache-less engine bit-exactly (timelines,
    /// metrics, per-class rows — the cache counters record the misses).
    #[test]
    fn zero_capacity_caches_match_the_dynamic_path_bit_exactly() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let trace = content().tag(&poisson_trace(80, 30.0, 5));
        let plain = evaluate_schedule_dynamic(&profiler, &schedule, &trace, &slo).unwrap();
        let cached =
            evaluate_schedule_cached(&profiler, &schedule, &trace, &slo, &zero_cache()).unwrap();
        assert_eq!(cached.report.timelines, plain.report.timelines);
        assert_eq!(cached.report.metrics, plain.report.metrics);
        assert_eq!(cached.report.per_class, plain.report.per_class);
        assert_eq!(cached.attainment, plain.attainment);
        assert_eq!(cached.goodput_rps, plain.goodput_rps);
        // The zero-capacity caches looked up and missed every time.
        assert_eq!(cached.report.cache.prefix.hits, 0);
        assert_eq!(cached.report.cache.prefix.lookups, 80);
        assert_eq!(cached.report.cache.retrieval.hits, 0);
        // The cache-less run never looked anything up.
        assert_eq!(plain.report.cache.prefix.lookups, 0);
    }

    /// The other acceptance-criterion equivalence: an identity-free trace
    /// under real cache capacities never touches the caches and reproduces
    /// the cache-less path bit-exactly — including all-zero counters.
    #[test]
    fn identity_free_traces_match_the_dynamic_path_bit_exactly() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let trace = poisson_trace(80, 30.0, 5); // no content tagging
        let plain = evaluate_schedule_dynamic(&profiler, &schedule, &trace, &slo).unwrap();
        let cached =
            evaluate_schedule_cached(&profiler, &schedule, &trace, &slo, &hot_cache()).unwrap();
        assert_eq!(cached.report, plain.report);
        let fleet = FleetConfig::new(3, RouterPolicy::LeastOutstanding);
        let plain_fleet =
            evaluate_fleet_dynamic(&profiler, &schedule, &fleet, &trace, &slo).unwrap();
        let cached_fleet =
            evaluate_fleet_cached(&profiler, &schedule, &fleet, &trace, &slo, &hot_cache())
                .unwrap();
        assert_eq!(cached_fleet.report, plain_fleet.report);
    }

    /// A disabled cache config is the dynamic path by construction.
    #[test]
    fn disabled_cache_config_matches_bit_exactly() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let trace = content().tag(&poisson_trace(60, 25.0, 9));
        let plain = evaluate_schedule_dynamic(&profiler, &schedule, &trace, &slo).unwrap();
        let cached =
            evaluate_schedule_cached(&profiler, &schedule, &trace, &slo, &CacheConfig::disabled())
                .unwrap();
        assert_eq!(cached.report, plain.report);
    }

    /// Caching on a skewed trace strictly reduces prefill + retrieval work:
    /// hit rates are real, TTFT improves, goodput does not degrade.
    #[test]
    fn hot_caches_improve_ttft_under_skewed_traffic() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let trace = content().tag(&poisson_trace(150, 60.0, 13));
        let plain = evaluate_schedule_dynamic(&profiler, &schedule, &trace, &slo).unwrap();
        let cached =
            evaluate_schedule_cached(&profiler, &schedule, &trace, &slo, &hot_cache()).unwrap();
        let usage = &cached.report.cache;
        assert!(
            usage.prefix.hit_rate() > 0.5,
            "prefix hit rate {}",
            usage.prefix.hit_rate()
        );
        assert!(
            usage.retrieval.hit_rate() > 0.5,
            "retrieval hit rate {}",
            usage.retrieval.hit_rate()
        );
        assert!(usage.prefix.tokens_saved > 0);
        assert!(
            cached.report.metrics.ttft.mean_s < plain.report.metrics.ttft.mean_s,
            "cached mean TTFT {} vs plain {}",
            cached.report.metrics.ttft.mean_s,
            plain.report.metrics.ttft.mean_s
        );
        assert!(cached.attainment >= plain.attainment);
    }

    /// Cache-aware frontier re-ranking runs every point and sorts by
    /// goodput.
    #[test]
    fn cached_frontier_ranking_is_sorted() {
        use crate::optimizer::{Rago, SearchOptions};
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        let frontier = rago
            .optimize(&SearchOptions {
                xpu_steps: vec![8, 32],
                server_steps: vec![32],
                predecode_batch_steps: vec![1, 16],
                decode_batch_steps: vec![128],
                iterative_batch_steps: vec![8],
                placements: None,
            })
            .unwrap();
        let slo = SloTarget::new(2.0, 0.1);
        let trace = content().tag(&poisson_trace(60, 20.0, 5));
        let ranked =
            rank_frontier_by_goodput_cached(rago.profiler(), &frontier, &trace, &slo, &hot_cache());
        assert_eq!(ranked.len(), frontier.len());
        for pair in ranked.windows(2) {
            assert!(pair[0].1.goodput_rps >= pair[1].1.goodput_rps);
        }
        assert!(ranked
            .iter()
            .all(|(_, e)| e.report.cache.prefix.lookups > 0));
    }

    /// The tentpole's capacity claim: at a rate where the cache-less plan
    /// needs a fleet, the cached plan needs no more replicas — and reports
    /// the hit rates it was sized under.
    #[test]
    fn cached_capacity_plan_needs_no_more_replicas() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let options = CapacityOptions {
            max_replicas: 8,
            num_requests: 120,
            ..CapacityOptions::default()
        };
        let target = 40.0;
        let plain =
            crate::capacity::plan_capacity_with(&profiler, &schedule, &slo, target, &options)
                .unwrap();
        let cached = plan_capacity_cached(
            &profiler,
            &schedule,
            &slo,
            target,
            &options,
            &hot_cache(),
            &content(),
        )
        .unwrap();
        assert!(
            cached.plan.replicas <= plain.replicas,
            "caching increased the fleet: {} vs {}",
            cached.plan.replicas,
            plain.replicas
        );
        assert!(cached.prefix_hit_rate > 0.0);
        assert!(cached.retrieval_hit_rate > 0.0);
        assert!(cached.plan.attainment >= slo.attainment);
        assert_eq!(
            cached.plan.total_xpus,
            schedule.allocation.total_xpus() * cached.plan.replicas
        );
    }

    #[test]
    fn degenerate_inputs_are_rejected() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let empty = Trace { requests: vec![] };
        assert!(matches!(
            evaluate_schedule_cached(&profiler, &schedule, &empty, &slo, &hot_cache()),
            Err(RagoError::InvalidConfig { .. })
        ));
        let options = CapacityOptions::default();
        assert!(matches!(
            plan_capacity_cached(
                &profiler,
                &schedule,
                &slo,
                f64::NAN,
                &options,
                &hot_cache(),
                &content()
            ),
            Err(RagoError::InvalidConfig { .. })
        ));
        let no_requests = CapacityOptions {
            num_requests: 0,
            ..options
        };
        assert!(matches!(
            plan_capacity_cached(
                &profiler,
                &schedule,
                &slo,
                10.0,
                &no_requests,
                &hot_cache(),
                &content()
            ),
            Err(RagoError::InvalidConfig { .. })
        ));
    }
}
