//! SLO-driven capacity planning: how many replicas does a schedule need?
//!
//! The optimizer answers *which schedule* is best for one pipeline; the
//! north-star question is *how many copies* of that pipeline a deployment
//! must provision to serve a target rate within an SLO — the decision
//! DistServe and Splitwise show dominates per-pipeline tuning at scale.
//! This module closes that loop on top of the fleet simulation in
//! `rago-serving-sim::cluster`:
//!
//! * [`plan_capacity`] binary-searches the minimum replica count whose
//!   fleet-level SLO attainment meets the target at a given offered rate;
//! * [`rank_frontier_by_cost_at_qps`] re-ranks a Pareto frontier by the
//!   *total chips* each schedule needs to serve that rate — the fleet-level
//!   analogue of [`crate::dynamic::rank_frontier_by_goodput`]: a schedule
//!   that looks mediocre per chip may win once replica granularity is
//!   accounted for, and vice versa.
//!
//! Attainment is monotone (non-decreasing) in the replica count in
//! expectation — more replicas strictly reduce every replica's share of the
//! load — which is what lets [`plan_capacity`] binary-search instead of
//! scanning. A finite seeded trace can still dip, so the search finishes
//! with a downward confirmation walk (see [`plan_capacity_with`]); the
//! `fleet_scaling` bench cross-checks the result against an exhaustive
//! linear scan.

use crate::dynamic::pipeline_spec;
use crate::error::RagoError;
use crate::pareto::{ParetoFrontier, ParetoPoint};
use crate::profiler::StageProfiler;
use crate::schedule::Schedule;
use rago_schema::{KvTransferModel, RouterPolicy, SequenceProfile, SloTarget};
use rago_serving_sim::cluster::{ClusterEngine, FleetReport};
use rago_serving_sim::engine::PipelineSpec;
use rago_serving_sim::pools::{DisaggEngine, DisaggReport};
use rago_workloads::{ArrivalProcess, RateSegment, TraceSpec};
use rayon::prelude::*;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Knobs of a capacity-planning run: the simulated trace shape and the
/// search bounds. The defaults suit the paper's QA/chatbot profile.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityOptions {
    /// Largest replica count the search will consider.
    pub max_replicas: u32,
    /// Routing policy of the simulated fleet.
    pub router: RouterPolicy,
    /// Requests in the generated Poisson trace. More requests average out
    /// arrival noise at the cost of simulation time.
    pub num_requests: usize,
    /// Sequence-length profile of the generated requests.
    pub profile: SequenceProfile,
    /// Relative length jitter of the generated requests, in `[0, 1)`.
    pub length_jitter: f64,
    /// RNG seed of the generated trace.
    pub seed: u64,
}

impl Default for CapacityOptions {
    fn default() -> Self {
        Self {
            max_replicas: 16,
            router: RouterPolicy::default(),
            num_requests: 240,
            profile: SequenceProfile::paper_default().with_decode_tokens(64),
            length_jitter: 0.2,
            seed: 17,
        }
    }
}

/// The provisioning decision for one schedule at one target rate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityPlan {
    /// Minimum replica count meeting the SLO at the target rate.
    pub replicas: u32,
    /// Offered rate the plan was sized for, in requests per second.
    pub target_qps: f64,
    /// Fleet SLO attainment at the planned replica count.
    pub attainment: f64,
    /// Fleet SLO goodput at the planned replica count, in requests per
    /// second of serving duration.
    pub goodput_rps: f64,
    /// Total accelerators across the fleet: the schedule's XPUs times the
    /// replica count — the cost axis
    /// [`rank_frontier_by_cost_at_qps`] ranks by.
    pub total_xpus: u32,
    /// Total retrieval CPU servers across the fleet.
    pub total_retrieval_servers: u32,
    /// Drain tail of the sizing run (time spent completing in-flight work
    /// after the last arrival); planners can discount it since it is paid
    /// once per burst, not per unit of sustained traffic.
    pub drain_tail_s: f64,
}

/// Finds the minimum replica count of `schedule`'s pipeline whose fleet
/// attainment meets `slo` at `target_qps`, with default
/// [`CapacityOptions`]. See [`plan_capacity_with`].
///
/// # Errors
///
/// See [`plan_capacity_with`].
pub fn plan_capacity(
    profiler: &StageProfiler,
    schedule: &Schedule,
    slo: &SloTarget,
    target_qps: f64,
) -> Result<CapacityPlan, RagoError> {
    plan_capacity_with(
        profiler,
        schedule,
        slo,
        target_qps,
        &CapacityOptions::default(),
    )
}

/// Finds the minimum replica count of `schedule`'s pipeline whose
/// fleet-level SLO attainment meets `slo` at a Poisson offered rate of
/// `target_qps`: a binary search over `1..=options.max_replicas` followed
/// by a downward confirmation walk. Attainment is monotone in the replica
/// count in expectation (more replicas strictly shrink every replica's
/// load share), but a finite seeded trace with discrete routing can dip;
/// the confirmation walk re-checks successively smaller fleets from the
/// binary-search result (memoized, so the walk is one extra evaluation in
/// the monotone case) and guarantees the returned count's predecessor
/// misses the SLO — which makes the result equal to an exhaustive linear
/// scan whenever the sweep is monotone (cross-checked by the
/// `fleet_scaling` bench). The pipeline is profiled once and replicated;
/// every candidate count is evaluated on the same generated trace, so
/// plans are comparable across schedules.
///
/// # Errors
///
/// Returns [`RagoError::InvalidConfig`] when the target rate is not
/// positive and finite or the schedule is invalid,
/// [`RagoError::CostModel`] when the schedule cannot be profiled, and
/// [`RagoError::NoFeasibleSchedule`] when even `options.max_replicas`
/// replicas miss the SLO at the target rate.
pub fn plan_capacity_with(
    profiler: &StageProfiler,
    schedule: &Schedule,
    slo: &SloTarget,
    target_qps: f64,
    options: &CapacityOptions,
) -> Result<CapacityPlan, RagoError> {
    validate_capacity_inputs(target_qps, options)?;
    schedule.validate()?;
    let spec = pipeline_spec(profiler, schedule)?;
    let trace = sizing_trace(target_qps, options);
    let (replicas, report) = search_min_replicas(&spec, &trace, slo, target_qps, options)?;
    Ok(build_plan(schedule, replicas, &report, slo, target_qps))
}

/// Upper bound on [`CapacityOptions::max_replicas`] accepted by the
/// planners. The sizing engines materialize one pipeline replica per count,
/// and the feasibility probe simulates the *upper bound* first — so an
/// unchecked huge count (say `u32::MAX` from a config file) would attempt
/// an absurd allocation before the binary search ever narrowed it. 4096
/// replicas of even the smallest paper schedule already exceed any cluster
/// the cost model describes. The bound also makes every internal
/// `u32 → usize` replica-count conversion provably lossless, on any
/// platform width.
pub const MAX_PLANNER_REPLICAS: u32 = 4096;

/// Checked `u32 → usize` conversion for replica counts. Counts reaching
/// the engines were bounded by [`MAX_PLANNER_REPLICAS`] in
/// [`validate_capacity_inputs`], so failure here is a planner bug, not a
/// user error — hence a panic rather than a silent wrap (the old
/// `as usize` cast would truncate on a 16-bit target).
pub(crate) fn replicas_usize(replicas: u32) -> usize {
    usize::try_from(replicas).expect("replica count was bounded by MAX_PLANNER_REPLICAS")
}

/// Input validation shared by [`plan_capacity_with`] and the cache-aware
/// planner in [`crate::cached`] — one set of error messages for both.
pub(crate) fn validate_capacity_inputs(
    target_qps: f64,
    options: &CapacityOptions,
) -> Result<(), RagoError> {
    if !(target_qps > 0.0 && target_qps.is_finite()) {
        return Err(RagoError::InvalidConfig {
            reason: format!("target QPS must be positive and finite, got {target_qps}"),
        });
    }
    if options.max_replicas == 0 {
        return Err(RagoError::InvalidConfig {
            reason: "max_replicas must be at least 1".into(),
        });
    }
    if options.max_replicas > MAX_PLANNER_REPLICAS {
        return Err(RagoError::InvalidConfig {
            reason: format!(
                "max_replicas {} exceeds the planner bound of {MAX_PLANNER_REPLICAS}; \
                 sizing a larger fleet would simulate the upper bound first and is \
                 almost certainly a misconfiguration",
                options.max_replicas
            ),
        });
    }
    if options.num_requests == 0 {
        // An empty sizing trace would score a vacuous attainment of 1.0 at
        // any replica count — the same failure mode the dynamic evaluator
        // rejects for zero-request traces.
        return Err(RagoError::InvalidConfig {
            reason: "capacity planning needs at least one request in the sizing trace".into(),
        });
    }
    Ok(())
}

/// The Poisson sizing trace every capacity plan is evaluated on, shared
/// with [`crate::cached::plan_capacity_cached`] (which content-tags it) so
/// cached and cache-less plans at the same rate are directly comparable.
pub(crate) fn sizing_trace(target_qps: f64, options: &CapacityOptions) -> rago_workloads::Trace {
    TraceSpec {
        num_requests: options.num_requests,
        profile: options.profile,
        arrival: ArrivalProcess::Poisson {
            rate_rps: target_qps,
        },
        length_jitter: options.length_jitter,
        seed: options.seed,
    }
    .generate()
}

/// Assembles the [`CapacityPlan`] of a finished search — the single
/// definition of the plan's derived fields, shared with the cache-aware
/// planner.
pub(crate) fn build_plan(
    schedule: &Schedule,
    replicas: u32,
    report: &FleetReport,
    slo: &SloTarget,
    target_qps: f64,
) -> CapacityPlan {
    CapacityPlan {
        replicas,
        target_qps,
        attainment: report.attainment(slo),
        goodput_rps: report.goodput_rps(slo),
        total_xpus: schedule.allocation.total_xpus() * replicas,
        total_retrieval_servers: schedule.allocation.retrieval_servers * replicas,
        drain_tail_s: report.merged.metrics.drain_tail_s,
    }
}

/// The search core of [`plan_capacity_with`]: the minimum replica count of
/// `spec` whose fleet attainment over `trace` meets `slo` (binary search
/// plus a downward confirmation walk, every candidate memoized on the same
/// trace). Returns the count together with its fleet report. Shared with
/// the cache-aware planner in [`crate::cached`], which supplies a cached
/// spec and a content-tagged trace.
pub(crate) fn search_min_replicas(
    spec: &PipelineSpec,
    trace: &rago_workloads::Trace,
    slo: &SloTarget,
    target_qps: f64,
    options: &CapacityOptions,
) -> Result<(u32, FleetReport), RagoError> {
    let mut reports: BTreeMap<u32, FleetReport> = BTreeMap::new();
    let meets = |replicas: u32, reports: &mut BTreeMap<u32, FleetReport>| -> bool {
        reports
            .entry(replicas)
            .or_insert_with(|| {
                ClusterEngine::homogeneous(spec.clone(), replicas_usize(replicas), options.router)
                    .run_trace(trace)
            })
            .attainment(slo)
            >= slo.attainment
    };

    // Establish feasibility at the upper bound, then binary-search the
    // minimal feasible count in [1, max].
    if !meets(options.max_replicas, &mut reports) {
        let top = &reports[&options.max_replicas];
        return Err(RagoError::NoFeasibleSchedule {
            reason: format!(
                "even {} replicas reach only {:.1} % attainment at {target_qps:.1} rps \
                 (target {:.1} %)",
                options.max_replicas,
                top.attainment(slo) * 100.0,
                slo.attainment * 100.0
            ),
        });
    }
    let mut lo = 1u32;
    let mut hi = options.max_replicas;
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if meets(mid, &mut reports) {
            hi = mid;
        } else {
            lo = mid + 1;
        }
    }
    // Downward confirmation: a noisy dip in the sweep can make the binary
    // search land above the true minimum, so keep stepping down while
    // smaller fleets still meet the SLO (memoized — one extra evaluation
    // when the sweep is monotone).
    let mut replicas = hi;
    while replicas > 1 && meets(replicas - 1, &mut reports) {
        replicas -= 1;
    }
    let report = reports
        .remove(&replicas)
        .expect("the chosen replica count was evaluated");
    Ok((replicas, report))
}

/// The provisioning decision for one schedule at one target rate under
/// disaggregated prefill/decode pools — the two-pool analogue of
/// [`CapacityPlan`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PoolCapacityPlan {
    /// Replicas of the prefill pool (pre-decode stages only).
    pub prefill_replicas: u32,
    /// Replicas of the decode pool (continuous-batching decode only).
    pub decode_replicas: u32,
    /// Offered rate the plan was sized for, in requests per second.
    pub target_qps: f64,
    /// Fleet SLO attainment at the planned split.
    pub attainment: f64,
    /// Fleet SLO goodput at the planned split, in requests per second of
    /// serving duration.
    pub goodput_rps: f64,
    /// Total accelerators: `prefill_replicas × prefill XPUs +
    /// decode_replicas × decode XPUs` — the objective the joint search
    /// minimizes, and the number to hold against [`CapacityPlan::total_xpus`]
    /// to decide whether disaggregation pays at this rate and SLO.
    pub total_xpus: u32,
    /// Total retrieval CPU servers (retrieval runs pre-decode, so only the
    /// prefill pool carries them).
    pub total_retrieval_servers: u32,
    /// Drain tail of the sizing run.
    pub drain_tail_s: f64,
}

/// Finds the cheapest disaggregated `(prefill, decode)` split of
/// `schedule`'s pipeline whose fleet attainment meets `slo` at a Poisson
/// offered rate of `target_qps` — the joint-search extension of
/// [`plan_capacity_with`], with every KV handoff priced by `transfer`.
///
/// The objective is total accelerators, which the pools price
/// *asymmetrically*: a prefill replica occupies only the schedule's
/// pre-decode groups, a decode replica only its decode XPUs. The search
/// walks prefill counts `p = 1..=max_replicas`; for each feasible `p` it
/// binary-searches the minimal decode count (same memoized
/// search-plus-confirmation discipline as [`plan_capacity_with`], on the
/// same sizing trace), and prunes the cross product by cost: once even a
/// one-decode-replica split at the current `p` cannot beat the best cost
/// found, no larger `p` can either, and the walk stops. Every candidate is
/// evaluated on the identical trace, so the returned plan is directly
/// comparable to the collocated plan at the same rate.
///
/// # Errors
///
/// As [`plan_capacity_with`] (including [`RagoError::NoFeasibleSchedule`]
/// when even a `max_replicas + max_replicas` split misses the SLO), plus
/// [`RagoError::InvalidConfig`] for an invalid transfer model or a schedule
/// without a pre-decode stage to disaggregate.
pub fn plan_capacity_pools(
    profiler: &StageProfiler,
    schedule: &Schedule,
    slo: &SloTarget,
    target_qps: f64,
    transfer: &KvTransferModel,
    options: &CapacityOptions,
) -> Result<PoolCapacityPlan, RagoError> {
    validate_capacity_inputs(target_qps, options)?;
    schedule.validate()?;
    transfer.validate().map_err(|e| RagoError::InvalidConfig {
        reason: e.to_string(),
    })?;
    let (prefill_spec, decode_spec) = crate::disagg::split_pipeline_spec(profiler, schedule, None)?;
    let trace = sizing_trace(target_qps, options);
    let max = options.max_replicas;

    let mut reports: BTreeMap<(u32, u32), DisaggReport> = BTreeMap::new();
    let meets = |p: u32, d: u32, reports: &mut BTreeMap<(u32, u32), DisaggReport>| -> bool {
        reports
            .entry((p, d))
            .or_insert_with(|| {
                DisaggEngine::new(
                    prefill_spec.clone(),
                    replicas_usize(p),
                    options.router,
                    decode_spec.clone(),
                    replicas_usize(d),
                    options.router,
                    *transfer,
                )
                .run_trace(&trace)
            })
            .merged
            .attainment(slo)
            >= slo.attainment
    };

    // Feasibility at the joint upper bound, mirroring the flat planner.
    if !meets(max, max, &mut reports) {
        let top = &reports[&(max, max)];
        return Err(RagoError::NoFeasibleSchedule {
            reason: format!(
                "even a {max} + {max} prefill/decode split reaches only {:.1} % attainment \
                 at {target_qps:.1} rps (target {:.1} %)",
                top.merged.attainment(slo) * 100.0,
                slo.attainment * 100.0
            ),
        });
    }

    let chips_prefill = crate::disagg::prefill_xpus(schedule);
    let chips_decode = crate::disagg::decode_xpus(schedule);
    let mut best: Option<(u32, u32, u32)> = None; // (p, d, cost)
    for p in 1..=max {
        // Cost pruning: decode counts only add cost, so `(p, 1)` is the
        // cheapest split any larger `p` could offer.
        let floor = p * chips_prefill + chips_decode;
        if best.is_some_and(|(.., cost)| floor > cost) {
            break;
        }
        if !meets(p, max, &mut reports) {
            continue;
        }
        let mut lo = 1u32;
        let mut hi = max;
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            if meets(p, mid, &mut reports) {
                hi = mid;
            } else {
                lo = mid + 1;
            }
        }
        let mut d = hi;
        while d > 1 && meets(p, d - 1, &mut reports) {
            d -= 1;
        }
        let cost = p * chips_prefill + d * chips_decode;
        let better = match best {
            None => true,
            Some((bp, bd, bcost)) => cost < bcost || (cost == bcost && p + d < bp + bd),
        };
        if better {
            best = Some((p, d, cost));
        }
    }

    let (p, d, cost) = best.expect("the (max, max) split was confirmed feasible");
    let report = reports
        .remove(&(p, d))
        .expect("the chosen split was evaluated");
    Ok(PoolCapacityPlan {
        prefill_replicas: p,
        decode_replicas: d,
        target_qps,
        attainment: report.merged.attainment(slo),
        goodput_rps: report.merged.goodput_rps(slo),
        total_xpus: cost,
        total_retrieval_servers: schedule.allocation.retrieval_servers * p,
        drain_tail_s: report.merged.metrics.drain_tail_s,
    })
}

/// Re-ranks a Pareto frontier by the total accelerators needed to serve
/// `target_qps` within `slo`, cheapest fleet first — the fleet-level
/// analogue of [`crate::dynamic::rank_frontier_by_goodput`]. Each point is
/// capacity-planned independently (in parallel across rayon workers);
/// points that cannot meet the SLO even at `options.max_replicas` replicas
/// are omitted. Ties on total XPUs break toward fewer replicas, then lower
/// static TTFT, then the schedule description, so the ranking is
/// deterministic.
///
/// # Panics
///
/// Panics when the target rate is not positive and finite or the options
/// describe an empty search (zero requests or zero replicas). Those inputs
/// would fail *every* per-point plan, and silently returning an empty
/// ranking would be indistinguishable from "no schedule can serve this
/// rate".
pub fn rank_frontier_by_cost_at_qps(
    profiler: &StageProfiler,
    frontier: &ParetoFrontier,
    slo: &SloTarget,
    target_qps: f64,
    options: &CapacityOptions,
) -> Vec<(ParetoPoint, CapacityPlan)> {
    assert!(
        target_qps > 0.0 && target_qps.is_finite(),
        "target QPS must be positive and finite, got {target_qps}"
    );
    assert!(
        options.max_replicas > 0 && options.num_requests > 0,
        "capacity options must allow at least one replica and one request"
    );
    let mut ranked: Vec<(ParetoPoint, CapacityPlan)> = frontier
        .iter()
        .par_bridge()
        .fold(Vec::new, |mut acc, point| {
            if let Ok(plan) =
                plan_capacity_with(profiler, &point.schedule, slo, target_qps, options)
            {
                acc.push((point.clone(), plan));
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    ranked.sort_by(|a, b| {
        a.1.total_xpus
            .cmp(&b.1.total_xpus)
            .then(a.1.replicas.cmp(&b.1.replicas))
            .then(a.0.performance.ttft_s.total_cmp(&b.0.performance.ttft_s))
            .then_with(|| a.0.schedule.describe().cmp(&b.0.schedule.describe()))
    });
    ranked
}

/// One interval of a capacity schedule: how many replicas a rate segment
/// needs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CapacityInterval {
    /// Interval start, in seconds from the profile's origin.
    pub start_s: f64,
    /// Interval length, in seconds.
    pub duration_s: f64,
    /// Offered rate during the interval, in requests per second.
    pub rate_rps: f64,
    /// Minimum replica count meeting the SLO at that rate (zero for
    /// zero-rate intervals).
    pub replicas: u32,
    /// Fleet attainment at the planned count (1.0 for zero-rate intervals).
    pub attainment: f64,
}

/// A replica *schedule* over a time-varying rate profile, with its cost
/// relative to statically provisioning the peak.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CapacityProfile {
    /// Per-interval plans, in profile order.
    pub intervals: Vec<CapacityInterval>,
    /// Largest per-interval replica count — what static provisioning would
    /// hold for the whole profile.
    pub peak_replicas: u32,
    /// Integral of the schedule, in replica-seconds.
    pub replica_seconds: f64,
    /// `peak_replicas × total profile duration` — the static-provisioning
    /// cost over the same window.
    pub static_replica_seconds: f64,
    /// `1 − replica_seconds / static_replica_seconds`: the fraction of
    /// chip-time following the profile saves over provisioning the peak
    /// (zero when the profile is flat).
    pub savings_fraction: f64,
}

/// Plans the minimum replica *schedule* of `schedule`'s pipeline over a
/// piecewise-constant rate profile: each [`RateSegment`] is sized
/// independently with [`plan_capacity_with`] at its own rate (zero-rate
/// segments need zero replicas), so the result is by construction identical
/// to per-interval static planning — the cross-check the
/// `capacity_profile_matches_per_interval_planning` test pins. Repeated
/// rates are planned once and memoized.
///
/// This is the provisioning-side answer to time-varying traffic: where the
/// reactive autoscaler in `rago-serving-sim` *discovers* the capacity a
/// trace needs, this planner *derives* it from the rate profile ahead of
/// time, and the spread between `replica_seconds` and
/// `static_replica_seconds` bounds what any elastic strategy can save.
///
/// # Errors
///
/// Returns [`RagoError::InvalidConfig`] when the profile is empty, a
/// segment is degenerate (non-positive duration, negative or non-finite
/// rate), the schedule is invalid, or the options describe an empty search,
/// and [`RagoError::NoFeasibleSchedule`] when some positive-rate segment
/// cannot meet the SLO within `options.max_replicas`.
pub fn plan_capacity_profile(
    profiler: &StageProfiler,
    schedule: &Schedule,
    slo: &SloTarget,
    profile: &[RateSegment],
    options: &CapacityOptions,
) -> Result<CapacityProfile, RagoError> {
    if profile.is_empty() {
        return Err(RagoError::InvalidConfig {
            reason: "a capacity profile needs at least one rate segment".into(),
        });
    }
    for (i, s) in profile.iter().enumerate() {
        if let Err(reason) = s.validate() {
            return Err(RagoError::InvalidConfig {
                reason: format!("segment {i}: {reason}"),
            });
        }
    }
    if profile.iter().all(|s| s.rate_rps == 0.0) {
        // Without this check an all-idle profile would plan a zero-replica
        // fleet with vacuous attainment 1.0 everywhere and a "free"
        // replica-seconds bill — a degenerate answer that upstream
        // consumers (autoscaler sizing, cost ranking) would take at face
        // value.
        return Err(RagoError::InvalidConfig {
            reason: "a capacity profile needs at least one segment with a positive rate; \
                     an all-idle profile sizes a zero-replica fleet with vacuous attainment"
                .into(),
        });
    }
    let mut plans: BTreeMap<u64, (u32, f64)> = BTreeMap::new();
    let mut intervals = Vec::with_capacity(profile.len());
    let mut start_s = 0.0;
    let mut replica_seconds = 0.0;
    for s in profile {
        let (replicas, attainment) = if s.rate_rps == 0.0 {
            (0, 1.0)
        } else {
            match plans.entry(s.rate_rps.to_bits()) {
                std::collections::btree_map::Entry::Occupied(e) => *e.get(),
                std::collections::btree_map::Entry::Vacant(e) => {
                    let plan = plan_capacity_with(profiler, schedule, slo, s.rate_rps, options)?;
                    *e.insert((plan.replicas, plan.attainment))
                }
            }
        };
        replica_seconds += f64::from(replicas) * s.duration_s;
        intervals.push(CapacityInterval {
            start_s,
            duration_s: s.duration_s,
            rate_rps: s.rate_rps,
            replicas,
            attainment,
        });
        start_s += s.duration_s;
    }
    let peak_replicas = intervals
        .iter()
        .map(|i| i.replicas)
        .max()
        .expect("profile was validated non-empty");
    let static_replica_seconds = f64::from(peak_replicas) * start_s;
    let savings_fraction = if static_replica_seconds > 0.0 {
        1.0 - replica_seconds / static_replica_seconds
    } else {
        0.0
    };
    Ok(CapacityProfile {
        intervals,
        peak_replicas,
        replica_seconds,
        static_replica_seconds,
        savings_fraction,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::optimizer::{Rago, SearchOptions};
    use crate::placement::PlacementPlan;
    use crate::schedule::{BatchingPolicy, ResourceAllocation};
    use rago_hardware::ClusterSpec;
    use rago_schema::presets::{self, LlmSize};
    use rago_schema::Stage;

    fn case1_profiler() -> StageProfiler {
        StageProfiler::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        )
    }

    fn case1_schedule() -> Schedule {
        Schedule {
            placement: PlacementPlan {
                predecode_groups: vec![vec![Stage::Prefix]],
            },
            allocation: ResourceAllocation {
                group_xpus: vec![8],
                decode_xpus: 8,
                retrieval_servers: 32,
            },
            batching: BatchingPolicy::new(8, 64),
        }
    }

    fn quick_options() -> CapacityOptions {
        CapacityOptions {
            max_replicas: 8,
            num_requests: 120,
            ..CapacityOptions::default()
        }
    }

    #[test]
    fn plan_matches_an_exhaustive_linear_scan() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let options = quick_options();
        // A rate one replica cannot hold but a small fleet can.
        let single = crate::dynamic::evaluate_fleet_dynamic(
            &profiler,
            &schedule,
            &rago_schema::FleetConfig::new(1, options.router),
            &TraceSpec {
                num_requests: options.num_requests,
                profile: options.profile,
                arrival: ArrivalProcess::Poisson { rate_rps: 40.0 },
                length_jitter: options.length_jitter,
                seed: options.seed,
            }
            .generate(),
            &slo,
        )
        .unwrap();
        let target_qps = 40.0;
        let plan = plan_capacity_with(&profiler, &schedule, &slo, target_qps, &options).unwrap();
        // Exhaustive scan over the same candidate counts.
        let spec = pipeline_spec(&profiler, &schedule).unwrap();
        let trace = TraceSpec {
            num_requests: options.num_requests,
            profile: options.profile,
            arrival: ArrivalProcess::Poisson {
                rate_rps: target_qps,
            },
            length_jitter: options.length_jitter,
            seed: options.seed,
        }
        .generate();
        let scan = (1..=options.max_replicas)
            .find(|&n| {
                ClusterEngine::homogeneous(spec.clone(), replicas_usize(n), options.router)
                    .run_trace(&trace)
                    .attainment(&slo)
                    >= slo.attainment
            })
            .expect("some count within the bound meets the SLO");
        assert_eq!(plan.replicas, scan);
        assert!(plan.attainment >= slo.attainment);
        assert_eq!(
            plan.total_xpus,
            schedule.allocation.total_xpus() * plan.replicas
        );
        // If one replica were already enough the comparison is vacuous;
        // make sure the chosen rate actually needs a fleet.
        if single.meets_slo {
            assert_eq!(plan.replicas, 1);
        } else {
            assert!(plan.replicas > 1);
        }
    }

    /// The joint pool search returns the cheapest feasible split found by a
    /// full cross-product scan over the same (memoizable) evaluations, and
    /// the pools price chips asymmetrically.
    #[test]
    fn pool_plan_matches_an_exhaustive_cross_product_scan() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let options = CapacityOptions {
            max_replicas: 4,
            num_requests: 120,
            ..CapacityOptions::default()
        };
        let target_qps = 40.0;
        let transfer = KvTransferModel::new(131_072.0, 100e9, 5e-6);
        let plan = plan_capacity_pools(&profiler, &schedule, &slo, target_qps, &transfer, &options)
            .unwrap();

        // Exhaustive scan over every (p, d) in the same bounds.
        let (prefill_spec, decode_spec) =
            crate::disagg::split_pipeline_spec(&profiler, &schedule, None).unwrap();
        let trace = sizing_trace(target_qps, &options);
        let chips_prefill = crate::disagg::prefill_xpus(&schedule);
        let chips_decode = crate::disagg::decode_xpus(&schedule);
        let mut best: Option<(u32, u32, u32)> = None;
        for p in 1..=options.max_replicas {
            for d in 1..=options.max_replicas {
                let report = DisaggEngine::new(
                    prefill_spec.clone(),
                    replicas_usize(p),
                    options.router,
                    decode_spec.clone(),
                    replicas_usize(d),
                    options.router,
                    transfer,
                )
                .run_trace(&trace);
                if report.merged.attainment(&slo) < slo.attainment {
                    continue;
                }
                let cost = p * chips_prefill + d * chips_decode;
                let better = match best {
                    None => true,
                    Some((bp, bd, bcost)) => cost < bcost || (cost == bcost && p + d < bp + bd),
                };
                if better {
                    best = Some((p, d, cost));
                }
            }
        }
        let (p, d, cost) = best.expect("the scan found a feasible split");
        assert_eq!((plan.prefill_replicas, plan.decode_replicas), (p, d));
        assert_eq!(plan.total_xpus, cost);
        assert!(plan.attainment >= slo.attainment);
        assert_eq!(
            plan.total_retrieval_servers,
            schedule.allocation.retrieval_servers * plan.prefill_replicas
        );
        // Asymmetric accounting: the split is never billed for full
        // monolithic replicas.
        assert_eq!(
            plan.total_xpus,
            plan.prefill_replicas * chips_prefill + plan.decode_replicas * chips_decode
        );
    }

    #[test]
    fn unreachable_pool_targets_are_reported() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(0.5, 1e-6);
        let options = CapacityOptions {
            max_replicas: 2,
            num_requests: 60,
            ..CapacityOptions::default()
        };
        let err = plan_capacity_pools(
            &profiler,
            &schedule,
            &slo,
            100.0,
            &KvTransferModel::zero(),
            &options,
        )
        .unwrap_err();
        assert!(matches!(err, RagoError::NoFeasibleSchedule { .. }));
        // An invalid transfer model is rejected before any simulation.
        let bad = KvTransferModel::new(-1.0, 1e9, 0.0);
        assert!(matches!(
            plan_capacity_pools(&profiler, &schedule, &slo, 10.0, &bad, &options),
            Err(RagoError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn unreachable_targets_are_reported() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        // No replica count can beat a sub-microsecond TPOT target: adding
        // replicas reduces queueing but never the per-step latency.
        let slo = SloTarget::new(0.5, 1e-6);
        let options = CapacityOptions {
            max_replicas: 2,
            num_requests: 80,
            ..CapacityOptions::default()
        };
        let err = plan_capacity_with(&profiler, &schedule, &slo, 100.0, &options).unwrap_err();
        assert!(matches!(err, RagoError::NoFeasibleSchedule { .. }));
        let slo = SloTarget::new(0.5, 0.05);
        let err = plan_capacity_with(&profiler, &schedule, &slo, 0.0, &options).unwrap_err();
        assert!(matches!(err, RagoError::InvalidConfig { .. }));
        let err = plan_capacity_with(&profiler, &schedule, &slo, f64::NAN, &options).unwrap_err();
        assert!(matches!(err, RagoError::InvalidConfig { .. }));
        // A zero-request sizing trace would vacuously meet any SLO.
        let empty = CapacityOptions {
            num_requests: 0,
            ..CapacityOptions::default()
        };
        let err = plan_capacity_with(&profiler, &schedule, &slo, 10.0, &empty).unwrap_err();
        assert!(matches!(err, RagoError::InvalidConfig { .. }));
    }

    #[test]
    fn light_loads_need_one_replica() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(5.0, 0.2);
        let plan = plan_capacity_with(&profiler, &schedule, &slo, 1.0, &quick_options()).unwrap();
        assert_eq!(plan.replicas, 1);
        assert!(plan.drain_tail_s >= 0.0);
    }

    /// The cross-check the issue pins: the profile planner's per-interval
    /// replica counts equal independent `plan_capacity_with` calls at each
    /// interval's rate.
    #[test]
    fn capacity_profile_matches_per_interval_planning() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let options = quick_options();
        let profile = [
            RateSegment::new(20.0, 5.0),
            RateSegment::new(10.0, 40.0),
            RateSegment::new(5.0, 0.0),
            RateSegment::new(15.0, 40.0), // repeated rate: memoized plan
        ];
        let planned =
            plan_capacity_profile(&profiler, &schedule, &slo, &profile, &options).unwrap();
        assert_eq!(planned.intervals.len(), 4);
        for interval in &planned.intervals {
            if interval.rate_rps == 0.0 {
                assert_eq!(interval.replicas, 0);
                assert_eq!(interval.attainment, 1.0);
                continue;
            }
            let single =
                plan_capacity_with(&profiler, &schedule, &slo, interval.rate_rps, &options)
                    .unwrap();
            assert_eq!(
                interval.replicas, single.replicas,
                "interval at {} rps diverged from static planning",
                interval.rate_rps
            );
            assert!(interval.attainment >= slo.attainment);
        }
        // Identical rates plan identically.
        assert_eq!(planned.intervals[1].replicas, planned.intervals[3].replicas);
        // Cost bookkeeping is self-consistent.
        let expected: f64 = planned
            .intervals
            .iter()
            .map(|i| f64::from(i.replicas) * i.duration_s)
            .sum();
        assert!((planned.replica_seconds - expected).abs() < 1e-9);
        assert_eq!(
            planned.peak_replicas,
            planned.intervals.iter().map(|i| i.replicas).max().unwrap()
        );
        assert!(
            (planned.static_replica_seconds - f64::from(planned.peak_replicas) * 50.0).abs() < 1e-9
        );
        // The trough and the idle segment make following the profile
        // strictly cheaper than provisioning the peak throughout.
        assert!(planned.savings_fraction > 0.0);
        // Interval start times accumulate.
        assert_eq!(planned.intervals[0].start_s, 0.0);
        assert!((planned.intervals[3].start_s - 35.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_capacity_profiles_are_rejected() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let options = quick_options();
        assert!(matches!(
            plan_capacity_profile(&profiler, &schedule, &slo, &[], &options),
            Err(RagoError::InvalidConfig { .. })
        ));
        let bad = [RateSegment {
            duration_s: 1.0,
            rate_rps: f64::NAN,
        }];
        assert!(matches!(
            plan_capacity_profile(&profiler, &schedule, &slo, &bad, &options),
            Err(RagoError::InvalidConfig { .. })
        ));
        // An all-idle profile used to plan a zero-replica fleet with
        // vacuous attainment 1.0 and a "free" replica-seconds bill; it must
        // be rejected, while the same idle segments mixed with real load
        // (covered above) stay legal.
        let idle = [RateSegment::new(60.0, 0.0), RateSegment::new(30.0, 0.0)];
        let err = plan_capacity_profile(&profiler, &schedule, &slo, &idle, &options).unwrap_err();
        assert!(matches!(err, RagoError::InvalidConfig { .. }), "{err}");
        // A segment no fleet within the bound can hold fails loudly.
        let impossible_slo = SloTarget::new(0.5, 1e-6);
        let profile = [RateSegment::new(5.0, 50.0)];
        assert!(matches!(
            plan_capacity_profile(&profiler, &schedule, &impossible_slo, &profile, &options),
            Err(RagoError::NoFeasibleSchedule { .. })
        ));
    }

    /// Boundary regression for the planner replica bound: `max_replicas`
    /// at the bound validates, one past it is rejected with
    /// [`RagoError::InvalidConfig`] — before any simulation runs (an
    /// unchecked `u32::MAX` here used to reach the engines as a fleet
    /// size).
    #[test]
    fn replica_bound_is_enforced_at_the_boundary() {
        let at_bound = CapacityOptions {
            max_replicas: MAX_PLANNER_REPLICAS,
            ..quick_options()
        };
        assert!(validate_capacity_inputs(10.0, &at_bound).is_ok());
        let past_bound = CapacityOptions {
            max_replicas: MAX_PLANNER_REPLICAS + 1,
            ..quick_options()
        };
        assert!(matches!(
            validate_capacity_inputs(10.0, &past_bound),
            Err(RagoError::InvalidConfig { .. })
        ));
        // The public planners surface the same rejection.
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let slo = SloTarget::new(1.0, 0.1);
        let absurd = CapacityOptions {
            max_replicas: u32::MAX,
            ..quick_options()
        };
        assert!(matches!(
            plan_capacity_with(&profiler, &schedule, &slo, 10.0, &absurd),
            Err(RagoError::InvalidConfig { .. })
        ));
        assert!(matches!(
            plan_capacity_pools(
                &profiler,
                &schedule,
                &slo,
                10.0,
                &KvTransferModel::zero(),
                &absurd
            ),
            Err(RagoError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn frontier_cost_ranking_is_sorted_and_feasible() {
        let rago = Rago::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        );
        let options = SearchOptions {
            xpu_steps: vec![8, 32],
            server_steps: vec![32],
            predecode_batch_steps: vec![1, 16],
            decode_batch_steps: vec![128],
            iterative_batch_steps: vec![8],
            placements: None,
        };
        let frontier = rago.optimize(&options).unwrap();
        let slo = SloTarget::new(2.0, 0.1);
        let capacity = CapacityOptions {
            max_replicas: 8,
            num_requests: 100,
            ..CapacityOptions::default()
        };
        let ranked =
            rank_frontier_by_cost_at_qps(rago.profiler(), &frontier, &slo, 20.0, &capacity);
        assert!(!ranked.is_empty());
        for pair in ranked.windows(2) {
            assert!(pair[0].1.total_xpus <= pair[1].1.total_xpus);
        }
        for (point, plan) in &ranked {
            assert!(plan.attainment >= slo.attainment);
            assert_eq!(
                plan.total_xpus,
                point.schedule.allocation.total_xpus() * plan.replicas
            );
        }
    }
}
