//! Step 1 of Algorithm 1: per-stage performance profiling.
//!
//! The profiler maps every stage of a RAGSchema onto the appropriate cost
//! model — the XPU inference simulator for model stages, the CPU retrieval
//! simulator for the retrieval stage — and evaluates it for a given resource
//! count and batch size. The optimizer calls this for every (stage, resource,
//! batch) combination in its search grid and assembles end-to-end schedules
//! from the results.
//!
//! # Memoization
//!
//! Stage profiles are pure functions of `(stage, resource count, batch
//! size)` — for XPU stages the resource count is the group's chip count, for
//! retrieval it is the CPU-server count. The search grid is a cross product,
//! so millions of candidate schedules share a few thousand distinct stage
//! profiles; the profiler memoizes them behind an [`std::sync::RwLock`] so
//! concurrent search threads share one cache (reads in parallel, a write
//! only on first computation). [`StageProfiler::with_memoization`] disables
//! the cache, which exists solely to benchmark the unmemoized search.

use crate::error::RagoError;
use rago_accel_sim::{AcceleratorGroup, InferenceSimulator};
use rago_hardware::ClusterSpec;
use rago_retrieval_sim::RetrievalSimulator;
use rago_schema::{RagSchema, Stage};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::RwLock;

/// The profiled performance of one stage under a specific resource count and
/// batch size.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct StagePerf {
    /// The stage that was profiled.
    pub stage: Stage,
    /// Resources assigned: XPU chips for inference stages, CPU servers for
    /// retrieval.
    pub resources: u32,
    /// Requests per batch.
    pub batch: u32,
    /// Latency of pushing one batch through the stage, in seconds.
    pub latency_s: f64,
    /// Requests per second the stage sustains at this batch size and resource
    /// count (including pipeline overlap within the stage where applicable).
    pub throughput_rps: f64,
    /// Per-output-token step latency — populated only for decode stages.
    pub step_latency_s: Option<f64>,
}

/// Memoization key: `(stage, resource count, batch size)` — the full input
/// domain of a stage profile.
type ProfileKey = (Stage, u32, u32);
/// The shared profile cache (outcomes are memoized whether feasible or not).
type ProfileCache = RwLock<HashMap<ProfileKey, Result<StagePerf, RagoError>>>;

/// Profiles individual RAG stages using the analytical cost models.
///
/// The profiler is `Sync`: its memoization cache sits behind an `RwLock`, so
/// one profiler can serve every thread of the parallel schedule search.
#[derive(Debug)]
pub struct StageProfiler {
    schema: RagSchema,
    cluster: ClusterSpec,
    inference: InferenceSimulator,
    retrieval: RetrievalSimulator,
    cache: ProfileCache,
    memoize: bool,
    memo_hits: AtomicU64,
    memo_misses: AtomicU64,
}

impl Clone for StageProfiler {
    fn clone(&self) -> Self {
        Self {
            schema: self.schema.clone(),
            cluster: self.cluster.clone(),
            inference: self.inference,
            retrieval: self.retrieval.clone(),
            cache: RwLock::new(self.cache.read().expect("profiler cache poisoned").clone()),
            memoize: self.memoize,
            memo_hits: AtomicU64::new(self.memo_hits.load(Ordering::Relaxed)),
            memo_misses: AtomicU64::new(self.memo_misses.load(Ordering::Relaxed)),
        }
    }
}

impl StageProfiler {
    /// Creates a profiler for one workload on one cluster.
    pub fn new(schema: RagSchema, cluster: ClusterSpec) -> Self {
        let retrieval = RetrievalSimulator::new(cluster.cpu.clone());
        Self {
            schema,
            cluster,
            inference: InferenceSimulator::new(),
            retrieval,
            cache: RwLock::new(HashMap::new()),
            memoize: true,
            memo_hits: AtomicU64::new(0),
            memo_misses: AtomicU64::new(0),
        }
    }

    /// Enables or disables profile memoization (enabled by default).
    /// Disabling exists to measure the unmemoized search; there is no reason
    /// to turn the cache off in production use.
    pub fn with_memoization(mut self, enabled: bool) -> Self {
        self.memoize = enabled;
        self
    }

    /// Number of distinct `(stage, resources, batch)` points evaluated
    /// against the cost models so far — infeasible outcomes are memoized
    /// alongside feasible ones, so repeat rejections are also free. Compare
    /// against the number of schedules evaluated to see the memoization
    /// leverage.
    pub fn cached_profiles(&self) -> usize {
        self.cache.read().expect("profiler cache poisoned").len()
    }

    /// Lifetime memoization counters: `(hits, misses)`. A hit answers a
    /// [`Self::profile`] call from the cache; a miss pays a cold cost-model
    /// evaluation (with memoization disabled every call counts as a miss).
    /// Counters are relaxed atomics — exact totals once the search threads
    /// have joined, which is when the self-profiling report reads them.
    pub fn memo_stats(&self) -> (u64, u64) {
        (
            self.memo_hits.load(Ordering::Relaxed),
            self.memo_misses.load(Ordering::Relaxed),
        )
    }

    /// The workload being profiled.
    pub fn schema(&self) -> &RagSchema {
        &self.schema
    }

    /// The cluster being profiled against.
    pub fn cluster(&self) -> &ClusterSpec {
        &self.cluster
    }

    /// The minimum number of CPU servers able to hold the retrieval database
    /// (1 when the workload has no retrieval).
    pub fn min_retrieval_servers(&self) -> u32 {
        self.schema
            .retrieval
            .as_ref()
            .map(|cfg| self.retrieval.min_servers(cfg))
            .unwrap_or(1)
    }

    /// Profiles `stage` with `resources` XPU chips (or CPU servers for
    /// retrieval) at the given request `batch` size. Results are memoized.
    ///
    /// # Errors
    ///
    /// Returns [`RagoError::InvalidConfig`] if the stage is not part of the
    /// workload, and [`RagoError::CostModel`] when the underlying cost model
    /// rejects the configuration (for example, the model does not fit in the
    /// group's memory).
    pub fn profile(
        &self,
        stage: Stage,
        resources: u32,
        batch: u32,
    ) -> Result<StagePerf, RagoError> {
        if !self.memoize {
            self.memo_misses.fetch_add(1, Ordering::Relaxed);
            return self.profile_uncached(stage, resources, batch);
        }
        if let Some(hit) = self
            .cache
            .read()
            .expect("profiler cache poisoned")
            .get(&(stage, resources, batch))
        {
            self.memo_hits.fetch_add(1, Ordering::Relaxed);
            return hit.clone();
        }
        self.memo_misses.fetch_add(1, Ordering::Relaxed);
        let result = self.profile_uncached(stage, resources, batch);
        self.cache
            .write()
            .expect("profiler cache poisoned")
            .insert((stage, resources, batch), result.clone());
        result
    }

    fn profile_uncached(
        &self,
        stage: Stage,
        resources: u32,
        batch: u32,
    ) -> Result<StagePerf, RagoError> {
        if !self.schema.pipeline().contains(&stage) {
            return Err(RagoError::InvalidConfig {
                reason: format!(
                    "stage `{stage}` is not part of workload `{}`",
                    self.schema.name
                ),
            });
        }
        if resources == 0 || batch == 0 {
            return Err(RagoError::InvalidConfig {
                reason: "resources and batch must be at least 1".into(),
            });
        }
        let seq = &self.schema.sequence;
        let group = AcceleratorGroup::new(self.cluster.xpu.clone(), resources)
            .with_interconnect(self.cluster.interconnect.clone());
        let map_accel = |e: rago_accel_sim::AccelSimError| RagoError::CostModel {
            stage: stage.to_string(),
            reason: e.to_string(),
        };
        let map_retr = |e: rago_retrieval_sim::RetrievalSimError| RagoError::CostModel {
            stage: stage.to_string(),
            reason: e.to_string(),
        };

        let perf = match stage {
            Stage::DatabaseEncode => {
                let model = self
                    .schema
                    .document_encoder
                    .as_ref()
                    .expect("stage present");
                let cost = self
                    .inference
                    .encoder_cost(
                        model,
                        seq.encoder_tokens(),
                        seq.chunk_tokens.max(1),
                        batch,
                        &group,
                    )
                    .map_err(map_accel)?;
                StagePerf {
                    stage,
                    resources,
                    batch,
                    latency_s: cost.latency_s,
                    throughput_rps: cost.throughput_rps,
                    step_latency_s: None,
                }
            }
            Stage::RewritePrefix => {
                let model = self.schema.query_rewriter.as_ref().expect("stage present");
                let cost = self
                    .inference
                    .best_prefix_cost(model, seq.question_tokens, batch, &group)
                    .map_err(map_accel)?;
                StagePerf {
                    stage,
                    resources,
                    batch,
                    latency_s: cost.latency_s,
                    throughput_rps: cost.throughput_rps,
                    step_latency_s: None,
                }
            }
            Stage::RewriteDecode => {
                let model = self.schema.query_rewriter.as_ref().expect("stage present");
                let cost = self
                    .inference
                    .best_decode_cost(
                        model,
                        seq.question_tokens,
                        self.schema.rewriter_output_tokens.max(1),
                        batch,
                        &group,
                    )
                    .map_err(map_accel)?;
                StagePerf {
                    stage,
                    resources,
                    batch,
                    latency_s: cost.total_latency_s,
                    throughput_rps: cost.throughput_rps,
                    step_latency_s: Some(cost.step_latency_s),
                }
            }
            Stage::Retrieval => {
                let cfg = self.schema.retrieval.as_ref().expect("stage present");
                let query_batch = batch.saturating_mul(cfg.queries_per_retrieval).max(1);
                let cost = self
                    .retrieval
                    .retrieval_cost(cfg, query_batch, resources)
                    .map_err(map_retr)?;
                let retrievals_per_request = f64::from(cfg.retrievals_per_sequence.max(1));
                StagePerf {
                    stage,
                    resources,
                    batch,
                    latency_s: cost.latency_s,
                    throughput_rps: cost.retrievals_per_second(cfg.queries_per_retrieval)
                        / retrievals_per_request,
                    step_latency_s: None,
                }
            }
            Stage::Rerank => {
                let model = self.schema.reranker.as_ref().expect("stage present");
                let candidate_tokens = u64::from(self.schema.rerank_candidates.max(1))
                    * u64::from(seq.chunk_tokens + seq.question_tokens);
                let cost = self
                    .inference
                    .encoder_cost(
                        model,
                        candidate_tokens,
                        seq.chunk_tokens + seq.question_tokens,
                        batch,
                        &group,
                    )
                    .map_err(map_accel)?;
                StagePerf {
                    stage,
                    resources,
                    batch,
                    latency_s: cost.latency_s,
                    throughput_rps: cost.throughput_rps,
                    step_latency_s: None,
                }
            }
            Stage::Prefix => {
                let model = &self.schema.generative_llm;
                let cost = self
                    .inference
                    .best_prefix_cost(model, self.schema.main_prefix_tokens(), batch, &group)
                    .map_err(map_accel)?;
                StagePerf {
                    stage,
                    resources,
                    batch,
                    latency_s: cost.latency_s,
                    throughput_rps: cost.throughput_rps,
                    step_latency_s: None,
                }
            }
            Stage::Decode => {
                let model = &self.schema.generative_llm;
                let cost = self
                    .inference
                    .best_decode_cost(
                        model,
                        self.schema.main_prefix_tokens(),
                        seq.decode_tokens,
                        batch,
                        &group,
                    )
                    .map_err(map_accel)?;
                StagePerf {
                    stage,
                    resources,
                    batch,
                    latency_s: cost.total_latency_s,
                    throughput_rps: cost.throughput_rps,
                    step_latency_s: Some(cost.step_latency_s),
                }
            }
        };
        Ok(perf)
    }

    /// Profiles every stage of the workload at the given resource and batch
    /// grids, returning all feasible results (infeasible combinations, e.g.
    /// out-of-memory ones, are skipped).
    pub fn profile_grid(
        &self,
        xpu_steps: &[u32],
        server_steps: &[u32],
        batch_steps: &[u32],
    ) -> Vec<StagePerf> {
        let mut out = Vec::new();
        for stage in self.schema.pipeline() {
            let resource_steps: &[u32] = if stage == Stage::Retrieval {
                server_steps
            } else {
                xpu_steps
            };
            for &r in resource_steps {
                for &b in batch_steps {
                    if let Ok(perf) = self.profile(stage, r, b) {
                        out.push(perf);
                    }
                }
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rago_schema::presets::{self, LlmSize};

    fn profiler_case1() -> StageProfiler {
        StageProfiler::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        )
    }

    #[test]
    fn profiles_all_stages_of_case1() {
        let p = profiler_case1();
        for stage in [Stage::Retrieval, Stage::Prefix, Stage::Decode] {
            let servers = if stage == Stage::Retrieval { 32 } else { 8 };
            let perf = p.profile(stage, servers, 4).unwrap();
            assert!(perf.latency_s > 0.0, "{stage} latency");
            assert!(perf.throughput_rps > 0.0, "{stage} throughput");
        }
    }

    #[test]
    fn decode_reports_step_latency() {
        let p = profiler_case1();
        let perf = p.profile(Stage::Decode, 8, 32).unwrap();
        assert!(perf.step_latency_s.unwrap() > 0.0);
        assert!(perf.step_latency_s.unwrap() < perf.latency_s);
        let prefix = p.profile(Stage::Prefix, 8, 32).unwrap();
        assert!(prefix.step_latency_s.is_none());
    }

    #[test]
    fn stages_not_in_the_workload_are_rejected() {
        let p = profiler_case1();
        assert!(matches!(
            p.profile(Stage::DatabaseEncode, 8, 4),
            Err(RagoError::InvalidConfig { .. })
        ));
        assert!(matches!(
            p.profile(Stage::Prefix, 0, 4),
            Err(RagoError::InvalidConfig { .. })
        ));
    }

    #[test]
    fn retrieval_needs_enough_servers() {
        let p = profiler_case1();
        assert!(p.min_retrieval_servers() >= 16);
        assert!(matches!(
            p.profile(Stage::Retrieval, 2, 4),
            Err(RagoError::CostModel { .. })
        ));
        assert!(p.profile(Stage::Retrieval, 32, 4).is_ok());
    }

    #[test]
    fn memoization_returns_identical_results() {
        let p = profiler_case1();
        let a = p.profile(Stage::Prefix, 4, 8).unwrap();
        let b = p.profile(Stage::Prefix, 4, 8).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn case2_encoder_profile_scales_with_context() {
        let p100k = StageProfiler::new(
            presets::case2_long_context(LlmSize::B70, 100_000),
            ClusterSpec::paper_default(),
        );
        let p1m = StageProfiler::new(
            presets::case2_long_context(LlmSize::B70, 1_000_000),
            ClusterSpec::paper_default(),
        );
        let e100k = p100k.profile(Stage::DatabaseEncode, 16, 2).unwrap();
        let e1m = p1m.profile(Stage::DatabaseEncode, 16, 2).unwrap();
        assert!(e1m.latency_s > e100k.latency_s * 5.0);
    }

    #[test]
    fn case4_profiles_rewriter_and_reranker() {
        let p = StageProfiler::new(
            presets::case4_rewriter_reranker(LlmSize::B70),
            ClusterSpec::paper_default(),
        );
        let rw_prefix = p.profile(Stage::RewritePrefix, 4, 4).unwrap();
        let rw_decode = p.profile(Stage::RewriteDecode, 4, 4).unwrap();
        let rerank = p.profile(Stage::Rerank, 4, 4).unwrap();
        // The autoregressive rewrite-decode is far slower than the rewrite
        // prefix over the same short question (§5.4).
        assert!(rw_decode.latency_s > rw_prefix.latency_s * 3.0);
        assert!(rerank.latency_s > 0.0);
    }

    #[test]
    fn profile_grid_skips_infeasible_points() {
        let p = StageProfiler::new(
            presets::case1_hyperscale(LlmSize::B70, 1),
            ClusterSpec::paper_default(),
        );
        let grid = p.profile_grid(&[1, 8], &[4, 32], &[1, 16]);
        // 70B does not fit on 1 chip with any KV cache for batch 16 contexts,
        // and retrieval on 4 servers is infeasible; both are skipped silently.
        assert!(!grid.is_empty());
        assert!(grid.iter().all(|s| s.latency_s > 0.0));
        assert!(grid
            .iter()
            .any(|s| s.stage == Stage::Retrieval && s.resources == 32));
        assert!(!grid
            .iter()
            .any(|s| s.stage == Stage::Retrieval && s.resources == 4));
    }
}
