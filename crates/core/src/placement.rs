//! Task placement plans (§6.1 \[I\]).
//!
//! RAGO's placement rule (Figure 13): the main LLM's prefix and decode stay
//! disaggregated, retrieval always runs on CPU servers, and any run of
//! *neighbouring* XPU stages up to and including the prefix may be collocated
//! on one accelerator group. A placement plan is therefore a partition of the
//! pre-decode XPU stages into contiguous groups.

use rago_schema::{RagSchema, Stage};
use serde::{Deserialize, Serialize};

/// A task placement plan: contiguous groups of collocated pre-decode XPU
/// stages (in pipeline order). The decode stage always forms its own
/// (disaggregated) partition and retrieval always runs on the CPU pool, so
/// neither appears in the groups.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct PlacementPlan {
    /// Collocation groups over the pre-decode XPU stages, in pipeline order.
    pub predecode_groups: Vec<Vec<Stage>>,
}

impl PlacementPlan {
    /// The pre-decode XPU stages of a workload, in pipeline order (i.e. the
    /// stages eligible for collocation).
    pub fn collocatable_stages(schema: &RagSchema) -> Vec<Stage> {
        schema
            .pipeline()
            .into_iter()
            .filter(|s| s.collocatable())
            .collect()
    }

    /// The fully disaggregated plan: every pre-decode XPU stage gets its own
    /// accelerator group.
    pub fn fully_disaggregated(schema: &RagSchema) -> Self {
        Self {
            predecode_groups: Self::collocatable_stages(schema)
                .into_iter()
                .map(|s| vec![s])
                .collect(),
        }
    }

    /// The fully collocated plan: all pre-decode XPU stages share one group
    /// (this is the shape of the paper's LLM-extension baseline, which
    /// collocates everything with the prefix).
    pub fn fully_collocated(schema: &RagSchema) -> Self {
        Self {
            predecode_groups: vec![Self::collocatable_stages(schema)],
        }
    }

    /// Enumerates every placement plan permitted by the collocation rule: all
    /// partitions of the pre-decode stage list into contiguous groups
    /// (`2^(k-1)` plans for `k` stages).
    pub fn enumerate(schema: &RagSchema) -> Vec<Self> {
        let stages = Self::collocatable_stages(schema);
        if stages.is_empty() {
            return vec![Self {
                predecode_groups: Vec::new(),
            }];
        }
        let k = stages.len();
        let mut plans = Vec::with_capacity(1 << (k - 1));
        // Each bit of `mask` decides whether there is a split after stage i.
        for mask in 0u32..(1 << (k - 1)) {
            let mut groups: Vec<Vec<Stage>> = Vec::new();
            let mut current = vec![stages[0]];
            for (i, &stage) in stages.iter().enumerate().skip(1) {
                if mask & (1 << (i - 1)) != 0 {
                    groups.push(std::mem::take(&mut current));
                }
                current.push(stage);
            }
            groups.push(current);
            plans.push(Self {
                predecode_groups: groups,
            });
        }
        plans
    }

    /// Number of accelerator groups serving the pre-decode stages.
    pub fn num_groups(&self) -> usize {
        self.predecode_groups.len()
    }

    /// Whether any group collocates more than one stage.
    pub fn has_collocation(&self) -> bool {
        self.predecode_groups.iter().any(|g| g.len() > 1)
    }

    /// The index of the group containing `stage`, if any.
    pub fn group_of(&self, stage: Stage) -> Option<usize> {
        self.predecode_groups
            .iter()
            .position(|g| g.contains(&stage))
    }

    /// A short human-readable description, e.g. `"[rewrite-prefix+rewrite-decode][rerank+prefix]"`.
    pub fn describe(&self) -> String {
        if self.predecode_groups.is_empty() {
            return "[prefix-only]".to_string();
        }
        self.predecode_groups
            .iter()
            .map(|g| {
                let names: Vec<&str> = g.iter().map(|s| s.short_name()).collect();
                format!("[{}]", names.join("+"))
            })
            .collect::<Vec<_>>()
            .join("")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rago_schema::presets::{self, LlmSize};

    #[test]
    fn case1_has_single_collocatable_stage() {
        let schema = presets::case1_hyperscale(LlmSize::B8, 1);
        let stages = PlacementPlan::collocatable_stages(&schema);
        assert_eq!(stages, vec![Stage::Prefix]);
        let plans = PlacementPlan::enumerate(&schema);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].num_groups(), 1);
        assert!(!plans[0].has_collocation());
    }

    #[test]
    fn case4_enumerates_eight_plans() {
        // Case IV has four pre-decode XPU stages (rewrite-prefix,
        // rewrite-decode, rerank, prefix) → 2^3 = 8 contiguous partitions.
        let schema = presets::case4_rewriter_reranker(LlmSize::B70);
        let plans = PlacementPlan::enumerate(&schema);
        assert_eq!(plans.len(), 8);
        assert!(plans.contains(&PlacementPlan::fully_disaggregated(&schema)));
        assert!(plans.contains(&PlacementPlan::fully_collocated(&schema)));
        // Every plan covers exactly the four stages, contiguously and in order.
        for plan in &plans {
            let flat: Vec<Stage> = plan.predecode_groups.iter().flatten().copied().collect();
            assert_eq!(
                flat,
                vec![
                    Stage::RewritePrefix,
                    Stage::RewriteDecode,
                    Stage::Rerank,
                    Stage::Prefix
                ]
            );
        }
    }

    #[test]
    fn case2_has_encoder_and_prefix() {
        let schema = presets::case2_long_context(LlmSize::B70, 1_000_000);
        let plans = PlacementPlan::enumerate(&schema);
        assert_eq!(plans.len(), 2); // {encode+prefix} or {encode}{prefix}
        let collocated = PlacementPlan::fully_collocated(&schema);
        assert_eq!(collocated.num_groups(), 1);
        assert!(collocated.has_collocation());
        assert_eq!(collocated.group_of(Stage::DatabaseEncode), Some(0));
        assert_eq!(collocated.group_of(Stage::Decode), None);
    }

    #[test]
    fn describe_is_readable() {
        let schema = presets::case2_long_context(LlmSize::B70, 1_000_000);
        let plan = PlacementPlan::fully_disaggregated(&schema);
        assert_eq!(plan.describe(), "[encode][prefix]");
        let plan = PlacementPlan::fully_collocated(&schema);
        assert_eq!(plan.describe(), "[encode+prefix]");
    }

    #[test]
    fn llm_only_has_prefix_group_only() {
        let schema = presets::llm_only(LlmSize::B8);
        let plans = PlacementPlan::enumerate(&schema);
        assert_eq!(plans.len(), 1);
        assert_eq!(plans[0].describe(), "[prefix]");
    }
}
