//! Error type of the RAGO optimizer.

use std::error::Error;
use std::fmt;

/// Error raised by schedule construction, evaluation, or search.
#[derive(Debug, Clone, PartialEq)]
pub enum RagoError {
    /// The workload or search configuration is invalid.
    InvalidConfig {
        /// Why it was rejected.
        reason: String,
    },
    /// No feasible schedule exists within the resource budget (e.g. the model
    /// does not fit in the available accelerator memory).
    NoFeasibleSchedule {
        /// Explanation of what made every candidate infeasible.
        reason: String,
    },
    /// An underlying cost-model evaluation failed.
    CostModel {
        /// The stage being evaluated.
        stage: String,
        /// The underlying error message.
        reason: String,
    },
}

impl fmt::Display for RagoError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RagoError::InvalidConfig { reason } => write!(f, "invalid configuration: {reason}"),
            RagoError::NoFeasibleSchedule { reason } => {
                write!(f, "no feasible schedule: {reason}")
            }
            RagoError::CostModel { stage, reason } => {
                write!(f, "cost model failed for stage `{stage}`: {reason}")
            }
        }
    }
}

impl Error for RagoError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages() {
        let e = RagoError::NoFeasibleSchedule {
            reason: "405B model needs more than 128 chips".into(),
        };
        assert!(e.to_string().contains("no feasible schedule"));
        let e = RagoError::CostModel {
            stage: "prefix".into(),
            reason: "out of memory".into(),
        };
        assert!(e.to_string().contains("prefix"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RagoError>();
    }
}
