//! Disaggregated prefill/decode fleet evaluation and the joint
//! (prefill pool, decode pool, interconnect) search.
//!
//! The flat evaluators in [`crate::dynamic`] lock prefill and decode
//! capacity 1:1 — every replica carries the pre-decode accelerator groups
//! *and* the decode XPUs, so a prefill-bound workload pays for idle decode
//! chips and vice versa. Splitwise and DistServe break that coupling: a
//! *Prefill* pool sized for TTFT feeds a *Decode* pool sized for TPOT, and
//! each request's KV state crosses an interconnect between the phases. This
//! module closes the optimizer loop over that placement dimension:
//!
//! * [`evaluate_fleet_disagg`] / [`evaluate_fleet_disagg_cached`] — drive a
//!   trace through a disaggregated [`FleetConfig`] (a `[Prefill, Decode]`
//!   pool pair plus its [`KvTransferModel`]) via
//!   [`rago_serving_sim::pools::DisaggEngine`], and score the stitched
//!   result per chip. The flat evaluators dispatch pool fleets here, so
//!   `evaluate_fleet_dynamic` *accepts* pool configs unchanged.
//! * [`transfer_model_from_interconnect`] — prices the handoff from first
//!   principles: the generative model's KV bytes per token over an
//!   [`InterconnectSpec`]'s link bandwidth plus its per-message overhead.
//! * [`rank_frontier_by_goodput_disagg`] — the joint search: every Pareto
//!   point × every (prefill, decode) split × every candidate interconnect,
//!   ranked by goodput per chip. At tight TTFT+TPOT SLOs this sweep
//!   discovers the DistServe result — a disaggregated split beating the
//!   best collocated fleet per chip — and at loose SLOs it correctly
//!   prefers collocation (no transfer tax, no idle pool).
//!
//! Chip accounting is per pool: a prefill replica occupies only the
//! schedule's pre-decode accelerator groups ([`prefill_xpus`]), a decode
//! replica only its decode XPUs ([`decode_xpus`]) — that asymmetry is the
//! entire economic case for disaggregation.

use crate::dynamic::{pipeline_spec_cached, reject_empty_trace, FleetEvaluation};
use crate::error::RagoError;
use crate::pareto::{ParetoFrontier, ParetoPoint};
use crate::profiler::StageProfiler;
use crate::schedule::Schedule;
use rago_cache::CacheConfig;
use rago_hardware::InterconnectSpec;
use rago_schema::{FleetConfig, KvTransferModel, PoolRole, RagSchema, SloTarget};
use rago_serving_sim::engine::PipelineSpec;
use rago_serving_sim::pools::{DisaggEngine, DisaggReport, PoolCrash};
use rago_workloads::Trace;
use rayon::prelude::*;
use serde::{Deserialize, Serialize};

/// The outcome of one disaggregated fleet evaluation: the two-pool report
/// plus SLO scores and the per-chip figure the joint search ranks by.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggEvaluation {
    /// The stitched two-pool report (merged metrics, per-pool breakdowns,
    /// KV-transfer statistics).
    pub report: DisaggReport,
    /// Fraction of requests meeting the SLO's latency targets.
    pub attainment: f64,
    /// Requests meeting the SLO per second of fleet serving duration.
    pub goodput_rps: f64,
    /// Whether attainment reaches the SLO's required fraction.
    pub meets_slo: bool,
    /// Total accelerators across both pools:
    /// `prefill replicas × prefill_xpus + decode replicas × decode_xpus`.
    pub total_xpus: u32,
    /// `goodput_rps / total_xpus` — the axis on which disaggregation beats
    /// collocation at tight SLOs.
    pub goodput_per_chip: f64,
}

/// Accelerators one prefill-pool replica occupies: the schedule's
/// pre-decode groups (retrieval CPU servers are accounted separately, as in
/// [`crate::capacity::CapacityPlan`]).
pub fn prefill_xpus(schedule: &Schedule) -> u32 {
    schedule.allocation.group_xpus.iter().sum()
}

/// Accelerators one decode-pool replica occupies.
pub fn decode_xpus(schedule: &Schedule) -> u32 {
    schedule.allocation.decode_xpus
}

/// Total accelerators of a `prefill + decode` split of `schedule`.
pub fn split_xpus(schedule: &Schedule, prefill_replicas: u32, decode_replicas: u32) -> u32 {
    prefill_replicas * prefill_xpus(schedule) + decode_replicas * decode_xpus(schedule)
}

/// Prices the prefill→decode KV handoff from hardware first principles: the
/// generative LLM's KV-cache bytes per token moved over one link of
/// `interconnect`, plus its fixed per-message overhead — the same pricing as
/// [`InterconnectSpec::transfer_latency_s`] per transferred prefix.
///
/// # Examples
///
/// ```
/// use rago_core::disagg::transfer_model_from_interconnect;
/// use rago_hardware::InterconnectSpec;
/// use rago_schema::presets::{self, LlmSize};
///
/// let schema = presets::case1_hyperscale(LlmSize::B8, 1);
/// let dcn = InterconnectSpec::datacenter_network();
/// let model = transfer_model_from_interconnect(&schema, &dcn);
/// assert_eq!(model.kv_bytes_per_token, schema.generative_llm.kv_cache_bytes_per_token());
/// // A 1000-token prefix prices identically through both APIs.
/// let bytes = model.bytes_for(1000);
/// assert!((model.latency_s(1000) - dcn.transfer_latency_s(bytes)).abs() < 1e-15);
/// ```
pub fn transfer_model_from_interconnect(
    schema: &RagSchema,
    interconnect: &InterconnectSpec,
) -> KvTransferModel {
    KvTransferModel::new(
        schema.generative_llm.kv_cache_bytes_per_token(),
        interconnect.link_bandwidth(),
        interconnect.base_latency_s,
    )
}

/// Splits `schedule`'s profiled pipeline into its pool halves: the prefill
/// spec keeps every pre-decode stage (and the cache plan, when present) and
/// is marked for KV handoff; the decode spec is decode-only and carries the
/// iterative-retrieval configuration (a decode-phase feature). Shared by
/// every disaggregated entry point so both halves always come from one
/// profiling pass.
pub(crate) fn split_pipeline_spec(
    profiler: &StageProfiler,
    schedule: &Schedule,
    cache: Option<&CacheConfig>,
) -> Result<(PipelineSpec, PipelineSpec), RagoError> {
    let full = pipeline_spec_cached(profiler, schedule, cache)?;
    if full.stages.is_empty() {
        return Err(RagoError::InvalidConfig {
            reason: "disaggregation needs at least one pre-decode stage to prefill".into(),
        });
    }
    let decode_spec = PipelineSpec::decode_only(full.decode.clone(), full.iterative);
    let prefill_spec = PipelineSpec {
        iterative: None,
        ..full
    }
    .with_handoff();
    Ok((prefill_spec, decode_spec))
}

/// Validates that `fleet` is a disaggregated `[Prefill, Decode]` pool pair
/// and that every crash targets a real replica of one of its pools.
fn check_disagg_fleet(fleet: &FleetConfig, crashes: &[PoolCrash]) -> Result<(), RagoError> {
    fleet.validate().map_err(|e| RagoError::InvalidConfig {
        reason: e.to_string(),
    })?;
    let Some((prefill, decode)) = fleet.prefill_decode() else {
        return Err(RagoError::InvalidConfig {
            reason: "disaggregated evaluation needs a [Prefill, Decode] pool pair; \
                     flat fleets go through evaluate_fleet_dynamic"
                .into(),
        });
    };
    for c in crashes {
        let pool_len = match c.pool {
            PoolRole::Prefill => prefill.replicas,
            PoolRole::Decode => decode.replicas,
            PoolRole::Monolithic => {
                return Err(RagoError::InvalidConfig {
                    reason: "pool crashes target the Prefill or Decode pool".into(),
                })
            }
        };
        if c.replica as u64 >= u64::from(pool_len) {
            return Err(RagoError::InvalidConfig {
                reason: format!(
                    "crash at {:.3}s targets replica {} of a {}-replica {} pool",
                    c.at_s, c.replica, pool_len, c.pool
                ),
            });
        }
        if !(c.at_s.is_finite() && c.at_s >= 0.0) {
            return Err(RagoError::InvalidConfig {
                reason: format!(
                    "crash times must be finite and non-negative, got {}",
                    c.at_s
                ),
            });
        }
        if let Some(d) = c.restart_delay_s {
            if !(d.is_finite() && d >= 0.0) {
                return Err(RagoError::InvalidConfig {
                    reason: format!("restart delays must be finite and non-negative, got {d}"),
                });
            }
        }
    }
    Ok(())
}

/// The shared run core: split the spec, build the engine, play the crashes,
/// return the stitched report.
pub(crate) fn run_disagg(
    profiler: &StageProfiler,
    schedule: &Schedule,
    fleet: &FleetConfig,
    trace: &Trace,
    cache: Option<&CacheConfig>,
    crashes: &[PoolCrash],
) -> Result<DisaggReport, RagoError> {
    run_disagg_recorded(
        profiler,
        schedule,
        fleet,
        trace,
        cache,
        crashes,
        &rago_telemetry::TelemetryConfig::disabled(),
        &mut rago_telemetry::NullRecorder,
    )
}

/// [`run_disagg`] recording a trace into `rec` (bit-identical outcome for
/// any recorder; `telemetry` only sets the derived-gauge cadence).
#[allow(clippy::too_many_arguments)]
pub(crate) fn run_disagg_recorded<R: rago_telemetry::Recorder>(
    profiler: &StageProfiler,
    schedule: &Schedule,
    fleet: &FleetConfig,
    trace: &Trace,
    cache: Option<&CacheConfig>,
    crashes: &[PoolCrash],
    telemetry: &rago_telemetry::TelemetryConfig,
    rec: &mut R,
) -> Result<DisaggReport, RagoError> {
    schedule.validate()?;
    check_disagg_fleet(fleet, crashes)?;
    reject_empty_trace(trace)?;
    let (prefill_spec, decode_spec) = split_pipeline_spec(profiler, schedule, cache)?;
    let mut engine = DisaggEngine::from_fleet(prefill_spec, decode_spec, fleet, fleet.transfer)
        .expect("check_disagg_fleet verified the pool pair")
        .with_telemetry(telemetry.clone());
    if !crashes.is_empty() {
        engine = engine.with_faults(crashes.to_vec());
    }
    Ok(engine.run_traced(
        trace
            .requests
            .iter()
            .map(rago_serving_sim::engine::EngineRequest::from)
            .collect(),
        rec,
    ))
}

/// Scores a finished disaggregated run against `slo` with per-chip
/// accounting for the given split.
pub(crate) fn score_disagg(
    report: DisaggReport,
    schedule: &Schedule,
    slo: &SloTarget,
) -> DisaggEvaluation {
    let attainment = report.merged.attainment(slo);
    let goodput_rps = report.merged.goodput_rps(slo);
    let meets_slo = report.merged.meets_slo(slo);
    let total_xpus = split_xpus(
        schedule,
        report.prefill.per_replica.len() as u32,
        report.decode.per_replica.len() as u32,
    );
    DisaggEvaluation {
        report,
        attainment,
        goodput_rps,
        meets_slo,
        total_xpus,
        goodput_per_chip: if total_xpus > 0 {
            goodput_rps / f64::from(total_xpus)
        } else {
            0.0
        },
    }
}

/// Drives `trace` through the disaggregated `fleet` — its Prefill pool runs
/// `schedule`'s pre-decode stages, its Decode pool the continuous-batching
/// decode, with every handoff priced by `fleet.transfer` — and scores the
/// stitched result against `slo`.
///
/// # Errors
///
/// Returns [`RagoError::InvalidConfig`] for invalid schedules, fleets that
/// are not a `[Prefill, Decode]` pool pair, schedules without a pre-decode
/// stage, or an empty trace, and [`RagoError::CostModel`] when the schedule
/// cannot be profiled.
pub fn evaluate_fleet_disagg(
    profiler: &StageProfiler,
    schedule: &Schedule,
    fleet: &FleetConfig,
    trace: &Trace,
    slo: &SloTarget,
) -> Result<DisaggEvaluation, RagoError> {
    let report = run_disagg(profiler, schedule, fleet, trace, None, &[])?;
    Ok(score_disagg(report, schedule, slo))
}

/// [`evaluate_fleet_disagg`] with per-replica caches from `cache` on the
/// *prefill* pool (prefix-KV and retrieval-result reuse are pre-decode
/// phenomena; the decode pool receives already-prefilled state). Content-
/// aware pool routers steer requests toward the prefill replica owning
/// their template, exactly as in [`crate::cached::evaluate_fleet_cached`].
///
/// # Errors
///
/// As [`evaluate_fleet_disagg`], plus the cached pipeline's configuration
/// errors (e.g. a prefix cache on a schema without a prefix stage).
pub fn evaluate_fleet_disagg_cached(
    profiler: &StageProfiler,
    schedule: &Schedule,
    fleet: &FleetConfig,
    trace: &Trace,
    slo: &SloTarget,
    cache: &CacheConfig,
) -> Result<DisaggEvaluation, RagoError> {
    let report = run_disagg(profiler, schedule, fleet, trace, Some(cache), &[])?;
    Ok(score_disagg(report, schedule, slo))
}

/// Converts a disaggregated evaluation into the [`FleetEvaluation`] shape
/// the flat evaluators return (via
/// [`DisaggReport::to_fleet_report`]). Used by the dispatch in
/// [`crate::dynamic::evaluate_fleet_dynamic_with`] so callers holding a
/// [`FleetConfig`] get one result type regardless of pool shape.
pub(crate) fn to_fleet_evaluation(eval: &DisaggEvaluation) -> FleetEvaluation {
    FleetEvaluation {
        report: eval.report.to_fleet_report(),
        attainment: eval.attainment,
        goodput_rps: eval.goodput_rps,
        meets_slo: eval.meets_slo,
    }
}

/// One candidate of the joint disaggregation search: a pool split priced
/// over one interconnect.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DisaggChoice {
    /// Prefill-pool replica count.
    pub prefill_replicas: u32,
    /// Decode-pool replica count.
    pub decode_replicas: u32,
    /// Name of the interconnect pricing the KV handoff.
    pub interconnect: String,
    /// The derived transfer model (bytes per token × link bandwidth +
    /// overhead).
    pub transfer: KvTransferModel,
}

/// The joint (schedule, prefill pool, decode pool, interconnect) search:
/// evaluates every Pareto point under every `(prefill, decode)` split and
/// every candidate interconnect, and ranks the survivors by **goodput per
/// chip**, best first — the disaggregated extension of
/// [`crate::dynamic::rank_frontier_by_goodput`]. Candidates whose
/// evaluation fails (e.g. a stage-free schedule) are omitted. Ties break
/// toward fewer total XPUs, then lower static TTFT, then the schedule
/// description and choice fields, so the ranking is deterministic across
/// rayon workers.
///
/// Compare the winner's `goodput_per_chip` against
/// [`crate::dynamic::rank_frontier_by_goodput`]'s best at
/// `goodput / (replicas × total_xpus)` to decide *whether* to disaggregate
/// at all — at tight TTFT+TPOT SLOs the split wins (the DistServe result),
/// at loose SLOs collocation does.
///
/// # Panics
///
/// Panics on a zero-request trace, an empty split list, or an empty
/// interconnect list — each would silently rank nothing.
pub fn rank_frontier_by_goodput_disagg(
    profiler: &StageProfiler,
    frontier: &ParetoFrontier,
    trace: &Trace,
    slo: &SloTarget,
    splits: &[(u32, u32)],
    interconnects: &[InterconnectSpec],
) -> Vec<(ParetoPoint, DisaggChoice, DisaggEvaluation)> {
    assert!(
        !trace.requests.is_empty(),
        "cannot rank a frontier by goodput over a zero-request trace"
    );
    assert!(
        !splits.is_empty(),
        "the joint search needs at least one (prefill, decode) split"
    );
    assert!(
        !interconnects.is_empty(),
        "the joint search needs at least one candidate interconnect"
    );
    let schema = profiler.schema();
    let candidates: Vec<(&ParetoPoint, DisaggChoice)> = frontier
        .iter()
        .flat_map(|point| {
            splits.iter().flat_map(move |&(p, d)| {
                interconnects.iter().map(move |ic| {
                    (
                        point,
                        DisaggChoice {
                            prefill_replicas: p,
                            decode_replicas: d,
                            interconnect: ic.name.clone(),
                            transfer: transfer_model_from_interconnect(schema, ic),
                        },
                    )
                })
            })
        })
        .collect();
    let mut ranked: Vec<(ParetoPoint, DisaggChoice, DisaggEvaluation)> = candidates
        .into_iter()
        .par_bridge()
        .fold(Vec::new, |mut acc, (point, choice)| {
            let fleet = FleetConfig::split(
                choice.prefill_replicas,
                choice.decode_replicas,
                rago_schema::RouterPolicy::default(),
            )
            .with_transfer(choice.transfer);
            if let Ok(eval) = evaluate_fleet_disagg(profiler, &point.schedule, &fleet, trace, slo) {
                acc.push((point.clone(), choice, eval));
            }
            acc
        })
        .reduce(Vec::new, |mut a, mut b| {
            a.append(&mut b);
            a
        });
    ranked.sort_by(|a, b| {
        b.2.goodput_per_chip
            .total_cmp(&a.2.goodput_per_chip)
            .then(a.2.total_xpus.cmp(&b.2.total_xpus))
            .then(a.0.performance.ttft_s.total_cmp(&b.0.performance.ttft_s))
            .then_with(|| a.0.schedule.describe().cmp(&b.0.schedule.describe()))
            .then(a.1.prefill_replicas.cmp(&b.1.prefill_replicas))
            .then(a.1.decode_replicas.cmp(&b.1.decode_replicas))
            .then_with(|| a.1.interconnect.cmp(&b.1.interconnect))
    });
    ranked
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dynamic::{evaluate_fleet_dynamic, evaluate_fleet_dynamic_with};
    use crate::placement::PlacementPlan;
    use crate::schedule::{BatchingPolicy, ResourceAllocation};
    use rago_hardware::ClusterSpec;
    use rago_schema::presets::{self, LlmSize};
    use rago_schema::{RouterPolicy, SequenceProfile, Stage};
    use rago_workloads::{ArrivalProcess, TraceSpec};

    fn case1_profiler() -> StageProfiler {
        StageProfiler::new(
            presets::case1_hyperscale(LlmSize::B8, 1),
            ClusterSpec::paper_default(),
        )
    }

    fn case1_schedule() -> Schedule {
        Schedule {
            placement: PlacementPlan {
                predecode_groups: vec![vec![Stage::Prefix]],
            },
            allocation: ResourceAllocation {
                group_xpus: vec![8],
                decode_xpus: 8,
                retrieval_servers: 32,
            },
            batching: BatchingPolicy::new(8, 64),
        }
    }

    fn poisson_trace(n: usize, rate: f64, seed: u64) -> Trace {
        TraceSpec {
            num_requests: n,
            profile: SequenceProfile::paper_default().with_decode_tokens(32),
            arrival: ArrivalProcess::Poisson { rate_rps: rate },
            length_jitter: 0.2,
            seed,
        }
        .generate()
    }

    #[test]
    fn disagg_evaluation_completes_and_prices_transfers() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let trace = poisson_trace(80, 40.0, 5);
        let slo = SloTarget::new(1.0, 0.1);
        let ic = InterconnectSpec::torus_3d();
        let fleet = FleetConfig::split(1, 1, RouterPolicy::LeastOutstanding)
            .with_transfer(transfer_model_from_interconnect(profiler.schema(), &ic));
        let eval = evaluate_fleet_disagg(&profiler, &schedule, &fleet, &trace, &slo).unwrap();
        assert_eq!(eval.report.merged.metrics.completed, 80);
        assert_eq!(eval.report.transfers.transfers, 80);
        assert!(eval.report.transfers.bytes_total > 0.0);
        assert_eq!(eval.total_xpus, split_xpus(&schedule, 1, 1));
        assert_eq!(eval.total_xpus, 16);
        assert!(eval.goodput_per_chip <= eval.goodput_rps);
    }

    /// The degenerate pin: a zero-cost 1+1 split scores the same attainment
    /// and goodput as the flat single-replica fleet (per-request timings
    /// agree to the engine's event-grouping tolerance, so the counted SLO
    /// hits are identical).
    #[test]
    fn zero_cost_split_matches_flat_fleet_scores() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let trace = poisson_trace(100, 30.0, 11);
        let slo = SloTarget::new(1.0, 0.1);
        let flat = evaluate_fleet_dynamic(
            &profiler,
            &schedule,
            &FleetConfig::new(1, RouterPolicy::LeastOutstanding),
            &trace,
            &slo,
        )
        .unwrap();
        let split = FleetConfig::split(1, 1, RouterPolicy::LeastOutstanding);
        assert!(split.transfer.is_zero_cost());
        let disagg = evaluate_fleet_disagg(&profiler, &schedule, &split, &trace, &slo).unwrap();
        assert_eq!(disagg.attainment, flat.attainment);
        assert!((disagg.goodput_rps - flat.goodput_rps).abs() < 1e-9);
        assert_eq!(disagg.meets_slo, flat.meets_slo);
    }

    /// Pool configs flow through the flat entry point: a disaggregated
    /// `FleetConfig` dispatches to the pool engine and comes back in the
    /// standard fleet shape.
    #[test]
    fn fleet_dynamic_accepts_pool_configs() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let trace = poisson_trace(60, 40.0, 3);
        let slo = SloTarget::new(1.0, 0.1);
        let fleet = FleetConfig::split(1, 2, RouterPolicy::LeastOutstanding)
            .with_transfer(KvTransferModel::new(131_072.0, 25e9, 20e-6));
        let eval = evaluate_fleet_dynamic(&profiler, &schedule, &fleet, &trace, &slo).unwrap();
        assert_eq!(eval.report.merged.metrics.completed, 60);
        // Replicas renumbered prefill-first: 1 prefill + 2 decode.
        assert_eq!(eval.report.per_replica.len(), 3);
        // Two dispatches per request: arrival + transfer completion.
        assert_eq!(eval.report.assignments.len(), 120);
        let direct = evaluate_fleet_disagg(&profiler, &schedule, &fleet, &trace, &slo).unwrap();
        assert_eq!(eval.report.merged, direct.report.merged);
        assert_eq!(eval.attainment, direct.attainment);

        // Streaming metrics are a flat-fleet feature.
        let streaming = rago_serving_sim::MetricsMode::Streaming(
            rago_serving_sim::StreamingConfig::new(rago_schema::HistogramSpec::default())
                .with_slo(slo),
        );
        let err =
            evaluate_fleet_dynamic_with(&profiler, &schedule, &fleet, &trace, &slo, &streaming)
                .unwrap_err();
        assert!(matches!(err, RagoError::InvalidConfig { .. }));
    }

    #[test]
    fn non_pool_fleets_are_rejected_by_the_direct_entry_point() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        let trace = poisson_trace(10, 10.0, 1);
        let slo = SloTarget::new(1.0, 0.1);
        let flat = FleetConfig::new(2, RouterPolicy::RoundRobin);
        assert!(matches!(
            evaluate_fleet_disagg(&profiler, &schedule, &flat, &trace, &slo),
            Err(RagoError::InvalidConfig { .. })
        ));
        // Invalid crash targets surface as errors, not panics.
        let fleet = FleetConfig::split(1, 1, RouterPolicy::RoundRobin);
        let bad_crash = PoolCrash {
            pool: PoolRole::Prefill,
            replica: 5,
            at_s: 0.1,
            restart_delay_s: None,
        };
        assert!(matches!(
            run_disagg(&profiler, &schedule, &fleet, &trace, None, &[bad_crash]),
            Err(RagoError::InvalidConfig { .. })
        ));
    }

    /// The DistServe discovery: at a tight TTFT+TPOT SLO, the joint search
    /// finds a disaggregated split whose goodput per chip beats the best
    /// *collocated* fleet serving the same trace — because the split buys
    /// prefill capacity without paying for idle decode chips.
    #[test]
    fn tight_slo_sweep_discovers_disaggregation() {
        let profiler = case1_profiler();
        let schedule = case1_schedule();
        // Prefill-heavy traffic: a rate past one replica's prefill knee
        // (one collocated replica's TTFT attainment collapses at the tight
        // target) with short decodes, so a second full replica buys mostly
        // idle decode chips while a (2, 1) split buys exactly the prefill
        // capacity the SLO needs.
        let trace = TraceSpec {
            num_requests: 150,
            profile: SequenceProfile::paper_default().with_decode_tokens(4),
            arrival: ArrivalProcess::Poisson { rate_rps: 160.0 },
            length_jitter: 0.2,
            seed: 17,
        }
        .generate();
        let tight = SloTarget::new(0.4, 0.05);

        // Best collocated goodput per chip across 1..=3 flat replicas.
        let mut best_flat = 0.0f64;
        for n in 1..=3u32 {
            let eval = evaluate_fleet_dynamic(
                &profiler,
                &schedule,
                &FleetConfig::new(n, RouterPolicy::LeastOutstanding),
                &trace,
                &tight,
            )
            .unwrap();
            let chips = schedule.allocation.total_xpus() * n;
            best_flat = best_flat.max(eval.goodput_rps / f64::from(chips));
        }

        // The joint sweep over splits and interconnects.
        let splits: Vec<(u32, u32)> = vec![(1, 1), (2, 1), (2, 2), (3, 1)];
        let ics = vec![
            InterconnectSpec::torus_3d(),
            InterconnectSpec::datacenter_network(),
        ];
        let frontier = ParetoFrontier {
            points: vec![ParetoPoint {
                schedule: schedule.clone(),
                performance: schedule.evaluate(&profiler).unwrap(),
            }],
            evaluated_schedules: 1,
        };
        let ranked =
            rank_frontier_by_goodput_disagg(&profiler, &frontier, &trace, &tight, &splits, &ics);
        assert_eq!(ranked.len(), splits.len() * ics.len());
        for pair in ranked.windows(2) {
            assert!(pair[0].2.goodput_per_chip >= pair[1].2.goodput_per_chip);
        }
        let (_, choice, best) = &ranked[0];
        assert!(
            best.goodput_per_chip > best_flat,
            "disaggregation should win per chip at the tight SLO: \
             split ({}, {}) over {} reaches {:.6}/chip vs collocated {:.6}/chip",
            choice.prefill_replicas,
            choice.decode_replicas,
            choice.interconnect,
            best.goodput_per_chip,
            best_flat
        );
    }
}
