//! RAGO: systematic performance optimization for RAG serving.
//!
//! This crate is the paper's primary contribution: given a workload described
//! by a [`rago_schema::RagSchema`] and a resource budget, RAGO searches the
//! scheduling-policy space — **task placement** (which inference components
//! are collocated on the same accelerators), **resource allocation** (how many
//! XPUs or CPU servers each component gets), and **batching policy** (the
//! batch size of every stage) — and returns the Pareto frontier of
//! time-to-first-token versus QPS-per-chip, together with the schedules that
//! achieve it (Algorithm 1).
//!
//! The crate also provides the LLM-system-extension [`baseline`] the paper
//! compares against, and the resource-normalized time [`breakdown`] used in
//! the workload-characterization figures.
//!
//! # Examples
//!
//! ```
//! use rago_core::{Rago, SearchOptions};
//! use rago_hardware::ClusterSpec;
//! use rago_schema::presets;
//!
//! let schema = presets::case1_hyperscale(presets::LlmSize::B8, 1);
//! let cluster = ClusterSpec::paper_default();
//! let rago = Rago::new(schema, cluster);
//! let pareto = rago.optimize(&SearchOptions::fast())?;
//! assert!(!pareto.points.is_empty());
//! let best_qps = pareto.max_qps_per_chip().unwrap();
//! assert!(best_qps.performance.qps_per_chip > 0.0);
//! # Ok::<(), rago_core::RagoError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod breakdown;
pub mod cached;
pub mod capacity;
pub mod disagg;
pub mod dynamic;
pub mod error;
pub mod faulted;
pub mod metrics;
pub mod optimizer;
pub mod pareto;
pub mod placement;
pub mod profiler;
pub mod schedule;
pub mod search;
pub mod timevarying;

pub use baseline::BaselineSystem;
pub use breakdown::{stage_breakdown, StageShare};
pub use cached::{
    evaluate_fleet_cached, evaluate_fleet_cached_with, evaluate_schedule_cached,
    evaluate_schedule_cached_with, plan_capacity_cached, rank_frontier_by_goodput_cached,
    CacheConfig, CachedCapacityPlan,
};
pub use capacity::{
    plan_capacity, plan_capacity_pools, plan_capacity_profile, plan_capacity_with,
    rank_frontier_by_cost_at_qps, CapacityInterval, CapacityOptions, CapacityPlan, CapacityProfile,
    PoolCapacityPlan, MAX_PLANNER_REPLICAS,
};
pub use disagg::{
    evaluate_fleet_disagg, evaluate_fleet_disagg_cached, rank_frontier_by_goodput_disagg,
    transfer_model_from_interconnect, DisaggChoice, DisaggEvaluation,
};
pub use dynamic::{
    evaluate_fleet_dynamic, evaluate_fleet_dynamic_traced, evaluate_fleet_dynamic_with,
    evaluate_heterogeneous_fleet_dynamic, evaluate_heterogeneous_fleet_dynamic_traced,
    evaluate_heterogeneous_fleet_dynamic_with, evaluate_schedule_dynamic,
    evaluate_schedule_dynamic_traced, evaluate_schedule_dynamic_with, rank_frontier_by_goodput,
    record_profiler_memo, DynamicEvaluation, FleetEvaluation,
};
pub use error::RagoError;
pub use faulted::{
    evaluate_fleet_faulted, evaluate_fleet_faulted_pools, scaling_plan_from_profile, FaultScenario,
    FaultedClassOutcome, FaultedEvaluation,
};
pub use metrics::RagPerformance;
pub use optimizer::{Rago, ScheduleIter, SearchOptions};
pub use pareto::{ParetoAccumulator, ParetoFrontier, ParetoPoint};
pub use placement::PlacementPlan;
pub use profiler::{StagePerf, StageProfiler};
pub use rago_serving_sim::{MetricsMode, StreamingConfig};
pub use schedule::{BatchingPolicy, ResourceAllocation, Schedule};
pub use search::{
    AnytimeSample, BeamEntry, BestSamples, ScheduleSpace, SearchMode, StochasticConfig,
    StochasticSearchReport,
};
pub use timevarying::{
    evaluate_fleet_timevarying, evaluate_fleet_timevarying_with, ClassOutcome, ScalingSummary,
    TimeVaryingEvaluation,
};
