//! Equivalence and reproducibility suite for the anytime stochastic search.
//!
//! On a grid the budget can exhaust, the stochastic search must recover the
//! exhaustive Pareto frontier **bit-identically** — same points, same
//! schedules, same tie representatives — for any worker count and any seed
//! (the deterministic fallback scan guarantees full coverage; the
//! identity-key tie-break makes the frontier a function of the candidate
//! *set* alone). And for one seed, two runs must produce bit-identical
//! reports regardless of thread timing.

use rago_core::{Rago, SearchMode, SearchOptions, StochasticConfig, StochasticSearchReport};
use rago_hardware::ClusterSpec;
use rago_schema::presets::{self, LlmSize};

fn paper_rago() -> Rago {
    Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        ClusterSpec::paper_default(),
    )
}

/// The paper's case-1 grid (`SearchOptions::paper_default()`) is small
/// enough to exhaust in tests.
fn paper_grid_config(seed: u64, workers: usize) -> StochasticConfig {
    StochasticConfig::default()
        .with_seed(seed)
        .with_workers(workers)
        .with_budget(8192)
}

/// Everything in a report except the wall-clock fields, so two runs can be
/// compared bit-for-bit on the reproducible surface.
type ReproducibleSurface<'a> = (
    &'a rago_core::ParetoFrontier,
    usize,
    usize,
    usize,
    u128,
    bool,
    Vec<(usize, &'a rago_core::ParetoFrontier)>,
);

fn reproducible_surface(report: &StochasticSearchReport) -> ReproducibleSurface<'_> {
    (
        &report.frontier,
        report.evaluations,
        report.feasible_evaluations,
        report.rounds,
        report.space_size,
        report.exhausted,
        report
            .timeline
            .iter()
            .map(|s| (s.evaluations, &s.frontier))
            .collect(),
    )
}

#[test]
fn recovers_exhaustive_frontier_across_workers_and_seeds() {
    let rago = paper_rago();
    let options = SearchOptions::paper_default();
    let exhaustive = rago.optimize(&options).unwrap();
    let space = rago.schedule_space(&options);
    assert!(
        space.size() <= 8192,
        "budget must cover the grid for the exhaustion guarantee ({})",
        space.size()
    );
    for workers in [1usize, 2, 4] {
        for seed in [1u64, 2, 3] {
            let report = rago
                .optimize_stochastic(&options, &paper_grid_config(seed, workers))
                .unwrap();
            assert!(
                report.exhausted,
                "seed {seed} workers {workers}: grid not exhausted after {} evaluations",
                report.evaluations
            );
            // Bit-identical frontier: same (ttft, qps) points AND the same
            // schedule representing every exact performance tie.
            assert_eq!(
                report.frontier.points, exhaustive.points,
                "seed {seed} workers {workers} diverged from the exhaustive frontier"
            );
        }
    }
}

#[test]
fn same_seed_is_bit_reproducible_for_any_worker_count() {
    let rago = paper_rago();
    let options = SearchOptions::paper_default();
    let baseline = rago
        .optimize_stochastic(&options, &paper_grid_config(42, 1))
        .unwrap();
    for workers in [1usize, 2, 4] {
        let run = rago
            .optimize_stochastic(&options, &paper_grid_config(42, workers))
            .unwrap();
        assert_eq!(
            reproducible_surface(&run),
            reproducible_surface(&baseline),
            "workers {workers} changed the reproducible surface"
        );
    }
}

#[test]
fn truncated_budgets_are_anytime_and_monotone() {
    let rago = paper_rago();
    let options = SearchOptions::paper_default();
    let exhaustive = rago.optimize(&options).unwrap();
    // A budget far below the grid still yields a usable frontier and a
    // monotone anytime timeline.
    let config = StochasticConfig::default()
        .with_seed(9)
        .with_workers(2)
        .with_budget(600);
    let report = rago.optimize_stochastic(&options, &config).unwrap();
    assert!(!report.exhausted);
    assert!(report.evaluations <= 600 + config.beam_width * config.descent_evaluations);
    assert!(!report.frontier.points.is_empty());
    assert!(!report.timeline.is_empty());
    // The last checkpoint is the returned frontier.
    assert_eq!(
        report.timeline.last().unwrap().frontier.points,
        report.frontier.points
    );
    // Hypervolume against a fixed reference never decreases along the
    // timeline: later checkpoints know a superset of the candidates.
    let ttft_ref = 2.0
        * exhaustive
            .points
            .iter()
            .map(|p| p.performance.ttft_s)
            .fold(0.0f64, f64::max);
    let mut last_hv = 0.0;
    for sample in &report.timeline {
        let hv = sample.frontier.hypervolume(ttft_ref, 0.0);
        assert!(
            hv >= last_hv - 1e-12,
            "hypervolume regressed along the timeline: {hv} < {last_hv}"
        );
        last_hv = hv;
    }
    // And the exhausted run's hypervolume is the ceiling.
    assert!(last_hv <= exhaustive.hypervolume(ttft_ref, 0.0) + 1e-12);
}

#[test]
fn search_mode_facade_matches_direct_calls() {
    let rago = paper_rago();
    let options = SearchOptions::paper_default();
    let exhaustive = rago
        .optimize_with_mode(&options, &SearchMode::Exhaustive)
        .unwrap();
    assert_eq!(exhaustive, rago.optimize(&options).unwrap());
    let stochastic = rago
        .optimize_with_mode(&options, &SearchMode::Stochastic(paper_grid_config(5, 2)))
        .unwrap();
    // Frontier-only comparison: the report's `evaluated_schedules` counts
    // differ between modes (the exhaustive path streams the whole grid).
    assert_eq!(stochastic.points, exhaustive.points);
}
