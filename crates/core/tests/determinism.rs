//! The streaming, parallel, memoized search must be *frontier-identical* to
//! the serial batch reference: same points (schedules included), same order,
//! same `evaluated_schedules` count — independent of thread interleaving.

use rago_core::{Rago, SearchOptions};
use rago_hardware::ClusterSpec;
use rago_schema::presets::{self, LlmSize};

fn assert_parallel_matches_serial(rago: &Rago, options: &SearchOptions, label: &str) {
    let serial = rago
        .optimize_serial(options)
        .unwrap_or_else(|e| panic!("{label}: serial search failed: {e}"));
    // Run the parallel path several times: a race in the fold/merge would
    // show up as run-to-run variation.
    for run in 0..3 {
        let parallel = rago
            .optimize(options)
            .unwrap_or_else(|e| panic!("{label}: parallel search failed: {e}"));
        assert_eq!(
            parallel.evaluated_schedules, serial.evaluated_schedules,
            "{label} run {run}: evaluated_schedules diverged"
        );
        assert_eq!(
            parallel, serial,
            "{label} run {run}: frontier diverged from the serial reference"
        );
    }
}

#[test]
fn streaming_matches_serial_reference_case1() {
    let rago = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        ClusterSpec::paper_default(),
    );
    assert_parallel_matches_serial(&rago, &SearchOptions::fast(), "case1/fast");
}

#[test]
fn streaming_matches_serial_reference_case4() {
    // Case IV exercises multiple placements and multi-group allocations.
    let rago = Rago::new(
        presets::case4_rewriter_reranker(LlmSize::B8),
        ClusterSpec::paper_default(),
    );
    assert_parallel_matches_serial(&rago, &SearchOptions::fast(), "case4/fast");
}

#[test]
fn streaming_matches_serial_reference_case3_iterative() {
    // Iterative workloads spin the extra batching axis and the decode-stall
    // simulator.
    let rago = Rago::new(
        presets::case3_iterative(LlmSize::B8, 4),
        ClusterSpec::paper_default(),
    );
    assert_parallel_matches_serial(&rago, &SearchOptions::fast(), "case3/fast");
}

#[test]
fn memoization_does_not_change_the_frontier() {
    let options = SearchOptions::fast();
    let memoized = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        ClusterSpec::paper_default(),
    );
    let unmemoized = Rago::new(
        presets::case1_hyperscale(LlmSize::B8, 1),
        ClusterSpec::paper_default(),
    )
    .with_memoization(false);
    assert_eq!(
        memoized.optimize(&options).unwrap(),
        unmemoized.optimize_serial(&options).unwrap(),
    );
    assert_eq!(unmemoized.profiler().cached_profiles(), 0);
}
