//! Property test: the incremental frontier fold ([`ParetoAccumulator`])
//! equals the batch extraction ([`ParetoFrontier::from_points`]) on random
//! point sets — including exact performance ties — for any split of the
//! stream across accumulators and any merge order.

use proptest::prelude::*;
use rago_core::{ParetoAccumulator, ParetoFrontier, ParetoPoint, RagPerformance, Schedule};

fn point(ttft_grid: u32, qps_grid: u32) -> ParetoPoint {
    // A coarse grid makes exact ties common, which is precisely the case the
    // index tie-break must get right. Values stay NaN-free and finite.
    let ttft_s = 0.01 * f64::from(ttft_grid);
    let qps_per_chip = 0.5 * f64::from(qps_grid);
    ParetoPoint {
        schedule: Schedule::test_dummy(),
        performance: RagPerformance {
            ttft_s,
            tpot_s: 0.01,
            qps: qps_per_chip * 64.0,
            qps_per_chip,
            total_xpus: 64,
            retrieval_servers: 16,
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_fold_equals_batch_extraction(
        grid in prop::collection::vec((0u32..12, 0u32..12), 0..120),
        split_at in 0usize..120,
        merge_reversed in any::<bool>(),
    ) {
        let points: Vec<ParetoPoint> =
            grid.iter().map(|&(t, q)| point(t, q)).collect();
        let batch = ParetoFrontier::from_points(points.clone());

        // Single accumulator, stream order.
        let mut whole = ParetoAccumulator::new();
        for (i, p) in points.iter().enumerate() {
            whole.push(i, p.clone());
        }
        let whole = whole.into_frontier();
        prop_assert_eq!(&whole, &batch);
        prop_assert_eq!(whole.evaluated_schedules, points.len());

        // Two accumulators over an arbitrary split of the same stream,
        // merged in either order — models the per-thread fold + reduce.
        let split = split_at.min(points.len());
        let mut left = ParetoAccumulator::new();
        let mut right = ParetoAccumulator::new();
        for (i, p) in points.iter().enumerate() {
            if i < split {
                left.push(i, p.clone());
            } else {
                right.push(i, p.clone());
            }
        }
        let merged = if merge_reversed {
            right.merge(left)
        } else {
            left.merge(right)
        };
        prop_assert_eq!(merged.into_frontier(), batch);
    }

    #[test]
    fn frontier_points_are_strictly_improving(
        grid in prop::collection::vec((0u32..40, 0u32..40), 1..150),
    ) {
        let points: Vec<ParetoPoint> =
            grid.iter().map(|&(t, q)| point(t, q)).collect();
        let mut acc = ParetoAccumulator::new();
        for (i, p) in points.iter().enumerate() {
            acc.push(i, p.clone());
        }
        let frontier = acc.into_frontier();
        prop_assert!(!frontier.is_empty());
        for w in frontier.points.windows(2) {
            // Strictly increasing in both objectives: any tie would mean one
            // point dominates (or duplicates) the other.
            prop_assert!(w[0].performance.ttft_s < w[1].performance.ttft_s);
            prop_assert!(w[0].performance.qps_per_chip < w[1].performance.qps_per_chip);
        }
        // No retained point is dominated by any evaluated point.
        for kept in frontier.iter() {
            for p in &points {
                prop_assert!(!p.performance.dominates(&kept.performance));
            }
        }
    }
}
