//! Property test: the incremental frontier fold ([`ParetoAccumulator`])
//! equals the batch extraction ([`ParetoFrontier::from_points`]) on random
//! point sets — including exact performance ties between *distinct*
//! schedules — for any split of the stream across accumulators, any merge
//! order, and any shuffle of the insertion order. This pins the
//! schedule-identity tie-break: the old enumeration-index tie-break made the
//! surviving schedule of a tie depend on where the point sat in the stream,
//! which sampled candidates don't even have.

use proptest::prelude::*;
use rago_core::{ParetoAccumulator, ParetoFrontier, ParetoPoint, RagPerformance, Schedule};
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

fn point(id: u32, ttft_grid: u32, qps_grid: u32) -> ParetoPoint {
    // A coarse grid makes exact ties common, which is precisely the case the
    // identity tie-break must get right. Values stay NaN-free and finite.
    // Each point carries a distinct schedule (distinct `identity_key`) so a
    // tie actually has two different schedules to choose between.
    let ttft_s = 0.01 * f64::from(ttft_grid);
    let qps_per_chip = 0.5 * f64::from(qps_grid);
    let mut schedule = Schedule::test_dummy();
    schedule.allocation.decode_xpus = id + 1;
    ParetoPoint {
        schedule,
        performance: RagPerformance {
            ttft_s,
            tpot_s: 0.01,
            qps: qps_per_chip * 64.0,
            qps_per_chip,
            total_xpus: 64,
            retrieval_servers: 16,
        },
    }
}

fn accumulate(points: &[ParetoPoint]) -> ParetoFrontier {
    let mut acc = ParetoAccumulator::new();
    for p in points {
        acc.push(p.clone());
    }
    acc.into_frontier()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn incremental_fold_equals_batch_extraction_under_shuffle(
        grid in prop::collection::vec((0u32..12, 0u32..12), 0..120),
        split_at in 0usize..120,
        merge_reversed in any::<bool>(),
        shuffle_seed in any::<u64>(),
    ) {
        let points: Vec<ParetoPoint> = grid
            .iter()
            .enumerate()
            .map(|(i, &(t, q))| point(i as u32, t, q))
            .collect();
        let batch = ParetoFrontier::from_points(points.clone());

        // Single accumulator, stream order.
        let whole = accumulate(&points);
        prop_assert_eq!(&whole, &batch);
        prop_assert_eq!(whole.evaluated_schedules, points.len());

        // The same points in a shuffled order — a sampler delivers points in
        // whatever order it finds them, and the frontier (including which
        // schedule survives an exact tie) must not change.
        let mut shuffled = points.clone();
        shuffled.shuffle(&mut StdRng::seed_from_u64(shuffle_seed));
        prop_assert_eq!(&accumulate(&shuffled), &batch);
        prop_assert_eq!(&ParetoFrontier::from_points(shuffled.clone()), &batch);

        // Two accumulators over an arbitrary split of the shuffled stream,
        // merged in either order — models the per-thread fold + reduce.
        let split = split_at.min(shuffled.len());
        let mut left = ParetoAccumulator::new();
        let mut right = ParetoAccumulator::new();
        for (i, p) in shuffled.iter().enumerate() {
            if i < split {
                left.push(p.clone());
            } else {
                right.push(p.clone());
            }
        }
        let merged = if merge_reversed {
            right.merge(left)
        } else {
            left.merge(right)
        };
        prop_assert_eq!(merged.into_frontier(), batch);
    }

    #[test]
    fn frontier_points_are_strictly_improving(
        grid in prop::collection::vec((0u32..40, 0u32..40), 1..150),
    ) {
        let points: Vec<ParetoPoint> = grid
            .iter()
            .enumerate()
            .map(|(i, &(t, q))| point(i as u32, t, q))
            .collect();
        let frontier = accumulate(&points);
        prop_assert!(!frontier.is_empty());
        for w in frontier.points.windows(2) {
            // Strictly increasing in both objectives: any tie would mean one
            // point dominates (or duplicates) the other.
            prop_assert!(w[0].performance.ttft_s < w[1].performance.ttft_s);
            prop_assert!(w[0].performance.qps_per_chip < w[1].performance.qps_per_chip);
        }
        // No retained point is dominated by any evaluated point.
        for kept in frontier.iter() {
            for p in &points {
                prop_assert!(!p.performance.dominates(&kept.performance));
            }
        }
    }

    #[test]
    fn hypervolume_is_monotone_in_the_point_set(
        grid in prop::collection::vec((1u32..40, 1u32..40), 1..80),
        extra in (1u32..40, 1u32..40),
    ) {
        let points: Vec<ParetoPoint> = grid
            .iter()
            .enumerate()
            .map(|(i, &(t, q))| point(i as u32, t, q))
            .collect();
        let base = accumulate(&points).hypervolume(1.0, 0.0);
        // Evaluating one more candidate can only grow the dominated region.
        let mut more = points.clone();
        more.push(point(points.len() as u32, extra.0, extra.1));
        let grown = accumulate(&more).hypervolume(1.0, 0.0);
        prop_assert!(grown >= base - 1e-12, "{grown} < {base}");
    }
}
