//! Property-based tests for the roofline primitives and hardware specs.

use proptest::prelude::*;
use rago_hardware::{power_of_two_steps, Roofline, XpuGeneration, XpuSpec};

proptest! {
    /// Roofline time is always at least the compute time and at least the
    /// memory time, and equals one of them.
    #[test]
    fn roofline_time_is_max_of_terms(
        compute in 1e9f64..1e16,
        bw in 1e8f64..1e13,
        work in 1e3f64..1e16,
        data in 1e3f64..1e14,
    ) {
        let r = Roofline::new(compute, bw);
        let t = r.time(work, data);
        let t_comp = work / compute;
        let t_mem = data / bw;
        prop_assert!(t >= t_comp - 1e-18);
        prop_assert!(t >= t_mem - 1e-18);
        prop_assert!((t - t_comp).abs() < 1e-12 * t.max(1.0) || (t - t_mem).abs() < 1e-12 * t.max(1.0));
    }

    /// Scaling the roofline by n divides the time of any operator by exactly n.
    #[test]
    fn roofline_scaling_divides_time(
        compute in 1e9f64..1e15,
        bw in 1e8f64..1e13,
        work in 1e6f64..1e15,
        data in 1e6f64..1e13,
        n in 1u32..256,
    ) {
        let r = Roofline::new(compute, bw);
        let scaled = r.scaled(f64::from(n));
        let ratio = r.time(work, data) / scaled.time(work, data);
        prop_assert!((ratio - f64::from(n)).abs() < 1e-6 * f64::from(n));
    }

    /// Roofline time is monotone in both work and data.
    #[test]
    fn roofline_time_is_monotone(
        compute in 1e9f64..1e15,
        bw in 1e8f64..1e13,
        work in 1e6f64..1e15,
        data in 1e6f64..1e13,
        extra in 1.0f64..1e12,
    ) {
        let r = Roofline::new(compute, bw);
        let base = r.time(work, data);
        prop_assert!(r.time(work + extra, data) >= base);
        prop_assert!(r.time(work, data + extra) >= base);
    }

    /// power_of_two_steps always starts at 1, ends at the budget, and is
    /// strictly increasing.
    #[test]
    fn power_of_two_steps_invariants(max in 1u32..100_000) {
        let steps = power_of_two_steps(max);
        prop_assert_eq!(steps[0], 1);
        prop_assert_eq!(*steps.last().unwrap(), max);
        for w in steps.windows(2) {
            prop_assert!(w[1] > w[0]);
        }
        // Every step except possibly the last is a power of two.
        for &s in &steps[..steps.len() - 1] {
            prop_assert!(s.is_power_of_two());
        }
    }

    /// Custom XPU specs with positive parameters always validate, and their
    /// roofline never exceeds the undereated peak.
    #[test]
    fn custom_xpu_roofline_below_peak(
        tf in 1.0f64..2000.0,
        hbm in 1.0f64..1024.0,
        bw in 10.0f64..10000.0,
        ici in 10.0f64..2000.0,
    ) {
        let spec = XpuSpec::custom("prop", tf, hbm, bw, ici).unwrap();
        let r = spec.roofline();
        prop_assert!(r.compute <= spec.peak_flops() + 1.0);
        prop_assert!(r.memory_bandwidth <= spec.hbm_bandwidth() + 1.0);
    }
}

#[test]
fn all_generations_validate() {
    for gen in XpuGeneration::ALL {
        assert!(XpuSpec::generation(gen).validate().is_ok());
    }
}
