//! Unit helpers and conversion constants.
//!
//! All cost models in this workspace operate on plain `f64` quantities in SI
//! base units: bytes, seconds, FLOPs (floating-point operations), and
//! operations per second. These helpers make the construction of such values
//! readable at call sites (`tflops(459.0)`, `gib(96.0)`) and centralize the
//! decimal-vs-binary prefix conventions used by the paper:
//!
//! * memory **capacities** are quoted with binary prefixes (GiB, TiB), e.g.
//!   "96 GB of HBM" on TPU v5p is treated as 96 GiB;
//! * **bandwidths** and **compute rates** are quoted with decimal prefixes
//!   (GB/s, TFLOPS), matching vendor datasheets.

/// Number of bytes in one decimal gigabyte (10^9 bytes).
pub const BYTES_PER_GB: f64 = 1e9;

/// Number of bytes in one binary gibibyte (2^30 bytes).
pub const BYTES_PER_GIB: f64 = 1024.0 * 1024.0 * 1024.0;

/// Number of bytes in one binary tebibyte (2^40 bytes).
pub const BYTES_PER_TIB: f64 = BYTES_PER_GIB * 1024.0;

/// Number of bytes in one binary mebibyte (2^20 bytes).
pub const BYTES_PER_MIB: f64 = 1024.0 * 1024.0;

/// Converts a quantity expressed in mebibytes (MiB) to bytes.
///
/// ```
/// assert_eq!(rago_hardware::mib(1.0), 1_048_576.0);
/// ```
pub fn mib(x: f64) -> f64 {
    x * BYTES_PER_MIB
}

/// Converts a quantity expressed in gibibytes (GiB) to bytes.
///
/// ```
/// assert_eq!(rago_hardware::gib(2.0), 2.0 * 1024.0 * 1024.0 * 1024.0);
/// ```
pub fn gib(x: f64) -> f64 {
    x * BYTES_PER_GIB
}

/// Converts a quantity expressed in tebibytes (TiB) to bytes.
///
/// ```
/// assert!(rago_hardware::tib(5.6) > 6.1e12);
/// ```
pub fn tib(x: f64) -> f64 {
    x * BYTES_PER_TIB
}

/// Converts a quantity expressed in decimal gigabytes (GB) to bytes.
///
/// ```
/// assert_eq!(rago_hardware::gb(1.5), 1.5e9);
/// ```
pub fn gb(x: f64) -> f64 {
    x * BYTES_PER_GB
}

/// Converts a bandwidth expressed in GB/s to bytes per second.
///
/// ```
/// assert_eq!(rago_hardware::gbps(2765.0), 2.765e12);
/// ```
pub fn gbps(x: f64) -> f64 {
    x * 1e9
}

/// Converts a bandwidth expressed in TB/s to bytes per second.
///
/// ```
/// assert_eq!(rago_hardware::tbps(2.765), 2.765e12);
/// ```
pub fn tbps(x: f64) -> f64 {
    x * 1e12
}

/// Converts a compute rate expressed in TFLOPS to FLOP/s.
///
/// ```
/// assert_eq!(rago_hardware::tflops(459.0), 4.59e14);
/// ```
pub fn tflops(x: f64) -> f64 {
    x * 1e12
}

/// Converts a compute rate expressed in GFLOPS to FLOP/s.
///
/// ```
/// assert_eq!(rago_hardware::units::gflops(1.0), 1e9);
/// ```
pub fn gflops(x: f64) -> f64 {
    x * 1e9
}

/// Formats a byte count with a human-readable binary prefix.
///
/// ```
/// assert_eq!(rago_hardware::units::format_bytes(1536.0 * 1024.0 * 1024.0), "1.50 GiB");
/// ```
pub fn format_bytes(bytes: f64) -> String {
    if bytes >= BYTES_PER_TIB {
        format!("{:.2} TiB", bytes / BYTES_PER_TIB)
    } else if bytes >= BYTES_PER_GIB {
        format!("{:.2} GiB", bytes / BYTES_PER_GIB)
    } else if bytes >= BYTES_PER_MIB {
        format!("{:.2} MiB", bytes / BYTES_PER_MIB)
    } else if bytes >= 1024.0 {
        format!("{:.2} KiB", bytes / 1024.0)
    } else {
        format!("{bytes:.0} B")
    }
}

/// Formats a duration in seconds with an adaptive unit (s / ms / µs).
///
/// ```
/// assert_eq!(rago_hardware::units::format_seconds(0.0025), "2.500 ms");
/// ```
pub fn format_seconds(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.3} s")
    } else if seconds >= 1e-3 {
        format!("{:.3} ms", seconds * 1e3)
    } else if seconds >= 1e-6 {
        format!("{:.3} us", seconds * 1e6)
    } else {
        format!("{:.1} ns", seconds * 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_and_decimal_prefixes_differ() {
        assert!(gib(1.0) > gb(1.0));
        assert!((gib(1.0) / gb(1.0) - 1.073_741_824).abs() < 1e-9);
    }

    #[test]
    fn tib_is_1024_gib() {
        assert_eq!(tib(1.0), gib(1024.0));
    }

    #[test]
    fn bandwidth_conversions() {
        assert_eq!(gbps(1000.0), tbps(1.0));
        assert_eq!(tflops(1.0), gflops(1000.0));
    }

    #[test]
    fn format_bytes_covers_all_ranges() {
        assert_eq!(format_bytes(512.0), "512 B");
        assert_eq!(format_bytes(2048.0), "2.00 KiB");
        assert!(format_bytes(mib(3.0)).contains("MiB"));
        assert!(format_bytes(gib(3.0)).contains("GiB"));
        assert!(format_bytes(tib(3.0)).contains("TiB"));
    }

    #[test]
    fn format_seconds_covers_all_ranges() {
        assert!(format_seconds(2.0).ends_with(" s"));
        assert!(format_seconds(2e-3).ends_with(" ms"));
        assert!(format_seconds(2e-6).ends_with(" us"));
        assert!(format_seconds(2e-10).ends_with(" ns"));
    }
}
