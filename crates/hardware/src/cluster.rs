//! Cluster-level resource description and budgets.
//!
//! The RAGO evaluation assumes a datacenter serving environment with 16–32
//! host servers, four XPUs per server (64–128 XPUs total), where the host
//! CPUs also serve the sharded vector database (§4 "System setup"). The
//! [`ClusterSpec`] captures that environment and [`ResourceBudget`] expresses
//! the resource constraint handed to the optimizer.

use crate::cpu::CpuServerSpec;
use crate::error::HardwareError;
use crate::interconnect::InterconnectSpec;
use crate::xpu::XpuSpec;
use serde::{Deserialize, Serialize};

/// A homogeneous serving cluster: `num_servers` host servers, each with
/// `xpus_per_server` accelerators and one CPU socket described by `cpu`.
///
/// # Examples
///
/// ```
/// use rago_hardware::ClusterSpec;
/// let cluster = ClusterSpec::paper_default();
/// assert_eq!(cluster.total_xpus(), 128);
/// assert!(cluster.total_host_memory_bytes() > 5.6e12); // fits the 5.6 TiB database
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Number of host servers.
    pub num_servers: u32,
    /// Number of XPU accelerators attached to each host server.
    pub xpus_per_server: u32,
    /// Specification of each XPU.
    pub xpu: XpuSpec,
    /// Specification of each host CPU server.
    pub cpu: CpuServerSpec,
    /// XPU-to-XPU interconnect.
    pub interconnect: InterconnectSpec,
    /// Host-to-XPU link used to ship retrieved documents to the accelerators.
    pub host_link: InterconnectSpec,
}

impl ClusterSpec {
    /// The paper's default system setup: 32 servers × 4 XPU-C accelerators
    /// (128 XPUs), EPYC-Milan hosts, 3D-torus XPU interconnect.
    pub fn paper_default() -> Self {
        Self {
            num_servers: 32,
            xpus_per_server: 4,
            xpu: XpuSpec::default(),
            cpu: CpuServerSpec::default(),
            interconnect: InterconnectSpec::torus_3d(),
            host_link: InterconnectSpec::host_to_xpu_pcie(),
        }
    }

    /// The smaller 16-server configuration (64 XPUs), the paper's minimum
    /// deployment that still holds the 5.6 TiB quantized database in host
    /// memory.
    pub fn paper_minimum() -> Self {
        Self {
            num_servers: 16,
            ..Self::paper_default()
        }
    }

    /// Creates a cluster with a specific XPU spec, keeping the other defaults.
    pub fn with_xpu(mut self, xpu: XpuSpec) -> Self {
        self.xpu = xpu;
        self
    }

    /// Creates a cluster with a specific server count, keeping the rest.
    pub fn with_servers(mut self, num_servers: u32) -> Self {
        self.num_servers = num_servers;
        self
    }

    /// Validates the cluster description.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InvalidSpec`] if the server or per-server XPU
    /// count is zero or a nested specification is invalid.
    pub fn validate(&self) -> Result<(), HardwareError> {
        if self.num_servers == 0 {
            return Err(HardwareError::InvalidSpec {
                field: "num_servers",
                reason: "must be at least 1".to_string(),
            });
        }
        if self.xpus_per_server == 0 {
            return Err(HardwareError::InvalidSpec {
                field: "xpus_per_server",
                reason: "must be at least 1".to_string(),
            });
        }
        self.xpu.validate()?;
        self.cpu.validate()?;
        self.interconnect.validate()?;
        self.host_link.validate()?;
        Ok(())
    }

    /// Total number of XPUs in the cluster.
    pub fn total_xpus(&self) -> u32 {
        self.num_servers * self.xpus_per_server
    }

    /// Total host DRAM capacity in bytes (what the sharded database must fit in).
    pub fn total_host_memory_bytes(&self) -> f64 {
        self.cpu.dram_capacity_bytes() * f64::from(self.num_servers)
    }

    /// Total XPU HBM capacity in bytes.
    pub fn total_hbm_bytes(&self) -> f64 {
        self.xpu.hbm_capacity_bytes() * f64::from(self.total_xpus())
    }

    /// Checks that a database of `database_bytes` fits in aggregate host memory,
    /// leaving `headroom_fraction` (e.g. 0.2) free for the OS and indexes.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InsufficientResources`] when it does not fit.
    pub fn check_database_fits(
        &self,
        database_bytes: f64,
        headroom_fraction: f64,
    ) -> Result<(), HardwareError> {
        let usable = self.total_host_memory_bytes() * (1.0 - headroom_fraction);
        if database_bytes > usable {
            return Err(HardwareError::InsufficientResources {
                requested: format!("{:.2} GB of host memory", database_bytes / 1e9),
                available: format!("{:.2} GB usable host memory", usable / 1e9),
            });
        }
        Ok(())
    }

    /// The full resource budget represented by this cluster.
    pub fn budget(&self) -> ResourceBudget {
        ResourceBudget {
            max_xpus: self.total_xpus(),
            max_cpu_servers: self.num_servers,
        }
    }
}

impl Default for ClusterSpec {
    fn default() -> Self {
        ClusterSpec::paper_default()
    }
}

/// A resource budget constraining the optimizer's search (the `RC` input of
/// Algorithm 1 in the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ResourceBudget {
    /// Maximum number of XPU accelerators available for inference components.
    pub max_xpus: u32,
    /// Maximum number of CPU servers available for retrieval.
    pub max_cpu_servers: u32,
}

impl ResourceBudget {
    /// Creates a budget of `max_xpus` accelerators and `max_cpu_servers` hosts.
    pub fn new(max_xpus: u32, max_cpu_servers: u32) -> Self {
        Self {
            max_xpus,
            max_cpu_servers,
        }
    }

    /// Returns all power-of-two XPU counts up to (and including, if it is a
    /// power of two) the budget: `1, 2, 4, ... <= max_xpus`. The paper's
    /// search uses powers-of-two scaling factors for accelerator counts.
    pub fn xpu_steps(&self) -> Vec<u32> {
        power_of_two_steps(self.max_xpus)
    }

    /// Power-of-two CPU-server counts up to the budget.
    pub fn cpu_server_steps(&self) -> Vec<u32> {
        power_of_two_steps(self.max_cpu_servers)
    }

    /// Filters candidate per-group XPU counts down to the steps that can
    /// appear in *some* feasible allocation: positive, unique, and within
    /// `max_xpus`. The optimizer applies this before building its search
    /// odometer, so over-budget steps never inflate the enumerated grid.
    pub fn admissible_xpu_steps(&self, candidates: &[u32]) -> Vec<u32> {
        admissible_steps(candidates, self.max_xpus)
    }

    /// Filters candidate CPU-server counts to positive, unique steps within
    /// `max_cpu_servers` (see [`ResourceBudget::admissible_xpu_steps`]).
    pub fn admissible_server_steps(&self, candidates: &[u32]) -> Vec<u32> {
        admissible_steps(candidates, self.max_cpu_servers)
    }
}

/// Keeps the candidates in `0 < step <= max`, preserving the caller's order
/// and dropping duplicates.
fn admissible_steps(candidates: &[u32], max: u32) -> Vec<u32> {
    let mut out: Vec<u32> = Vec::with_capacity(candidates.len());
    for &step in candidates {
        if step >= 1 && step <= max && !out.contains(&step) {
            out.push(step);
        }
    }
    out
}

impl Default for ResourceBudget {
    fn default() -> Self {
        ClusterSpec::paper_default().budget()
    }
}

/// Returns `1, 2, 4, ...` up to and including `max` if `max` is itself a power
/// of two; otherwise the largest power of two below `max` is the last entry,
/// followed by `max` itself (so the full budget is always reachable).
pub fn power_of_two_steps(max: u32) -> Vec<u32> {
    let mut steps = Vec::new();
    if max == 0 {
        return steps;
    }
    let mut v = 1u32;
    while v <= max {
        steps.push(v);
        if v > u32::MAX / 2 {
            break;
        }
        v *= 2;
    }
    if let Some(&last) = steps.last() {
        if last != max {
            steps.push(max);
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::units::tib;

    #[test]
    fn paper_default_cluster() {
        let c = ClusterSpec::paper_default();
        assert_eq!(c.total_xpus(), 128);
        assert_eq!(c.num_servers, 32);
        assert!(c.validate().is_ok());
    }

    #[test]
    fn minimum_cluster_fits_the_quantized_database() {
        // The quantized hyperscale database is 64e9 vectors x 96 bytes =
        // 6.144e12 bytes (~5.6 TiB). 16 servers x 384 GB = 6.144e12 bytes of
        // host DRAM, so it fits exactly with no headroom — the paper's stated
        // minimum of 16 servers.
        let database_bytes = 64e9 * 96.0;
        assert!(database_bytes < tib(5.65) && database_bytes > tib(5.55));
        let c = ClusterSpec::paper_minimum();
        assert_eq!(c.total_xpus(), 64);
        assert!(c.check_database_fits(database_bytes, 0.0).is_ok());
        // But with 20% headroom it does not fit on 16 servers.
        assert!(c.check_database_fits(database_bytes, 0.2).is_err());
        // The full 32-server cluster fits it comfortably.
        assert!(ClusterSpec::paper_default()
            .check_database_fits(database_bytes, 0.2)
            .is_ok());
    }

    #[test]
    fn budget_reflects_cluster() {
        let b = ClusterSpec::paper_default().budget();
        assert_eq!(b.max_xpus, 128);
        assert_eq!(b.max_cpu_servers, 32);
    }

    #[test]
    fn admissible_steps_filter_zero_overbudget_and_duplicates() {
        let b = ResourceBudget::new(16, 8);
        assert_eq!(
            b.admissible_xpu_steps(&[0, 1, 4, 4, 16, 32, 64]),
            vec![1, 4, 16]
        );
        assert_eq!(b.admissible_server_steps(&[2, 8, 9]), vec![2, 8]);
        // Order is the caller's, not sorted.
        assert_eq!(b.admissible_xpu_steps(&[8, 2, 8]), vec![8, 2]);
        assert!(b.admissible_xpu_steps(&[32, 64]).is_empty());
    }

    #[test]
    fn power_of_two_steps_cover_budget() {
        assert_eq!(power_of_two_steps(8), vec![1, 2, 4, 8]);
        assert_eq!(power_of_two_steps(6), vec![1, 2, 4, 6]);
        assert_eq!(power_of_two_steps(1), vec![1]);
        assert_eq!(power_of_two_steps(0), Vec::<u32>::new());
    }

    #[test]
    fn validation_rejects_empty_cluster() {
        let mut c = ClusterSpec::paper_default();
        c.num_servers = 0;
        assert!(c.validate().is_err());
        let mut c = ClusterSpec::paper_default();
        c.xpus_per_server = 0;
        assert!(c.validate().is_err());
    }

    #[test]
    fn builder_style_modifiers() {
        let c = ClusterSpec::paper_default()
            .with_servers(8)
            .with_xpu(XpuSpec::generation(crate::XpuGeneration::A));
        assert_eq!(c.total_xpus(), 32);
        assert_eq!(c.xpu.name, "XPU-A");
    }
}
