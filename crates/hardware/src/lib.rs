//! Hardware models for the RAGO reproduction.
//!
//! This crate describes the hardware substrate assumed by the RAGO paper
//! (ISCA 2025): generic systolic-array ML accelerators ("XPUs", Table 2 of the
//! paper), CPU host servers used for retrieval (modeled after AMD EPYC Milan),
//! the inter-chip interconnect, and the cluster-level resource budget. It also
//! provides the roofline primitives shared by the inference and retrieval cost
//! models.
//!
//! # Examples
//!
//! ```
//! use rago_hardware::{XpuSpec, XpuGeneration, CpuServerSpec, ClusterSpec};
//!
//! let xpu = XpuSpec::generation(XpuGeneration::C);
//! assert_eq!(xpu.hbm_capacity_gib, 96.0);
//!
//! let cluster = ClusterSpec::paper_default();
//! assert_eq!(cluster.xpus_per_server, 4);
//! assert!(cluster.total_xpus() >= 64);
//! let _cpu = CpuServerSpec::epyc_milan();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod cpu;
pub mod error;
pub mod interconnect;
pub mod roofline;
pub mod units;
pub mod xpu;

pub use cluster::{power_of_two_steps, ClusterSpec, ResourceBudget};
pub use cpu::CpuServerSpec;
pub use error::HardwareError;
pub use interconnect::InterconnectSpec;
pub use roofline::{OperatorCost, OperatorKind, Roofline};
pub use units::{gb, gbps, gib, mib, tbps, tflops, tib, BYTES_PER_GB, BYTES_PER_GIB};
pub use xpu::{XpuGeneration, XpuSpec};
