//! Error types for hardware specification and validation.

use std::error::Error;
use std::fmt;

/// Error raised when a hardware specification or resource request is invalid.
///
/// ```
/// use rago_hardware::HardwareError;
/// let err = HardwareError::InvalidSpec { field: "tflops", reason: "must be positive".into() };
/// assert!(err.to_string().contains("tflops"));
/// ```
#[derive(Debug, Clone, PartialEq)]
pub enum HardwareError {
    /// A specification field holds a physically meaningless value.
    InvalidSpec {
        /// Name of the offending field.
        field: &'static str,
        /// Human-readable reason the value was rejected.
        reason: String,
    },
    /// A resource request exceeds what the cluster provides.
    InsufficientResources {
        /// What was requested (e.g. "128 XPUs").
        requested: String,
        /// What is available (e.g. "96 XPUs").
        available: String,
    },
}

impl fmt::Display for HardwareError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HardwareError::InvalidSpec { field, reason } => {
                write!(f, "invalid hardware spec field `{field}`: {reason}")
            }
            HardwareError::InsufficientResources {
                requested,
                available,
            } => {
                write!(
                    f,
                    "insufficient resources: requested {requested}, available {available}"
                )
            }
        }
    }
}

impl Error for HardwareError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_and_informative() {
        let err = HardwareError::InsufficientResources {
            requested: "128 XPUs".into(),
            available: "96 XPUs".into(),
        };
        let msg = err.to_string();
        assert!(msg.starts_with("insufficient"));
        assert!(msg.contains("128 XPUs"));
        assert!(msg.contains("96 XPUs"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HardwareError>();
    }
}
