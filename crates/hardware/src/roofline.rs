//! Roofline cost primitives shared by the inference and retrieval models.
//!
//! The RAGO paper (§4) costs every operator — whether an XPU matrix multiply
//! or a CPU product-quantization scan — with the same roofline expression:
//!
//! ```text
//! T_op = max( work / peak_compute , data / memory_bandwidth )
//! ```
//!
//! This module provides [`Roofline`], a small value type bundling a peak
//! compute rate and a memory bandwidth, and [`OperatorCost`], the per-operator
//! record produced by the simulators (useful for breakdowns and debugging).

use serde::{Deserialize, Serialize};

/// The kind of work an operator performs, used for reporting breakdowns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OperatorKind {
    /// Dense matrix multiplication (projections, FFN layers, logits).
    MatMul,
    /// Attention score/context computation over the KV cache.
    Attention,
    /// Element-wise or normalization work (activations, layer norm).
    Elementwise,
    /// Vector-database scan (centroid or PQ-code scan).
    Scan,
    /// Inter-device communication (all-reduce, point-to-point activation send).
    Communication,
    /// Anything else (embedding lookups, sampling, etc.).
    Other,
}

impl std::fmt::Display for OperatorKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OperatorKind::MatMul => "matmul",
            OperatorKind::Attention => "attention",
            OperatorKind::Elementwise => "elementwise",
            OperatorKind::Scan => "scan",
            OperatorKind::Communication => "communication",
            OperatorKind::Other => "other",
        };
        f.write_str(s)
    }
}

/// A peak-compute / memory-bandwidth pair used to evaluate the roofline model.
///
/// `compute` is expressed in work units per second (FLOP/s for XPU operators,
/// bytes/s of PQ-code scanning for retrieval operators) and `memory_bandwidth`
/// in bytes per second.
///
/// # Examples
///
/// ```
/// use rago_hardware::Roofline;
/// // 459 TFLOPS, 2.765 TB/s (XPU-C).
/// let r = Roofline::new(4.59e14, 2.765e12);
/// // A 1 GFLOP operator touching 1 MB of memory is compute bound.
/// let t = r.time(1e9, 1e6);
/// assert!((t - 1e9 / 4.59e14).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Roofline {
    /// Peak compute rate in work units per second.
    pub compute: f64,
    /// Peak memory bandwidth in bytes per second.
    pub memory_bandwidth: f64,
}

impl Roofline {
    /// Creates a roofline from a peak compute rate (work/s) and a memory
    /// bandwidth (bytes/s).
    ///
    /// # Panics
    ///
    /// Panics if either rate is not strictly positive and finite.
    pub fn new(compute: f64, memory_bandwidth: f64) -> Self {
        assert!(
            compute > 0.0 && compute.is_finite(),
            "compute rate must be positive and finite"
        );
        assert!(
            memory_bandwidth > 0.0 && memory_bandwidth.is_finite(),
            "memory bandwidth must be positive and finite"
        );
        Self {
            compute,
            memory_bandwidth,
        }
    }

    /// Time (seconds) to execute an operator with `work` units of compute that
    /// moves `data_bytes` bytes through memory: the maximum of the compute
    /// time and the memory time.
    pub fn time(&self, work: f64, data_bytes: f64) -> f64 {
        let t_comp = work / self.compute;
        let t_mem = data_bytes / self.memory_bandwidth;
        t_comp.max(t_mem)
    }

    /// Returns `true` when the operator is limited by memory bandwidth rather
    /// than compute.
    pub fn is_memory_bound(&self, work: f64, data_bytes: f64) -> bool {
        data_bytes / self.memory_bandwidth > work / self.compute
    }

    /// The arithmetic intensity (work units per byte) at which compute and
    /// memory time are equal — the "ridge point" of the roofline.
    pub fn ridge_intensity(&self) -> f64 {
        self.compute / self.memory_bandwidth
    }

    /// Returns a roofline scaled to `n` identical devices operating in
    /// parallel with perfect efficiency (used for tensor-parallel shards and
    /// multi-core CPU scans before applying efficiency factors).
    pub fn scaled(&self, n: f64) -> Self {
        assert!(n > 0.0, "scale factor must be positive");
        Self {
            compute: self.compute * n,
            memory_bandwidth: self.memory_bandwidth * n,
        }
    }

    /// Returns a roofline with both rates derated by a utilization factor in
    /// `(0, 1]` — e.g. 0.8 for the ~80 % memory-bandwidth utilization the
    /// paper measures for ScaNN PQ scans.
    pub fn derated(&self, utilization: f64) -> Self {
        assert!(
            utilization > 0.0 && utilization <= 1.0,
            "utilization must be in (0, 1]"
        );
        Self {
            compute: self.compute * utilization,
            memory_bandwidth: self.memory_bandwidth * utilization,
        }
    }
}

/// The cost record of a single simulated operator.
///
/// Simulators accumulate these to provide per-stage and per-kind breakdowns.
///
/// ```
/// use rago_hardware::{OperatorCost, OperatorKind, Roofline};
/// let r = Roofline::new(1e12, 1e11);
/// let cost = OperatorCost::from_roofline("ffn_up", OperatorKind::MatMul, &r, 2e9, 4e8);
/// assert!(cost.is_memory_bound);
/// assert!(cost.seconds > 0.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OperatorCost {
    /// Human-readable operator name (e.g. `"qkv_proj"`, `"leaf_scan"`).
    pub name: String,
    /// The category of work this operator performs.
    pub kind: OperatorKind,
    /// Work units (FLOPs or scanned bytes) executed by the operator.
    pub work: f64,
    /// Bytes moved through memory by the operator.
    pub data_bytes: f64,
    /// Execution time in seconds.
    pub seconds: f64,
    /// Whether the memory term of the roofline dominated.
    pub is_memory_bound: bool,
}

impl OperatorCost {
    /// Costs an operator under `roofline` and records the inputs.
    pub fn from_roofline(
        name: impl Into<String>,
        kind: OperatorKind,
        roofline: &Roofline,
        work: f64,
        data_bytes: f64,
    ) -> Self {
        let seconds = roofline.time(work, data_bytes);
        Self {
            name: name.into(),
            kind,
            work,
            data_bytes,
            seconds,
            is_memory_bound: roofline.is_memory_bound(work, data_bytes),
        }
    }

    /// Creates a pure-latency cost entry (e.g. a fixed communication or
    /// dispatch overhead) that involves no roofline evaluation.
    pub fn fixed(name: impl Into<String>, kind: OperatorKind, seconds: f64) -> Self {
        Self {
            name: name.into(),
            kind,
            work: 0.0,
            data_bytes: 0.0,
            seconds,
            is_memory_bound: false,
        }
    }

    /// Sums the execution time of a slice of operator costs.
    pub fn total_seconds(costs: &[OperatorCost]) -> f64 {
        costs.iter().map(|c| c.seconds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roofline() -> Roofline {
        Roofline::new(4.59e14, 2.765e12)
    }

    #[test]
    fn compute_bound_operator() {
        let r = roofline();
        // Huge FLOPs, tiny data: compute bound.
        let t = r.time(1e15, 1e6);
        assert!((t - 1e15 / 4.59e14).abs() < 1e-9);
        assert!(!r.is_memory_bound(1e15, 1e6));
    }

    #[test]
    fn memory_bound_operator() {
        let r = roofline();
        // Tiny FLOPs, huge data: memory bound.
        let t = r.time(1e6, 1e13);
        assert!((t - 1e13 / 2.765e12).abs() < 1e-9);
        assert!(r.is_memory_bound(1e6, 1e13));
    }

    #[test]
    fn ridge_point_separates_regimes() {
        let r = roofline();
        let ridge = r.ridge_intensity();
        let data = 1e9;
        // Just above the ridge intensity: compute bound.
        assert!(!r.is_memory_bound(data * ridge * 1.01, data));
        // Just below: memory bound.
        assert!(r.is_memory_bound(data * ridge * 0.99, data));
    }

    #[test]
    fn scaling_preserves_ridge_intensity() {
        let r = roofline();
        let s = r.scaled(8.0);
        assert!((s.ridge_intensity() - r.ridge_intensity()).abs() < 1e-9);
        assert_eq!(s.compute, r.compute * 8.0);
    }

    #[test]
    fn derating_reduces_both_rates() {
        let r = roofline().derated(0.8);
        assert!((r.compute - 4.59e14 * 0.8).abs() < 1.0);
        assert!((r.memory_bandwidth - 2.765e12 * 0.8).abs() < 1.0);
    }

    #[test]
    #[should_panic(expected = "utilization")]
    fn derating_rejects_zero() {
        let _ = roofline().derated(0.0);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn new_rejects_nonpositive_compute() {
        let _ = Roofline::new(0.0, 1.0);
    }

    #[test]
    fn operator_cost_totals() {
        let r = roofline();
        let costs = vec![
            OperatorCost::from_roofline("a", OperatorKind::MatMul, &r, 1e12, 1e9),
            OperatorCost::from_roofline("b", OperatorKind::Attention, &r, 1e11, 1e10),
            OperatorCost::fixed("link", OperatorKind::Communication, 1e-4),
        ];
        let total = OperatorCost::total_seconds(&costs);
        assert!(total > 0.0);
        assert!((total - costs.iter().map(|c| c.seconds).sum::<f64>()).abs() < 1e-15);
    }

    #[test]
    fn operator_kind_display() {
        assert_eq!(OperatorKind::MatMul.to_string(), "matmul");
        assert_eq!(OperatorKind::Scan.to_string(), "scan");
        assert_eq!(OperatorKind::Communication.to_string(), "communication");
    }
}
