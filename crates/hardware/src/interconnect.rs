//! Interconnect models: XPU-to-XPU links and host-to-XPU transfers.
//!
//! The paper assumes XPUs connected in a 3D-torus topology with six 100 GB/s
//! links per chip (600 GB/s aggregate), and PCIe-class bandwidth between the
//! retrieval hosts and the accelerators. Communication latency between two
//! operators is `S / B_net` where `S` is the transferred size (§4(a)), plus a
//! small fixed per-message latency.

use crate::error::HardwareError;
use crate::units::gbps;
use serde::{Deserialize, Serialize};

/// Bandwidth/latency description of the links connecting devices.
///
/// # Examples
///
/// ```
/// use rago_hardware::InterconnectSpec;
/// let ici = InterconnectSpec::torus_3d();
/// // Transferring 1 MB over a 100 GB/s link takes ~10 µs plus base latency.
/// let t = ici.transfer_time(1e6);
/// assert!(t > 9e-6 && t < 5e-5);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct InterconnectSpec {
    /// Human-readable name (e.g. `"3D-torus"`).
    pub name: String,
    /// Per-link bandwidth in GB/s.
    pub link_bandwidth_gbps: f64,
    /// Number of links per chip (aggregate bandwidth = links × per-link BW).
    pub links_per_chip: u32,
    /// Fixed per-message latency in seconds (software + switching overhead).
    pub base_latency_s: f64,
}

impl InterconnectSpec {
    /// The paper's XPU interconnect: 3D torus, six 100 GB/s links per chip.
    pub fn torus_3d() -> Self {
        Self {
            name: "3D-torus".to_string(),
            link_bandwidth_gbps: 100.0,
            links_per_chip: 6,
            base_latency_s: 5e-6,
        }
    }

    /// PCIe-class host-to-accelerator link used for shipping retrieved
    /// documents from CPU servers to XPUs (tens of GB/s; the paper notes this
    /// transfer is negligible).
    pub fn host_to_xpu_pcie() -> Self {
        Self {
            name: "PCIe-gen4-x16".to_string(),
            link_bandwidth_gbps: 32.0,
            links_per_chip: 1,
            base_latency_s: 10e-6,
        }
    }

    /// Datacenter network between retrieval servers (used for broadcast /
    /// gather in distributed search; the paper treats this as negligible).
    pub fn datacenter_network() -> Self {
        Self {
            name: "DCN-200Gb".to_string(),
            link_bandwidth_gbps: 25.0,
            links_per_chip: 1,
            base_latency_s: 20e-6,
        }
    }

    /// Creates a custom interconnect.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InvalidSpec`] if the bandwidth is not positive,
    /// the link count is zero, or the base latency is negative.
    pub fn custom(
        name: impl Into<String>,
        link_bandwidth_gbps: f64,
        links_per_chip: u32,
        base_latency_s: f64,
    ) -> Result<Self, HardwareError> {
        let spec = Self {
            name: name.into(),
            link_bandwidth_gbps,
            links_per_chip,
            base_latency_s,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InvalidSpec`] naming the first offending field.
    pub fn validate(&self) -> Result<(), HardwareError> {
        if !(self.link_bandwidth_gbps > 0.0 && self.link_bandwidth_gbps.is_finite()) {
            return Err(HardwareError::InvalidSpec {
                field: "link_bandwidth_gbps",
                reason: format!("must be positive, got {}", self.link_bandwidth_gbps),
            });
        }
        if self.links_per_chip == 0 {
            return Err(HardwareError::InvalidSpec {
                field: "links_per_chip",
                reason: "must be at least 1".to_string(),
            });
        }
        if !(self.base_latency_s >= 0.0 && self.base_latency_s.is_finite()) {
            return Err(HardwareError::InvalidSpec {
                field: "base_latency_s",
                reason: format!("must be non-negative, got {}", self.base_latency_s),
            });
        }
        Ok(())
    }

    /// Per-link bandwidth in bytes/s.
    pub fn link_bandwidth(&self) -> f64 {
        gbps(self.link_bandwidth_gbps)
    }

    /// Aggregate per-chip bandwidth in bytes/s (all links used concurrently).
    pub fn aggregate_bandwidth(&self) -> f64 {
        self.link_bandwidth() * f64::from(self.links_per_chip)
    }

    /// Time to move `bytes` over a single link, including the base latency.
    pub fn transfer_time(&self, bytes: f64) -> f64 {
        self.base_latency_s + bytes / self.link_bandwidth()
    }

    /// Latency in seconds of a one-shot transfer of `bytes` over a single
    /// link: the fixed per-message overhead plus bytes over the per-link
    /// bandwidth. This is the canonical pricing for disaggregated
    /// prefill→decode KV-cache handoffs — construct a
    /// `rago_schema::KvTransferModel` from `link_bandwidth()` and
    /// `base_latency_s` rather than re-deriving the bandwidth math in the
    /// serving simulator.
    ///
    /// # Examples
    ///
    /// ```
    /// use rago_hardware::InterconnectSpec;
    ///
    /// let dcn = InterconnectSpec::datacenter_network();
    /// // ~131 MB of KV state over a 25 GB/s link: 20 µs overhead + wire time.
    /// let t = dcn.transfer_latency_s(131_072_000.0);
    /// assert!((t - (20e-6 + 131_072_000.0 / 25e9)).abs() < 1e-12);
    /// // Zero bytes still pay the per-message overhead.
    /// assert_eq!(dcn.transfer_latency_s(0.0), dcn.base_latency_s);
    /// // Identical to the generic single-link `transfer_time`.
    /// assert_eq!(t, dcn.transfer_time(131_072_000.0));
    /// ```
    pub fn transfer_latency_s(&self, bytes: f64) -> f64 {
        self.transfer_time(bytes)
    }

    /// Time to move `bytes` using every link on the chip concurrently (e.g. a
    /// sharded all-gather where traffic is spread over the torus dimensions).
    pub fn transfer_time_aggregate(&self, bytes: f64) -> f64 {
        self.base_latency_s + bytes / self.aggregate_bandwidth()
    }

    /// Approximate time for a ring all-reduce of `bytes` across `n` chips.
    ///
    /// Uses the standard `2 (n-1) / n` traffic factor of ring all-reduce over
    /// the per-link bandwidth; returns zero for a single chip.
    pub fn allreduce_time(&self, bytes: f64, n: u32) -> f64 {
        if n <= 1 {
            return 0.0;
        }
        let n_f = f64::from(n);
        let traffic = 2.0 * (n_f - 1.0) / n_f * bytes;
        self.base_latency_s * f64::from(n - 1) + traffic / self.link_bandwidth()
    }
}

impl Default for InterconnectSpec {
    fn default() -> Self {
        InterconnectSpec::torus_3d()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn torus_matches_paper() {
        let ici = InterconnectSpec::torus_3d();
        assert_eq!(ici.links_per_chip, 6);
        assert_eq!(ici.link_bandwidth_gbps, 100.0);
        assert!((ici.aggregate_bandwidth() - 600e9).abs() < 1.0);
    }

    #[test]
    fn transfer_time_scales_linearly_beyond_base_latency() {
        let ici = InterconnectSpec::torus_3d();
        let t1 = ici.transfer_time(1e9);
        let t2 = ici.transfer_time(2e9);
        assert!(t2 > t1);
        assert!(((t2 - ici.base_latency_s) / (t1 - ici.base_latency_s) - 2.0).abs() < 1e-9);
    }

    #[test]
    fn allreduce_zero_for_single_chip() {
        let ici = InterconnectSpec::torus_3d();
        assert_eq!(ici.allreduce_time(1e9, 1), 0.0);
        assert!(ici.allreduce_time(1e9, 2) > 0.0);
    }

    #[test]
    fn allreduce_traffic_factor_approaches_two() {
        let ici = InterconnectSpec::torus_3d();
        let t8 = ici.allreduce_time(1e9, 8);
        let t64 = ici.allreduce_time(1e9, 64);
        // Larger groups move asymptotically 2x the data per link but never more.
        assert!(t64 > t8);
        assert!(t64 < ici.base_latency_s * 63.0 + 2.0 * 1e9 / ici.link_bandwidth() + 1e-9);
    }

    #[test]
    fn validation() {
        assert!(InterconnectSpec::custom("x", 0.0, 1, 0.0).is_err());
        assert!(InterconnectSpec::custom("x", 10.0, 0, 0.0).is_err());
        assert!(InterconnectSpec::custom("x", 10.0, 1, -1.0).is_err());
        assert!(InterconnectSpec::custom("x", 10.0, 1, 0.0).is_ok());
    }

    #[test]
    fn aggregate_transfer_faster_than_single_link() {
        let ici = InterconnectSpec::torus_3d();
        assert!(ici.transfer_time_aggregate(6e9) < ici.transfer_time(6e9));
    }
}
