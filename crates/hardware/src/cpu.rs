//! CPU host-server specification used for retrieval.
//!
//! The RAGO paper models retrieval hosts after AMD EPYC Milan servers with
//! 96 cores, 384 GB of DRAM and 460 GB/s of memory bandwidth, and calibrates
//! ScaNN's PQ-code scanning throughput at 18 GB/s per core with roughly 80 %
//! memory-bandwidth utilization (§4(b)).

use crate::error::HardwareError;
use crate::roofline::Roofline;
use crate::units::{gb, gbps};
use serde::{Deserialize, Serialize};

/// Specification of one retrieval host server (CPU-only from the point of view
/// of the retrieval cost model; the same physical server also hosts XPUs).
///
/// # Examples
///
/// ```
/// use rago_hardware::CpuServerSpec;
/// let s = CpuServerSpec::epyc_milan();
/// assert_eq!(s.cores, 96);
/// // Aggregate scan rate is memory-bandwidth limited, not core limited.
/// assert!(s.scan_roofline().compute > s.scan_roofline().memory_bandwidth);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CpuServerSpec {
    /// Human-readable name (e.g. `"EPYC-Milan-96c"`).
    pub name: String,
    /// Number of physical cores available for query processing.
    pub cores: u32,
    /// DRAM capacity in GB (decimal, matching the paper's "384 GB").
    pub dram_capacity_gb: f64,
    /// DRAM bandwidth in GB/s.
    pub dram_bandwidth_gbps: f64,
    /// Calibrated PQ-code scanning throughput per core, in GB/s.
    pub scan_throughput_per_core_gbps: f64,
    /// Fraction of DRAM bandwidth achievable during scans (the paper measures
    /// roughly 0.8 for ScaNN).
    pub memory_efficiency: f64,
}

impl CpuServerSpec {
    /// The paper's retrieval host: AMD EPYC Milan, 96 cores, 384 GB DRAM,
    /// 460 GB/s memory bandwidth, 18 GB/s per-core PQ scan throughput, 80 %
    /// memory-bandwidth utilization.
    pub fn epyc_milan() -> Self {
        Self {
            name: "EPYC-Milan-96c".to_string(),
            cores: 96,
            dram_capacity_gb: 384.0,
            dram_bandwidth_gbps: 460.0,
            scan_throughput_per_core_gbps: 18.0,
            memory_efficiency: 0.8,
        }
    }

    /// The smaller calibration host used to benchmark open-source ScaNN in the
    /// paper (AMD EPYC 7R13, 24 cores).
    pub fn epyc_7r13_24c() -> Self {
        Self {
            name: "EPYC-7R13-24c".to_string(),
            cores: 24,
            dram_capacity_gb: 192.0,
            dram_bandwidth_gbps: 300.0,
            scan_throughput_per_core_gbps: 18.0,
            memory_efficiency: 0.8,
        }
    }

    /// Creates a custom CPU server specification.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InvalidSpec`] if any capacity or rate is not
    /// strictly positive, the core count is zero, or the memory efficiency is
    /// outside `(0, 1]`.
    pub fn custom(
        name: impl Into<String>,
        cores: u32,
        dram_capacity_gb: f64,
        dram_bandwidth_gbps: f64,
        scan_throughput_per_core_gbps: f64,
    ) -> Result<Self, HardwareError> {
        let spec = Self {
            name: name.into(),
            cores,
            dram_capacity_gb,
            dram_bandwidth_gbps,
            scan_throughput_per_core_gbps,
            memory_efficiency: 0.8,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InvalidSpec`] naming the first offending field.
    pub fn validate(&self) -> Result<(), HardwareError> {
        if self.cores == 0 {
            return Err(HardwareError::InvalidSpec {
                field: "cores",
                reason: "must be at least 1".to_string(),
            });
        }
        for (field, v) in [
            ("dram_capacity_gb", self.dram_capacity_gb),
            ("dram_bandwidth_gbps", self.dram_bandwidth_gbps),
            (
                "scan_throughput_per_core_gbps",
                self.scan_throughput_per_core_gbps,
            ),
        ] {
            if !(v > 0.0 && v.is_finite()) {
                return Err(HardwareError::InvalidSpec {
                    field,
                    reason: format!("must be positive and finite, got {v}"),
                });
            }
        }
        if !(self.memory_efficiency > 0.0 && self.memory_efficiency <= 1.0) {
            return Err(HardwareError::InvalidSpec {
                field: "memory_efficiency",
                reason: format!("must be in (0, 1], got {}", self.memory_efficiency),
            });
        }
        Ok(())
    }

    /// DRAM capacity in bytes.
    pub fn dram_capacity_bytes(&self) -> f64 {
        gb(self.dram_capacity_gb)
    }

    /// Effective DRAM bandwidth in bytes/s (after the efficiency derating).
    pub fn effective_dram_bandwidth(&self) -> f64 {
        gbps(self.dram_bandwidth_gbps) * self.memory_efficiency
    }

    /// Aggregate per-server PQ-scan compute rate in bytes/s if every core ran
    /// at its calibrated per-core throughput (before the memory ceiling).
    pub fn aggregate_scan_rate(&self) -> f64 {
        gbps(self.scan_throughput_per_core_gbps) * f64::from(self.cores)
    }

    /// The scan roofline for this server: "compute" is the aggregate per-core
    /// scan rate and "memory" is the effective DRAM bandwidth. Both are in
    /// bytes/s because PQ scanning work is measured in scanned bytes.
    pub fn scan_roofline(&self) -> Roofline {
        Roofline::new(self.aggregate_scan_rate(), self.effective_dram_bandwidth())
    }

    /// Scan roofline restricted to `cores_used` cores (ScaNN parallelizes a
    /// batch of queries with one thread per query, so small batches cannot use
    /// the whole socket).
    ///
    /// # Panics
    ///
    /// Panics if `cores_used` is zero.
    pub fn scan_roofline_with_cores(&self, cores_used: u32) -> Roofline {
        assert!(cores_used > 0, "cores_used must be at least 1");
        let cores = cores_used.min(self.cores);
        Roofline::new(
            gbps(self.scan_throughput_per_core_gbps) * f64::from(cores),
            self.effective_dram_bandwidth(),
        )
    }
}

impl Default for CpuServerSpec {
    fn default() -> Self {
        CpuServerSpec::epyc_milan()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn epyc_milan_matches_paper_constants() {
        let s = CpuServerSpec::epyc_milan();
        assert_eq!(s.cores, 96);
        assert_eq!(s.dram_capacity_gb, 384.0);
        assert_eq!(s.dram_bandwidth_gbps, 460.0);
        assert_eq!(s.scan_throughput_per_core_gbps, 18.0);
    }

    #[test]
    fn full_socket_scan_is_memory_bound() {
        // 96 cores x 18 GB/s = 1728 GB/s of scan capability vs 368 GB/s of
        // effective DRAM bandwidth: the scan is memory-bandwidth limited.
        let s = CpuServerSpec::epyc_milan();
        let r = s.scan_roofline();
        assert!(r.is_memory_bound(1e9, 1e9));
        assert!((r.memory_bandwidth - 460e9 * 0.8).abs() < 1.0);
    }

    #[test]
    fn small_batches_are_core_bound() {
        // With only 4 threads, 4 x 18 = 72 GB/s < 368 GB/s: core bound.
        let s = CpuServerSpec::epyc_milan();
        let r = s.scan_roofline_with_cores(4);
        assert!(!r.is_memory_bound(1e9, 1e9));
        assert!((r.compute - 72e9).abs() < 1.0);
    }

    #[test]
    fn cores_used_is_clamped_to_available() {
        let s = CpuServerSpec::epyc_7r13_24c();
        let r = s.scan_roofline_with_cores(1000);
        assert!((r.compute - 24.0 * 18e9).abs() < 1.0);
    }

    #[test]
    fn validation_rejects_bad_specs() {
        assert!(CpuServerSpec::custom("x", 0, 384.0, 460.0, 18.0).is_err());
        assert!(CpuServerSpec::custom("x", 8, -1.0, 460.0, 18.0).is_err());
        assert!(CpuServerSpec::custom("x", 8, 384.0, 460.0, 18.0).is_ok());
    }

    #[test]
    #[should_panic(expected = "cores_used")]
    fn zero_cores_used_panics() {
        let _ = CpuServerSpec::epyc_milan().scan_roofline_with_cores(0);
    }
}
