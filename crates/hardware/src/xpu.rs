//! XPU accelerator specifications (Table 2 of the RAGO paper).
//!
//! An "XPU" is the paper's generic systolic-array ML accelerator. Three
//! generations are defined, resembling TPU v5e / v4 / v5p; XPU-C is the
//! default used throughout the evaluation.

use crate::error::HardwareError;
use crate::roofline::Roofline;
use crate::units::{gbps, gib, tflops};
use serde::{Deserialize, Serialize};

/// The three XPU generations evaluated in the paper (Table 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum XpuGeneration {
    /// XPU-A: 197 TFLOPS, 16 GB HBM, 819 GB/s, 200 GB/s ICI (resembles TPU v5e).
    A,
    /// XPU-B: 275 TFLOPS, 32 GB HBM, 1200 GB/s, 300 GB/s ICI (resembles TPU v4).
    B,
    /// XPU-C: 459 TFLOPS, 96 GB HBM, 2765 GB/s, 600 GB/s ICI (resembles TPU v5p).
    /// This is the default generation used in the evaluation.
    C,
}

impl XpuGeneration {
    /// All generations, in ascending capability order.
    pub const ALL: [XpuGeneration; 3] = [XpuGeneration::A, XpuGeneration::B, XpuGeneration::C];
}

impl std::fmt::Display for XpuGeneration {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            XpuGeneration::A => f.write_str("XPU-A"),
            XpuGeneration::B => f.write_str("XPU-B"),
            XpuGeneration::C => f.write_str("XPU-C"),
        }
    }
}

/// Performance specification of one XPU accelerator chip.
///
/// # Examples
///
/// ```
/// use rago_hardware::{XpuSpec, XpuGeneration};
///
/// let c = XpuSpec::generation(XpuGeneration::C);
/// assert_eq!(c.peak_tflops, 459.0);
/// assert!(c.roofline().ridge_intensity() > 100.0);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct XpuSpec {
    /// Human-readable name of the accelerator (e.g. `"XPU-C"`).
    pub name: String,
    /// Peak dense compute throughput in TFLOPS (int8/bf16 systolic array).
    pub peak_tflops: f64,
    /// HBM capacity in GiB.
    pub hbm_capacity_gib: f64,
    /// HBM bandwidth in GB/s (decimal).
    pub hbm_bandwidth_gbps: f64,
    /// Aggregate inter-chip interconnect bandwidth per chip in GB/s.
    pub interchip_bandwidth_gbps: f64,
    /// Fraction of peak compute achievable on real workloads (MFU-style
    /// derating applied uniformly to all operators).
    pub compute_efficiency: f64,
    /// Fraction of peak HBM bandwidth achievable on real workloads.
    pub memory_efficiency: f64,
}

impl XpuSpec {
    /// Returns the specification of one of the paper's three XPU generations
    /// (Table 2), with default efficiency deratings of 0.6 for compute and
    /// 0.8 for memory bandwidth.
    pub fn generation(gen: XpuGeneration) -> Self {
        let (name, peak_tflops, hbm, bw, ici) = match gen {
            XpuGeneration::A => ("XPU-A", 197.0, 16.0, 819.0, 200.0),
            XpuGeneration::B => ("XPU-B", 275.0, 32.0, 1200.0, 300.0),
            XpuGeneration::C => ("XPU-C", 459.0, 96.0, 2765.0, 600.0),
        };
        Self {
            name: name.to_string(),
            peak_tflops,
            hbm_capacity_gib: hbm,
            hbm_bandwidth_gbps: bw,
            interchip_bandwidth_gbps: ici,
            compute_efficiency: 0.6,
            memory_efficiency: 0.8,
        }
    }

    /// Creates a custom XPU specification.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InvalidSpec`] if any rate or capacity is not
    /// strictly positive, or an efficiency is outside `(0, 1]`.
    pub fn custom(
        name: impl Into<String>,
        peak_tflops: f64,
        hbm_capacity_gib: f64,
        hbm_bandwidth_gbps: f64,
        interchip_bandwidth_gbps: f64,
    ) -> Result<Self, HardwareError> {
        let spec = Self {
            name: name.into(),
            peak_tflops,
            hbm_capacity_gib,
            hbm_bandwidth_gbps,
            interchip_bandwidth_gbps,
            compute_efficiency: 0.6,
            memory_efficiency: 0.8,
        };
        spec.validate()?;
        Ok(spec)
    }

    /// Overrides the compute/memory efficiency deratings.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InvalidSpec`] if either efficiency is outside
    /// `(0, 1]`.
    pub fn with_efficiency(
        mut self,
        compute_efficiency: f64,
        memory_efficiency: f64,
    ) -> Result<Self, HardwareError> {
        self.compute_efficiency = compute_efficiency;
        self.memory_efficiency = memory_efficiency;
        self.validate()?;
        Ok(self)
    }

    /// Validates all fields.
    ///
    /// # Errors
    ///
    /// Returns [`HardwareError::InvalidSpec`] naming the first offending field.
    pub fn validate(&self) -> Result<(), HardwareError> {
        fn positive(field: &'static str, v: f64) -> Result<(), HardwareError> {
            if v > 0.0 && v.is_finite() {
                Ok(())
            } else {
                Err(HardwareError::InvalidSpec {
                    field,
                    reason: format!("must be positive and finite, got {v}"),
                })
            }
        }
        positive("peak_tflops", self.peak_tflops)?;
        positive("hbm_capacity_gib", self.hbm_capacity_gib)?;
        positive("hbm_bandwidth_gbps", self.hbm_bandwidth_gbps)?;
        positive("interchip_bandwidth_gbps", self.interchip_bandwidth_gbps)?;
        for (field, v) in [
            ("compute_efficiency", self.compute_efficiency),
            ("memory_efficiency", self.memory_efficiency),
        ] {
            if !(v > 0.0 && v <= 1.0) {
                return Err(HardwareError::InvalidSpec {
                    field,
                    reason: format!("must be in (0, 1], got {v}"),
                });
            }
        }
        Ok(())
    }

    /// Peak compute rate in FLOP/s (before efficiency derating).
    pub fn peak_flops(&self) -> f64 {
        tflops(self.peak_tflops)
    }

    /// HBM capacity in bytes.
    pub fn hbm_capacity_bytes(&self) -> f64 {
        gib(self.hbm_capacity_gib)
    }

    /// HBM bandwidth in bytes/s (before efficiency derating).
    pub fn hbm_bandwidth(&self) -> f64 {
        gbps(self.hbm_bandwidth_gbps)
    }

    /// Inter-chip bandwidth in bytes/s.
    pub fn interchip_bandwidth(&self) -> f64 {
        gbps(self.interchip_bandwidth_gbps)
    }

    /// The effective single-chip roofline: peak rates derated by the
    /// configured compute and memory efficiencies.
    pub fn roofline(&self) -> Roofline {
        Roofline::new(
            self.peak_flops() * self.compute_efficiency,
            self.hbm_bandwidth() * self.memory_efficiency,
        )
    }
}

impl Default for XpuSpec {
    /// The paper's default accelerator: XPU-C.
    fn default() -> Self {
        XpuSpec::generation(XpuGeneration::C)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table2_values_match_paper() {
        let a = XpuSpec::generation(XpuGeneration::A);
        let b = XpuSpec::generation(XpuGeneration::B);
        let c = XpuSpec::generation(XpuGeneration::C);
        assert_eq!((a.peak_tflops, a.hbm_capacity_gib), (197.0, 16.0));
        assert_eq!(a.hbm_bandwidth_gbps, 819.0);
        assert_eq!(a.interchip_bandwidth_gbps, 200.0);
        assert_eq!((b.peak_tflops, b.hbm_capacity_gib), (275.0, 32.0));
        assert_eq!(b.hbm_bandwidth_gbps, 1200.0);
        assert_eq!((c.peak_tflops, c.hbm_capacity_gib), (459.0, 96.0));
        assert_eq!(c.hbm_bandwidth_gbps, 2765.0);
        assert_eq!(c.interchip_bandwidth_gbps, 600.0);
    }

    #[test]
    fn generations_are_monotonically_more_capable() {
        let specs: Vec<_> = XpuGeneration::ALL
            .iter()
            .map(|g| XpuSpec::generation(*g))
            .collect();
        for w in specs.windows(2) {
            assert!(w[1].peak_tflops > w[0].peak_tflops);
            assert!(w[1].hbm_bandwidth_gbps > w[0].hbm_bandwidth_gbps);
            assert!(w[1].hbm_capacity_gib > w[0].hbm_capacity_gib);
        }
    }

    #[test]
    fn default_is_xpu_c() {
        assert_eq!(XpuSpec::default().name, "XPU-C");
    }

    #[test]
    fn custom_spec_validation() {
        assert!(XpuSpec::custom("bad", -1.0, 16.0, 819.0, 200.0).is_err());
        assert!(XpuSpec::custom("ok", 100.0, 16.0, 819.0, 200.0).is_ok());
        let err = XpuSpec::generation(XpuGeneration::C)
            .with_efficiency(1.5, 0.8)
            .unwrap_err();
        assert!(
            matches!(err, HardwareError::InvalidSpec { field, .. } if field == "compute_efficiency")
        );
    }

    #[test]
    fn roofline_applies_efficiencies() {
        let c = XpuSpec::generation(XpuGeneration::C);
        let r = c.roofline();
        assert!((r.compute - 459e12 * 0.6).abs() < 1.0);
        assert!((r.memory_bandwidth - 2765e9 * 0.8).abs() < 1.0);
    }

    #[test]
    fn display_names() {
        assert_eq!(XpuGeneration::A.to_string(), "XPU-A");
        assert_eq!(XpuGeneration::C.to_string(), "XPU-C");
    }
}
